//! Property test: all four variants present byte-identical *logical*
//! disks under arbitrary write/read/snapshot sequences — the layouts
//! may place bytes differently, but the virtual disk a user sees must
//! not depend on where the IVs live.

use proptest::prelude::*;
use vdisk::core::{EncryptedImage, EncryptionConfig, MetaLayout};
use vdisk::crypto::rng::SeededIvSource;
use vdisk::rados::Cluster;
use vdisk::rbd::Image;

const IMAGE_SIZE: u64 = 8 << 20;

#[derive(Debug, Clone)]
enum DiskOp {
    /// Write `len` bytes of `fill` at `offset`.
    Write { offset: u64, len: u64, fill: u8 },
    /// Snapshot, then verify a later read at it.
    Snapshot,
    /// Read-and-compare a range across all variants.
    Verify { offset: u64, len: u64 },
}

fn arb_op() -> impl Strategy<Value = DiskOp> {
    prop_oneof![
        (0u64..IMAGE_SIZE - 70_000, 1u64..65536, any::<u8>())
            .prop_map(|(offset, len, fill)| DiskOp::Write { offset, len, fill }),
        Just(DiskOp::Snapshot),
        (0u64..IMAGE_SIZE - 70_000, 1u64..65536)
            .prop_map(|(offset, len)| DiskOp::Verify { offset, len }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn all_layouts_present_the_same_logical_disk(
        ops in proptest::collection::vec(arb_op(), 1..14),
    ) {
        // A reference "disk" plus the four encrypted variants.
        let mut model = vec![0u8; IMAGE_SIZE as usize];
        let mut disks: Vec<EncryptedImage> = [
            EncryptionConfig::luks2_baseline(),
            EncryptionConfig::random_iv(MetaLayout::Unaligned),
            EncryptionConfig::random_iv(MetaLayout::ObjectEnd),
            EncryptionConfig::random_iv(MetaLayout::Omap),
        ]
        .iter()
        .enumerate()
        .map(|(i, config)| {
            let cluster = Cluster::builder().build();
            let image = Image::create(&cluster, "prop", IMAGE_SIZE).unwrap();
            EncryptedImage::format_with_iv_source(
                image,
                config,
                b"prop",
                Box::new(SeededIvSource::new(i as u64 + 1)),
            )
            .unwrap()
        })
        .collect();
        let mut snaps: Vec<(vdisk::rados::SnapId, Vec<u8>)> = Vec::new();
        let mut snapped: Vec<Vec<vdisk::rados::SnapId>> = vec![Vec::new(); disks.len()];

        for op in &ops {
            match op {
                DiskOp::Write { offset, len, fill } => {
                    // The baseline cannot distinguish unwritten space;
                    // only compare regions we have written. Keep the
                    // model in sync.
                    let data = vec![*fill; *len as usize];
                    model[*offset as usize..(*offset + *len) as usize]
                        .copy_from_slice(&data);
                    for disk in &mut disks {
                        disk.write(*offset, &data).unwrap();
                    }
                }
                DiskOp::Snapshot => {
                    for (i, disk) in disks.iter().enumerate() {
                        let id = disk
                            .snap_create(&format!("s{}", snapped[i].len()))
                            .unwrap();
                        snapped[i].push(id);
                    }
                    snaps.push((snapped[0][snaps.len()], model.clone()));
                }
                DiskOp::Verify { offset, len } => {
                    let expected = &model[*offset as usize..(*offset + *len) as usize];
                    // Skip regions never written (baseline reads noise
                    // there by design, like real dm-crypt).
                    for disk in &disks {
                        if disk.config().layout.is_some() || expected.iter().any(|&b| b != 0) {
                            continue;
                        }
                    }
                    for disk in &disks {
                        if disk.config().layout.is_none() {
                            continue; // baseline: unwritten space is undefined
                        }
                        let mut buf = vec![0u8; *len as usize];
                        disk.read(*offset, &mut buf).unwrap();
                        prop_assert_eq!(
                            &buf[..], expected,
                            "layout {:?} diverged at [{}, {})",
                            disk.config().layout, offset, offset + len
                        );
                    }
                }
            }
        }

        // Final sweep: every snapshot must show its frozen state on
        // every variant (metadata layouts only, at written offsets).
        for (snap_idx, (_, frozen)) in snaps.iter().enumerate() {
            for (i, disk) in disks.iter().enumerate() {
                if disk.config().layout.is_none() {
                    continue;
                }
                let snap = snapped[i][snap_idx];
                let mut buf = vec![0u8; 32768];
                disk.read_at_snap(snap, 0, &mut buf).unwrap();
                prop_assert_eq!(
                    &buf[..],
                    &frozen[..32768],
                    "layout {:?} snapshot {} diverged",
                    disk.config().layout,
                    snap_idx
                );
            }
        }
    }
}
