//! Cross-crate integration tests: the full encrypt → stripe → replicate
//! → snapshot stack, exercised through the public facade.

use vdisk::core::{Cipher, CryptError, EncryptedImage, EncryptionConfig, MetaLayout};
use vdisk::crypto::rng::SeededIvSource;
use vdisk::rados::{Cluster, PayloadMode, Transaction};
use vdisk::rbd::Image;

fn make_disk(config: &EncryptionConfig, size: u64) -> (Cluster, EncryptedImage) {
    let cluster = Cluster::builder().build();
    let image = Image::create(&cluster, "it", size).unwrap();
    let disk = EncryptedImage::format_with_iv_source(
        image,
        config,
        b"integration",
        Box::new(SeededIvSource::new(0xDEC0DE)),
    )
    .unwrap();
    (cluster, disk)
}

fn all_variants() -> Vec<EncryptionConfig> {
    vec![
        EncryptionConfig::luks2_baseline(),
        EncryptionConfig::random_iv(MetaLayout::Unaligned),
        EncryptionConfig::random_iv(MetaLayout::ObjectEnd),
        EncryptionConfig::random_iv(MetaLayout::Omap),
        EncryptionConfig::random_iv(MetaLayout::ObjectEnd).with_mac(),
        EncryptionConfig::random_iv(MetaLayout::Omap)
            .with_mac()
            .with_snapshot_binding(),
        EncryptionConfig::random_iv(MetaLayout::ObjectEnd).with_cipher(Cipher::Aes256Gcm),
        EncryptionConfig::luks2_baseline().with_cipher(Cipher::Eme2Aes256),
        EncryptionConfig::luks2_baseline().with_cipher(Cipher::CbcEssiv256),
        EncryptionConfig::random_iv(MetaLayout::ObjectEnd).with_cipher(Cipher::Aes128Xts),
    ]
}

#[test]
fn every_variant_round_trips_across_object_boundaries() {
    for config in all_variants() {
        let (_c, mut disk) = make_disk(&config, 16 << 20);
        // Spans objects 0→1 with interior sectors.
        let offset = (4 << 20) - 8192;
        let data: Vec<u8> = (0..20480u32).map(|i| (i % 253) as u8).collect();
        disk.write(offset, &data).unwrap();
        let mut buf = vec![0u8; data.len()];
        disk.read(offset, &mut buf).unwrap();
        assert_eq!(buf, data, "config {config:?}");
    }
}

#[test]
fn every_variant_survives_reopen() {
    for config in all_variants() {
        let cluster = Cluster::builder().build();
        let image = Image::create(&cluster, "persist", 8 << 20).unwrap();
        let mut disk = EncryptedImage::format(image, &config, b"pw").unwrap();
        disk.write(4096, b"persisted across open").unwrap();
        drop(disk);

        let image = Image::open(&cluster, "persist").unwrap();
        let reopened = EncryptedImage::open(image, b"pw").unwrap();
        assert_eq!(reopened.config(), &config, "config {config:?}");
        let mut buf = vec![0u8; 21];
        reopened.read(4096, &mut buf).unwrap();
        assert_eq!(&buf, b"persisted across open", "config {config:?}");
    }
}

#[test]
fn unaligned_io_read_modify_write() {
    for config in [
        EncryptionConfig::luks2_baseline(),
        EncryptionConfig::random_iv(MetaLayout::ObjectEnd),
        EncryptionConfig::random_iv(MetaLayout::Omap),
    ] {
        let (_c, mut disk) = make_disk(&config, 8 << 20);
        disk.write(0, &vec![0xAA; 8192]).unwrap();
        // 100 bytes straddling the sector-0/sector-1 boundary.
        disk.write(4050, &[0xBB; 100]).unwrap();
        let mut buf = vec![0u8; 8192];
        disk.read(0, &mut buf).unwrap();
        assert!(buf[..4050].iter().all(|&b| b == 0xAA));
        assert!(buf[4050..4150].iter().all(|&b| b == 0xBB));
        assert!(buf[4150..8192].iter().all(|&b| b == 0xAA));
        // Unaligned read of the straddling span.
        let mut small = vec![0u8; 100];
        disk.read(4050, &mut small).unwrap();
        assert!(small.iter().all(|&b| b == 0xBB));
    }
}

#[test]
fn snapshots_preserve_every_layout() {
    for layout in MetaLayout::ALL {
        let (_c, mut disk) = make_disk(&EncryptionConfig::random_iv(layout), 8 << 20);
        disk.write(0, b"generation-1").unwrap();
        let s1 = disk.snap_create("g1").unwrap();
        disk.write(0, b"generation-2").unwrap();
        let s2 = disk.snap_create("g2").unwrap();
        disk.write(0, b"generation-3").unwrap();

        let mut buf = vec![0u8; 12];
        disk.read(0, &mut buf).unwrap();
        assert_eq!(&buf, b"generation-3");
        disk.read_at_snap(s2, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"generation-2", "layout {layout}");
        disk.read_at_snap(s1, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"generation-1", "layout {layout}");
    }
}

#[test]
fn data_and_iv_stay_consistent_because_transactions_are_atomic() {
    // A transaction whose LAST op is invalid must leave neither the
    // data nor the OMAP IV behind — this is the consistency guarantee
    // the paper gets from RADOS transactions (§3.1).
    let cluster = Cluster::builder().build();
    let mut tx = Transaction::new("atomic-proof");
    tx.write(0, vec![0xCC; 4096]); // "ciphertext"
    tx.omap_set(vec![(b"iv.0".to_vec(), vec![0x11; 16])]); // "its IV"
    tx.omap_set(vec![(Vec::new(), vec![])]); // invalid: empty key
    assert!(cluster.execute(tx).is_err());
    assert!(
        !cluster.object_exists("atomic-proof"),
        "no torn data/IV state may exist"
    );
}

#[test]
fn replica_corruption_is_detected_and_repaired() {
    let (cluster, mut disk) = make_disk(&EncryptionConfig::random_iv_object_end(), 8 << 20);
    disk.write(0, &vec![0x5A; 4096]).unwrap();
    assert!(cluster.scrub().is_clean());
    let object = disk.image().object_name(0);
    cluster.damage_replica(&object, 2, 1000).unwrap();
    assert!(!cluster.scrub().is_clean());
    cluster.repair(&object).unwrap();
    assert!(cluster.scrub().is_clean());
    // Data still decrypts after repair.
    let mut buf = vec![0u8; 4096];
    disk.read(0, &mut buf).unwrap();
    assert_eq!(buf, vec![0x5A; 4096]);
}

#[test]
fn mac_catches_whole_stack_tampering() {
    let (cluster, mut disk) = make_disk(
        &EncryptionConfig::random_iv(MetaLayout::Omap).with_mac(),
        8 << 20,
    );
    disk.write(0, &vec![0x77; 4096]).unwrap();
    let object = disk.image().object_name(0);
    let mut tx = Transaction::new(object);
    tx.write(7, vec![0xFF]);
    cluster.execute(tx).unwrap();
    let mut buf = vec![0u8; 4096];
    assert!(matches!(
        disk.read(0, &mut buf),
        Err(CryptError::IntegrityViolation { lba: 0 })
    ));
}

#[test]
fn discarded_payload_mode_produces_identical_plans() {
    // The bench harness depends on this: the cost plan of an IO must
    // not depend on whether payload bytes are materialized.
    for mode in [PayloadMode::Stored, PayloadMode::Discarded] {
        let cluster = Cluster::builder().payload_mode(mode).build();
        let image = Image::create(&cluster, "plans", 8 << 20).unwrap();
        let mut disk = EncryptedImage::format_with_iv_source(
            image,
            &EncryptionConfig::random_iv_object_end(),
            b"pw",
            Box::new(SeededIvSource::new(1)),
        )
        .unwrap();
        let plan = disk.write(0, &vec![1; 16384]).unwrap();
        // 3 replicas × (1 full data write + 1 deferred meta write).
        let handles = cluster.resources();
        let disk_ops: usize = handles.osd_disk.iter().map(|&r| plan.op_count_on(r)).sum();
        assert_eq!(disk_ops, 6, "mode {mode:?}");
    }
}

#[test]
fn cross_lba_ciphertext_replay_decrypts_to_garbage() {
    // Move sector 0's (ciphertext, IV) to sector 1 via raw transactions;
    // the LBA binding in the tweak makes it decrypt to noise, not the
    // original plaintext (§2.2's replay-attack defence).
    let (cluster, mut disk) = make_disk(&EncryptionConfig::random_iv_object_end(), 8 << 20);
    let secret = vec![0xEE; 4096];
    disk.write(0, &secret).unwrap();
    let obs = disk.observe_sector(0, None).unwrap();
    let object = disk.image().object_name(0);
    let geometry = disk.geometry();
    let mut tx = Transaction::new(object);
    let (data_off, _) = geometry.data_extent(Some(MetaLayout::ObjectEnd), 1, 1);
    let (meta_off, _) = geometry
        .meta_extent(Some(MetaLayout::ObjectEnd), 1, 1)
        .unwrap();
    tx.write(data_off, obs.ciphertext.clone());
    tx.write(meta_off, obs.meta.clone().unwrap());
    cluster.execute(tx).unwrap();

    let mut replayed = vec![0u8; 4096];
    disk.read(4096, &mut replayed).unwrap();
    assert_ne!(
        replayed, secret,
        "replayed sector must not reveal the original"
    );
    // The original is untouched.
    let mut original = vec![0u8; 4096];
    disk.read(0, &mut original).unwrap();
    assert_eq!(original, secret);
}

#[test]
fn multiple_images_share_a_cluster() {
    let cluster = Cluster::builder().build();
    let mut disks: Vec<EncryptedImage> = (0..3)
        .map(|i| {
            let image = Image::create(&cluster, &format!("tenant-{i}"), 8 << 20).unwrap();
            EncryptedImage::format(image, &EncryptionConfig::random_iv_object_end(), b"pw").unwrap()
        })
        .collect();
    for (i, disk) in disks.iter_mut().enumerate() {
        disk.write(0, format!("tenant {i} data").as_bytes())
            .unwrap();
    }
    for (i, disk) in disks.iter().enumerate() {
        let mut buf = vec![0u8; 13];
        disk.read(0, &mut buf).unwrap();
        assert_eq!(buf, format!("tenant {i} data").as_bytes());
    }
}

#[test]
fn add_passphrase_and_unlock_with_both() {
    let (cluster, mut disk) = make_disk(&EncryptionConfig::random_iv_object_end(), 8 << 20);
    disk.write(0, b"multi-user").unwrap();
    disk.add_passphrase(b"integration", b"backup-key").unwrap();
    drop(disk);
    for pass in [&b"integration"[..], &b"backup-key"[..]] {
        let image = Image::open(&cluster, "it").unwrap();
        let disk = EncryptedImage::open(image, pass).unwrap();
        let mut buf = vec![0u8; 10];
        disk.read(0, &mut buf).unwrap();
        assert_eq!(&buf, b"multi-user");
    }
}
