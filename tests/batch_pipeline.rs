//! The batched-pipeline contract:
//!
//! 1. a write spanning N objects issues exactly N transactions,
//!    dispatched in **one** batch whose cost plan is `Plan::par` over
//!    the N transactions (no sequential per-extent execution), and
//! 2. the batched path leaves **byte-identical** object contents (data
//!    and OMAP metadata) to a legacy-style per-sector write loop, for
//!    the baseline and all three metadata layouts.

use vdisk::core::{EncryptedImage, EncryptionConfig, MetaLayout};
use vdisk::crypto::rng::{SeededIvSource, SeededRng};
use vdisk::rados::{Cluster, ReadOp};
use vdisk::rbd::Image;
use vdisk::sim::Plan;

const OBJECT: u64 = 4 << 20;

fn all_variants() -> Vec<EncryptionConfig> {
    vec![
        EncryptionConfig::luks2_baseline(),
        EncryptionConfig::random_iv(MetaLayout::Unaligned),
        EncryptionConfig::random_iv(MetaLayout::ObjectEnd),
        EncryptionConfig::random_iv(MetaLayout::Omap),
        EncryptionConfig::random_iv(MetaLayout::ObjectEnd).with_mac(),
        EncryptionConfig::random_iv(MetaLayout::Omap)
            .with_mac()
            .with_snapshot_binding(),
    ]
}

fn make_disk(config: &EncryptionConfig, seed: u64) -> (Cluster, EncryptedImage) {
    let cluster = Cluster::builder().build();
    let image = Image::create(&cluster, "batch", 32 << 20).unwrap();
    let disk = EncryptedImage::format_with_iv_source(
        image,
        config,
        b"batch-pipeline",
        Box::new(SeededIvSource::new(seed)),
    )
    .unwrap();
    (cluster, disk)
}

#[test]
fn spanning_write_dispatches_n_transactions_in_one_parallel_batch() {
    for config in all_variants() {
        let (cluster, mut disk) = make_disk(&config, 7);
        // Spans objects 0..=3: the tail of object 0, all of 1 and 2,
        // and the head of object 3.
        let offset = OBJECT - 4096;
        let data = vec![0x5C_u8; (2 * OBJECT + 8192) as usize];
        let before = cluster.exec_stats();
        let plan = disk.write(offset, &data).unwrap();
        let stats = cluster.exec_stats();

        assert_eq!(
            stats.transactions - before.transactions,
            4,
            "config {config:?}: one transaction per touched object"
        );
        assert_eq!(
            stats.batches - before.batches,
            1,
            "config {config:?}: all transactions ride one batch"
        );

        // Plan shape: client-side crypto, then a parallel dispatch
        // stage with one child per transaction.
        let Plan::Seq(stages) = &plan else {
            panic!("config {config:?}: expected crypto → dispatch, got {plan:?}");
        };
        let Some(Plan::Par(dispatch)) = stages.last() else {
            panic!(
                "config {config:?}: dispatch stage must be parallel, got {:?}",
                stages.last()
            );
        };
        assert_eq!(
            dispatch.len(),
            4,
            "config {config:?}: dispatch fans out over every transaction"
        );
    }
}

#[test]
fn single_object_write_is_still_one_batch() {
    let (cluster, mut disk) = make_disk(&EncryptionConfig::random_iv_object_end(), 9);
    let before = cluster.exec_stats();
    disk.write(8192, &vec![1u8; 4096]).unwrap();
    let stats = cluster.exec_stats();
    assert_eq!(stats.transactions - before.transactions, 1);
    assert_eq!(stats.batches - before.batches, 1);
}

/// An object's data bytes and OMAP entries.
type RawObject = (Vec<u8>, Vec<(Vec<u8>, Vec<u8>)>);

/// Reads one object's full raw state (data extent and OMAP entries)
/// for comparison across write paths.
fn raw_object_state(cluster: &Cluster, object: &str, footprint: u64) -> RawObject {
    let (results, _) = cluster
        .read(
            object,
            None,
            &[
                ReadOp::Read {
                    offset: 0,
                    len: footprint,
                },
                ReadOp::OmapGetRange {
                    start: Vec::new(),
                    end: vec![0xFF; 9],
                },
            ],
        )
        .unwrap();
    (results[0].as_data().to_vec(), results[1].as_omap().to_vec())
}

#[test]
fn batched_and_per_sector_paths_store_identical_bytes() {
    for config in all_variants() {
        // Same IV seed on both sides: the batched pipeline and a
        // legacy-style sector-by-sector loop must consume IVs in the
        // same order and therefore persist identical ciphertext,
        // metadata, and OMAP entries.
        let (batched_cluster, mut batched_disk) = make_disk(&config, 42);
        let (legacy_cluster, mut legacy_disk) = make_disk(&config, 42);

        let offset = OBJECT - 8192;
        let mut data = vec![0u8; (OBJECT + 16384) as usize];
        SeededRng::new(0xDA7A).fill_bytes(&mut data);

        batched_disk.write(offset, &data).unwrap();
        for (i, sector) in data.chunks(4096).enumerate() {
            legacy_disk.write(offset + i as u64 * 4096, sector).unwrap();
        }

        let footprint = batched_disk.geometry().object_footprint(config.layout);
        let mut objects = batched_cluster.list_objects();
        objects.retain(|o| o.starts_with("rbd_data."));
        assert_eq!(objects.len(), 3, "write spans three objects");
        assert_eq!(
            legacy_cluster.list_objects(),
            batched_cluster.list_objects()
        );

        for object in &objects {
            let batched = raw_object_state(&batched_cluster, object, footprint);
            let legacy = raw_object_state(&legacy_cluster, object, footprint);
            assert_eq!(
                batched, legacy,
                "config {config:?}: object {object} diverged between paths"
            );
        }

        // And the logical disk reads back the written data.
        let mut buf = vec![0u8; data.len()];
        batched_disk.read(offset, &mut buf).unwrap();
        assert_eq!(buf, data, "config {config:?}");
    }
}

#[test]
fn batched_reads_fan_out_like_batched_writes() {
    let (cluster, mut disk) = make_disk(&EncryptionConfig::random_iv_object_end(), 3);
    let offset = OBJECT - 4096;
    let data = vec![0xABu8; (OBJECT + 8192) as usize];
    disk.write(offset, &data).unwrap();

    let before = cluster.exec_stats();
    let mut buf = vec![0u8; data.len()];
    let plan = disk.read(offset, &mut buf).unwrap();
    assert_eq!(buf, data);
    // Three objects fetched as three read ops in one vectored call.
    assert_eq!(cluster.exec_stats().read_ops - before.read_ops, 3);
    let Plan::Seq(stages) = &plan else {
        panic!("expected dispatch → crypto, got {plan:?}");
    };
    assert!(
        matches!(stages.first(), Some(Plan::Par(children)) if children.len() == 3),
        "read dispatch must be parallel over the three objects"
    );
}
