//! `vdisk` — umbrella crate for the HotStorage '22 reproduction
//! *"Rethinking Block Storage Encryption with Virtual Disks"*.
//!
//! This facade re-exports the whole stack so examples and downstream
//! users need a single dependency:
//!
//! - [`crypto`]: AES, XTS, GCM, CBC-ESSIV, EME2, SHA-256, HMAC, KDFs
//! - [`sim`]: the discrete-event cost simulator
//! - [`kv`]: the mini-LSM store backing OMAP
//! - [`rados`]: the Ceph-like replicated object store
//! - [`rbd`]: the virtual-disk (RBD-like) layer
//! - [`core`]: the paper's contribution — per-sector-metadata encryption
//! - [`mod@bench`]: fio-like workloads and the paper's figure harnesses
//!
//! # Quickstart
//!
//! ```
//! use vdisk::core::{EncryptedImage, EncryptionConfig};
//! use vdisk::rados::Cluster;
//! use vdisk::rbd::Image;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cluster = Cluster::builder().build();
//! let image = Image::create(&cluster, "vm-disk", 64 << 20)?;
//! let config = EncryptionConfig::random_iv_object_end();
//! let mut disk = EncryptedImage::format(image, &config, b"passphrase")?;
//! disk.write(0, b"secret boot sector")?;
//! let mut buf = vec![0u8; 18];
//! disk.read(0, &mut buf)?;
//! assert_eq!(&buf, b"secret boot sector");
//! # Ok(())
//! # }
//! ```

pub use vdisk_bench as bench;
pub use vdisk_core as core;
pub use vdisk_crypto as crypto;
pub use vdisk_kv as kv;
pub use vdisk_rados as rados;
pub use vdisk_rbd as rbd;
pub use vdisk_sim as sim;
