//! The key lifecycle end to end: online rekey, passphrase rotation,
//! and crypto-shredding — the key-management story that per-sector
//! metadata makes tractable (Harnik et al.'s "extra information per
//! sector" argument applied to keys instead of IVs).
//!
//! Run with: `cargo run --release --example key_rotation`

use vdisk::core::{CryptError, EncryptedImage, EncryptionConfig, IoOp, MetaLayout};
use vdisk::rados::Cluster;
use vdisk::rbd::Image;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = Cluster::builder().build();
    let image = Image::create(&cluster, "vault", 8 << 20)?;
    let config = EncryptionConfig::random_iv(MetaLayout::ObjectEnd);
    let mut disk = EncryptedImage::format(image, &config, b"summer2024")?;

    // A disk full of secrets.
    let sectors = disk.total_sectors();
    for sector in 0..sectors {
        let mut data = vec![sector as u8; 4096];
        data[..7].copy_from_slice(b"secret:");
        disk.write(sector * 4096, &data)?;
    }
    println!(
        "wrote {sectors} sectors under epoch {}",
        disk.current_key_epoch()
    );

    // === 1. Passphrase rotation: re-wrap, no data IO =================
    disk.rotate_passphrase(b"summer2024", b"winter2025")?;
    println!("\nrotated passphrase (one header write, zero data IO)");
    assert!(matches!(
        disk.rotate_passphrase(b"summer2024", b"x"),
        Err(CryptError::WrongPassphrase)
    ));

    // === 2. Online rekey: new master key, background migration =======
    let before = disk.observe_sector(0, None)?.ciphertext;
    let mut driver = disk
        .rekey_begin(b"winter2025", b"spring2026")?
        .with_chunk_sectors(64)
        .with_queue_depth(8);
    println!(
        "\nrekey begun: epoch {} -> {}; the old passphrase is already revoked",
        driver.epochs().0,
        driver.epochs().1
    );

    // The image stays fully online: between driver steps we keep
    // writing and reading through the submission queue, and the
    // per-sector epoch tags route every read to the right key.
    let mut step = 0;
    loop {
        let progress = driver.step(&mut disk)?;
        let mut queue = disk.io_queue();
        queue.submit(IoOp::Write {
            offset: 0,
            data: vec![0xD0; 4096],
        })?;
        let read = queue.submit(IoOp::Read {
            offset: (sectors - 1) * 4096,
            len: 4096,
        })?;
        let done = queue.fence()?;
        assert_eq!(done.last().unwrap().completion, read);
        step += 1;
        println!(
            "  step {step}: {}/{} sectors migrated, IO still flowing",
            progress.migrated_sectors, progress.total_sectors
        );
        if progress.is_complete() {
            break;
        }
    }
    driver.finish(&mut disk)?;

    let after = disk.observe_sector(0, None)?.ciphertext;
    assert_ne!(before, after, "every sector's ciphertext changed");
    println!(
        "rekey complete: ciphertext rewritten under epoch {}",
        disk.current_key_epoch()
    );

    // Only the new passphrase opens the image now.
    drop(disk);
    let image = Image::open(&cluster, "vault")?;
    assert!(EncryptedImage::open(image.clone(), b"winter2025").is_err());
    let disk = EncryptedImage::open(image, b"spring2026")?;
    let mut buf = vec![0u8; 4096];
    disk.read(4096, &mut buf)?;
    assert_eq!(&buf[..7], b"secret:");
    println!("reopened under the new passphrase; data intact");

    // === 3. Crypto-shred: secure deletion by key destruction =========
    disk.secure_erase()?;
    let image = Image::open(&cluster, "vault")?;
    assert!(
        EncryptedImage::open(image.clone(), b"spring2026").is_err(),
        "no passphrase opens a shredded image"
    );
    // The ciphertext is still in the cluster — and permanently
    // unreadable. That *is* the deletion: no multi-pass wipe of a
    // 64 GiB image, just one destroyed header.
    assert!(cluster.object_exists(&image.object_name(0)));
    println!("\nsecure_erase: keyslots shredded, header destroyed;");
    println!("the remaining ciphertext is noise — deletion by key destruction.");
    Ok(())
}
