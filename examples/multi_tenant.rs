//! Multi-tenant QoS end to end: a noisy batch neighbor and a
//! latency-sensitive production tenant share one cluster, first
//! unmanaged, then through the client runtime's weighted fair
//! scheduler with admission control.
//!
//! Run with: `cargo run --release --example multi_tenant`

use vdisk::core::{EncryptedImage, EncryptionConfig, IoOp, Runtime, RuntimeError, TenantSpec};
use vdisk::rados::Cluster;
use vdisk::rbd::Image;

const IO: u64 = 16 << 10;
const IMAGE: u64 = 8 << 20;

fn tenant_disk(cluster: &Cluster, name: &str) -> EncryptedImage {
    let image = Image::create(cluster, name, IMAGE).expect("create image");
    let config = EncryptionConfig::random_iv_object_end();
    EncryptedImage::format(image, &config, b"shared-secret").expect("format image")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = Cluster::builder().concurrent_apply(true).build();
    let mut prod = tenant_disk(&cluster, "prod-db");
    let mut batch = tenant_disk(&cluster, "batch-scrub");

    // One runtime arbitrates every tenant's IO into the shared shard
    // queues. The budget is the total in-flight ops across tenants;
    // each tenant gets a weight (its share under contention), a
    // queue-depth cap, and an admission bound on its backlog.
    let runtime = Runtime::new(8);
    let prod_tenant = runtime.register(
        TenantSpec::new("prod-db")
            .weight(3)
            .qd_cap(8)
            .backlog_cap(32),
    );
    let batch_tenant = runtime.register(
        TenantSpec::new("batch-scrub")
            .weight(1)
            .qd_cap(8)
            .backlog_cap(32),
    );

    // === 1. Contended phase: both tenants saturate their queues ======
    // The batch scrubber would happily monopolize the cluster; the
    // weighted fair scheduler holds it to ~1 dispatch for every 3 of
    // the production tenant's.
    {
        let mut prod_q = prod_tenant.attach(prod.io_queue());
        let mut batch_q = batch_tenant.attach(batch.io_queue());
        let offset = |i: u64| (i * IO) % IMAGE;
        let (mut issued_p, mut issued_b) = (0u64, 0u64);
        let mut completed = 0usize;
        while completed < 240 {
            // Keep both backlogs topped up so the scheduler always
            // has a choice — that's what makes the weights visible.
            while prod_q.backlog() < 8 {
                prod_q.submit(IoOp::Write {
                    offset: offset(issued_p),
                    data: vec![0xDB; IO as usize],
                })?;
                issued_p += 1;
            }
            while batch_q.backlog() < 8 {
                batch_q.submit(IoOp::Read {
                    offset: offset(issued_b),
                    len: IO,
                })?;
                issued_b += 1;
            }
            completed += prod_q.poll()?.len() + batch_q.poll()?.len();
        }
        let p = prod_tenant.stats();
        let b = batch_tenant.stats();
        println!(
            "under contention: prod-db completed {} ops, batch-scrub {} ({:.1}:1 at 3:1 weights)",
            p.completed_ops,
            b.completed_ops,
            p.completed_ops as f64 / b.completed_ops as f64
        );

        // Drain what's still queued before the tenants part ways.
        prod_q.fence()?;
        batch_q.fence()?;
    }

    // === 2. Per-tenant QoS stats ====================================
    // Every tenant's admission/completion counters are visible from
    // the runtime — the basis for per-tenant billing and alerting.
    for stats in runtime.snapshot().tenants {
        println!(
            "  [{}] weight {} admitted {} rejected {} completed {} ({} bytes)",
            stats.name,
            stats.weight,
            stats.admitted_ops,
            stats.rejected_ops,
            stats.completed_ops,
            stats.completed_bytes,
        );
    }

    // === 3. Admission control: the backlog cap pushes back ==========
    // A tenant with a tiny backlog cap gets a clean, synchronous
    // admission error instead of unbounded queueing.
    let clamped = runtime.register(TenantSpec::new("clamped").qd_cap(1).backlog_cap(2));
    let mut q = clamped.attach(batch.io_queue());
    let mut admitted = 0;
    let denied = loop {
        match q.submit(IoOp::Read { offset: 0, len: IO }) {
            Ok(_) => admitted += 1,
            Err(RuntimeError::AdmissionDenied { backlog, cap, .. }) => {
                break format!("backlog {backlog} at cap {cap}");
            }
            Err(e) => return Err(e.into()),
        }
    };
    q.fence()?;
    println!("\nadmission control: {admitted} ops admitted, then denied ({denied});");
    println!("all {admitted} admitted ops still completed after the fence.");
    Ok(())
}
