//! Quickstart: create an encrypted virtual disk with random persisted
//! IVs (the paper's object-end layout), write, read back, snapshot,
//! and inspect what actually hit the object store.
//!
//! Run with: `cargo run --release --example quickstart`

use vdisk::core::{EncryptedImage, EncryptionConfig};
use vdisk::rados::Cluster;
use vdisk::rbd::Image;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A simulated 3-node Ceph-like cluster, 3-way replication.
    let cluster = Cluster::builder().build();

    // A 64 MiB virtual disk striped over 4 MB objects.
    let image = Image::create(&cluster, "vm-disk", 64 << 20)?;

    // The paper's proposal: AES-256-XTS with a fresh random IV per
    // sector write, IVs batched at the object end (Fig. 2b).
    let config = EncryptionConfig::random_iv_object_end();
    let mut disk = EncryptedImage::format(image, &config, b"correct horse battery staple")?;

    // Ordinary block IO. Writes encrypt client-side; the data and its
    // IVs ride one atomic RADOS transaction.
    disk.write(0, b"MBR: definitely not secret")?;
    disk.write(8 << 20, &vec![0xDB; 16384])?; // a database extent

    let mut boot = vec![0u8; 26];
    disk.read(0, &mut boot)?;
    assert_eq!(&boot, b"MBR: definitely not secret");
    println!("read-back OK: {:?}", String::from_utf8_lossy(&boot));

    // Snapshots: the object store keeps COW clones; old data stays
    // readable at its snapshot.
    let snap = disk.snap_create("before-upgrade")?;
    disk.write(0, b"MBR: overwritten by upgrade!")?;

    let mut old = vec![0u8; 26];
    disk.read_at_snap(snap, 0, &mut old)?;
    assert_eq!(&old, b"MBR: definitely not secret");
    println!("snapshot read OK: {:?}", String::from_utf8_lossy(&old));

    // What does the store actually hold? Ciphertext + a 16-byte IV per
    // sector. Nothing readable.
    let observed = disk.observe_sector(0, None)?;
    println!(
        "sector 0 on disk: {} ciphertext bytes, IV = {}",
        observed.ciphertext.len(),
        vdisk::crypto::mem::to_hex(observed.meta.as_deref().unwrap_or(&[]))
    );
    assert!(
        !observed.ciphertext.windows(3).any(|w| w == b"MBR"),
        "plaintext must never reach the store"
    );

    // Reopen with the passphrase (header + keyslot machinery).
    let image = Image::open(&cluster, "vm-disk")?;
    let reopened = EncryptedImage::open(image, b"correct horse battery staple")?;
    let mut check = vec![0u8; 28];
    reopened.read(0, &mut check)?;
    assert_eq!(&check, b"MBR: overwritten by upgrade!");
    println!("reopen with passphrase OK");

    // Wrong passphrase fails closed.
    let image = Image::open(&cluster, "vm-disk")?;
    assert!(EncryptedImage::open(image, b"wrong").is_err());
    println!("wrong passphrase rejected");

    Ok(())
}
