//! The paper's core security argument, §1–§2, demonstrated end-to-end.
//!
//! With deterministic LBA-derived IVs (LUKS2 baseline), snapshots keep
//! multiple versions of a sector encrypted **under the same IV**, so an
//! adversary inspecting the backing store can:
//!
//! 1. detect whether a sector changed between snapshots (equality leak),
//! 2. locate the change at 16-byte sub-block granularity (XTS is
//!    narrow-block),
//! 3. splice sub-blocks of two versions into a ciphertext that decrypts
//!    cleanly to data that was *never written* (mix-and-match).
//!
//! With the paper's random persisted IVs, all three vanish.
//!
//! Run with: `cargo run --release --example snapshot_security`

use vdisk::core::audit::{diff_ratio, differing_subblocks};
use vdisk::core::{EncryptedImage, EncryptionConfig, MetaLayout};
use vdisk::rados::Cluster;
use vdisk::rbd::Image;

fn observe_two_versions(
    config: &EncryptionConfig,
    name: &str,
) -> Result<(Vec<u8>, Vec<u8>), Box<dyn std::error::Error>> {
    let cluster = Cluster::builder().build();
    let image = Image::create(&cluster, name, 16 << 20)?;
    let mut disk = EncryptedImage::format(image, config, b"pw")?;

    // Version 1: a sector of records; snapshot it.
    let mut v1 = vec![0x41u8; 4096];
    v1[1024..1040].copy_from_slice(b"balance: $100.00");
    disk.write(0, &v1)?;
    let snap = disk.snap_create("audit-point")?;

    // Version 2: one record changes (16 bytes at offset 1024).
    let mut v2 = v1.clone();
    v2[1024..1040].copy_from_slice(b"balance: $999.99");
    disk.write(0, &v2)?;

    // The adversary reads raw ciphertext of BOTH versions — the whole
    // point of snapshots is that the old version is still there.
    let old = disk.observe_sector(0, Some(snap))?;
    let new = disk.observe_sector(0, None)?;
    Ok((old.ciphertext, new.ciphertext))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== Baseline: LUKS2, deterministic LBA IV ===");
    let (old, new) = observe_two_versions(&EncryptionConfig::luks2_baseline(), "luks2")?;
    let diff = differing_subblocks(&old, &new, 16);
    println!(
        "adversary sees {} of 256 sub-blocks changed: {:?}",
        diff.len(),
        diff
    );
    assert_eq!(
        diff,
        vec![64],
        "exactly the changed 16-byte record leaks its position"
    );
    println!(
        "-> the adversary knows WHERE the change is (sub-block 64 = byte offset {}), \
         and that nothing else changed",
        64 * 16
    );

    println!("\n=== Paper's design: random persisted IV (object end) ===");
    let (old, new) = observe_two_versions(
        &EncryptionConfig::random_iv(MetaLayout::ObjectEnd),
        "random-iv",
    )?;
    let ratio = diff_ratio(&old, &new, 16);
    println!(
        "adversary sees {:.1}% of sub-blocks changed — indistinguishable from a full rewrite",
        ratio * 100.0
    );
    assert!(
        ratio > 0.99,
        "with fresh IVs, every sub-block differs between versions"
    );

    // Also true for an overwrite with IDENTICAL data: the baseline
    // leaks "nothing changed"; random IVs do not.
    println!("\n=== Overwrite with identical plaintext ===");
    for (label, config) in [
        ("LUKS2", EncryptionConfig::luks2_baseline()),
        (
            "random IV",
            EncryptionConfig::random_iv(MetaLayout::ObjectEnd),
        ),
    ] {
        let cluster = Cluster::builder().build();
        let image = Image::create(&cluster, "ow", 16 << 20)?;
        let mut disk = EncryptedImage::format(image, &config, b"pw")?;
        disk.write(0, &vec![7u8; 4096])?;
        let snap = disk.snap_create("s")?;
        disk.write(0, &vec![7u8; 4096])?; // same bytes again
        let a = disk.observe_sector(0, Some(snap))?;
        let b = disk.observe_sector(0, None)?;
        println!(
            "{label:>10}: ciphertexts equal across overwrite? {}",
            a.ciphertext_equals(&b)
        );
        if label == "LUKS2" {
            assert!(a.ciphertext_equals(&b), "the determinism leak");
        } else {
            assert!(!a.ciphertext_equals(&b), "hidden by the random IV");
        }
    }

    println!("\nAll security properties demonstrated.");
    Ok(())
}
