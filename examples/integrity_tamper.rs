//! The paper's §2.2 extensions in action: per-sector MACs, AES-GCM
//! authenticated encryption, and snapshot binding (footnote 3) — all
//! enabled by the same per-sector metadata that carries the random IV.
//!
//! Run with: `cargo run --release --example integrity_tamper`

use vdisk::core::{Cipher, CryptError, EncryptedImage, EncryptionConfig, MetaLayout};
use vdisk::rados::Cluster;
use vdisk::rbd::Image;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Plain XTS (no MAC): tampering goes UNDETECTED -----------
    println!("=== XTS without integrity: silent corruption ===");
    let cluster = Cluster::builder().build();
    let image = Image::create(&cluster, "no-mac", 16 << 20)?;
    let mut disk = EncryptedImage::format(
        image,
        &EncryptionConfig::random_iv(MetaLayout::ObjectEnd),
        b"pw",
    )?;
    disk.write(0, &vec![0x11u8; 4096])?;
    // A malicious replica flips one ciphertext byte.
    let object = disk.image().object_name(0);
    cluster.damage_replica(&object, 1, 100)?;
    cluster.repair(&object)?; // ...even repair can't tell who's right
    let mut buf = vec![0u8; 4096];
    disk.read(0, &mut buf)?; // reads fine — garbage in one sub-block
    println!("read succeeded despite tampering (XTS cannot detect it)");

    // --- 2. XTS + per-sector MAC: tampering is CAUGHT ----------------
    println!("\n=== XTS + 16-byte HMAC trailer: tamper detection ===");
    let cluster = Cluster::builder().build();
    let image = Image::create(&cluster, "mac", 16 << 20)?;
    let mut disk = EncryptedImage::format(
        image,
        &EncryptionConfig::random_iv(MetaLayout::ObjectEnd).with_mac(),
        b"pw",
    )?;
    disk.write(0, &vec![0x22u8; 4096])?;
    let mut buf = vec![0u8; 4096];
    disk.read(0, &mut buf)?;
    println!("clean read OK");

    // Corrupt the PRIMARY copy this time (offset 100 of the data).
    let object = disk.image().object_name(0);
    // damage_replica only touches replicas; to corrupt what the client
    // reads, damage replica 1 and repair FROM it is impossible — so
    // instead rewrite one ciphertext byte via a raw transaction.
    // Flip the stored byte (a constant could collide with the random
    // ciphertext 1 time in 256 and leave it unchanged).
    let mut cipher_byte = [0u8; 1];
    disk.image().read_at(100, &mut cipher_byte)?;
    let mut tx = vdisk::rados::Transaction::new(object);
    tx.write(100, vec![cipher_byte[0] ^ 0xFF]);
    cluster.execute(tx)?;
    match disk.read(0, &mut buf) {
        Err(CryptError::IntegrityViolation { lba }) => {
            println!("tampering detected at sector {lba} — read fails closed")
        }
        other => panic!("expected integrity violation, got {other:?}"),
    }

    // --- 3. AES-GCM: authenticated encryption, same metadata slot ----
    println!("\n=== AES-GCM with random nonces ===");
    let cluster = Cluster::builder().build();
    let image = Image::create(&cluster, "gcm", 16 << 20)?;
    let mut disk = EncryptedImage::format(
        image,
        &EncryptionConfig::random_iv(MetaLayout::ObjectEnd).with_cipher(Cipher::Aes256Gcm),
        b"pw",
    )?;
    disk.write(4096, b"authenticated sector payload")?;
    let mut buf = vec![0u8; 28];
    disk.read(4096, &mut buf)?;
    assert_eq!(&buf, b"authenticated sector payload");
    println!("GCM round-trip OK (nonce + tag in the 32-byte metadata entry)");

    let object = disk.image().object_name(0);
    let mut cipher_byte = [0u8; 1];
    disk.image().read_at(4096 + 10, &mut cipher_byte)?;
    let mut tx = vdisk::rados::Transaction::new(object);
    tx.write(4096 + 10, vec![cipher_byte[0] ^ 0xFF]);
    cluster.execute(tx)?;
    assert!(matches!(
        disk.read(4096, &mut buf),
        Err(CryptError::IntegrityViolation { lba: 1 })
    ));
    println!("GCM detects ciphertext manipulation");

    // --- 4. Snapshot binding: cross-epoch replay detection -----------
    println!("\n=== Snapshot binding (paper footnote 3) ===");
    let cluster = Cluster::builder().build();
    let image = Image::create(&cluster, "bind", 16 << 20)?;
    let mut disk = EncryptedImage::format(
        image,
        &EncryptionConfig::random_iv(MetaLayout::ObjectEnd)
            .with_mac()
            .with_snapshot_binding(),
        b"pw",
    )?;
    disk.write(0, b"epoch-0 data")?;
    let snap = disk.snap_create("epoch-1")?;
    disk.write(0, b"epoch-1 data")?;
    let mut buf = vec![0u8; 12];
    disk.read_at_snap(snap, 0, &mut buf)?;
    assert_eq!(&buf, b"epoch-0 data");
    println!("honest snapshot read OK");
    // A replay of head data into a snapshot view would carry a write
    // sequence newer than the snapshot — the codec rejects it (see the
    // sector codec's unit tests for the direct demonstration).
    println!("replayed future-epoch entries are rejected as ReplayDetected");

    println!("\nAll integrity mechanisms demonstrated.");
    Ok(())
}
