//! A miniature fio session against the simulated testbed: runs the
//! paper's four variants at a few IO sizes and prints a bandwidth /
//! latency report — the quickest way to see the Fig. 3/4 trade-offs
//! without running the full benchmark sweep.
//!
//! Run with: `cargo run --release --example fio_report`

use vdisk::bench::fio::{self, IoPattern, JobSpec};
use vdisk::bench::testbed;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let io_sizes = [4 << 10, 64 << 10, 1 << 20];
    println!(
        "randwrite, QD {}, {} MiB image (simulated 3-node NVMe cluster)\n",
        testbed::PAPER_QUEUE_DEPTH,
        32
    );
    println!(
        "{:>12} {:>8} {:>12} {:>12} {:>12}",
        "variant", "IO", "MB/s", "mean lat", "p99 lat"
    );
    for variant in testbed::paper_variants() {
        let mut disk = testbed::bench_disk(&variant.config, 32 << 20, 7);
        fio::precondition(&mut disk)?;
        for io_size in io_sizes {
            let stats = fio::run_job(
                &mut disk,
                &JobSpec {
                    pattern: IoPattern::RandWrite,
                    io_size,
                    queue_depth: testbed::PAPER_QUEUE_DEPTH,
                    ops: 128.min(fio::default_ops_for(io_size)),
                    seed: 1,
                },
            )?;
            println!(
                "{:>12} {:>6}KB {:>12.0} {:>12} {:>12}",
                variant.label,
                io_size / 1024,
                stats.bandwidth_mb_s(),
                format!("{}", stats.latency.mean),
                format!("{}", stats.latency.p99),
            );
        }
    }
    println!(
        "\nNote: bandwidths are simulated time from the calibrated cost model; \
         encryption, layouts and the object store do their real work."
    );
    Ok(())
}
