//! The durable file backend, end to end: format an encrypted virtual
//! disk on a `FileStore`-backed cluster, write through the normal IO
//! path, drop every handle — then reopen the same directory in a
//! *second* cluster, unlock the image with the passphrase, and read
//! the data back. The only thing that crosses the two halves is the
//! directory on disk.
//!
//! Run with: `cargo run --release --example file_backend`

use std::path::PathBuf;
use vdisk::core::{EncryptedImage, EncryptionConfig};
use vdisk::rados::{BackendKind, Cluster};
use vdisk::rbd::Image;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = PathBuf::from("target/file-backend-example");
    // Start from nothing, so the reopen below provably reads files.
    let _ = std::fs::remove_dir_all(&dir);

    let passphrase = b"correct horse battery staple";
    let snap;

    // ----- First life: format and write. --------------------------
    {
        let cluster = Cluster::builder()
            .backend(BackendKind::File { dir: dir.clone() })
            .build();
        let image = Image::create(&cluster, "vm-disk", 64 << 20)?;
        let config = EncryptionConfig::random_iv_object_end();
        let mut disk = EncryptedImage::format(image, &config, passphrase)?;

        // Every transaction commit fsyncs the object's replicas; the
        // flush below additionally syncs directories and the meta
        // file. Data and its per-sector IVs ride the same commit.
        disk.write(0, b"MBR: definitely not secret")?;
        disk.write(8 << 20, &vec![0xDB; 16384])?;

        snap = disk.snap_create("before-upgrade")?;
        disk.write(0, b"MBR: overwritten by upgrade!")?;

        cluster.flush();
        println!("formatted + wrote; store lives in {}", dir.display());
        // All handles drop here. No state survives in this process.
    }

    // ----- Second life: reopen the directory. ---------------------
    let cluster = Cluster::builder()
        .backend(BackendKind::File { dir: dir.clone() })
        .build();
    let image = Image::open(&cluster, "vm-disk")?;
    let disk = EncryptedImage::open(image, passphrase)?;

    let mut head = vec![0u8; 28];
    disk.read(0, &mut head)?;
    assert_eq!(&head, b"MBR: overwritten by upgrade!");
    println!("reopened read OK: {:?}", String::from_utf8_lossy(&head));

    // The pre-snapshot clone crossed the restart too — copy-on-write
    // history is part of the durable state.
    let mut old = vec![0u8; 26];
    disk.read_at_snap(snap, 0, &mut old)?;
    assert_eq!(&old, b"MBR: definitely not secret");
    println!("snapshot read OK: {:?}", String::from_utf8_lossy(&old));

    // What is actually on the host filesystem: one file per replica
    // of each object, under one directory per shard and OSD.
    let mut files = 0usize;
    let mut bytes = 0u64;
    let mut stack = vec![dir.clone()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d)? {
            let path = entry?.path();
            if path.is_dir() {
                stack.push(path);
            } else {
                files += 1;
                bytes += path.metadata()?.len();
            }
        }
    }
    println!("on disk: {files} files, {bytes} bytes — all ciphertext and metadata");

    let report = cluster.scrub();
    assert!(report.is_clean());
    println!(
        "scrub after reopen: {} objects clean",
        report.objects_checked
    );
    Ok(())
}
