//! A fio-like workload generator (the paper drives its evaluation with
//! fio randread/randwrite at QD 32, §3.3).
//!
//! Jobs drive the **real submission queue**
//! ([`vdisk_core::EncryptedIoQueue`]): up to `queue_depth` operations
//! are genuinely in flight against the cluster's shard workers while
//! further IOs are generated — actual cross-submission concurrency,
//! not a notional fan-out. The per-op cost plans reaped from the
//! completions are then replayed in the calibrated closed-loop
//! simulator at the same depth to produce bandwidth numbers.

use vdisk_core::{
    CryptError, EncryptedImage, IoOp, Result, Runtime, RuntimeError, TenantSpec, TenantStats,
};
use vdisk_crypto::rng::SeededRng;
use vdisk_sim::{ClosedLoopStats, Plan};

/// Access pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoPattern {
    /// Uniform random reads (fio `randread`).
    RandRead,
    /// Uniform random writes (fio `randwrite`).
    RandWrite,
    /// Sequential reads.
    SeqRead,
    /// Sequential writes.
    SeqWrite,
    /// Mixed random reads and writes (fio `randrw` with
    /// `rwmixread=read_pct`): each IO is independently a read with
    /// probability `read_pct`/100, at a uniformly random offset. The
    /// realistic-churn workload for the IV/metadata cache — reads fill
    /// it while interleaved overwrites keep invalidating.
    RandRw {
        /// Percentage of IOs that are reads (0–100).
        read_pct: u8,
    },
}

impl IoPattern {
    /// The paper-adjacent mixed workload: 70% reads / 30% writes.
    pub const RANDRW_70_30: IoPattern = IoPattern::RandRw { read_pct: 70 };

    /// True for the pure-write patterns (mixed patterns are neither).
    #[must_use]
    pub fn is_write(self) -> bool {
        matches!(self, IoPattern::RandWrite | IoPattern::SeqWrite)
    }
}

/// One fio-style job.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Access pattern.
    pub pattern: IoPattern,
    /// Block size of each IO in bytes.
    pub io_size: u64,
    /// IOs kept in flight.
    pub queue_depth: usize,
    /// Total IOs to issue.
    pub ops: u64,
    /// RNG seed (offsets and payload).
    pub seed: u64,
}

/// The 70/30 randrw churn job at QD 8 — shared by the
/// `batch_pipeline` bench group and the CI bench gate so the gated
/// baseline always measures exactly the published bench workload.
pub const CHURN_70_30_QD8: JobSpec = JobSpec {
    pattern: IoPattern::RANDRW_70_30,
    io_size: 16 << 10,
    queue_depth: 8,
    ops: 96,
    seed: 37,
};

/// Sizes each sweep point so small IOs see steady state while large
/// IOs stay within the software-crypto wall-clock budget.
#[must_use]
pub fn default_ops_for(io_size: u64) -> u64 {
    ((24 << 20) / io_size).clamp(40, 384)
}

/// Sequentially writes the whole image in object-size IOs so that every
/// sector exists — the paper measures "a full Ceph image" (§3.3), which
/// also makes every later write an overwrite (the interesting case for
/// read-modify-write costs).
///
/// # Errors
///
/// Propagates any IO-path error.
pub fn precondition(disk: &mut EncryptedImage) -> Result<()> {
    let chunk = disk.image().object_size();
    let size = disk.image().size();
    let mut rng = SeededRng::new(0xFEED);
    let mut buf = vec![0u8; chunk as usize];
    rng.fill_bytes(&mut buf[..4096]);
    let mut offset = 0;
    while offset < size {
        let len = chunk.min(size - offset) as usize;
        disk.write(offset, &buf[..len])?;
        offset += len as u64;
    }
    Ok(())
}

/// Runs one job through the real submission queue: keeps up to
/// `queue_depth` operations in flight on the cluster's shard workers
/// (every IO runs the full encrypt/layout path), reaps per-op cost
/// plans from the completions, and finally replays the plans in a
/// closed loop at the same depth on the calibrated simulated hardware.
///
/// # Errors
///
/// Propagates any IO-path error.
///
/// # Panics
///
/// Panics if `io_size` is zero or larger than the image.
pub fn run_job(disk: &mut EncryptedImage, spec: &JobSpec) -> Result<ClosedLoopStats> {
    assert!(spec.io_size > 0, "io_size must be positive");
    let image_size = disk.image().size();
    assert!(spec.io_size <= image_size, "io_size exceeds image");
    let slots = image_size / spec.io_size;
    let queue_depth = spec.queue_depth.max(1);
    let mut rng = SeededRng::new(spec.seed);

    // fio-style payload pattern: a random head stamped on every IO's
    // owned buffer (the cost model is content-independent; encryption
    // still runs on every byte).
    let mut pattern = vec![0u8; spec.io_size as usize];
    let head = pattern.len().min(8192);
    rng.fill_bytes(&mut pattern[..head]);

    // Completions may be reaped out of submission order; key plans by
    // completion id so the closed-loop replay is deterministic.
    let mut done: Vec<(u64, Plan)> = Vec::with_capacity(spec.ops as usize);
    let mut queue = disk.io_queue();
    for i in 0..spec.ops {
        let offset = match spec.pattern {
            IoPattern::RandRead | IoPattern::RandWrite | IoPattern::RandRw { .. } => {
                rng.gen_below(slots) * spec.io_size
            }
            IoPattern::SeqRead | IoPattern::SeqWrite => (i % slots) * spec.io_size,
        };
        let is_write = match spec.pattern {
            IoPattern::RandRw { read_pct } => rng.gen_below(100) >= u64::from(read_pct.min(100)),
            pattern => pattern.is_write(),
        };
        let op = if is_write {
            IoOp::Write {
                offset,
                data: pattern.clone(),
            }
        } else {
            IoOp::Read {
                offset,
                len: spec.io_size,
            }
        };
        queue.submit(op)?;
        while queue.in_flight() >= queue_depth {
            for result in queue.wait()? {
                done.push((result.completion.id(), result.plan));
            }
        }
    }
    for result in queue.fence()? {
        done.push((result.completion.id(), result.plan));
    }
    drop(queue);

    done.sort_unstable_by_key(|(id, _)| *id);
    let plans: Vec<(Plan, u64)> = done
        .into_iter()
        .map(|(_, plan)| (plan, spec.io_size))
        .collect();
    Ok(disk.image().cluster().run_closed_loop(queue_depth, plans))
}

/// One tenant of a multi-tenant run: a fio job plus its QoS terms.
#[derive(Debug, Clone)]
pub struct TenantJob {
    /// The workload this tenant drives against its own image.
    pub spec: JobSpec,
    /// Fair-share weight under contention.
    pub weight: u32,
    /// Per-tenant in-flight cap.
    pub qd_cap: usize,
}

/// What one multi-tenant run produced.
#[derive(Debug)]
pub struct MultiTenantOutcome {
    /// Per-tenant completed ops at the stop point (`stop_after`
    /// reached, or full drain) — the fairness measurement.
    pub completed_at_stop: Vec<u64>,
    /// Final per-tenant runtime stats (after the full drain).
    pub tenants: Vec<TenantStats>,
    /// Closed-loop replay of every completed op's cost plan at the
    /// runtime's inflight budget — the combined simulated metric.
    pub combined: ClosedLoopStats,
}

fn flatten(e: RuntimeError<CryptError>) -> CryptError {
    match e {
        RuntimeError::Queue(e) => e,
        other => CryptError::RuntimeStalled(other.to_string()),
    }
}

/// Drives `jobs[i]` against `disks[i]` — every image on the same
/// cluster — through one shared [`Runtime`]: per-tenant admission at
/// submit, weighted fair scheduling into the shared shard queues. The
/// driver round-robins non-blocking pumps, so on an inline-mode
/// cluster the whole dispatch trace is deterministic.
///
/// With `stop_after = Some(n)`, submission stops once `n` ops have
/// completed across all tenants and `completed_at_stop` snapshots the
/// per-tenant counts at that instant (the fairness measurement);
/// whatever is still queued or in flight then drains. With `None`,
/// every tenant runs its full `spec.ops`.
///
/// # Errors
///
/// Propagates any IO-path error; scheduling dead-ends surface as
/// [`CryptError::RuntimeStalled`].
///
/// # Panics
///
/// Panics if `disks` and `jobs` differ in length, are empty, or a
/// job's `io_size` is zero or exceeds its image.
pub fn run_multi_tenant(
    disks: &mut [EncryptedImage],
    jobs: &[TenantJob],
    inflight_budget: usize,
    stop_after: Option<u64>,
) -> Result<MultiTenantOutcome> {
    assert_eq!(disks.len(), jobs.len(), "one job per disk");
    assert!(!jobs.is_empty(), "at least one tenant");

    let runtime = Runtime::new(inflight_budget);
    let mut handles = Vec::with_capacity(jobs.len());
    let mut queues = Vec::with_capacity(jobs.len());
    let mut sizes = Vec::with_capacity(jobs.len());
    for ((i, job), disk) in jobs.iter().enumerate().zip(disks.iter_mut()) {
        assert!(job.spec.io_size > 0, "io_size must be positive");
        assert!(
            job.spec.io_size <= disk.image().size(),
            "io_size exceeds image"
        );
        sizes.push(disk.image().size());
        let handle = runtime.register(
            TenantSpec::new(format!("tenant-{i}"))
                .weight(job.weight)
                .qd_cap(job.qd_cap)
                .backlog_cap(job.qd_cap.max(2) * 4),
        );
        queues.push(handle.attach(disk.io_queue()));
        handles.push(handle);
    }

    struct Gen {
        rng: SeededRng,
        pattern: Vec<u8>,
        slots: u64,
        issued: u64,
        plans: Vec<(u64, Plan)>,
    }
    let mut gens: Vec<Gen> = jobs
        .iter()
        .zip(&sizes)
        .map(|(job, &size)| {
            let mut rng = SeededRng::new(job.spec.seed);
            let mut pattern = vec![0u8; job.spec.io_size as usize];
            let head = pattern.len().min(8192);
            rng.fill_bytes(&mut pattern[..head]);
            Gen {
                rng,
                pattern,
                slots: size / job.spec.io_size,
                issued: 0,
                plans: Vec::with_capacity(job.spec.ops as usize),
            }
        })
        .collect();

    let mut total_completed = 0u64;
    let mut completed_at_stop: Option<Vec<u64>> = None;
    loop {
        let stopped = stop_after.is_some_and(|target| total_completed >= target);
        let mut all_drained = true;
        for (i, queue) in queues.iter_mut().enumerate() {
            let (job, gen) = (&jobs[i], &mut gens[i]);
            while !stopped && gen.issued < job.spec.ops && queue.backlog() < job.qd_cap.max(1) {
                let offset = match job.spec.pattern {
                    IoPattern::RandRead | IoPattern::RandWrite | IoPattern::RandRw { .. } => {
                        gen.rng.gen_below(gen.slots) * job.spec.io_size
                    }
                    IoPattern::SeqRead | IoPattern::SeqWrite => {
                        (gen.issued % gen.slots) * job.spec.io_size
                    }
                };
                let is_write = match job.spec.pattern {
                    IoPattern::RandRw { read_pct } => {
                        gen.rng.gen_below(100) >= u64::from(read_pct.min(100))
                    }
                    pattern => pattern.is_write(),
                };
                let op = if is_write {
                    IoOp::Write {
                        offset,
                        data: gen.pattern.clone(),
                    }
                } else {
                    IoOp::Read {
                        offset,
                        len: job.spec.io_size,
                    }
                };
                gen.issued += 1;
                queue.submit(op).map_err(flatten)?;
            }
            for result in queue.poll().map_err(flatten)? {
                gen.plans.push((result.completion.id(), result.plan));
                total_completed += 1;
            }
            let issuing_done = stopped || gen.issued >= job.spec.ops;
            all_drained &= issuing_done && queue.backlog() == 0 && queue.in_flight() == 0;
        }
        if completed_at_stop.is_none() && stop_after.is_some_and(|t| total_completed >= t) {
            completed_at_stop = Some(gens.iter().map(|g| g.plans.len() as u64).collect());
        }
        if all_drained {
            break;
        }
        std::thread::yield_now();
    }
    drop(queues);

    let completed_at_stop =
        completed_at_stop.unwrap_or_else(|| gens.iter().map(|g| g.plans.len() as u64).collect());
    let tenants = handles.iter().map(|h| h.stats()).collect();
    let mut plans: Vec<(Plan, u64)> = Vec::new();
    for (job, gen) in jobs.iter().zip(&mut gens) {
        gen.plans.sort_unstable_by_key(|(id, _)| *id);
        plans.extend(
            gen.plans
                .drain(..)
                .map(|(_, plan)| (plan, job.spec.io_size)),
        );
    }
    let combined = disks[0]
        .image()
        .cluster()
        .run_closed_loop(inflight_budget, plans);
    Ok(MultiTenantOutcome {
        completed_at_stop,
        tenants,
        combined,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed;
    use vdisk_core::EncryptionConfig;

    fn small_disk(config: &EncryptionConfig) -> EncryptedImage {
        testbed::bench_disk(config, 16 << 20, 42)
    }

    #[test]
    fn default_ops_clamps() {
        assert_eq!(default_ops_for(4096), 384);
        assert_eq!(default_ops_for(4 << 20), 40);
    }

    #[test]
    fn precondition_creates_every_object() {
        let mut disk = small_disk(&EncryptionConfig::luks2_baseline());
        precondition(&mut disk).unwrap();
        assert_eq!(disk.image().stat().unwrap().objects_written, 4);
    }

    #[test]
    fn jobs_produce_positive_bandwidth() {
        let mut disk = small_disk(&EncryptionConfig::random_iv_object_end());
        precondition(&mut disk).unwrap();
        for pattern in [
            IoPattern::RandRead,
            IoPattern::RandWrite,
            IoPattern::SeqRead,
            IoPattern::SeqWrite,
        ] {
            let stats = run_job(
                &mut disk,
                &JobSpec {
                    pattern,
                    io_size: 64 << 10,
                    queue_depth: 8,
                    ops: 24,
                    seed: 1,
                },
            )
            .unwrap();
            assert!(stats.bandwidth_mb_s() > 0.0, "{pattern:?}");
            assert_eq!(stats.ops, 24);
        }
    }

    #[test]
    fn mixed_randrw_jobs_issue_both_kinds_and_produce_bandwidth() {
        // A small image so the 128-op mix genuinely revisits slots:
        // re-reads hit the cache, overwrites of cached slots purge it.
        let mut disk =
            testbed::cached_bench_disk(&EncryptionConfig::random_iv_object_end(), 4 << 20, 42);
        precondition(&mut disk).unwrap();
        let before = disk.image().cluster().exec_stats();
        let stats = run_job(
            &mut disk,
            &JobSpec {
                pattern: IoPattern::RANDRW_70_30,
                io_size: 16 << 10,
                queue_depth: 8,
                ops: 128,
                seed: 5,
            },
        )
        .unwrap();
        assert_eq!(stats.ops, 128);
        assert!(stats.bandwidth_mb_s() > 0.0);
        let delta_tx = disk.image().cluster().exec_stats().transactions - before.transactions;
        assert!(delta_tx > 0, "the mix must contain writes");
        assert!(delta_tx < 128, "the mix must contain reads");
        // Churn exercises the invalidation path: overwrites landed on
        // sectors the reads had cached.
        let stats = disk.image().cluster().exec_stats();
        assert!(stats.meta_cache_hits > 0, "re-read sectors must hit");
        assert!(stats.meta_cache_invalidations > 0, "overwrites must purge");
    }

    /// The acceptance bar for the cache: a read-heavy job on a cached
    /// disk must show hits and a measurably better simulated result
    /// than the identical job with the cache off.
    #[test]
    fn cached_randread_beats_uncached() {
        let spec = JobSpec {
            pattern: IoPattern::RandRead,
            io_size: 64 << 10,
            queue_depth: 8,
            ops: 48,
            seed: 11,
        };
        let config = EncryptionConfig::random_iv_object_end();
        let mut warm = testbed::cached_bench_disk(&config, 16 << 20, 3);
        precondition(&mut warm).unwrap();
        run_job(&mut warm, &spec).unwrap(); // warm the cache
        let cached = run_job(&mut warm, &spec).unwrap();
        assert!(
            warm.image().cluster().exec_stats().meta_cache_hits > 0,
            "warmed rerun must hit"
        );
        let mut cold = testbed::uncached_bench_disk(&config, 16 << 20, 3);
        precondition(&mut cold).unwrap();
        run_job(&mut cold, &spec).unwrap();
        let uncached = run_job(&mut cold, &spec).unwrap();
        assert!(
            cached.bandwidth_mb_s() > uncached.bandwidth_mb_s(),
            "dropping the metadata round trip must show up in simulated bandwidth \
             ({:.1} MB/s cached vs {:.1} MB/s uncached)",
            cached.bandwidth_mb_s(),
            uncached.bandwidth_mb_s()
        );
    }

    /// The multi-tenant driver on an inline cluster: bit-identical
    /// across runs, weight-biased at the stop point, fully drained at
    /// the end.
    #[test]
    fn multi_tenant_run_is_deterministic_and_weight_biased() {
        let run = || {
            let mut disks = testbed::tenant_bench_disks(
                &EncryptionConfig::random_iv_object_end(),
                2,
                4 << 20,
                7,
            );
            for disk in &mut disks {
                precondition(disk).unwrap();
            }
            let jobs: Vec<TenantJob> = [(3u32, 91u64), (1, 92)]
                .iter()
                .map(|&(weight, seed)| TenantJob {
                    spec: JobSpec {
                        pattern: IoPattern::RANDRW_70_30,
                        io_size: 16 << 10,
                        queue_depth: 8,
                        ops: 96,
                        seed,
                    },
                    weight,
                    qd_cap: 8,
                })
                .collect();
            let outcome = run_multi_tenant(&mut disks, &jobs, 8, Some(96)).unwrap();
            let mut total = 0;
            for tenant in &outcome.tenants {
                // Issuance stops at the stop point; what was admitted
                // by then drains completely.
                assert_eq!(tenant.completed_ops, tenant.admitted_ops);
                assert_eq!(tenant.backlog_ops, 0);
                assert_eq!(tenant.in_flight_ops, 0);
                total += tenant.completed_ops;
            }
            assert!(total >= 96, "must reach the stop target: {total}");
            (outcome.completed_at_stop.clone(), outcome.combined.makespan)
        };
        let (counts, makespan) = run();
        assert_eq!(run(), (counts.clone(), makespan), "must be deterministic");
        assert!(
            counts[0] > counts[1],
            "the weight-3 tenant must lead at the stop point: {counts:?}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut disk = small_disk(&EncryptionConfig::random_iv_object_end());
            precondition(&mut disk).unwrap();
            run_job(
                &mut disk,
                &JobSpec {
                    pattern: IoPattern::RandWrite,
                    io_size: 32 << 10,
                    queue_depth: 8,
                    ops: 32,
                    seed: 9,
                },
            )
            .unwrap()
            .bandwidth_mb_s()
        };
        assert_eq!(run(), run());
    }
}
