//! A fio-like workload generator (the paper drives its evaluation with
//! fio randread/randwrite at QD 32, §3.3).
//!
//! Jobs drive the **real submission queue**
//! ([`vdisk_core::EncryptedIoQueue`]): up to `queue_depth` operations
//! are genuinely in flight against the cluster's shard workers while
//! further IOs are generated — actual cross-submission concurrency,
//! not a notional fan-out. The per-op cost plans reaped from the
//! completions are then replayed in the calibrated closed-loop
//! simulator at the same depth to produce bandwidth numbers.

use vdisk_core::{EncryptedImage, IoOp, Result};
use vdisk_crypto::rng::SeededRng;
use vdisk_sim::{ClosedLoopStats, Plan};

/// Access pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoPattern {
    /// Uniform random reads (fio `randread`).
    RandRead,
    /// Uniform random writes (fio `randwrite`).
    RandWrite,
    /// Sequential reads.
    SeqRead,
    /// Sequential writes.
    SeqWrite,
    /// Mixed random reads and writes (fio `randrw` with
    /// `rwmixread=read_pct`): each IO is independently a read with
    /// probability `read_pct`/100, at a uniformly random offset. The
    /// realistic-churn workload for the IV/metadata cache — reads fill
    /// it while interleaved overwrites keep invalidating.
    RandRw {
        /// Percentage of IOs that are reads (0–100).
        read_pct: u8,
    },
}

impl IoPattern {
    /// The paper-adjacent mixed workload: 70% reads / 30% writes.
    pub const RANDRW_70_30: IoPattern = IoPattern::RandRw { read_pct: 70 };

    /// True for the pure-write patterns (mixed patterns are neither).
    #[must_use]
    pub fn is_write(self) -> bool {
        matches!(self, IoPattern::RandWrite | IoPattern::SeqWrite)
    }
}

/// One fio-style job.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Access pattern.
    pub pattern: IoPattern,
    /// Block size of each IO in bytes.
    pub io_size: u64,
    /// IOs kept in flight.
    pub queue_depth: usize,
    /// Total IOs to issue.
    pub ops: u64,
    /// RNG seed (offsets and payload).
    pub seed: u64,
}

/// The 70/30 randrw churn job at QD 8 — shared by the
/// `batch_pipeline` bench group and the CI bench gate so the gated
/// baseline always measures exactly the published bench workload.
pub const CHURN_70_30_QD8: JobSpec = JobSpec {
    pattern: IoPattern::RANDRW_70_30,
    io_size: 16 << 10,
    queue_depth: 8,
    ops: 96,
    seed: 37,
};

/// Sizes each sweep point so small IOs see steady state while large
/// IOs stay within the software-crypto wall-clock budget.
#[must_use]
pub fn default_ops_for(io_size: u64) -> u64 {
    ((24 << 20) / io_size).clamp(40, 384)
}

/// Sequentially writes the whole image in object-size IOs so that every
/// sector exists — the paper measures "a full Ceph image" (§3.3), which
/// also makes every later write an overwrite (the interesting case for
/// read-modify-write costs).
///
/// # Errors
///
/// Propagates any IO-path error.
pub fn precondition(disk: &mut EncryptedImage) -> Result<()> {
    let chunk = disk.image().object_size();
    let size = disk.image().size();
    let mut rng = SeededRng::new(0xFEED);
    let mut buf = vec![0u8; chunk as usize];
    rng.fill_bytes(&mut buf[..4096]);
    let mut offset = 0;
    while offset < size {
        let len = chunk.min(size - offset) as usize;
        disk.write(offset, &buf[..len])?;
        offset += len as u64;
    }
    Ok(())
}

/// Runs one job through the real submission queue: keeps up to
/// `queue_depth` operations in flight on the cluster's shard workers
/// (every IO runs the full encrypt/layout path), reaps per-op cost
/// plans from the completions, and finally replays the plans in a
/// closed loop at the same depth on the calibrated simulated hardware.
///
/// # Errors
///
/// Propagates any IO-path error.
///
/// # Panics
///
/// Panics if `io_size` is zero or larger than the image.
pub fn run_job(disk: &mut EncryptedImage, spec: &JobSpec) -> Result<ClosedLoopStats> {
    assert!(spec.io_size > 0, "io_size must be positive");
    let image_size = disk.image().size();
    assert!(spec.io_size <= image_size, "io_size exceeds image");
    let slots = image_size / spec.io_size;
    let queue_depth = spec.queue_depth.max(1);
    let mut rng = SeededRng::new(spec.seed);

    // fio-style payload pattern: a random head stamped on every IO's
    // owned buffer (the cost model is content-independent; encryption
    // still runs on every byte).
    let mut pattern = vec![0u8; spec.io_size as usize];
    let head = pattern.len().min(8192);
    rng.fill_bytes(&mut pattern[..head]);

    // Completions may be reaped out of submission order; key plans by
    // completion id so the closed-loop replay is deterministic.
    let mut done: Vec<(u64, Plan)> = Vec::with_capacity(spec.ops as usize);
    let mut queue = disk.io_queue();
    for i in 0..spec.ops {
        let offset = match spec.pattern {
            IoPattern::RandRead | IoPattern::RandWrite | IoPattern::RandRw { .. } => {
                rng.gen_below(slots) * spec.io_size
            }
            IoPattern::SeqRead | IoPattern::SeqWrite => (i % slots) * spec.io_size,
        };
        let is_write = match spec.pattern {
            IoPattern::RandRw { read_pct } => rng.gen_below(100) >= u64::from(read_pct.min(100)),
            pattern => pattern.is_write(),
        };
        let op = if is_write {
            IoOp::Write {
                offset,
                data: pattern.clone(),
            }
        } else {
            IoOp::Read {
                offset,
                len: spec.io_size,
            }
        };
        queue.submit(op)?;
        while queue.in_flight() >= queue_depth {
            for result in queue.wait()? {
                done.push((result.completion.id(), result.plan));
            }
        }
    }
    for result in queue.fence()? {
        done.push((result.completion.id(), result.plan));
    }
    drop(queue);

    done.sort_unstable_by_key(|(id, _)| *id);
    let plans: Vec<(Plan, u64)> = done
        .into_iter()
        .map(|(_, plan)| (plan, spec.io_size))
        .collect();
    Ok(disk.image().cluster().run_closed_loop(queue_depth, plans))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed;
    use vdisk_core::EncryptionConfig;

    fn small_disk(config: &EncryptionConfig) -> EncryptedImage {
        testbed::bench_disk(config, 16 << 20, 42)
    }

    #[test]
    fn default_ops_clamps() {
        assert_eq!(default_ops_for(4096), 384);
        assert_eq!(default_ops_for(4 << 20), 40);
    }

    #[test]
    fn precondition_creates_every_object() {
        let mut disk = small_disk(&EncryptionConfig::luks2_baseline());
        precondition(&mut disk).unwrap();
        assert_eq!(disk.image().stat().unwrap().objects_written, 4);
    }

    #[test]
    fn jobs_produce_positive_bandwidth() {
        let mut disk = small_disk(&EncryptionConfig::random_iv_object_end());
        precondition(&mut disk).unwrap();
        for pattern in [
            IoPattern::RandRead,
            IoPattern::RandWrite,
            IoPattern::SeqRead,
            IoPattern::SeqWrite,
        ] {
            let stats = run_job(
                &mut disk,
                &JobSpec {
                    pattern,
                    io_size: 64 << 10,
                    queue_depth: 8,
                    ops: 24,
                    seed: 1,
                },
            )
            .unwrap();
            assert!(stats.bandwidth_mb_s() > 0.0, "{pattern:?}");
            assert_eq!(stats.ops, 24);
        }
    }

    #[test]
    fn mixed_randrw_jobs_issue_both_kinds_and_produce_bandwidth() {
        // A small image so the 128-op mix genuinely revisits slots:
        // re-reads hit the cache, overwrites of cached slots purge it.
        let mut disk =
            testbed::cached_bench_disk(&EncryptionConfig::random_iv_object_end(), 4 << 20, 42);
        precondition(&mut disk).unwrap();
        let before = disk.image().cluster().exec_stats();
        let stats = run_job(
            &mut disk,
            &JobSpec {
                pattern: IoPattern::RANDRW_70_30,
                io_size: 16 << 10,
                queue_depth: 8,
                ops: 128,
                seed: 5,
            },
        )
        .unwrap();
        assert_eq!(stats.ops, 128);
        assert!(stats.bandwidth_mb_s() > 0.0);
        let delta_tx = disk.image().cluster().exec_stats().transactions - before.transactions;
        assert!(delta_tx > 0, "the mix must contain writes");
        assert!(delta_tx < 128, "the mix must contain reads");
        // Churn exercises the invalidation path: overwrites landed on
        // sectors the reads had cached.
        let stats = disk.image().cluster().exec_stats();
        assert!(stats.meta_cache_hits > 0, "re-read sectors must hit");
        assert!(stats.meta_cache_invalidations > 0, "overwrites must purge");
    }

    /// The acceptance bar for the cache: a read-heavy job on a cached
    /// disk must show hits and a measurably better simulated result
    /// than the identical job with the cache off.
    #[test]
    fn cached_randread_beats_uncached() {
        let spec = JobSpec {
            pattern: IoPattern::RandRead,
            io_size: 64 << 10,
            queue_depth: 8,
            ops: 48,
            seed: 11,
        };
        let config = EncryptionConfig::random_iv_object_end();
        let mut warm = testbed::cached_bench_disk(&config, 16 << 20, 3);
        precondition(&mut warm).unwrap();
        run_job(&mut warm, &spec).unwrap(); // warm the cache
        let cached = run_job(&mut warm, &spec).unwrap();
        assert!(
            warm.image().cluster().exec_stats().meta_cache_hits > 0,
            "warmed rerun must hit"
        );
        let mut cold = testbed::uncached_bench_disk(&config, 16 << 20, 3);
        precondition(&mut cold).unwrap();
        run_job(&mut cold, &spec).unwrap();
        let uncached = run_job(&mut cold, &spec).unwrap();
        assert!(
            cached.bandwidth_mb_s() > uncached.bandwidth_mb_s(),
            "dropping the metadata round trip must show up in simulated bandwidth \
             ({:.1} MB/s cached vs {:.1} MB/s uncached)",
            cached.bandwidth_mb_s(),
            uncached.bandwidth_mb_s()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut disk = small_disk(&EncryptionConfig::random_iv_object_end());
            precondition(&mut disk).unwrap();
            run_job(
                &mut disk,
                &JobSpec {
                    pattern: IoPattern::RandWrite,
                    io_size: 32 << 10,
                    queue_depth: 8,
                    ops: 32,
                    seed: 9,
                },
            )
            .unwrap()
            .bandwidth_mb_s()
        };
        assert_eq!(run(), run());
    }
}
