//! A fio-like workload generator (the paper drives its evaluation with
//! fio randread/randwrite at QD 32, §3.3).
//!
//! Jobs drive the **real submission queue**
//! ([`vdisk_core::EncryptedIoQueue`]): up to `queue_depth` operations
//! are genuinely in flight against the cluster's shard workers while
//! further IOs are generated — actual cross-submission concurrency,
//! not a notional fan-out. The per-op cost plans reaped from the
//! completions are then replayed in the calibrated closed-loop
//! simulator at the same depth to produce bandwidth numbers.

use vdisk_core::{EncryptedImage, IoOp, Result};
use vdisk_crypto::rng::SeededRng;
use vdisk_sim::{ClosedLoopStats, Plan};

/// Access pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoPattern {
    /// Uniform random reads (fio `randread`).
    RandRead,
    /// Uniform random writes (fio `randwrite`).
    RandWrite,
    /// Sequential reads.
    SeqRead,
    /// Sequential writes.
    SeqWrite,
}

impl IoPattern {
    /// True for the write patterns.
    #[must_use]
    pub fn is_write(self) -> bool {
        matches!(self, IoPattern::RandWrite | IoPattern::SeqWrite)
    }
}

/// One fio-style job.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Access pattern.
    pub pattern: IoPattern,
    /// Block size of each IO in bytes.
    pub io_size: u64,
    /// IOs kept in flight.
    pub queue_depth: usize,
    /// Total IOs to issue.
    pub ops: u64,
    /// RNG seed (offsets and payload).
    pub seed: u64,
}

/// Sizes each sweep point so small IOs see steady state while large
/// IOs stay within the software-crypto wall-clock budget.
#[must_use]
pub fn default_ops_for(io_size: u64) -> u64 {
    ((24 << 20) / io_size).clamp(40, 384)
}

/// Sequentially writes the whole image in object-size IOs so that every
/// sector exists — the paper measures "a full Ceph image" (§3.3), which
/// also makes every later write an overwrite (the interesting case for
/// read-modify-write costs).
///
/// # Errors
///
/// Propagates any IO-path error.
pub fn precondition(disk: &mut EncryptedImage) -> Result<()> {
    let chunk = disk.image().object_size();
    let size = disk.image().size();
    let mut rng = SeededRng::new(0xFEED);
    let mut buf = vec![0u8; chunk as usize];
    rng.fill_bytes(&mut buf[..4096]);
    let mut offset = 0;
    while offset < size {
        let len = chunk.min(size - offset) as usize;
        disk.write(offset, &buf[..len])?;
        offset += len as u64;
    }
    Ok(())
}

/// Runs one job through the real submission queue: keeps up to
/// `queue_depth` operations in flight on the cluster's shard workers
/// (every IO runs the full encrypt/layout path), reaps per-op cost
/// plans from the completions, and finally replays the plans in a
/// closed loop at the same depth on the calibrated simulated hardware.
///
/// # Errors
///
/// Propagates any IO-path error.
///
/// # Panics
///
/// Panics if `io_size` is zero or larger than the image.
pub fn run_job(disk: &mut EncryptedImage, spec: &JobSpec) -> Result<ClosedLoopStats> {
    assert!(spec.io_size > 0, "io_size must be positive");
    let image_size = disk.image().size();
    assert!(spec.io_size <= image_size, "io_size exceeds image");
    let slots = image_size / spec.io_size;
    let queue_depth = spec.queue_depth.max(1);
    let mut rng = SeededRng::new(spec.seed);

    // fio-style payload pattern: a random head stamped on every IO's
    // owned buffer (the cost model is content-independent; encryption
    // still runs on every byte).
    let mut pattern = vec![0u8; spec.io_size as usize];
    let head = pattern.len().min(8192);
    rng.fill_bytes(&mut pattern[..head]);

    // Completions may be reaped out of submission order; key plans by
    // completion id so the closed-loop replay is deterministic.
    let mut done: Vec<(u64, Plan)> = Vec::with_capacity(spec.ops as usize);
    let mut queue = disk.io_queue();
    for i in 0..spec.ops {
        let offset = match spec.pattern {
            IoPattern::RandRead | IoPattern::RandWrite => rng.gen_below(slots) * spec.io_size,
            IoPattern::SeqRead | IoPattern::SeqWrite => (i % slots) * spec.io_size,
        };
        let op = if spec.pattern.is_write() {
            IoOp::Write {
                offset,
                data: pattern.clone(),
            }
        } else {
            IoOp::Read {
                offset,
                len: spec.io_size,
            }
        };
        queue.submit(op)?;
        while queue.in_flight() >= queue_depth {
            for result in queue.wait()? {
                done.push((result.completion.id(), result.plan));
            }
        }
    }
    for result in queue.fence()? {
        done.push((result.completion.id(), result.plan));
    }
    drop(queue);

    done.sort_unstable_by_key(|(id, _)| *id);
    let plans: Vec<(Plan, u64)> = done
        .into_iter()
        .map(|(_, plan)| (plan, spec.io_size))
        .collect();
    Ok(disk.image().cluster().run_closed_loop(queue_depth, plans))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed;
    use vdisk_core::EncryptionConfig;

    fn small_disk(config: &EncryptionConfig) -> EncryptedImage {
        testbed::bench_disk(config, 16 << 20, 42)
    }

    #[test]
    fn default_ops_clamps() {
        assert_eq!(default_ops_for(4096), 384);
        assert_eq!(default_ops_for(4 << 20), 40);
    }

    #[test]
    fn precondition_creates_every_object() {
        let mut disk = small_disk(&EncryptionConfig::luks2_baseline());
        precondition(&mut disk).unwrap();
        assert_eq!(disk.image().stat().unwrap().objects_written, 4);
    }

    #[test]
    fn jobs_produce_positive_bandwidth() {
        let mut disk = small_disk(&EncryptionConfig::random_iv_object_end());
        precondition(&mut disk).unwrap();
        for pattern in [
            IoPattern::RandRead,
            IoPattern::RandWrite,
            IoPattern::SeqRead,
            IoPattern::SeqWrite,
        ] {
            let stats = run_job(
                &mut disk,
                &JobSpec {
                    pattern,
                    io_size: 64 << 10,
                    queue_depth: 8,
                    ops: 24,
                    seed: 1,
                },
            )
            .unwrap();
            assert!(stats.bandwidth_mb_s() > 0.0, "{pattern:?}");
            assert_eq!(stats.ops, 24);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut disk = small_disk(&EncryptionConfig::random_iv_object_end());
            precondition(&mut disk).unwrap();
            run_job(
                &mut disk,
                &JobSpec {
                    pattern: IoPattern::RandWrite,
                    io_size: 32 << 10,
                    queue_depth: 8,
                    ops: 32,
                    seed: 9,
                },
            )
            .unwrap()
            .bandwidth_mb_s()
        };
        assert_eq!(run(), run());
    }
}
