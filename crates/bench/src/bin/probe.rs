//! Calibration probe: prints the full variant x IO-size sweep for
//! writes (default) or reads (`probe read`), with overhead columns.
//! Used to tune `TestbedProfile` against the paper's Fig. 3/4 shapes;
//! kept as a developer tool.

use vdisk_bench::fio::{self, IoPattern, JobSpec};
use vdisk_bench::testbed;

fn main() {
    let pattern = if std::env::args().any(|a| a == "read") {
        IoPattern::RandRead
    } else {
        IoPattern::RandWrite
    };
    println!("pattern: {pattern:?}");
    let sizes: Vec<u64> = testbed::paper_io_sizes();
    print!("{:>10}", "IO[KB]");
    for v in testbed::paper_variants() {
        print!("{:>12}", v.label);
    }
    println!("{:>12}{:>12}{:>12}", "ua%", "oe%", "omap%");
    let mut results: Vec<Vec<f64>> = Vec::new();
    for variant in testbed::paper_variants() {
        let mut disk = testbed::bench_disk(&variant.config, 64 << 20, 1);
        fio::precondition(&mut disk).unwrap();
        let mut row = Vec::new();
        for &s in &sizes {
            let stats = fio::run_job(
                &mut disk,
                &JobSpec {
                    pattern,
                    io_size: s,
                    queue_depth: 32,
                    ops: fio::default_ops_for(s).min(256),
                    seed: 3 ^ s,
                },
            )
            .unwrap();
            row.push(stats.bandwidth_mb_s());
        }
        results.push(row);
    }
    for (i, &s) in sizes.iter().enumerate() {
        print!("{:>10}", s / 1024);
        for row in &results {
            print!("{:>12.0}", row[i]);
        }
        for v in 1..4 {
            print!("{:>11.1}%", (1.0 - results[v][i] / results[0][i]) * 100.0);
        }
        println!();
    }
}
