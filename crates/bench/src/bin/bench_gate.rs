//! The CI bench-regression gate: runs a quick, fully deterministic
//! subset of the benchmark surface (the `batch_pipeline` write path,
//! read-heavy cache-on/cache-off fio jobs, and the mixed randrw churn
//! job), records the **simulated** median ns/op per group to
//! `BENCH_results.json`, and fails if any group regresses more than
//! 15% against the checked-in `BENCH_baseline.json`.
//!
//! Simulated time — not wall clock — is the gated metric on purpose:
//! every group runs seeded workloads against inline-mode clusters
//! ([`testbed::cached_bench_disk`]), so the numbers are bit-identical
//! across hosts and the 15% tolerance catches real cost-model or
//! IO-path regressions instead of CI-runner noise. The gate also
//! asserts the cache's reason to exist: the cache-on read job must
//! beat its cache-off twin and must actually register hits.
//!
//! One exception: groups prefixed `filestore-` (wall-clock smoke on
//! the durable file backend) or `faulty-` (randwrite under a low
//! transient-fault rate, retries absorbed with real backoff sleeps)
//! appear in the results artifact but are never gated and never
//! enter the baseline.
//!
//! Usage (CI runs the default; run it locally the same way):
//!
//! ```text
//! cargo run --release -p vdisk-bench --bin bench_gate
//!     [--baseline PATH]   # default BENCH_baseline.json
//!     [--results PATH]    # default BENCH_results.json
//!     [--update-baseline] # rewrite the baseline instead of comparing
//! ```

use std::collections::BTreeMap;
use std::process::ExitCode;
use vdisk_bench::fio::{self, IoPattern, JobSpec};
use vdisk_bench::testbed;
use vdisk_core::{EncryptedImage, EncryptionConfig, MetaLayout};
use vdisk_sim::ClosedLoopStats;

/// Regression tolerance: a group failing `result > baseline * 1.15`
/// fails the gate.
const TOLERANCE: f64 = 0.15;

/// Groups with these prefixes are **smoke** rows: wall clock leaks
/// into them (the file backend's real fsync traffic; the fault
/// plane's real backoff sleeps), so they are written to the results
/// artifact for visibility but never compared against the baseline
/// and never written into it — host IO latency is exactly the
/// CI-runner noise the simulated gate exists to avoid.
const SMOKE_PREFIXES: [&str; 2] = ["filestore-", "faulty-"];

/// Whether `group` is a reported-only smoke row (see [`SMOKE_PREFIXES`]).
fn is_smoke(group: &str) -> bool {
    SMOKE_PREFIXES.iter().any(|p| group.starts_with(p))
}

const BASELINE_DEFAULT: &str = "BENCH_baseline.json";
const RESULTS_DEFAULT: &str = "BENCH_results.json";

const IMAGE: u64 = 8 << 20;

fn ns_per_op(stats: &ClosedLoopStats) -> f64 {
    stats.makespan.as_secs_f64() * 1e9 / stats.ops as f64
}

/// Runs one job; returns unrounded simulated ns/op (rounded only when
/// recorded, so comparisons keep full precision).
fn job(disk: &mut EncryptedImage, spec: &JobSpec) -> f64 {
    ns_per_op(&fio::run_job(disk, spec).expect("gate job"))
}

fn record(results: &mut BTreeMap<String, u64>, group: String, ns: f64) {
    results.insert(group, ns.round() as u64);
}

/// The acceptance check for the cache, asserted at the Plan level
/// where it cannot be diluted by whatever resource happens to bound
/// the closed loop. With write-through fills, even the **first** read
/// after a write is warm: it must issue strictly fewer store ops and
/// move strictly fewer op bytes than the same read on an uncached
/// twin.
fn assert_plan_drops_meta_round_trip(label: &str, config: &EncryptionConfig) {
    let mut cached = testbed::cached_bench_disk(config, 1 << 20, 13);
    cached
        .write(0, &vec![0xA5u8; 64 << 10])
        .expect("seed write");
    let mut buf = vec![0u8; 64 << 10];
    let warm = cached.read(0, &mut buf).expect("warm read");
    assert!(
        cached.image().cluster().exec_stats().meta_cache_write_fills > 0,
        "{label}: the seed write must fill its own entries"
    );
    let mut uncached = testbed::uncached_bench_disk(config, 1 << 20, 13);
    uncached
        .write(0, &vec![0xA5u8; 64 << 10])
        .expect("seed write");
    let cold = uncached.read(0, &mut buf).expect("cold read");
    assert!(
        warm.op_count() < cold.op_count() && warm.total_op_bytes() < cold.total_op_bytes(),
        "{label}: a cache hit must drop the metadata op from the Plan \
         ({} -> {} ops)",
        cold.op_count(),
        warm.op_count()
    );
}

/// Runs every gated group. Returns `(group → simulated ns/op)`.
fn run_groups() -> BTreeMap<String, u64> {
    let mut results = BTreeMap::new();
    let object_end = EncryptionConfig::random_iv(MetaLayout::ObjectEnd);
    let omap = EncryptionConfig::random_iv(MetaLayout::Omap);

    // batch_pipeline quick mode: the batched write path per layout.
    let write_spec = JobSpec {
        pattern: IoPattern::RandWrite,
        io_size: 64 << 10,
        queue_depth: 8,
        ops: 48,
        seed: 17,
    };
    for (label, config) in [
        ("luks2", EncryptionConfig::luks2_baseline()),
        ("object-end", object_end.clone()),
        ("omap", omap.clone()),
    ] {
        let mut disk = testbed::uncached_bench_disk(&config, IMAGE, 7);
        fio::precondition(&mut disk).expect("precondition");
        let ns = job(&mut disk, &write_spec);
        record(&mut results, format!("randwrite-qd8-64k/{label}"), ns);
    }

    // The cache groups: identical read-heavy job, cache on vs off, at
    // the paper's worst-case 4 KiB IO size — where the metadata fetch
    // is a whole extra physical access per data block (§3.3). The
    // cache-on disk measures a warmed second run — the steady state
    // the cache exists for (the seeded offset sequence repeats, so
    // the rerun hits on every slot the warmup touched).
    let read_spec = JobSpec {
        pattern: IoPattern::RandRead,
        io_size: 4 << 10,
        queue_depth: 32,
        ops: 384,
        seed: 11,
    };
    for (label, config) in [("object-end", &object_end), ("omap", &omap)] {
        // The round trip's disappearance is asserted on the Plan
        // itself (robust); the makespan comparison below is kept
        // non-strict because whichever resource bounds the closed
        // loop can legitimately absorb the parallel meta fetch.
        assert_plan_drops_meta_round_trip(label, config);

        let mut disk = testbed::uncached_bench_disk(config, IMAGE, 3);
        fio::precondition(&mut disk).expect("precondition");
        job(&mut disk, &read_spec); // same warmup schedule as cache-on
        let off = job(&mut disk, &read_spec);
        record(
            &mut results,
            format!("randread-qd32-4k/{label}/cache-off"),
            off,
        );

        let mut disk = testbed::cached_bench_disk(config, IMAGE, 3);
        fio::precondition(&mut disk).expect("precondition");
        job(&mut disk, &read_spec); // warm the cache
        let on = job(&mut disk, &read_spec);
        record(
            &mut results,
            format!("randread-qd32-4k/{label}/cache-on"),
            on,
        );

        let hits = disk.image().cluster().exec_stats().meta_cache_hits;
        assert!(hits > 0, "{label}: warmed read job must register hits");
        assert!(
            on <= off,
            "{label}: cache-on ({on} ns/op) must never lose to cache-off ({off} ns/op)"
        );
        println!("  [{label}] cache-on {on:.0} ns/op vs cache-off {off:.0} ns/op ({hits} hits)");
    }

    // Large-block parallel-crypto group: 256 KiB random writes at the
    // paper's QD 32, cache on. Each write's client-side encryption
    // splits across 4 crypto lanes; the serial twin (1 lane) is the
    // old single-threaded pipeline. Both sides are recorded and gated,
    // and the multi-core scaling the pipeline exists for is asserted
    // outright — in simulated time, so the check is host-independent.
    // A larger image than the small-IO groups (64 objects) lets the
    // dispatch fan out across OSDs; client-side crypto then bounds the
    // serial pipeline, which is exactly the bottleneck the lanes
    // remove.
    let qd32_image: u64 = 256 << 20;
    let qd32_spec = JobSpec {
        pattern: IoPattern::RandWrite,
        io_size: 256 << 10,
        queue_depth: 32,
        ops: 64,
        seed: 23,
    };
    for (label, config) in [
        ("luks2", EncryptionConfig::luks2_baseline()),
        ("object-end", object_end.clone()),
    ] {
        let mut serial = testbed::cached_bench_disk_with_lanes(&config, qd32_image, 19, 1);
        fio::precondition(&mut serial).expect("precondition");
        let serial_ns = job(&mut serial, &qd32_spec);
        let mut wide = testbed::cached_bench_disk_with_lanes(&config, qd32_image, 19, 4);
        fio::precondition(&mut wide).expect("precondition");
        let wide_ns = job(&mut wide, &qd32_spec);
        let scaling = serial_ns / wide_ns;
        assert!(
            scaling > 1.3,
            "{label}: parallel crypto must scale >1.3x over the serial \
             baseline at 256 KiB / QD 32, got {scaling:.2}x \
             ({serial_ns:.0} -> {wide_ns:.0} ns/op)"
        );
        println!("  [{label}] 256k qd32: serial {serial_ns:.0} ns/op, 4 lanes {wide_ns:.0} ns/op ({scaling:.2}x)");
        record(
            &mut results,
            format!("randwrite-qd32-256k/{label}/serial"),
            serial_ns,
        );
        record(
            &mut results,
            format!("randwrite-qd32-256k/{label}/lanes4"),
            wide_ns,
        );
    }

    // Mixed 70/30 churn at QD 8 (the spec shared with the
    // batch_pipeline bench group): the invalidation path under load.
    let mut disk = testbed::cached_bench_disk(&object_end, IMAGE, 41);
    fio::precondition(&mut disk).expect("precondition");
    let ns = job(&mut disk, &fio::CHURN_70_30_QD8);
    record(
        &mut results,
        "randrw70-qd8-16k/object-end/cache-on".to_string(),
        ns,
    );

    // Rekey churn: the same 70/30 mix while a background online rekey
    // drains the image between job slices — the key-lifecycle hot
    // path, regression-gated from day one. Deterministic: inline-mode
    // cluster, seeded offsets, fixed driver window; the metric is the
    // client IO's simulated ns/op under migration pressure (driver
    // IO contends for the same shards and churns the cache).
    let mut disk = testbed::cached_bench_disk(&object_end, IMAGE, 29);
    fio::precondition(&mut disk).expect("precondition");
    let mut driver = disk
        .rekey_begin_with_iterations(b"bench-passphrase", b"bench-passphrase-2", 25)
        .expect("rekey begin")
        .with_chunk_sectors(32)
        .with_queue_depth(8);
    let mut total_ns = 0.0;
    let mut total_ops = 0u64;
    let mut slice = 0u64;
    loop {
        let progress = driver.step(&mut disk).expect("rekey step");
        let spec = JobSpec {
            pattern: IoPattern::RANDRW_70_30,
            io_size: 16 << 10,
            queue_depth: 8,
            ops: 24,
            seed: 100 + slice,
        };
        let stats = fio::run_job(&mut disk, &spec).expect("churn slice");
        total_ns += stats.makespan.as_secs_f64() * 1e9;
        total_ops += stats.ops;
        slice += 1;
        if progress.is_complete() {
            break;
        }
    }
    driver.finish(&mut disk).expect("rekey finish");
    assert!(slice >= 4, "the migration must span several windows");
    record(
        &mut results,
        "rekey-churn-qd8-16k/object-end/cache-on".to_string(),
        total_ns / total_ops as f64,
    );

    // Multi-tenant QoS group: four tenants with mixed weights (3:1:1:1)
    // driving the 70/30 churn mix against their own images on ONE
    // shared cluster, arbitrated by the client runtime's weighted fair
    // scheduler at a shared inflight budget of 8. Inline apply plus
    // the single-threaded round-robin driver make the whole dispatch
    // trace — and therefore the combined simulated ns/op — identical
    // across hosts. Gated: a scheduler regression that serializes
    // dispatch or loses admission slots shows up here directly.
    let mut disks = testbed::tenant_bench_disks(&object_end, 4, IMAGE, 53);
    for disk in &mut disks {
        fio::precondition(disk).expect("precondition");
    }
    let tenant_jobs: Vec<fio::TenantJob> = [3u32, 1, 1, 1]
        .iter()
        .enumerate()
        .map(|(i, &weight)| fio::TenantJob {
            spec: JobSpec {
                pattern: IoPattern::RANDRW_70_30,
                io_size: 16 << 10,
                queue_depth: 8,
                ops: 48,
                seed: 200 + i as u64,
            },
            weight,
            qd_cap: 8,
        })
        .collect();
    let outcome =
        fio::run_multi_tenant(&mut disks, &tenant_jobs, 8, None).expect("multi-tenant gate job");
    for (tenant, job) in outcome.tenants.iter().zip(&tenant_jobs) {
        assert_eq!(
            tenant.completed_ops, job.spec.ops,
            "{}: every admitted op must complete",
            tenant.name
        );
    }
    record(
        &mut results,
        "multitenant-randrw-qd8-16k/object-end/cache-on".to_string(),
        ns_per_op(&outcome.combined),
    );

    // FileStore smoke: the same 16 KiB random-write spec driven
    // against the durable backend, measured in **wall clock** (the
    // metric that actually contains the fsyncs). Reported only — see
    // [`SMOKE_PREFIXES`].
    let scratch = std::path::PathBuf::from("target/backend-scratch")
        .join(format!("bench-gate-{}", std::process::id()));
    let mut disk = testbed::filestore_bench_disk(&object_end, IMAGE, 17, scratch.clone());
    fio::precondition(&mut disk).expect("precondition");
    let spec = JobSpec {
        pattern: IoPattern::RandWrite,
        io_size: 16 << 10,
        queue_depth: 8,
        ops: 48,
        seed: 17,
    };
    let wall = std::time::Instant::now();
    let stats = fio::run_job(&mut disk, &spec).expect("filestore smoke job");
    let wall_ns = wall.elapsed().as_secs_f64() * 1e9 / stats.ops as f64;
    println!("  [filestore] randwrite qd8 16k: {wall_ns:.0} wall ns/op (smoke, not gated)");
    record(
        &mut results,
        "filestore-randwrite-qd8-16k/object-end/wall".to_string(),
        wall_ns,
    );
    drop(disk);
    let _ = std::fs::remove_dir_all(&scratch);

    // Fault-plane smoke: the batch_pipeline randwrite spec again, on
    // a cluster injecting transient shard errors at a low 2% rate.
    // The retry layer must absorb every injection — the job completes
    // and the row shows what transparent replay costs. Reported only
    // (the backoff between replays is a real wall-clock sleep); the
    // replays themselves are asserted, so the row can't silently
    // measure a fault-free run.
    let mut disk = testbed::faulty_bench_disk(&object_end, IMAGE, 7, 0.02);
    fio::precondition(&mut disk).expect("precondition under faults");
    let ns = job(&mut disk, &write_spec);
    let stats = disk.image().cluster().exec_stats();
    assert!(
        stats.retries > 0,
        "a 2% transient rate across the job must force at least one replay"
    );
    println!(
        "  [faulty] randwrite qd8 64k @ 2% transients: {ns:.0} ns/op, {} retries (smoke, not gated)",
        stats.retries
    );
    record(
        &mut results,
        "faulty-randwrite-qd8-64k/object-end/transient-2pct".to_string(),
        ns,
    );

    results
}

/// Serializes a flat `group → ns/op` map as pretty-printed JSON
/// (sorted keys, so the artifact diffs cleanly).
fn to_json(map: &BTreeMap<String, u64>) -> String {
    let mut out = String::from("{\n");
    for (i, (key, value)) in map.iter().enumerate() {
        let comma = if i + 1 == map.len() { "" } else { "," };
        out.push_str(&format!("  \"{key}\": {value}{comma}\n"));
    }
    out.push_str("}\n");
    out
}

/// Parses the flat JSON this tool writes: `"key": integer` pairs. Not
/// a general JSON parser — just the inverse of [`to_json`].
fn from_json(text: &str) -> Result<BTreeMap<String, u64>, String> {
    let mut map = BTreeMap::new();
    let mut rest = text;
    while let Some(start) = rest.find('"') {
        rest = &rest[start + 1..];
        let end = rest.find('"').ok_or("unterminated key")?;
        let key = &rest[..end];
        rest = &rest[end + 1..];
        let colon = rest.find(':').ok_or("missing ':' after key")?;
        rest = rest[colon + 1..].trim_start();
        let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
        if digits.is_empty() {
            return Err(format!("no integer value for key {key:?}"));
        }
        rest = &rest[digits.len()..];
        let value = digits
            .parse()
            .map_err(|e| format!("bad value for {key:?}: {e}"))?;
        map.insert(key.to_string(), value);
    }
    Ok(map)
}

/// Compares results against the baseline; prints one line per group.
/// Returns whether the gate passes.
fn compare(results: &BTreeMap<String, u64>, baseline: &BTreeMap<String, u64>) -> bool {
    let mut pass = true;
    println!(
        "\n{:<44} {:>12} {:>12} {:>8}",
        "group", "baseline", "result", "delta"
    );
    for (group, &base) in baseline {
        if is_smoke(group) {
            // A stale baseline may carry a smoke row; never gate on it.
            continue;
        }
        match results.get(group) {
            None => {
                println!("{group:<44} {base:>12} {:>12} MISSING", "-");
                pass = false;
            }
            Some(&got) => {
                let delta = got as f64 / base as f64 - 1.0;
                let regressed = delta > TOLERANCE;
                let mark = if regressed { "FAIL" } else { "ok" };
                println!(
                    "{group:<44} {base:>12} {got:>12} {:>+7.1}% {mark}",
                    delta * 100.0
                );
                pass &= !regressed;
            }
        }
    }
    for group in results.keys() {
        if is_smoke(group) {
            continue;
        }
        if !baseline.contains_key(group) {
            println!(
                "{group:<44} {:>12} {:>12} NEW (update the baseline)",
                "-", results[group]
            );
        }
    }
    pass
}

fn main() -> ExitCode {
    let mut baseline_path = BASELINE_DEFAULT.to_string();
    let mut results_path = RESULTS_DEFAULT.to_string();
    let mut update_baseline = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => baseline_path = args.next().expect("--baseline takes a path"),
            "--results" => results_path = args.next().expect("--results takes a path"),
            "--update-baseline" => update_baseline = true,
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }

    println!("bench gate: running deterministic simulated groups...");
    let results = run_groups();
    std::fs::write(&results_path, to_json(&results)).expect("write results");
    println!("wrote {} ({} groups)", results_path, results.len());

    if update_baseline {
        let gated: BTreeMap<String, u64> = results
            .iter()
            .filter(|(k, _)| !is_smoke(k))
            .map(|(k, &v)| (k.clone(), v))
            .collect();
        std::fs::write(&baseline_path, to_json(&gated)).expect("write baseline");
        println!("baseline updated: {baseline_path}");
        return ExitCode::SUCCESS;
    }

    let baseline_text = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!(
                "cannot read baseline {baseline_path}: {e}\n\
                 (run with --update-baseline to create it)"
            );
            return ExitCode::from(2);
        }
    };
    let baseline = match from_json(&baseline_text) {
        Ok(map) => map,
        Err(e) => {
            eprintln!("malformed baseline {baseline_path}: {e}");
            return ExitCode::from(2);
        }
    };

    if compare(&results, &baseline) {
        println!("\nbench gate: PASS (tolerance {:.0}%)", TOLERANCE * 100.0);
        ExitCode::SUCCESS
    } else {
        eprintln!("\nbench gate: FAIL — a group regressed or went missing");
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips() {
        let mut map = BTreeMap::new();
        map.insert("a/b".to_string(), 123u64);
        map.insert("c".to_string(), 0u64);
        assert_eq!(from_json(&to_json(&map)).unwrap(), map);
        assert!(from_json("{\"x\": }").is_err());
        assert!(from_json("{\"x").is_err());
    }

    #[test]
    fn smoke_groups_are_never_gated() {
        assert!(is_smoke("filestore-x") && is_smoke("faulty-x"));
        assert!(!is_smoke("randwrite-qd8-64k/luks2"));
        let base: BTreeMap<String, u64> = [("filestore-x".to_string(), 100u64)].into();
        // A smoke row is ignored wherever it appears: regressed,
        // missing from the results, or absent from the baseline.
        assert!(compare(
            &[("filestore-x".to_string(), 10_000u64)].into(),
            &base
        ));
        assert!(compare(&BTreeMap::new(), &base));
        assert!(compare(
            &[("filestore-x".to_string(), 1u64)].into(),
            &BTreeMap::new()
        ));
    }

    #[test]
    fn compare_applies_the_tolerance() {
        let base: BTreeMap<String, u64> = [("g".to_string(), 100u64)].into();
        assert!(compare(&[("g".to_string(), 114u64)].into(), &base));
        assert!(!compare(&[("g".to_string(), 116u64)].into(), &base));
        // Improvements always pass; missing groups fail.
        assert!(compare(&[("g".to_string(), 10u64)].into(), &base));
        assert!(!compare(&BTreeMap::new(), &base));
    }
}
