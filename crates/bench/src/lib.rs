//! Workloads and harnesses that regenerate the paper's evaluation
//! (§3.2–3.3): a fio-like closed-loop generator, the paper's testbed
//! and variant definitions, and the sweep/report code behind every
//! figure.
//!
//! | Paper artifact | Bench target |
//! |---|---|
//! | Fig. 3a (read bandwidth) | `cargo bench -p vdisk-bench --bench fig3a_read_bandwidth` |
//! | Fig. 3b (write bandwidth) | `cargo bench -p vdisk-bench --bench fig3b_write_bandwidth` |
//! | Fig. 4 (write overhead %) | `cargo bench -p vdisk-bench --bench fig4_write_overhead` |
//! | §3.3 sector-count table | `cargo bench -p vdisk-bench --bench table_sector_overhead` |
//! | extensions (MAC, GCM, EME2, QD, 512 B) | `cargo bench -p vdisk-bench --bench ablations` |
//! | crypto primitive throughput | `cargo bench -p vdisk-bench --bench crypto_primitives` |
//!
//! Bandwidth numbers are **simulated time** (the cost model of
//! `vdisk-rados::TestbedProfile`, calibrated to the paper's 3-node
//! NVMe cluster); the encryption, layouts, LSM and object store all do
//! their real work.
//!
//! # Example
//!
//! ```
//! use vdisk_bench::fio::{IoPattern, JobSpec};
//! use vdisk_bench::testbed;
//!
//! let mut disk = testbed::bench_disk(
//!     &vdisk_core::EncryptionConfig::luks2_baseline(), 8 << 20, 1);
//! let spec = JobSpec { pattern: IoPattern::RandWrite, io_size: 65536,
//!                      queue_depth: 8, ops: 16, seed: 7 };
//! let stats = vdisk_bench::fio::run_job(&mut disk, &spec).unwrap();
//! assert!(stats.bandwidth_mb_s() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod fio;
pub mod testbed;
