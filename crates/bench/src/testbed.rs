//! The paper's testbed (§3.2) as reusable builders: IO-size sweep,
//! encryption variants, and cluster/disk construction.

use vdisk_core::{EncryptedImage, EncryptionConfig, MetaLayout};
use vdisk_crypto::rng::SeededIvSource;
use vdisk_rados::{Cluster, PayloadMode};
use vdisk_rbd::Image;

/// The paper's IO-size sweep: 4 KB to 4 MB (Fig. 3/4 x-axis).
pub const PAPER_IO_SIZES_KB: [u64; 11] = [4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096];

/// The queue depth fio was run with ("32 maximum parallel accesses").
pub const PAPER_QUEUE_DEPTH: usize = 32;

/// Image size used by the harness. The paper uses a 64 GiB image; the
/// simulated cost model has no cache effects that depend on image
/// size, so a smaller footprint sweeps faster at identical shapes.
pub const BENCH_IMAGE_SIZE: u64 = 128 << 20;

/// IO sizes in bytes.
#[must_use]
pub fn paper_io_sizes() -> Vec<u64> {
    PAPER_IO_SIZES_KB.iter().map(|kb| kb * 1024).collect()
}

/// One line of the paper's figure legend.
#[derive(Debug, Clone)]
pub struct Variant {
    /// Legend label ("LUKS2", "Unaligned", "Object end", "OMAP").
    pub label: &'static str,
    /// The encryption configuration behind it.
    pub config: EncryptionConfig,
}

/// The four variants of Fig. 3/4, in the paper's order.
#[must_use]
pub fn paper_variants() -> Vec<Variant> {
    vec![
        Variant {
            label: "LUKS2",
            config: EncryptionConfig::luks2_baseline(),
        },
        Variant {
            label: "Unaligned",
            config: EncryptionConfig::random_iv(MetaLayout::Unaligned),
        },
        Variant {
            label: "Object end",
            config: EncryptionConfig::random_iv(MetaLayout::ObjectEnd),
        },
        Variant {
            label: "OMAP",
            config: EncryptionConfig::random_iv(MetaLayout::Omap),
        },
    ]
}

/// The shared configuration of every bench cluster (payloads
/// discarded: identical cost plans, bounded memory). Both cluster
/// flavours derive from this builder so calibration changes apply to
/// all benchmark rows at once.
///
/// The client-side IV/metadata cache is **off** here: the paper's
/// figures measure the layouts' *inherent* per-sector metadata costs,
/// which the cache exists to hide. Cache ablations opt back in via
/// [`cached_bench_disk`].
fn bench_builder() -> vdisk_rados::ClusterBuilder {
    Cluster::builder()
        .payload_mode(PayloadMode::Discarded)
        .meta_cache_bytes(0)
        // Pinned, not host-derived: large-block write plans split over
        // the crypto lanes, so the lane count must not vary with the
        // runner's core count for the simulated numbers to be
        // bit-identical across hosts (the bench gate depends on that).
        .crypto_lanes(4)
        // Pinned to the in-memory backend, overriding any
        // `VDISK_BACKEND` environment selection: the figure harnesses
        // and the gated bench groups measure the simulated cost model,
        // which host-file IO must never perturb. FileStore bench rows
        // opt in explicitly via [`filestore_bench_disk`].
        .backend(vdisk_rados::BackendKind::Memory)
}

/// A fresh paper-calibrated cluster for benchmarking.
#[must_use]
pub fn bench_cluster() -> Cluster {
    bench_builder().build()
}

/// A fresh cluster that stores payloads (for integrity/GCM ablations,
/// which must decrypt real bytes).
#[must_use]
pub fn functional_cluster() -> Cluster {
    Cluster::builder().build()
}

/// Builds an encrypted disk of `size` bytes on a fresh bench cluster.
///
/// # Panics
///
/// Panics if image creation or formatting fails (benchmark setup).
#[must_use]
pub fn bench_disk(config: &EncryptionConfig, size: u64, seed: u64) -> EncryptedImage {
    disk_on(bench_cluster(), config, size, seed)
}

/// Builds an encrypted disk on a bench cluster with the per-shard
/// worker threads **forced on** — the setup for queue-depth workloads,
/// where submissions must genuinely overlap on the shard workers
/// regardless of the host's core count.
///
/// # Panics
///
/// Panics if image creation or formatting fails (benchmark setup).
#[must_use]
pub fn queued_bench_disk(config: &EncryptionConfig, size: u64, seed: u64) -> EncryptedImage {
    disk_on(
        bench_builder().concurrent_apply(true).build(),
        config,
        size,
        seed,
    )
}

/// Builds an encrypted disk with the client-side IV/metadata cache
/// **enabled** at its default 4 MiB budget, on an inline-mode bench
/// cluster (submissions apply at submit, so the reap-time cache fills
/// happen at deterministic points — identical cost plans to the
/// worker-thread mode, but hit patterns and therefore simulated
/// results are exactly reproducible across hosts; the bench gate
/// depends on that).
///
/// # Panics
///
/// Panics if image creation or formatting fails (benchmark setup).
#[must_use]
pub fn cached_bench_disk(config: &EncryptionConfig, size: u64, seed: u64) -> EncryptedImage {
    disk_on(
        bench_builder()
            .meta_cache_bytes(vdisk_rados::DEFAULT_META_CACHE_BYTES)
            .concurrent_apply(false)
            .build(),
        config,
        size,
        seed,
    )
}

/// A [`cached_bench_disk`] with an explicit crypto-lane count — the
/// serial-vs-parallel crypto comparison of the large-block QD 32
/// bench group pins both sides instead of inheriting the builder's
/// default (`lanes = 1` is the serial-crypto baseline).
///
/// The cluster is widened to 12 OSDs (replication factor unchanged):
/// on the default 3-OSD map every write's payload crosses **all
/// three** single-stream links, and at 1.55 GB/s per link that floor
/// sits above the 1.70 GB/s serial-crypto rate — the network would
/// hide the crypto pipeline entirely. Fanned out over 12 OSDs the
/// links drop below the client NIC, which is where the paper's
/// testbed actually saturates, and client-side crypto becomes the
/// serial bottleneck the lanes exist to remove.
///
/// # Panics
///
/// Panics if image creation or formatting fails (benchmark setup).
#[must_use]
pub fn cached_bench_disk_with_lanes(
    config: &EncryptionConfig,
    size: u64,
    seed: u64,
    lanes: usize,
) -> EncryptedImage {
    disk_on(
        bench_builder()
            .meta_cache_bytes(vdisk_rados::DEFAULT_META_CACHE_BYTES)
            .concurrent_apply(false)
            .osd_count(12)
            .crypto_lanes(lanes)
            .build(),
        config,
        size,
        seed,
    )
}

/// The cache-off twin of [`cached_bench_disk`]: identical cluster mode
/// (inline apply) so cache-on/cache-off comparisons differ in exactly
/// one variable.
#[must_use]
pub fn uncached_bench_disk(config: &EncryptionConfig, size: u64, seed: u64) -> EncryptedImage {
    disk_on(
        bench_builder().concurrent_apply(false).build(),
        config,
        size,
        seed,
    )
}

/// Builds an encrypted disk on a **file-backed** bench cluster rooted
/// at `dir` (inline apply, like [`cached_bench_disk`], so results stay
/// deterministic). The simulated cost plans are identical to the
/// in-memory backend's by construction — what this measures is that
/// the durable commit path stays functional under a bench workload;
/// its wall-clock is reported, never regression-gated.
///
/// # Panics
///
/// Panics if the store directory cannot be opened or formatting fails
/// (benchmark setup).
#[must_use]
pub fn filestore_bench_disk(
    config: &EncryptionConfig,
    size: u64,
    seed: u64,
    dir: std::path::PathBuf,
) -> EncryptedImage {
    disk_on(
        bench_builder()
            .backend(vdisk_rados::BackendKind::File { dir })
            .concurrent_apply(false)
            .build(),
        config,
        size,
        seed,
    )
}

/// A [`cached_bench_disk`] whose cluster carries a **fault plane**
/// injecting transient shard errors at `rate`, absorbed by the
/// default retry policy. Inline apply keeps the injection schedule —
/// a pure function of (seed, shard, draw index) — identical across
/// hosts, but the retry layer's backoff is real wall-clock sleep, so
/// rows built on this disk are reported, never regression-gated.
///
/// # Panics
///
/// Panics if image creation or formatting fails (benchmark setup).
#[must_use]
pub fn faulty_bench_disk(
    config: &EncryptionConfig,
    size: u64,
    seed: u64,
    rate: f64,
) -> EncryptedImage {
    disk_on(
        bench_builder()
            .meta_cache_bytes(vdisk_rados::DEFAULT_META_CACHE_BYTES)
            .concurrent_apply(false)
            .fault_plane(vdisk_rados::FaultConfig::new(seed).transient_rate(rate))
            .build(),
        config,
        size,
        seed,
    )
}

/// Builds `n` encrypted disks named `tenant-0..n` on **one shared**
/// inline-mode cached bench cluster — the multi-tenant analogue of
/// [`cached_bench_disk`]: every image's IO contends for the same
/// shards, and inline apply keeps completion order (and therefore the
/// fair scheduler's dispatch trace) bit-identical across hosts, which
/// the gated `multitenant-*` bench groups depend on.
///
/// # Panics
///
/// Panics if image creation or formatting fails (benchmark setup).
#[must_use]
pub fn tenant_bench_disks(
    config: &EncryptionConfig,
    n: usize,
    size: u64,
    seed: u64,
) -> Vec<EncryptedImage> {
    let cluster = bench_builder()
        .meta_cache_bytes(vdisk_rados::DEFAULT_META_CACHE_BYTES)
        .concurrent_apply(false)
        .build();
    (0..n)
        .map(|i| {
            named_disk_on(
                &cluster,
                &format!("tenant-{i}"),
                config,
                size,
                seed + i as u64,
            )
        })
        .collect()
}

fn disk_on(cluster: Cluster, config: &EncryptionConfig, size: u64, seed: u64) -> EncryptedImage {
    named_disk_on(&cluster, "bench", config, size, seed)
}

/// Builds an encrypted disk with an explicit image name, for clusters
/// hosting more than one bench image.
#[must_use]
pub fn named_disk_on(
    cluster: &Cluster,
    name: &str,
    config: &EncryptionConfig,
    size: u64,
    seed: u64,
) -> EncryptedImage {
    let image = Image::create(cluster, name, size).expect("create bench image");
    EncryptedImage::format_with_iv_source(
        image,
        config,
        b"bench-passphrase",
        Box::new(SeededIvSource::new(seed)),
    )
    .expect("format bench image")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_ascending_and_paper_shaped() {
        let sizes = paper_io_sizes();
        assert_eq!(sizes.first(), Some(&4096));
        assert_eq!(sizes.last(), Some(&(4 << 20)));
        assert!(sizes.windows(2).all(|w| w[1] == w[0] * 2));
    }

    #[test]
    fn variants_match_figure_legend() {
        let v = paper_variants();
        assert_eq!(v.len(), 4);
        assert_eq!(v[0].label, "LUKS2");
        assert_eq!(v[0].config.meta_entry_len(), 0);
        for variant in &v[1..] {
            // 16-byte IV + the 4-byte key-epoch tag.
            assert_eq!(variant.config.meta_entry_len(), 20);
            variant.config.validate().unwrap();
        }
    }

    #[test]
    fn bench_disk_builds() {
        let disk = bench_disk(&EncryptionConfig::random_iv_object_end(), 8 << 20, 1);
        assert_eq!(disk.image().size(), 8 << 20);
    }
}
