//! Sweep runners and report printers for the paper's figures.

use crate::fio::{self, IoPattern, JobSpec};
use crate::testbed::{self, Variant};
use vdisk_core::MetaLayout;

/// One measured point of a figure: a (variant, IO size) cell.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Variant legend label.
    pub label: &'static str,
    /// IO size in bytes.
    pub io_size: u64,
    /// Measured bandwidth in MB/s (simulated time).
    pub mb_s: f64,
}

/// Runs the full Fig. 3-style sweep: every variant × every IO size,
/// on a fresh preconditioned image per variant.
///
/// # Panics
///
/// Panics on IO-path failures (benchmark environment).
#[must_use]
pub fn run_sweep(pattern: IoPattern, image_size: u64, seed: u64) -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for variant in testbed::paper_variants() {
        points.extend(run_variant_sweep(&variant, pattern, image_size, seed));
    }
    points
}

/// Sweeps one variant across the paper's IO sizes.
///
/// # Panics
///
/// Panics on IO-path failures (benchmark environment).
#[must_use]
pub fn run_variant_sweep(
    variant: &Variant,
    pattern: IoPattern,
    image_size: u64,
    seed: u64,
) -> Vec<SweepPoint> {
    let mut disk = testbed::bench_disk(&variant.config, image_size, seed);
    fio::precondition(&mut disk).expect("precondition");
    let mut points = Vec::new();
    for io_size in testbed::paper_io_sizes() {
        let stats = fio::run_job(
            &mut disk,
            &JobSpec {
                pattern,
                io_size,
                queue_depth: testbed::PAPER_QUEUE_DEPTH,
                ops: fio::default_ops_for(io_size),
                seed: seed ^ io_size,
            },
        )
        .expect("run job");
        points.push(SweepPoint {
            label: variant.label,
            io_size,
            mb_s: stats.bandwidth_mb_s(),
        });
    }
    points
}

/// Looks up a cell.
#[must_use]
pub fn cell(points: &[SweepPoint], label: &str, io_size: u64) -> Option<f64> {
    points
        .iter()
        .find(|p| p.label == label && p.io_size == io_size)
        .map(|p| p.mb_s)
}

/// Write overhead of `label` vs the LUKS2 baseline at one IO size
/// (Fig. 4's y-axis: `1 - variant/baseline`, in percent).
#[must_use]
pub fn overhead_pct(points: &[SweepPoint], label: &str, io_size: u64) -> Option<f64> {
    let baseline = cell(points, "LUKS2", io_size)?;
    let variant = cell(points, label, io_size)?;
    Some((1.0 - variant / baseline) * 100.0)
}

/// Prints a Fig. 3-style bandwidth table (rows: IO size, columns:
/// variants).
pub fn print_bandwidth_table(title: &str, points: &[SweepPoint]) {
    println!("\n=== {title} ===");
    print!("{:>10}", "IO [KB]");
    for v in testbed::paper_variants() {
        print!("{:>12}", v.label);
    }
    println!();
    for io_size in testbed::paper_io_sizes() {
        print!("{:>10}", io_size / 1024);
        for v in testbed::paper_variants() {
            match cell(points, v.label, io_size) {
                Some(mb_s) => print!("{mb_s:>12.0}"),
                None => print!("{:>12}", "-"),
            }
        }
        println!();
    }
}

/// Prints the Fig. 4-style overhead table (percent vs LUKS2; lower is
/// better).
pub fn print_overhead_table(points: &[SweepPoint]) {
    println!("\n=== Fig. 4: write performance overhead vs LUKS2 (lower is better) ===");
    print!("{:>10}", "IO [KB]");
    for v in testbed::paper_variants().iter().skip(1) {
        print!("{:>12}", v.label);
    }
    println!();
    for io_size in testbed::paper_io_sizes() {
        print!("{:>10}", io_size / 1024);
        for v in testbed::paper_variants().iter().skip(1) {
            match overhead_pct(points, v.label, io_size) {
                Some(pct) => print!("{pct:>11.1}%"),
                None => print!("{:>12}", "-"),
            }
        }
        println!();
    }
}

/// A named shape check against the paper's qualitative results.
#[derive(Debug, Clone)]
pub struct ShapeCheck {
    /// What the paper claims.
    pub claim: &'static str,
    /// Whether this run reproduces it.
    pub pass: bool,
    /// Measured detail for the report.
    pub detail: String,
}

/// Evaluates the paper's qualitative claims about **write** behaviour
/// (abstract, §3.3) against a measured write sweep.
#[must_use]
pub fn check_write_shape(points: &[SweepPoint]) -> Vec<ShapeCheck> {
    let io_sizes = testbed::paper_io_sizes();
    let mut checks = Vec::new();

    // Claim 1: object-end write overhead stays within ~1–22%.
    let oe: Vec<f64> = io_sizes
        .iter()
        .filter_map(|&s| overhead_pct(points, "Object end", s))
        .collect();
    let oe_max = oe.iter().cloned().fold(f64::MIN, f64::max);
    let oe_min = oe.iter().cloned().fold(f64::MAX, f64::min);
    checks.push(ShapeCheck {
        claim: "object-end write overhead within the paper's 1-22% band",
        pass: oe_max <= 30.0 && oe_min >= -5.0,
        detail: format!("min {oe_min:.1}%, max {oe_max:.1}%"),
    });

    // Claim 2: at 4 KB, OMAP beats object end (the paper: "for the
    // small block sizes, the OMAP solution gives the best
    // performance").
    let omap_4k = overhead_pct(points, "OMAP", 4096).unwrap_or(f64::NAN);
    let oe_4k = overhead_pct(points, "Object end", 4096).unwrap_or(f64::NAN);
    checks.push(ShapeCheck {
        claim: "OMAP is the cheapest option at 4 KB writes",
        pass: omap_4k < oe_4k,
        detail: format!("OMAP {omap_4k:.1}% vs object-end {oe_4k:.1}%"),
    });

    // Claim 3: OMAP collapses at large IO (worst variant at 4 MB).
    let at_4m = |label: &str| overhead_pct(points, label, 4 << 20).unwrap_or(f64::NAN);
    checks.push(ShapeCheck {
        claim: "OMAP is the worst option at 4 MB writes (DB per-key cost)",
        pass: at_4m("OMAP") > at_4m("Object end") && at_4m("OMAP") > at_4m("Unaligned"),
        detail: format!(
            "OMAP {:.1}%, unaligned {:.1}%, object-end {:.1}%",
            at_4m("OMAP"),
            at_4m("Unaligned"),
            at_4m("Object end")
        ),
    });

    // Claim 4: unaligned pays more than object end at small/mid sizes
    // (read-modify-write penalty).
    let mid_sizes = [8192u64, 16384, 32768, 65536, 131_072];
    let worse_count = mid_sizes
        .iter()
        .filter(|&&s| {
            overhead_pct(points, "Unaligned", s).unwrap_or(0.0)
                > overhead_pct(points, "Object end", s).unwrap_or(0.0)
        })
        .count();
    checks.push(ShapeCheck {
        claim: "unaligned is costlier than object-end at small/mid IO (RMW)",
        pass: worse_count >= 4,
        detail: format!("{worse_count}/{} mid sizes", mid_sizes.len()),
    });

    // Claim 5: overheads shrink as IO grows for the raw-object layouts
    // (sector-count amortization, §3.3).
    for label in ["Unaligned", "Object end"] {
        let small = overhead_pct(points, label, 8192).unwrap_or(f64::NAN);
        let large = overhead_pct(points, label, 4 << 20).unwrap_or(f64::NAN);
        checks.push(ShapeCheck {
            claim: if label == "Unaligned" {
                "unaligned overhead shrinks from small to 4 MB IO"
            } else {
                "object-end overhead shrinks from small to 4 MB IO"
            },
            pass: large < small,
            detail: format!("{label}: {small:.1}% @8KB -> {large:.1}% @4MB"),
        });
    }
    checks
}

/// Evaluates the paper's qualitative claims about **read** behaviour
/// ("the object end approach closely mirrors the baseline where the
/// biggest difference we measure is 3%"; "the OMAP version fares
/// slightly worse").
#[must_use]
pub fn check_read_shape(points: &[SweepPoint]) -> Vec<ShapeCheck> {
    let io_sizes = testbed::paper_io_sizes();
    let mut checks = Vec::new();

    let max_overhead = |label: &str| -> f64 {
        io_sizes
            .iter()
            .filter_map(|&s| overhead_pct(points, label, s))
            .fold(f64::MIN, f64::max)
    };
    let oe = max_overhead("Object end");
    checks.push(ShapeCheck {
        claim: "object-end read overhead stays within a few percent (≤3% in the paper)",
        pass: oe <= 6.0,
        detail: format!("max {oe:.1}%"),
    });
    let ua = max_overhead("Unaligned");
    checks.push(ShapeCheck {
        claim: "unaligned reads perform close to baseline",
        pass: ua <= 10.0,
        detail: format!("max {ua:.1}%"),
    });
    let omap = max_overhead("OMAP");
    checks.push(ShapeCheck {
        claim: "OMAP reads fare slightly worse than the raw-object layouts",
        pass: omap >= oe && omap <= 35.0,
        detail: format!("max {omap:.1}% vs object-end {oe:.1}%"),
    });
    checks
}

/// Prints shape checks and returns whether all passed.
pub fn report_checks(checks: &[ShapeCheck]) -> bool {
    println!("\n--- shape checks vs paper claims ---");
    let mut all = true;
    for check in checks {
        let mark = if check.pass { "PASS" } else { "FAIL" };
        println!("[{mark}] {} ({})", check.claim, check.detail);
        all &= check.pass;
    }
    all
}

/// §3.3's theoretical sector-count analysis: physical 4 KB sectors
/// touched by one IO, per layout ("in a 4KB write/read, a minimum of
/// two physical disk sectors need to be accessed ... versus one in the
/// baseline. Whereas a 32KB IO typically requires 9 sectors ... versus
/// 8").
#[must_use]
pub fn theoretical_sectors(io_size: u64, layout: Option<MetaLayout>) -> u64 {
    let sectors = io_size / 4096;
    match layout {
        None => sectors,
        // One extra physical sector for the batched IVs (16 B each;
        // 4 KB holds IVs for 256 sectors — one extra suffices for IOs
        // up to 1 MB, two up to 2 MB, etc.).
        Some(MetaLayout::ObjectEnd) => sectors + (sectors * 16).div_ceil(4096),
        // Interleaved stride stretches the extent; round out to
        // physical sectors (+1 for the usual misaligned head/tail).
        Some(MetaLayout::Unaligned) => (sectors * (4096 + 16)).div_ceil(4096) + 1,
        // OMAP does not consume data-path sectors; its cost lives in
        // the DB (that is precisely why the sector arithmetic "does
        // not work" for it, §3.3).
        Some(MetaLayout::Omap) => sectors,
    }
}

/// Prints the §3.3 sector-count table.
pub fn print_sector_table() {
    println!("\n=== §3.3: theoretical physical sectors touched per IO ===");
    println!(
        "{:>10}{:>10}{:>12}{:>12}{:>22}",
        "IO [KB]", "LUKS2", "Object end", "Unaligned", "overhead (obj end)"
    );
    for io_size in testbed::paper_io_sizes() {
        let base = theoretical_sectors(io_size, None);
        let oe = theoretical_sectors(io_size, Some(MetaLayout::ObjectEnd));
        let ua = theoretical_sectors(io_size, Some(MetaLayout::Unaligned));
        println!(
            "{:>10}{:>10}{:>12}{:>12}{:>21.1}%",
            io_size / 1024,
            base,
            oe,
            ua,
            (oe as f64 / base as f64 - 1.0) * 100.0
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_examples_hold() {
        // "in a 4KB write/read, a minimum of two physical disk sectors
        // need to be accessed (one for the data and one for the IV)
        // versus one in the baseline"
        assert_eq!(theoretical_sectors(4096, None), 1);
        assert_eq!(theoretical_sectors(4096, Some(MetaLayout::ObjectEnd)), 2);
        // "a 32KB IO typically requires 9 sectors to be accessed
        // versus 8 in the baseline"
        assert_eq!(theoretical_sectors(32768, None), 8);
        assert_eq!(theoretical_sectors(32768, Some(MetaLayout::ObjectEnd)), 9);
    }

    #[test]
    fn theoretical_overhead_decreases_with_size() {
        let overhead = |s| {
            theoretical_sectors(s, Some(MetaLayout::ObjectEnd)) as f64
                / theoretical_sectors(s, None) as f64
        };
        assert!(overhead(4096) > overhead(65536));
        assert!(overhead(65536) > overhead(4 << 20));
    }

    #[test]
    fn small_sweep_produces_checkable_points() {
        // A miniature sweep (one variant, few sizes) sanity-checks the
        // plumbing without the full figure cost.
        let variant = testbed::paper_variants().remove(2); // object end
        let points = run_variant_sweep(&variant, IoPattern::RandWrite, 16 << 20, 3);
        assert_eq!(points.len(), testbed::paper_io_sizes().len());
        assert!(points.iter().all(|p| p.mb_s > 0.0));
        // Bandwidth grows from 4 KB to 4 MB.
        assert!(
            cell(&points, "Object end", 4 << 20).unwrap()
                > cell(&points, "Object end", 4096).unwrap()
        );
    }
}
