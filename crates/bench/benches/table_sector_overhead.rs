//! Regenerates §3.3's in-text theoretical analysis: physical sectors
//! touched per IO and the implied overhead per layout.

use vdisk_bench::figures;

fn main() {
    figures::print_sector_table();
    // The paper's two worked examples, asserted:
    assert_eq!(figures::theoretical_sectors(4096, None), 1);
    assert_eq!(
        figures::theoretical_sectors(4096, Some(vdisk_core::MetaLayout::ObjectEnd)),
        2,
        "4KB IO: two sectors (data + IV) vs one"
    );
    assert_eq!(figures::theoretical_sectors(32768, None), 8);
    assert_eq!(
        figures::theoretical_sectors(32768, Some(vdisk_core::MetaLayout::ObjectEnd)),
        9,
        "32KB IO: 9 sectors vs 8"
    );
    println!("\n§3.3 worked examples: OK (4KB -> 2 vs 1 sectors; 32KB -> 9 vs 8)");
}
