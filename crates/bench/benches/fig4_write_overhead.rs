//! Regenerates Fig. 4: write performance overhead (percent vs the
//! LUKS2 baseline; lower is better) — derived from the Fig. 3b sweep.

use vdisk_bench::figures;
use vdisk_bench::fio::IoPattern;
use vdisk_bench::testbed;

fn main() {
    println!("Reproducing Fig. 4 (write overhead vs LUKS2)");
    let points = figures::run_sweep(IoPattern::RandWrite, testbed::BENCH_IMAGE_SIZE, 0xF164);
    figures::print_overhead_table(&points);
    let checks = figures::check_write_shape(&points);
    let ok = figures::report_checks(&checks);
    // The abstract's headline claim: 1%-22% overhead for the best
    // option (object end), depending on IO size.
    let range: Vec<f64> = testbed::paper_io_sizes()
        .iter()
        .filter_map(|&s| figures::overhead_pct(&points, "Object end", s))
        .collect();
    let min = range.iter().cloned().fold(f64::MAX, f64::min);
    let max = range.iter().cloned().fold(f64::MIN, f64::max);
    println!("\nheadline: object-end write overhead spans {min:.1}%..{max:.1}% (paper: 1%..22%)");
    println!(
        "fig4 shape reproduction: {}",
        if ok {
            "OK"
        } else {
            "DEVIATION (see FAIL lines)"
        }
    );
}
