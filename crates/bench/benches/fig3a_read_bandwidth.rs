//! Regenerates Fig. 3a: random-read bandwidth vs IO size for the
//! LUKS2 baseline and the three random-IV layouts.

use vdisk_bench::figures;
use vdisk_bench::fio::IoPattern;
use vdisk_bench::testbed;

fn main() {
    println!(
        "Reproducing Fig. 3a (randread, QD {}, {} MiB image)",
        testbed::PAPER_QUEUE_DEPTH,
        testbed::BENCH_IMAGE_SIZE >> 20
    );
    let points = figures::run_sweep(IoPattern::RandRead, testbed::BENCH_IMAGE_SIZE, 0xA11CE);
    figures::print_bandwidth_table("Fig. 3a: read bandwidth [MB/s]", &points);
    let checks = figures::check_read_shape(&points);
    let ok = figures::report_checks(&checks);
    println!(
        "\nfig3a shape reproduction: {}",
        if ok {
            "OK"
        } else {
            "DEVIATION (see FAIL lines)"
        }
    );
}
