//! Ablations beyond the paper's headline figures: the §2.2/§4
//! extensions (per-sector MAC, AES-GCM, EME2 wide-block), the LUKS1
//! 512-byte-sector comparison (footnote 4), and a queue-depth sweep.

use vdisk_bench::fio::{self, IoPattern, JobSpec};
use vdisk_bench::testbed;
use vdisk_core::{Cipher, EncryptedImage, EncryptionConfig, MetaLayout};
use vdisk_crypto::rng::SeededIvSource;
use vdisk_rados::{Cluster, PayloadMode};
use vdisk_rbd::Image;

const IMAGE: u64 = 64 << 20;
const SIZES: [u64; 4] = [4 << 10, 64 << 10, 512 << 10, 4 << 20];

fn disk_for(config: &EncryptionConfig) -> EncryptedImage {
    let cluster = Cluster::builder()
        .payload_mode(PayloadMode::Discarded)
        .build();
    let image = Image::create(&cluster, "ablate", IMAGE).expect("image");
    EncryptedImage::format_with_iv_source(image, config, b"pass", Box::new(SeededIvSource::new(11)))
        .expect("format")
}

fn write_bw(config: &EncryptionConfig, io_size: u64, qd: usize) -> f64 {
    let mut disk = disk_for(config);
    fio::precondition(&mut disk).expect("precondition");
    fio::run_job(
        &mut disk,
        &JobSpec {
            pattern: IoPattern::RandWrite,
            io_size,
            queue_depth: qd,
            ops: fio::default_ops_for(io_size).min(192),
            seed: 5,
        },
    )
    .expect("job")
    .bandwidth_mb_s()
}

fn main() {
    let qd = testbed::PAPER_QUEUE_DEPTH;

    println!("=== Ablation 1: extensions on top of object-end (write bandwidth, MB/s) ===");
    let variants: Vec<(&str, EncryptionConfig)> = vec![
        ("LUKS2 baseline", EncryptionConfig::luks2_baseline()),
        ("random IV", EncryptionConfig::random_iv_object_end()),
        (
            "random IV + MAC",
            EncryptionConfig::random_iv_object_end().with_mac(),
        ),
        (
            "random IV + MAC + snap-bind",
            EncryptionConfig::random_iv_object_end()
                .with_mac()
                .with_snapshot_binding(),
        ),
        (
            "AES-GCM (auth enc)",
            EncryptionConfig::random_iv(MetaLayout::ObjectEnd).with_cipher(Cipher::Aes256Gcm),
        ),
        (
            "EME2 wide-block (det.)",
            EncryptionConfig::luks2_baseline().with_cipher(Cipher::Eme2Aes256),
        ),
    ];
    print!("{:>28}", "variant \\ IO");
    for s in SIZES {
        print!("{:>10}K", s / 1024);
    }
    println!();
    let mut baseline_row = Vec::new();
    for (label, config) in &variants {
        print!("{label:>28}");
        for (i, &s) in SIZES.iter().enumerate() {
            let bw = write_bw(config, s, qd);
            if *label == "LUKS2 baseline" {
                baseline_row.push(bw);
            }
            let pct = if baseline_row.len() > i {
                format!(" ({:+.0}%)", (bw / baseline_row[i] - 1.0) * 100.0)
            } else {
                String::new()
            };
            print!("{:>7.0}{pct:<4}", bw);
        }
        println!();
    }

    println!("\n=== Ablation 2: 512 B sectors (LUKS1, fn. 4) vs 4 KB (LUKS2) — OMAP layout ===");
    // The footnote-4 effect: with 512 B encryption sectors every IO
    // carries 8x the per-sector entries. OMAP pays per key, so the
    // cost is directly visible there; and the metadata footprint grows
    // 8x for every layout.
    for io in [4u64 << 10, 64 << 10] {
        let base = write_bw(&EncryptionConfig::luks2_baseline(), io, qd);
        for (label, ss) in [("4 KB sectors", 4096u32), ("512 B sectors", 512)] {
            let config = EncryptionConfig::random_iv(MetaLayout::Omap).with_sector_size(ss);
            let bw = write_bw(&config, io, qd);
            println!(
                "{:>4}K IO, {label:>14}: {bw:>6.0} MB/s ({:+.0}% vs baseline)",
                io / 1024,
                (bw / base - 1.0) * 100.0
            );
        }
    }
    let per_tb = |ss: u64| (1u64 << 40) / ss * 16 / (1 << 20);
    println!(
        "metadata footprint per TB: {} MiB at 4 KB sectors vs {} MiB at 512 B sectors",
        per_tb(4096),
        per_tb(512)
    );

    println!("\n=== Ablation 3: queue-depth sweep (object end, 64 KB writes) ===");
    for qd in [1usize, 4, 8, 16, 32, 64] {
        let bw = write_bw(&EncryptionConfig::random_iv_object_end(), 64 << 10, qd);
        println!("QD {qd:>3}: {bw:>8.0} MB/s");
    }
}
