//! Regenerates Fig. 3b: random-write bandwidth vs IO size for the
//! LUKS2 baseline and the three random-IV layouts.

use vdisk_bench::figures;
use vdisk_bench::fio::IoPattern;
use vdisk_bench::testbed;

fn main() {
    println!(
        "Reproducing Fig. 3b (randwrite, QD {}, {} MiB image)",
        testbed::PAPER_QUEUE_DEPTH,
        testbed::BENCH_IMAGE_SIZE >> 20
    );
    let points = figures::run_sweep(IoPattern::RandWrite, testbed::BENCH_IMAGE_SIZE, 0xB0B);
    figures::print_bandwidth_table("Fig. 3b: write bandwidth [MB/s]", &points);
    let checks = figures::check_write_shape(&points);
    let ok = figures::report_checks(&checks);
    println!(
        "\nfig3b shape reproduction: {}",
        if ok {
            "OK"
        } else {
            "DEVIATION (see FAIL lines)"
        }
    );
}
