//! Criterion microbenchmarks of every from-scratch primitive on
//! 4 KB sectors — the client-side encryption cost of §3.2's setup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vdisk_crypto::cbc::CbcEssiv;
use vdisk_crypto::eme2::Eme2;
use vdisk_crypto::gcm::AesGcm;
use vdisk_crypto::hmac::hmac_sha256;
use vdisk_crypto::sha256::sha256;
use vdisk_crypto::xts::XtsCipher;

const SECTOR: usize = 4096;

fn bench_sector_ciphers(c: &mut Criterion) {
    let mut group = c.benchmark_group("sector-ciphers");
    group.throughput(Throughput::Bytes(SECTOR as u64));
    group.sample_size(20);

    let xts128 = XtsCipher::new(&[7u8; 32]).unwrap();
    let xts256 = XtsCipher::new(&[7u8; 64]).unwrap();
    let gcm = AesGcm::new(&[7u8; 32]).unwrap();
    let eme2 = Eme2::new(&[7u8; 32]).unwrap();
    let cbc = CbcEssiv::new(&[7u8; 32]).unwrap();
    let tweak = XtsCipher::tweak_from_sector_number(42);

    group.bench_function(BenchmarkId::new("encrypt", "aes-128-xts"), |b| {
        let mut buf = vec![0u8; SECTOR];
        b.iter(|| xts128.encrypt_sector(&tweak, &mut buf).unwrap());
    });
    group.bench_function(BenchmarkId::new("encrypt", "aes-256-xts"), |b| {
        let mut buf = vec![0u8; SECTOR];
        b.iter(|| xts256.encrypt_sector(&tweak, &mut buf).unwrap());
    });
    group.bench_function(BenchmarkId::new("decrypt", "aes-256-xts"), |b| {
        let mut buf = vec![0u8; SECTOR];
        b.iter(|| xts256.decrypt_sector(&tweak, &mut buf).unwrap());
    });
    group.bench_function(BenchmarkId::new("encrypt", "aes-256-gcm"), |b| {
        let mut buf = vec![0u8; SECTOR];
        b.iter(|| gcm.encrypt(&[1u8; 12], b"lba", &mut buf));
    });
    group.bench_function(BenchmarkId::new("encrypt", "eme2-aes-256"), |b| {
        let mut buf = vec![0u8; SECTOR];
        b.iter(|| eme2.encrypt_sector(&tweak, &mut buf).unwrap());
    });
    group.bench_function(BenchmarkId::new("encrypt", "aes-256-cbc-essiv"), |b| {
        let mut buf = vec![0u8; SECTOR];
        b.iter(|| cbc.encrypt_sector(42, &mut buf).unwrap());
    });
    group.finish();
}

fn bench_hashing(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash-mac");
    group.throughput(Throughput::Bytes(SECTOR as u64));
    group.sample_size(20);
    let data = vec![0xABu8; SECTOR];
    group.bench_function("sha256-4k", |b| b.iter(|| sha256(&data)));
    group.bench_function("hmac-sha256-4k", |b| b.iter(|| hmac_sha256(b"key", &data)));
    group.finish();
}

criterion_group!(benches, bench_sector_ciphers, bench_hashing);
criterion_main!(benches);
