//! Per-sector vs. batched write dispatch across the metadata layouts.
//!
//! Measures the client-side wall-clock cost of the write path (extent
//! planning, in-place encryption, transaction build, batch dispatch)
//! for 4 KB / 64 KB / 1 MB requests. The `batched` rows go through
//! `EncryptedImage::write` once per request; the `per-sector` rows
//! replay the legacy dispatch by issuing one write per 4 KB sector.
//! Both paths store identical bytes (asserted by the
//! `batch_pipeline` integration test); only their costs differ.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vdisk_bench::testbed;
use vdisk_core::{EncryptedImage, EncryptionConfig, MetaLayout};

const IMAGE: u64 = 32 << 20;
const SIZES: [(u64, &str); 3] = [(4 << 10, "4K"), (64 << 10, "64K"), (1 << 20, "1M")];

fn variants() -> Vec<(&'static str, EncryptionConfig)> {
    vec![
        ("luks2", EncryptionConfig::luks2_baseline()),
        (
            "unaligned",
            EncryptionConfig::random_iv(MetaLayout::Unaligned),
        ),
        (
            "object-end",
            EncryptionConfig::random_iv(MetaLayout::ObjectEnd),
        ),
        ("omap", EncryptionConfig::random_iv(MetaLayout::Omap)),
    ]
}

fn write_batched(disk: &mut EncryptedImage, io_size: u64) {
    let payload = vec![0xB5u8; io_size as usize];
    disk.write(0, &payload).expect("batched write");
}

fn write_per_sector(disk: &mut EncryptedImage, io_size: u64) {
    let payload = vec![0xB5u8; io_size as usize];
    for (i, sector) in payload.chunks(4096).enumerate() {
        disk.write(i as u64 * 4096, sector)
            .expect("per-sector write");
    }
}

fn bench_write_dispatch(c: &mut Criterion) {
    for (label, config) in variants() {
        let mut group = c.benchmark_group(format!("write-dispatch/{label}"));
        for (io_size, size_label) in SIZES {
            group.throughput(Throughput::Bytes(io_size));
            let mut disk = testbed::bench_disk(&config, IMAGE, 11);
            group.bench_function(BenchmarkId::new("batched", size_label), |b| {
                b.iter(|| write_batched(&mut disk, io_size));
            });
            let mut disk = testbed::bench_disk(&config, IMAGE, 11);
            group.bench_function(BenchmarkId::new("per-sector", size_label), |b| {
                b.iter(|| write_per_sector(&mut disk, io_size));
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_write_dispatch);
criterion_main!(benches);
