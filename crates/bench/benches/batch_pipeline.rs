//! Per-sector vs. batched write dispatch across the metadata layouts,
//! batch application scaling across cluster state shards, and
//! queue-depth scaling through the real submission queue.
//!
//! The dispatch rows measure the client-side wall-clock cost of the
//! write path (extent planning, in-place encryption, transaction
//! build, batch dispatch) for 4 KB / 64 KB / 1 MB requests. The
//! `batched` rows go through `EncryptedImage::write` once per request;
//! the `per-sector` rows replay the legacy dispatch by issuing one
//! write per 4 KB sector. Both paths store identical bytes (asserted
//! by the `batch_pipeline` integration test); only their costs differ.
//!
//! The `shard-scaling` rows apply one multi-object batch directly via
//! `Cluster::execute_batch` against clusters built with 1 / 4 / 8
//! state shards: the same 32-object batch, so the only variable is how
//! much of its application runs concurrently.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vdisk_bench::fio::{self, IoPattern, JobSpec};
use vdisk_bench::testbed;
use vdisk_core::{EncryptedImage, EncryptionConfig, MetaLayout};
use vdisk_rados::{Cluster, Transaction};

const IMAGE: u64 = 32 << 20;
const SIZES: [(u64, &str); 3] = [(4 << 10, "4K"), (64 << 10, "64K"), (1 << 20, "1M")];

fn variants() -> Vec<(&'static str, EncryptionConfig)> {
    vec![
        ("luks2", EncryptionConfig::luks2_baseline()),
        (
            "unaligned",
            EncryptionConfig::random_iv(MetaLayout::Unaligned),
        ),
        (
            "object-end",
            EncryptionConfig::random_iv(MetaLayout::ObjectEnd),
        ),
        ("omap", EncryptionConfig::random_iv(MetaLayout::Omap)),
    ]
}

fn write_batched(disk: &mut EncryptedImage, io_size: u64) {
    let payload = vec![0xB5u8; io_size as usize];
    disk.write(0, &payload).expect("batched write");
}

fn write_per_sector(disk: &mut EncryptedImage, io_size: u64) {
    let payload = vec![0xB5u8; io_size as usize];
    for (i, sector) in payload.chunks(4096).enumerate() {
        disk.write(i as u64 * 4096, sector)
            .expect("per-sector write");
    }
}

fn bench_write_dispatch(c: &mut Criterion) {
    for (label, config) in variants() {
        let mut group = c.benchmark_group(format!("write-dispatch/{label}"));
        for (io_size, size_label) in SIZES {
            group.throughput(Throughput::Bytes(io_size));
            let mut disk = testbed::bench_disk(&config, IMAGE, 11);
            group.bench_function(BenchmarkId::new("batched", size_label), |b| {
                b.iter(|| write_batched(&mut disk, io_size));
            });
            let mut disk = testbed::bench_disk(&config, IMAGE, 11);
            group.bench_function(BenchmarkId::new("per-sector", size_label), |b| {
                b.iter(|| write_per_sector(&mut disk, io_size));
            });
        }
        group.finish();
    }
}

/// One multi-object batch: `objects` transactions of `write_size`
/// bytes each, to distinct objects (distinct placement groups, so the
/// batch spans many shards when the cluster has them).
fn shard_batch(objects: usize, write_size: usize) -> Vec<Transaction> {
    (0..objects)
        .map(|i| {
            let mut tx = Transaction::new(format!("shardbench.{i:04}"));
            tx.write(0, vec![0xC3u8; write_size]);
            tx
        })
        .collect()
}

fn bench_shard_scaling(c: &mut Criterion) {
    const OBJECTS: usize = 32;
    const WRITE_SIZE: usize = 256 << 10;
    let mut group = c.benchmark_group("shard-scaling/batch-apply");
    group.throughput(Throughput::Bytes((OBJECTS * WRITE_SIZE) as u64));
    // Build the batch once; per-iteration cost is one flat memcpy
    // clone (identical across rows) plus the apply under test — not
    // 32 allocations and `format!`s of setup.
    let template = shard_batch(OBJECTS, WRITE_SIZE);
    for shards in [1usize, 4, 8] {
        let cluster = Cluster::builder().shard_count(shards).build();
        group.bench_function(BenchmarkId::new("shards", shards), |b| {
            b.iter(|| {
                cluster
                    .execute_batch(template.clone())
                    .expect("batch applies")
            });
        });
    }
    group.finish();
}

/// Randwrite through the real submission queue at increasing depth:
/// the zero-copy owned-buffer path plus cross-submission overlap on
/// the shard workers. QD 1 is the old one-IO-at-a-time client; the
/// QD 8/32 rows show what keeping IOs in flight buys in wall-clock.
fn bench_queue_depth(c: &mut Criterion) {
    const IO_SIZE: u64 = 16 << 10;
    const OPS: u64 = 64;
    let mut group = c.benchmark_group("queue-depth/randwrite-16k");
    group.throughput(Throughput::Bytes(IO_SIZE * OPS));
    for qd in [1usize, 8, 32] {
        let mut disk =
            testbed::queued_bench_disk(&EncryptionConfig::random_iv_object_end(), IMAGE, 17);
        group.bench_function(BenchmarkId::new("qd", qd), |b| {
            b.iter(|| {
                fio::run_job(
                    &mut disk,
                    &JobSpec {
                        pattern: IoPattern::RandWrite,
                        io_size: IO_SIZE,
                        queue_depth: qd,
                        ops: OPS,
                        seed: 23,
                    },
                )
                .expect("queue-depth job")
            });
        });
    }
    group.finish();
}

/// Read-heavy randread through the full pipeline with the client-side
/// IV/metadata cache on vs off: the cache-on rows skip the per-extent
/// metadata fetch (object-end's second read extent, OMAP's range
/// lookup) on every warmed slot, which shows up both in wall-clock
/// (fewer store ops executed) and in the replayed simulated cost.
fn bench_meta_cache_reads(c: &mut Criterion) {
    const IMAGE_SMALL: u64 = 8 << 20;
    const IO_SIZE: u64 = 64 << 10;
    const OPS: u64 = 48;
    let spec = JobSpec {
        pattern: IoPattern::RandRead,
        io_size: IO_SIZE,
        queue_depth: 8,
        ops: OPS,
        seed: 29,
    };
    for (label, config) in [
        (
            "object-end",
            EncryptionConfig::random_iv(MetaLayout::ObjectEnd),
        ),
        ("omap", EncryptionConfig::random_iv(MetaLayout::Omap)),
    ] {
        let mut group = c.benchmark_group(format!("meta-cache/randread-64k/{label}"));
        group.throughput(Throughput::Bytes(IO_SIZE * OPS));
        let mut disk = testbed::cached_bench_disk(&config, IMAGE_SMALL, 31);
        fio::precondition(&mut disk).expect("precondition");
        fio::run_job(&mut disk, &spec).expect("warmup fills the cache");
        group.bench_function("cache-on", |b| {
            b.iter(|| fio::run_job(&mut disk, &spec).expect("cached job"));
        });
        let mut disk = testbed::uncached_bench_disk(&config, IMAGE_SMALL, 31);
        fio::precondition(&mut disk).expect("precondition");
        group.bench_function("cache-off", |b| {
            b.iter(|| fio::run_job(&mut disk, &spec).expect("uncached job"));
        });
        group.finish();
    }
}

/// The realistic-churn row: 70/30 randrw at QD 8 on a cached disk,
/// exercising the invalidation path (reads fill, interleaved
/// overwrites purge) rather than a pure warm working set.
fn bench_meta_cache_churn(c: &mut Criterion) {
    const IMAGE_SMALL: u64 = 8 << 20;
    let spec = fio::CHURN_70_30_QD8;
    let config = EncryptionConfig::random_iv(MetaLayout::ObjectEnd);
    let mut group = c.benchmark_group("meta-cache/randrw70-16k/object-end");
    group.throughput(Throughput::Bytes(spec.io_size * spec.ops));
    let mut disk = testbed::cached_bench_disk(&config, IMAGE_SMALL, 41);
    fio::precondition(&mut disk).expect("precondition");
    group.bench_function("cache-on", |b| {
        b.iter(|| fio::run_job(&mut disk, &spec).expect("churn job"));
    });
    let mut disk = testbed::uncached_bench_disk(&config, IMAGE_SMALL, 41);
    fio::precondition(&mut disk).expect("precondition");
    group.bench_function("cache-off", |b| {
        b.iter(|| fio::run_job(&mut disk, &spec).expect("churn job"));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_write_dispatch,
    bench_shard_scaling,
    bench_queue_depth,
    bench_meta_cache_reads,
    bench_meta_cache_churn
);
criterion_main!(benches);
