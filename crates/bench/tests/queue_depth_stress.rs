//! Queue-depth stress over the real submission queue: a fio randwrite
//! job at QD ≥ 8 through [`vdisk_core::EncryptedIoQueue`], with the
//! cluster's per-shard workers forced on. Asserts the concurrency the
//! paper's bandwidth argument needs:
//!
//! - the client genuinely kept ≥ QD submissions open at once
//!   (`queue_depth_peak`, client-bracketed and therefore deterministic);
//! - ops from *different* submissions were in flight on distinct shard
//!   workers at the same instant (`shard_concurrency_peak > 1` —
//!   wall-clock overlap, asserted where a second core exists to
//!   realize it);
//! - the workload's data is correct (read-back verification).
//!
//! CI runs this under `--release` so the overlap is exercised with
//! optimizations on.

use vdisk_bench::fio::{self, IoPattern, JobSpec};
use vdisk_bench::testbed;
use vdisk_core::{EncryptedImage, EncryptionConfig, IoOp, IoPayload};
use vdisk_crypto::rng::SeededIvSource;
use vdisk_rados::Cluster;
use vdisk_rbd::Image;

const IMAGE_SIZE: u64 = 64 << 20;
const QD: usize = 8;

/// A stored-payload disk (so read-back verification sees real bytes)
/// with shard workers forced on.
fn stored_queued_disk() -> EncryptedImage {
    stored_queued_disk_with_lanes(None)
}

/// [`stored_queued_disk`] with an explicit crypto-lane count (None
/// inherits the host-derived default).
fn stored_queued_disk_with_lanes(lanes: Option<usize>) -> EncryptedImage {
    let mut builder = Cluster::builder().concurrent_apply(true);
    if let Some(lanes) = lanes {
        builder = builder.crypto_lanes(lanes);
    }
    let cluster = builder.build();
    let image = Image::create(&cluster, "qd-stress", IMAGE_SIZE).expect("create image");
    EncryptedImage::format_with_iv_source(
        image,
        &EncryptionConfig::random_iv_object_end(),
        b"qd-stress",
        Box::new(SeededIvSource::new(11)),
    )
    .expect("format image")
}

#[test]
fn qd8_randwrite_keeps_submissions_in_flight_across_shards() {
    let mut disk =
        testbed::queued_bench_disk(&EncryptionConfig::random_iv_object_end(), IMAGE_SIZE, 5);
    fio::precondition(&mut disk).expect("precondition");
    let stats = fio::run_job(
        &mut disk,
        &JobSpec {
            pattern: IoPattern::RandWrite,
            io_size: 16 << 10,
            queue_depth: QD,
            ops: 512,
            seed: 9,
        },
    )
    .expect("randwrite job");
    assert_eq!(stats.ops, 512);
    assert!(stats.bandwidth_mb_s() > 0.0);

    let cluster = disk.image().cluster();
    let exec = cluster.exec_stats();
    assert!(
        exec.queue_depth_peak >= QD as u64,
        "a depth-{QD} job must keep at least {QD} submissions open, got {}",
        exec.queue_depth_peak
    );
    assert!(exec.shard_fanout_max >= 1);
    assert!(exec.shard_concurrency_peak >= 1);
    assert!(exec.shard_concurrency_peak <= cluster.shard_count() as u64);
    // Wall-clock overlap of ops from different submissions needs a
    // second core to be guaranteed; with one, the workers drain in
    // lockstep with the submitter and the bound is vacuous.
    if std::thread::available_parallelism().map_or(1, usize::from) > 1 {
        assert!(
            exec.shard_concurrency_peak > 1,
            "QD {QD} randwrite must overlap ops from different submissions \
             across shard workers, got peak {}",
            exec.shard_concurrency_peak
        );
    }
}

#[test]
fn deep_encrypted_queue_round_trips_under_overlap() {
    let mut disk = stored_queued_disk();
    let mut queue = disk.io_queue();
    // 64 writes with distinct fills over 16 slots — heavy same-sector
    // overlap, all in flight together — then 16 reads, then a fence.
    for i in 0..64u64 {
        let slot = i % 16;
        queue
            .submit(IoOp::Write {
                offset: slot * (256 << 10),
                data: vec![(i + 1) as u8; 256 << 10],
            })
            .expect("submit write");
    }
    let mut read_ids = Vec::new();
    for slot in 0..16u64 {
        let completion = queue
            .submit(IoOp::Read {
                offset: slot * (256 << 10),
                len: 256 << 10,
            })
            .expect("submit read");
        read_ids.push((completion.id(), slot));
    }
    let results = queue.fence().expect("fence");
    assert_eq!(results.len(), 80);
    for result in results {
        if let IoPayload::Data(data) = result.payload {
            let slot = read_ids
                .iter()
                .find(|(id, _)| *id == result.completion.id())
                .expect("read id known")
                .1;
            // Slot s was last written by submission 48 + s (fill 49+s).
            let expected = (49 + slot) as u8;
            assert!(
                data.iter().all(|&b| b == expected),
                "slot {slot}: queued read must see the last queued write"
            );
        }
    }
    let exec = disk.image().cluster().exec_stats();
    assert!(exec.queue_depth_peak >= 80);
}

/// QD 32 at the bench gate's large-block size, with the parallel
/// crypto pipeline forced to 4 lanes: every 256 KiB write crosses the
/// scoped-thread encrypt path (the size is above the parallel
/// threshold) while 32 submissions stay open, and the queued reads
/// that follow decrypt incrementally as each shard's data lands. The
/// read-back proves the lanes reassemble ciphertext, metadata, and
/// epoch tags exactly like the serial pipeline under real overlap.
#[test]
fn qd32_large_block_parallel_crypto_round_trips() {
    const IO: u64 = 256 << 10;
    let mut disk = stored_queued_disk_with_lanes(Some(4));
    let mut queue = disk.io_queue();
    // Two full QD-32 waves of writes over 32 distinct slots (the
    // second wave overwrites the first in flight), then reads.
    for wave in 0..2u64 {
        for slot in 0..32u64 {
            queue
                .submit(IoOp::Write {
                    offset: slot * IO,
                    data: vec![(wave * 32 + slot + 1) as u8; IO as usize],
                })
                .expect("submit write");
        }
    }
    let mut read_ids = Vec::new();
    for slot in 0..32u64 {
        let completion = queue
            .submit(IoOp::Read {
                offset: slot * IO,
                len: IO,
            })
            .expect("submit read");
        read_ids.push((completion.id(), slot));
    }
    let results = queue.fence().expect("fence");
    assert_eq!(results.len(), 96);
    let mut verified = 0;
    for result in results {
        if let IoPayload::Data(data) = result.payload {
            let slot = read_ids
                .iter()
                .find(|(id, _)| *id == result.completion.id())
                .expect("read id known")
                .1;
            let expected = (32 + slot + 1) as u8; // wave-2 fill
            assert!(
                data.iter().all(|&b| b == expected),
                "slot {slot}: parallel-crypto read must see the second-wave write"
            );
            verified += 1;
        }
    }
    assert_eq!(verified, 32);
    let exec = disk.image().cluster().exec_stats();
    assert!(
        exec.queue_depth_peak >= 96,
        "all 96 submissions must have been open at once, got {}",
        exec.queue_depth_peak
    );
}
