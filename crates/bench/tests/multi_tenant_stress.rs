//! Many-images multi-tenant stress: a fleet of tenants with mixed
//! weights and workloads driving their own encrypted images on one
//! shared cluster through the client runtime's admission control and
//! weighted fair scheduler. Asserts the QoS acceptance bar:
//!
//! - 3:1 weights yield completed-op throughput within 2x of 3:1 at
//!   the contended stop point, and **no tenant starves**;
//! - tenants on separate threads sharing one runtime all complete
//!   with their data intact (cross-thread arbitration);
//! - a background rekey running as a low-weight tenant measurably
//!   yields — its window submissions drop — while a client saturates
//!   the shard queues, and recovers once the client goes quiet.
//!
//! CI runs this under `--release` in the stress job, plus one small
//! fleet pass with `VDISK_BACKEND=file` (the suite builds default
//! clusters, so the backend selection applies).

use vdisk_bench::fio::{self, IoPattern, JobSpec, TenantJob};
use vdisk_bench::testbed;
use vdisk_core::{
    EncryptedImage, EncryptionConfig, IoOp, Runtime, TenantSpec, DEFAULT_QUEUE_DEPTH,
};
use vdisk_rados::Cluster;
use vdisk_rbd::Image;

const SECTOR: u64 = 4096;

fn fleet_on(cluster: &Cluster, n: usize, size: u64) -> Vec<EncryptedImage> {
    (0..n)
        .map(|i| {
            testbed::named_disk_on(
                cluster,
                &format!("img-{i}"),
                &EncryptionConfig::random_iv_object_end(),
                size,
                1000 + i as u64,
            )
        })
        .collect()
}

/// Twelve tenants (weights alternating 3 and 1) on an 8-shard cluster
/// with workers on: at the contended stop point the weight groups'
/// completed ops sit within 2x of 3:1, and every tenant made progress.
#[test]
fn mixed_weight_fleet_tracks_3_to_1_and_starves_nobody() {
    let cluster = Cluster::builder()
        .concurrent_apply(true)
        .shard_count(8)
        .build();
    let mut disks = fleet_on(&cluster, 12, 2 << 20);
    let jobs: Vec<TenantJob> = (0..12)
        .map(|i| TenantJob {
            spec: JobSpec {
                // Mixed workloads: the even tenants churn 70/30, the
                // odd ones are pure random writes.
                pattern: if i % 2 == 0 {
                    IoPattern::RANDRW_70_30
                } else {
                    IoPattern::RandWrite
                },
                io_size: 8 << 10,
                queue_depth: 4,
                ops: 400,
                seed: 300 + i as u64,
            },
            weight: if i % 2 == 0 { 3 } else { 1 },
            qd_cap: 4,
        })
        .collect();

    let outcome = fio::run_multi_tenant(&mut disks, &jobs, 8, Some(480)).expect("fleet run");

    let (mut heavy, mut light) = (0u64, 0u64);
    for (i, &count) in outcome.completed_at_stop.iter().enumerate() {
        assert!(count > 0, "tenant {i} starved at the stop point");
        if i % 2 == 0 {
            heavy += count;
        } else {
            light += count;
        }
    }
    let ratio = heavy as f64 / light as f64;
    assert!(
        (1.5..=6.0).contains(&ratio),
        "3:1 weights must land within 2x of 3:1, got {ratio:.2} ({heavy} vs {light})"
    );
}

/// Four tenants on their own threads, one shared runtime: every op
/// completes, and each tenant's bytes survive readback — arbitration
/// across real thread interleavings never loses or corrupts IO.
#[test]
fn threaded_tenants_share_one_runtime_without_loss() {
    let cluster = Cluster::builder().concurrent_apply(true).build();
    let runtime = Runtime::new(4);
    const OPS: u64 = 48;
    const IO: u64 = 16 << 10;

    std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for t in 0..4u64 {
            let cluster = cluster.clone();
            let handle = runtime.register(
                TenantSpec::new(format!("thread-{t}"))
                    .weight(if t == 0 { 3 } else { 1 })
                    .qd_cap(4)
                    .backlog_cap(16),
            );
            workers.push(scope.spawn(move || {
                let mut disk = testbed::named_disk_on(
                    &cluster,
                    &format!("threaded-{t}"),
                    &EncryptionConfig::random_iv_object_end(),
                    2 << 20,
                    70 + t,
                );
                let fill = 0x10 + t as u8;
                {
                    let mut queue = handle.attach(disk.io_queue());
                    for i in 0..OPS {
                        let offset = (i * IO) % (2 << 20);
                        queue
                            .submit_blocking(IoOp::Write {
                                offset,
                                data: vec![fill; IO as usize],
                            })
                            .expect("tenant submit");
                    }
                    let _ = queue.fence().expect("tenant fence");
                }
                let stats = handle.stats();
                assert_eq!(stats.completed_ops, OPS, "thread-{t} lost ops");
                assert_eq!(stats.backlog_ops, 0);
                assert_eq!(stats.in_flight_ops, 0);
                let mut buf = vec![0u8; IO as usize];
                disk.read(0, &mut buf).expect("readback");
                assert!(
                    buf.iter().all(|&b| b == fill),
                    "thread-{t} readback corrupt"
                );
            }));
        }
        for worker in workers {
            worker.join().expect("tenant thread");
        }
    });
    assert_eq!(runtime.in_flight(), 0);
}

/// Background rekey as a low-weight tenant: when a client saturates
/// the shard queues its window submissions drop (the driver halves
/// its effective depth), and the full configured window comes back
/// once the client goes quiet. The migration still completes with
/// every byte intact under the new key.
#[test]
fn background_rekey_tenant_yields_under_client_saturation() {
    let cluster = Cluster::builder().concurrent_apply(true).build();
    let image_size: u64 = 2 << 20;
    let mut disk = testbed::named_disk_on(
        &cluster,
        "rekey-under-load",
        &EncryptionConfig::random_iv_object_end(),
        image_size,
        77,
    );
    let pattern: Vec<u8> = (0..image_size).map(|i| (i % 239) as u8).collect();
    disk.write(0, &pattern).expect("pattern write");

    let runtime = Runtime::new(8);
    let tenant = runtime.register(TenantSpec::new("rekey").weight(1).qd_cap(4).backlog_cap(8));
    let rekey_id = tenant.id();
    let mut driver = disk
        .rekey_begin_with_iterations(b"bench-passphrase", b"bench-passphrase-2", 25)
        .expect("rekey begin")
        .with_chunk_sectors(4)
        .with_queue_depth(DEFAULT_QUEUE_DEPTH)
        .with_pressure_threshold(4)
        .with_runtime_tenant(tenant);

    // Settle the pressure window: setup traffic is not client load.
    let _ = cluster.take_queue_depth_window_peak();

    let client_image = Image::create(&cluster, "saturator", 1 << 20).expect("client image");
    let mut client = vdisk_rbd::IoQueue::new(&client_image);
    let mut min_effective = driver.effective_queue_depth();
    let mut pressured_window = u64::MAX;
    let mut quiet_window = 0u64;

    // Three saturation cycles: a QD-16 client burst before the step
    // (each submission holds its depth bracket until reaped, so the
    // sampled peak deterministically records the burst), then a quiet
    // step. Windows shrink under pressure, recover after.
    for cycle in 0..3 {
        for i in 0..16u64 {
            client
                .submit(IoOp::Write {
                    offset: i * SECTOR,
                    data: vec![0xEE; SECTOR as usize],
                })
                .expect("client burst");
        }
        let drained = client.fence().expect("client fence");
        assert_eq!(drained.len(), 16);

        let before = driver.progress(&disk).expect("progress").migrated_sectors;
        let after = driver
            .step(&mut disk)
            .expect("pressured step")
            .migrated_sectors;
        assert!(
            driver.last_pressure() > 4,
            "cycle {cycle}: burst not sampled (peak {})",
            driver.last_pressure()
        );
        min_effective = min_effective.min(driver.effective_queue_depth());
        pressured_window = pressured_window.min(after - before);

        let before = after;
        let after = driver.step(&mut disk).expect("quiet step").migrated_sectors;
        quiet_window = quiet_window.max(after - before);
    }

    assert!(
        min_effective < DEFAULT_QUEUE_DEPTH,
        "the rekey tenant never yielded its window"
    );
    assert!(
        pressured_window < quiet_window,
        "window submissions must drop under pressure \
         ({pressured_window} pressured vs {quiet_window} quiet sectors)"
    );

    // Quiet from here: drive the migration home and verify.
    driver.drive_to_completion(&mut disk).expect("completion");
    assert!(
        runtime.tenant_stats(rekey_id).completed_ops > 0,
        "rekey traffic must flow through its tenant"
    );
    let mut readback = vec![0u8; image_size as usize];
    disk.read(0, &mut readback).expect("readback");
    assert_eq!(readback, pattern, "migration corrupted data");
}

/// A small fleet through the default cluster builder — the test the
/// CI stress job re-runs with `VDISK_BACKEND=file` to smoke the
/// multi-tenant path against the durable backend.
#[test]
fn smoke_small_fleet_on_selected_backend() {
    let cluster = Cluster::builder().build();
    let mut disks = fleet_on(&cluster, 3, 1 << 20);
    let jobs: Vec<TenantJob> = (0..3)
        .map(|i| TenantJob {
            spec: JobSpec {
                pattern: IoPattern::RANDRW_70_30,
                io_size: 8 << 10,
                queue_depth: 4,
                ops: 24,
                seed: 400 + i as u64,
            },
            weight: 1 + i as u32,
            qd_cap: 4,
        })
        .collect();
    let outcome = fio::run_multi_tenant(&mut disks, &jobs, 4, None).expect("smoke fleet");
    for (tenant, job) in outcome.tenants.iter().zip(&jobs) {
        assert_eq!(
            tenant.completed_ops, job.spec.ops,
            "{} lost ops",
            tenant.name
        );
    }
    assert!(outcome.combined.ops > 0);
}
