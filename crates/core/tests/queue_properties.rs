//! Property: any interleaving of [`EncryptedIoQueue`] submissions —
//! including **unaligned RMW writes** and unaligned reads, with fences
//! and polls at arbitrary points — is byte-identical to replaying the
//! same operations sequentially through the synchronous
//! `write`/`read` API. The per-shard FIFO ordering rule of the
//! submission queue, stated as an executable property over the full
//! encryption pipeline.

use proptest::prelude::*;
use vdisk_core::{EncryptedImage, EncryptedIoQueue, EncryptionConfig, IoOp, IoPayload, MetaLayout};
use vdisk_crypto::rng::SeededIvSource;
use vdisk_rados::Cluster;
use vdisk_rbd::Image;

const IMAGE_SIZE: u64 = 4 << 20;
const OBJECT_SIZE: u64 = 1 << 20;

#[derive(Debug, Clone)]
enum Action {
    Write { offset: u64, len: usize, fill: u8 },
    Read { offset: u64, len: usize },
    Fence,
    Poll,
}

fn action_strategy() -> impl Strategy<Value = Action> {
    // Offsets and lengths deliberately include sector-unaligned values
    // (the RMW path) and object-spanning extents.
    prop_oneof![
        (0u64..IMAGE_SIZE, 1usize..150_000, any::<u8>()).prop_map(|(offset, len, fill)| {
            let len = len.min((IMAGE_SIZE - offset) as usize);
            Action::Write { offset, len, fill }
        }),
        (0u64..IMAGE_SIZE, 1usize..150_000).prop_map(|(offset, len)| {
            let len = len.min((IMAGE_SIZE - offset) as usize);
            Action::Read { offset, len }
        }),
        Just(Action::Fence),
        Just(Action::Poll),
    ]
}

fn make_disk(layout: MetaLayout, seed: u64) -> EncryptedImage {
    make_disk_with_lanes(layout, seed, None)
}

fn make_disk_with_lanes(layout: MetaLayout, seed: u64, lanes: Option<usize>) -> EncryptedImage {
    // Workers forced on so the queued path is exercised on any host.
    let mut builder = Cluster::builder().concurrent_apply(true);
    if let Some(lanes) = lanes {
        builder = builder.crypto_lanes(lanes);
    }
    let cluster = builder.build();
    let image = Image::create_with_object_size(&cluster, "prop", IMAGE_SIZE, OBJECT_SIZE).unwrap();
    EncryptedImage::format_with_iv_source(
        image,
        &EncryptionConfig::random_iv(layout),
        b"property",
        Box::new(SeededIvSource::new(seed)),
    )
    .unwrap()
}

fn reap(results: Vec<vdisk_core::IoResult>, seen: &mut Vec<(u64, Vec<u8>)>) {
    for result in results {
        if let IoPayload::Data(data) = result.payload {
            seen.push((result.completion.id(), data));
        }
    }
}

fn run_case(layout: MetaLayout, actions: &[Action]) {
    let mut disk = make_disk(layout, 0xF00D);
    drive(&mut disk, actions);
}

/// Runs `actions` through a queue over `disk`, asserting every queued
/// read against an in-memory mirror; returns the reaped read payloads
/// (by completion id) and the final plaintext image.
fn drive(disk: &mut EncryptedImage, actions: &[Action]) -> (Vec<(u64, Vec<u8>)>, Vec<u8>) {
    let mut queue: EncryptedIoQueue<'_> = disk.io_queue();

    // Model: an in-memory mirror updated in submission order.
    let mut mirror = vec![0u8; IMAGE_SIZE as usize];
    let mut expected_reads: Vec<(u64, Vec<u8>)> = Vec::new();
    let mut seen_reads: Vec<(u64, Vec<u8>)> = Vec::new();

    for action in actions {
        match action {
            Action::Write { offset, len, fill } => {
                let data = vec![*fill; *len];
                mirror[*offset as usize..*offset as usize + len].copy_from_slice(&data);
                queue
                    .submit(IoOp::Write {
                        offset: *offset,
                        data,
                    })
                    .unwrap();
            }
            Action::Read { offset, len } => {
                let completion = queue
                    .submit(IoOp::Read {
                        offset: *offset,
                        len: *len as u64,
                    })
                    .unwrap();
                expected_reads.push((
                    completion.id(),
                    mirror[*offset as usize..*offset as usize + len].to_vec(),
                ));
            }
            Action::Fence => reap(queue.fence().unwrap(), &mut seen_reads),
            Action::Poll => reap(queue.poll().unwrap(), &mut seen_reads),
        }
    }
    reap(queue.fence().unwrap(), &mut seen_reads);

    // Every queued read decrypted exactly the model bytes at its
    // submission point, whatever was in flight around it.
    seen_reads.sort_by_key(|(id, _)| *id);
    assert_eq!(seen_reads.len(), expected_reads.len());
    for ((id_seen, data), (id_expected, expected)) in seen_reads.iter().zip(&expected_reads) {
        assert_eq!(id_seen, id_expected);
        assert_eq!(data, expected, "queued read {id_seen} diverged");
    }

    // Final plaintext state matches a sequential mirror byte for byte.
    drop(queue);
    let mut final_state = vec![0u8; IMAGE_SIZE as usize];
    disk.read(0, &mut final_state).unwrap();
    assert_eq!(final_state, mirror);
    (seen_reads, final_state)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn queued_interleavings_match_sequential_replay_object_end(
        actions in proptest::collection::vec(action_strategy(), 4..16)
    ) {
        run_case(MetaLayout::ObjectEnd, &actions);
    }

    #[test]
    fn queued_interleavings_match_sequential_replay_omap(
        actions in proptest::collection::vec(action_strategy(), 4..12)
    ) {
        run_case(MetaLayout::Omap, &actions);
    }

    #[test]
    fn queued_interleavings_match_sequential_replay_unaligned_layout(
        actions in proptest::collection::vec(action_strategy(), 4..12)
    ) {
        run_case(MetaLayout::Unaligned, &actions);
    }

    /// Crypto-pool size is unobservable: the same action sequence on a
    /// serial-crypto disk (one lane) and a parallel one (four lanes,
    /// same IV seed) reaps identical read payloads and leaves the
    /// identical final image — the generated lengths cross the
    /// parallel-encrypt threshold, so the multi-lane path really runs.
    #[test]
    fn crypto_lane_count_is_unobservable(
        actions in proptest::collection::vec(action_strategy(), 4..12)
    ) {
        let mut serial = make_disk_with_lanes(MetaLayout::ObjectEnd, 0xF00D, Some(1));
        let mut wide = make_disk_with_lanes(MetaLayout::ObjectEnd, 0xF00D, Some(4));
        let (reads_serial, state_serial) = drive(&mut serial, &actions);
        let (reads_wide, state_wide) = drive(&mut wide, &actions);
        prop_assert_eq!(reads_serial, reads_wide);
        prop_assert_eq!(state_serial, state_wide);
    }
}
