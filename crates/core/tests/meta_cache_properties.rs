//! Properties of the client-side IV/metadata cache under the
//! submission-queue API: any interleaving of queued overwrites,
//! snapshots, and cached reads through [`EncryptedIoQueue`] — with
//! fences and polls at arbitrary points — is **byte-identical** to a
//! sequential replay of the same operations on a disk with the cache
//! disabled. No interleaving may ever serve stale IV/metadata: a stale
//! IV would decrypt an overwritten sector to garbage, so byte-identity
//! *is* the staleness check.
//!
//! On top of identity, the cache's accounting must balance: every
//! head-read sector is classified as exactly one hit or miss, every
//! resident entry traces back to a missed fetch, and a full overwrite
//! at the end invalidates — and counts — every resident sector.

use proptest::prelude::*;
use vdisk_core::{EncryptedImage, EncryptionConfig, IoOp, IoPayload, MetaLayout};
use vdisk_crypto::rng::SeededIvSource;
use vdisk_rados::{Cluster, SnapId};
use vdisk_rbd::Image;

const IMAGE_SIZE: u64 = 4 << 20;
const OBJECT_SIZE: u64 = 1 << 20;
const SECTOR: u64 = 4096;

#[derive(Debug, Clone)]
enum Action {
    Write { offset: u64, len: usize, fill: u8 },
    Read { offset: u64, len: usize },
    Snapshot,
    SnapRead { offset: u64, len: usize },
    Fence,
    Poll,
}

fn action_strategy() -> impl Strategy<Value = Action> {
    let span = (0u64..IMAGE_SIZE, 1usize..150_000);
    prop_oneof![
        (0u64..IMAGE_SIZE, 1usize..150_000, any::<u8>()).prop_map(|(offset, len, fill)| {
            let len = len.min((IMAGE_SIZE - offset) as usize);
            Action::Write { offset, len, fill }
        }),
        span.clone().prop_map(|(offset, len)| {
            let len = len.min((IMAGE_SIZE - offset) as usize);
            Action::Read { offset, len }
        }),
        Just(Action::Snapshot),
        span.prop_map(|(offset, len)| {
            let len = len.min((IMAGE_SIZE - offset) as usize);
            Action::SnapRead { offset, len }
        }),
        Just(Action::Fence),
        Just(Action::Poll),
    ]
}

fn make_disk(layout: MetaLayout, cache: bool, seed: u64) -> EncryptedImage {
    // Workers forced on so reaps genuinely race applies on any host;
    // the cache must stay coherent under every timing.
    let builder = Cluster::builder().concurrent_apply(true);
    let cluster = if cache {
        builder.build()
    } else {
        builder.meta_cache_bytes(0).build()
    };
    let image = Image::create_with_object_size(&cluster, "prop", IMAGE_SIZE, OBJECT_SIZE).unwrap();
    EncryptedImage::format_with_iv_source(
        image,
        &EncryptionConfig::random_iv(layout),
        b"property",
        Box::new(SeededIvSource::new(seed)),
    )
    .unwrap()
}

/// Sectors of the aligned span a head read of `[offset, offset+len)`
/// covers — the unit `meta_cache_hits`/`meta_cache_misses` count in.
fn span_sectors(offset: u64, len: usize) -> u64 {
    (offset + len as u64).div_ceil(SECTOR) - offset / SECTOR
}

/// Boundary sectors an unaligned write reads (and therefore classifies
/// as cache hits/misses) before dispatch; 0 for aligned writes.
fn rmw_sectors(offset: u64, len: usize) -> u64 {
    let end = offset + len as u64;
    if offset.is_multiple_of(SECTOR) && end.is_multiple_of(SECTOR) {
        return 0;
    }
    let first = offset / SECTOR;
    let last = (end - 1) / SECTOR;
    if first == last {
        1
    } else {
        u64::from(!offset.is_multiple_of(SECTOR)) + u64::from(!end.is_multiple_of(SECTOR))
    }
}

fn reap(results: Vec<vdisk_core::IoResult>, seen: &mut Vec<(u64, Vec<u8>)>) {
    for result in results {
        if let IoPayload::Data(data) = result.payload {
            seen.push((result.completion.id(), data));
        }
    }
}

fn run_case(layout: MetaLayout, actions: &[Action]) {
    let mut cached = make_disk(layout, true, 0xF00D);
    let mut plain = make_disk(layout, false, 0xBEEF);
    assert!(cached.meta_cache_capacity_sectors() as u64 > IMAGE_SIZE / SECTOR);

    // Model: an in-memory mirror updated in submission order, plus the
    // mirror as of each snapshot (a snapshot covers every write
    // *submitted* before it — submission order, not apply order).
    let mut mirror = vec![0u8; IMAGE_SIZE as usize];
    let mut snaps: Vec<(SnapId, SnapId, Vec<u8>)> = Vec::new();
    let mut expected_reads: Vec<(u64, Vec<u8>)> = Vec::new();
    let mut seen_reads: Vec<(u64, Vec<u8>)> = Vec::new();
    let mut cacheable_sectors = 0u64;

    let mut queue = cached.io_queue();
    for (i, action) in actions.iter().enumerate() {
        match action {
            Action::Write { offset, len, fill } => {
                let data = vec![*fill; *len];
                mirror[*offset as usize..*offset as usize + len].copy_from_slice(&data);
                cacheable_sectors += rmw_sectors(*offset, *len);
                queue
                    .submit(IoOp::Write {
                        offset: *offset,
                        data: data.clone(),
                    })
                    .unwrap();
                plain.write_owned(*offset, data).unwrap();
            }
            Action::Read { offset, len } => {
                let completion = queue
                    .submit(IoOp::Read {
                        offset: *offset,
                        len: *len as u64,
                    })
                    .unwrap();
                expected_reads.push((
                    completion.id(),
                    mirror[*offset as usize..*offset as usize + len].to_vec(),
                ));
                cacheable_sectors += span_sectors(*offset, *len);
            }
            Action::Snapshot => {
                let name = format!("s{i}");
                let id_cached = queue.disk().snap_create(&name).unwrap();
                let id_plain = plain.snap_create(&name).unwrap();
                snaps.push((id_cached, id_plain, mirror.clone()));
            }
            Action::SnapRead { offset, len } => {
                let Some((id_cached, id_plain, at_snap)) = snaps.last() else {
                    continue;
                };
                // Synchronous snapshot reads ride the same shard FIFOs,
                // so they order after every queued write — and bypass
                // the cache in both directions.
                let mut a = vec![0u8; *len];
                let mut b = vec![0u8; *len];
                queue
                    .disk()
                    .read_at_snap(*id_cached, *offset, &mut a)
                    .unwrap();
                plain.read_at_snap(*id_plain, *offset, &mut b).unwrap();
                let expected = &at_snap[*offset as usize..*offset as usize + len];
                assert_eq!(a, expected, "cached disk snapshot read diverged");
                assert_eq!(b, expected, "plain disk snapshot read diverged");
            }
            Action::Fence => reap(queue.fence().unwrap(), &mut seen_reads),
            Action::Poll => reap(queue.poll().unwrap(), &mut seen_reads),
        }
    }
    reap(queue.fence().unwrap(), &mut seen_reads);
    drop(queue);

    // Every queued read decrypted exactly the model bytes at its
    // submission point — whatever writes, snapshots, fills, and
    // invalidations were in flight around it.
    seen_reads.sort_by_key(|(id, _)| *id);
    assert_eq!(seen_reads.len(), expected_reads.len());
    for ((id_seen, data), (id_expected, expected)) in seen_reads.iter().zip(&expected_reads) {
        assert_eq!(id_seen, id_expected);
        assert_eq!(data, expected, "queued cached read {id_seen} diverged");
    }

    // Final plaintext state: cached interleaved run == cache-off
    // sequential replay == model, byte for byte.
    let mut from_cached = vec![0u8; IMAGE_SIZE as usize];
    let mut from_plain = vec![0u8; IMAGE_SIZE as usize];
    cached.read(0, &mut from_cached).unwrap();
    plain.read(0, &mut from_plain).unwrap();
    assert_eq!(from_cached, mirror, "cached disk final state diverged");
    assert_eq!(from_plain, mirror, "plain disk final state diverged");
    cacheable_sectors += IMAGE_SIZE / SECTOR; // the verification read

    // Accounting balances: every head-read sector is exactly one hit
    // or miss; every resident or invalidated entry traces to a missed
    // fetch or a write-through fill (the capacity exceeds the image,
    // so eviction never hides one).
    let stats = cached.image().cluster().exec_stats();
    assert_eq!(
        stats.meta_cache_hits + stats.meta_cache_misses,
        cacheable_sectors,
        "hit/miss accounting must cover every cacheable sector exactly once"
    );
    let resident = cached.meta_cache_resident_sectors() as u64;
    assert!(
        resident + stats.meta_cache_invalidations
            <= stats.meta_cache_misses + stats.meta_cache_write_fills,
        "cache entries from nowhere: resident {resident} + invalidated {} > misses {} + fills {}",
        stats.meta_cache_invalidations,
        stats.meta_cache_misses,
        stats.meta_cache_write_fills
    );

    // A full overwrite must invalidate — and account — every resident
    // cached sector, exactly once; completing, it write-through fills
    // the whole image's fresh entries.
    let inv_before = stats.meta_cache_invalidations;
    cached
        .write_owned(0, vec![0xEE; IMAGE_SIZE as usize])
        .unwrap();
    let stats = cached.image().cluster().exec_stats();
    assert_eq!(
        stats.meta_cache_invalidations - inv_before,
        resident,
        "every overwritten cached sector is accounted"
    );
    assert_eq!(
        cached.meta_cache_resident_sectors() as u64,
        IMAGE_SIZE / SECTOR,
        "the overwrite's own entries enter the cache at its completion"
    );
}

/// The per-op contract: summing the `meta_cache_*` deltas over every
/// reaped `IoResult` reconciles exactly with the cluster-wide
/// counters — including the boundary-sector RMW reads a queued
/// unaligned write performs at submit.
#[test]
fn per_op_deltas_reconcile_with_cluster_totals() {
    let mut disk = make_disk(MetaLayout::ObjectEnd, true, 0xACC7);
    let mut queue = disk.io_queue();
    let (mut hits, mut misses, mut invalidations, mut fills) = (0u64, 0u64, 0u64, 0u64);
    let mut tally = |results: Vec<vdisk_core::IoResult>| {
        for r in results {
            hits += r.stats.meta_cache_hits;
            misses += r.stats.meta_cache_misses;
            invalidations += r.stats.meta_cache_invalidations;
            fills += r.stats.meta_cache_write_fills;
        }
    };
    // Seed four sectors, cache them, then: an unaligned overwrite
    // whose boundary sector is cached (an RMW hit + an invalidation),
    // a re-read (partly re-fetching), and an aligned overwrite.
    queue
        .submit(IoOp::Write {
            offset: 0,
            data: vec![1; 16384],
        })
        .unwrap();
    queue
        .submit(IoOp::Read {
            offset: 0,
            len: 16384,
        })
        .unwrap();
    tally(queue.fence().unwrap());
    queue
        .submit(IoOp::Write {
            offset: 100,
            data: vec![2; 1000],
        })
        .unwrap();
    queue
        .submit(IoOp::Read {
            offset: 0,
            len: 16384,
        })
        .unwrap();
    queue
        .submit(IoOp::Write {
            offset: 4096,
            data: vec![3; 8192],
        })
        .unwrap();
    tally(queue.fence().unwrap());
    drop(queue);

    let stats = disk.image().cluster().exec_stats();
    assert!(hits > 0, "the RMW boundary read must have hit the cache");
    assert!(invalidations > 0);
    assert!(
        fills > 0,
        "queued writes must report their write-through fills"
    );
    assert_eq!(
        (hits, misses, invalidations, fills),
        (
            stats.meta_cache_hits,
            stats.meta_cache_misses,
            stats.meta_cache_invalidations,
            stats.meta_cache_write_fills
        ),
        "per-op IoResult deltas must sum to the cluster-wide counters"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn cached_interleavings_match_uncached_sequential_replay_object_end(
        actions in proptest::collection::vec(action_strategy(), 4..16)
    ) {
        run_case(MetaLayout::ObjectEnd, &actions);
    }

    #[test]
    fn cached_interleavings_match_uncached_sequential_replay_omap(
        actions in proptest::collection::vec(action_strategy(), 4..12)
    ) {
        run_case(MetaLayout::Omap, &actions);
    }
}
