//! Idle-CPU regression test for the completion reactor: a reap call
//! blocked on a deliberately delayed shard must **park** on the queue
//! doorbell, not spin. The proof is observable and non-time-based:
//! [`EncryptedIoQueue::idle_passes`] counts park-and-wakeup cycles, so
//! a single delayed completion accounts for ~1 pass — a busy-wait
//! (the old bounded-spin loop) would rack up thousands.

use std::time::Duration;
use vdisk_core::{EncryptedImage, EncryptedIoQueue, EncryptionConfig, IoOp, MetaLayout};
use vdisk_crypto::rng::SeededIvSource;
use vdisk_rados::Cluster;
use vdisk_rbd::Image;

#[test]
fn wait_parks_instead_of_spinning_on_a_delayed_shard() {
    // Workers forced on: holds are meaningless in inline mode.
    let cluster = Cluster::builder().concurrent_apply(true).build();
    let image = Image::create(&cluster, "reactor-idle", 16 << 20).unwrap();
    let mut disk = EncryptedImage::format_with_iv_source(
        image,
        &EncryptionConfig::random_iv(MetaLayout::ObjectEnd),
        b"park",
        Box::new(SeededIvSource::new(17)),
    )
    .unwrap();

    // Park every shard worker *before* submitting, so the write's
    // completion is delayed until the holds release.
    let holds: Vec<_> = (0..cluster.shard_count())
        .map(|shard| cluster.hold_shard(shard))
        .collect();

    let mut queue: EncryptedIoQueue<'_> = disk.io_queue();
    queue
        .submit(IoOp::Write {
            offset: 0,
            data: vec![0xAB; 4096],
        })
        .unwrap();
    assert_eq!(queue.in_flight(), 1);

    let releaser = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(100));
        drop(holds);
    });
    let done = queue.wait().unwrap();
    releaser.join().unwrap();
    assert_eq!(done.len(), 1, "the delayed write must reap");
    assert_eq!(queue.in_flight(), 0);

    // The reactor parked once for the delayed completion (a couple of
    // passes at most if a wakeup races the hold release). Any spin
    // loop over a ~100 ms delay would count orders of magnitude more.
    let idle = queue.idle_passes();
    assert!(
        idle <= 3,
        "wait must park on the doorbell, not spin: {idle} idle passes"
    );

    drop(queue);
    let mut buf = vec![0u8; 4096];
    disk.read(0, &mut buf).unwrap();
    assert_eq!(buf, vec![0xAB; 4096]);
}

#[test]
fn fence_parks_across_multiple_delayed_ops() {
    let cluster = Cluster::builder().concurrent_apply(true).build();
    let image = Image::create(&cluster, "reactor-fence", 16 << 20).unwrap();
    let mut disk = EncryptedImage::format_with_iv_source(
        image,
        &EncryptionConfig::random_iv(MetaLayout::ObjectEnd),
        b"park",
        Box::new(SeededIvSource::new(18)),
    )
    .unwrap();

    let holds: Vec<_> = (0..cluster.shard_count())
        .map(|shard| cluster.hold_shard(shard))
        .collect();
    let mut queue = disk.io_queue();
    for i in 0..4u64 {
        queue
            .submit(IoOp::Write {
                offset: i * 4096,
                data: vec![i as u8; 4096],
            })
            .unwrap();
    }
    let releaser = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(50));
        drop(holds);
    });
    let done = queue.fence().unwrap();
    releaser.join().unwrap();
    assert_eq!(done.len(), 4);

    // One park per still-delayed queue head at most: the bound is the
    // op count, not time × spin rate.
    let idle = queue.idle_passes();
    assert!(
        idle <= 8,
        "fence must park per delayed completion, not spin: {idle} idle passes"
    );
}
