//! Property tests on the encryption layer's public surface: geometry
//! bijections, header robustness, and end-to-end IO identities.

use proptest::prelude::*;
use vdisk_core::layout::Geometry;
use vdisk_core::luks::LuksHeader;
use vdisk_core::{EncryptedImage, EncryptionConfig, MetaLayout};
use vdisk_crypto::rng::SeededIvSource;
use vdisk_rados::Cluster;
use vdisk_rbd::Image;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The unaligned interleave/deinterleave pair is a bijection for
    /// any sector count.
    #[test]
    fn unaligned_interleave_bijection(
        count in 1usize..32,
        seed in any::<u8>(),
    ) {
        let geometry = Geometry::new(4 << 20, 4096, 16);
        let sectors: Vec<u8> = (0..count)
            .flat_map(|i| vec![seed.wrapping_add(i as u8); 4096])
            .collect();
        let metas: Vec<u8> = (0..count)
            .flat_map(|i| vec![seed.wrapping_mul(i as u8 + 1); 16])
            .collect();
        let buf = geometry.interleave_unaligned_run(&sectors, &metas);
        prop_assert_eq!(buf.len(), count * (4096 + 16));
        let mut out = vec![0u8; sectors.len()];
        let parsed_metas = geometry.deinterleave_unaligned_run(&buf, &mut out);
        prop_assert_eq!(out, sectors);
        prop_assert_eq!(parsed_metas, metas);
    }

    /// Data extents of distinct sector ranges never overlap, for every
    /// layout (no layout may alias two sectors onto the same bytes).
    #[test]
    fn extents_never_overlap(
        a in 0u64..1000,
        b in 0u64..1000,
        len_a in 1u64..24,
        len_b in 1u64..24,
    ) {
        prop_assume!(a + len_a <= b || b + len_b <= a); // disjoint sector ranges
        let geometry = Geometry::new(4 << 20, 4096, 16);
        for layout in [None, Some(MetaLayout::Unaligned), Some(MetaLayout::ObjectEnd), Some(MetaLayout::Omap)] {
            let (off_a, sz_a) = geometry.data_extent(layout, a, len_a);
            let (off_b, sz_b) = geometry.data_extent(layout, b, len_b);
            prop_assert!(
                off_a + sz_a <= off_b || off_b + sz_b <= off_a,
                "layout {:?}: [{},{}) overlaps [{},{})",
                layout, off_a, off_a + sz_a, off_b, off_b + sz_b
            );
        }
    }

    /// Meta extents (object end) stay strictly above the data region
    /// and below the object footprint.
    #[test]
    fn object_end_meta_extent_in_bounds(first in 0u64..1024, count in 1u64..64) {
        prop_assume!(first + count <= 1024);
        let geometry = Geometry::new(4 << 20, 4096, 16);
        let (off, len) = geometry
            .meta_extent(Some(MetaLayout::ObjectEnd), first, count)
            .unwrap();
        prop_assert!(off >= 4 << 20);
        prop_assert!(off + len <= geometry.object_footprint(Some(MetaLayout::ObjectEnd)));
    }

    /// Header decode never panics on arbitrary mutations; it either
    /// round-trips or errors.
    #[test]
    fn header_decode_is_total(
        flip_at in 0usize..900,
        flip_bit in 0u8..8,
    ) {
        let mut rng = SeededIvSource::new(3);
        let (header, _master) = LuksHeader::format(
            &EncryptionConfig::random_iv_object_end(),
            b"pw",
            &mut rng,
        )
        .unwrap();
        let mut bytes = header.encode();
        let idx = flip_at % bytes.len();
        bytes[idx] ^= 1 << flip_bit;
        // Must not panic; any result is acceptable.
        let _ = LuksHeader::decode(&bytes);
    }

    /// End-to-end: arbitrary (offset, data) writes read back
    /// identically through every layout, including unaligned ones.
    #[test]
    fn write_read_identity(
        offset in 0u64..(8 << 20) - 20_000,
        len in 1usize..16_000,
        fill in any::<u8>(),
        layout_idx in 0usize..3,
    ) {
        let layout = MetaLayout::ALL[layout_idx];
        let cluster = Cluster::builder().build();
        let image = Image::create(&cluster, "prop", 8 << 20).unwrap();
        let mut disk = EncryptedImage::format_with_iv_source(
            image,
            &EncryptionConfig::random_iv(layout),
            b"pw",
            Box::new(SeededIvSource::new(9)),
        )
        .unwrap();
        let data = vec![fill; len];
        disk.write(offset, &data).unwrap();
        let mut buf = vec![0u8; len];
        disk.read(offset, &mut buf).unwrap();
        prop_assert_eq!(buf, data);
    }
}
