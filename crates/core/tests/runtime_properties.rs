//! Multi-tenant runtime properties over the full encryption pipeline.
//!
//! 1. **Replay equivalence survives arbitration**: any interleaving
//!    admitted through a [`TenantQueue`] — whatever the inflight
//!    budget, QD cap, or weight — is byte-identical to replaying the
//!    same operations sequentially (the invariant proven for the raw
//!    queue in `queue_properties.rs`, extended to runtime-scheduled
//!    dispatch).
//! 2. **Fairness**: two tenants with weights `w1:w2` driving identical
//!    randwrite loads complete ops within a 2x band of `w1:w2`.
//! 3. **No starvation**: a QD-64 hog cannot delay a QD-1 tenant's
//!    single op beyond a fixed bound of interleaved completions.
//! 4. **Rekey yields**: the rekey driver's window shrinks (fewer
//!    submissions) when sampled client pressure spikes and recovers
//!    when the cluster goes quiet; run as a runtime tenant it
//!    completes with data intact.

use proptest::prelude::*;
use vdisk_core::{
    EncryptedImage, EncryptionConfig, IoOp, IoPayload, MetaLayout, RateLimit, Runtime,
    RuntimeError, TenantSpec,
};
use vdisk_crypto::rng::SeededIvSource;
use vdisk_rados::Cluster;
use vdisk_rbd::Image;

const IMAGE_SIZE: u64 = 4 << 20;
const OBJECT_SIZE: u64 = 1 << 20;
const SECTOR: u64 = 4096;

fn workers_on() -> Cluster {
    // Workers forced on so arbitration races real completions.
    Cluster::builder().concurrent_apply(true).build()
}

fn encrypted_disk(cluster: &Cluster, name: &str, seed: u64) -> EncryptedImage {
    let image = Image::create_with_object_size(cluster, name, IMAGE_SIZE, OBJECT_SIZE).unwrap();
    EncryptedImage::format_with_iv_source(
        image,
        &EncryptionConfig::random_iv(MetaLayout::ObjectEnd),
        b"property",
        Box::new(SeededIvSource::new(seed)),
    )
    .unwrap()
}

// ---------------------------------------------------------------------
// 1. Replay equivalence through the runtime
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Action {
    Write { offset: u64, len: usize, fill: u8 },
    Read { offset: u64, len: usize },
    Fence,
    Poll,
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        (0u64..IMAGE_SIZE, 1usize..150_000, any::<u8>()).prop_map(|(offset, len, fill)| {
            let len = len.min((IMAGE_SIZE - offset) as usize);
            Action::Write { offset, len, fill }
        }),
        (0u64..IMAGE_SIZE, 1usize..150_000).prop_map(|(offset, len)| {
            let len = len.min((IMAGE_SIZE - offset) as usize);
            Action::Read { offset, len }
        }),
        Just(Action::Fence),
        Just(Action::Poll),
    ]
}

fn reap(results: Vec<vdisk_core::IoResult>, seen: &mut Vec<(u64, Vec<u8>)>) {
    for result in results {
        if let IoPayload::Data(data) = result.payload {
            seen.push((result.completion.id(), data));
        }
    }
}

/// `queue_properties::drive`, rerouted through a [`TenantQueue`]: the
/// runtime arbitrates every dispatch, yet queued reads still see the
/// mirror at their submission point and the final image matches the
/// mirror byte for byte.
fn drive_arbitrated(actions: &[Action], budget: usize, qd_cap: usize, weight: u32) {
    let cluster = workers_on();
    let mut disk = encrypted_disk(&cluster, "prop", 0xF00D);
    let runtime = Runtime::new(budget);
    let tenant = runtime.register(
        TenantSpec::new("prop")
            .weight(weight)
            .qd_cap(qd_cap)
            .backlog_cap(1024),
    );
    let mut queue = tenant.attach(disk.io_queue());

    let mut mirror = vec![0u8; IMAGE_SIZE as usize];
    let mut expected_reads: Vec<(u64, Vec<u8>)> = Vec::new();
    let mut seen_reads: Vec<(u64, Vec<u8>)> = Vec::new();

    for action in actions {
        match action {
            Action::Write { offset, len, fill } => {
                let data = vec![*fill; *len];
                mirror[*offset as usize..*offset as usize + len].copy_from_slice(&data);
                queue
                    .submit(IoOp::Write {
                        offset: *offset,
                        data,
                    })
                    .unwrap();
            }
            Action::Read { offset, len } => {
                let completion = queue
                    .submit(IoOp::Read {
                        offset: *offset,
                        len: *len as u64,
                    })
                    .unwrap();
                expected_reads.push((
                    completion.id(),
                    mirror[*offset as usize..*offset as usize + len].to_vec(),
                ));
            }
            Action::Fence => reap(queue.fence().unwrap(), &mut seen_reads),
            Action::Poll => reap(queue.poll().unwrap(), &mut seen_reads),
        }
    }
    reap(queue.fence().unwrap(), &mut seen_reads);

    seen_reads.sort_by_key(|(id, _)| *id);
    assert_eq!(seen_reads.len(), expected_reads.len());
    for ((id_seen, data), (id_expected, expected)) in seen_reads.iter().zip(&expected_reads) {
        assert_eq!(id_seen, id_expected);
        assert_eq!(data, expected, "arbitrated read {id_seen} diverged");
    }

    drop(queue);
    let mut final_state = vec![0u8; IMAGE_SIZE as usize];
    disk.read(0, &mut final_state).unwrap();
    assert_eq!(final_state, mirror);
}

// ---------------------------------------------------------------------
// 2. Fairness band
// ---------------------------------------------------------------------

/// Drives two tenants with identical randwrite loads on one shared
/// cluster until `target` ops complete in total; returns per-tenant
/// completed-op counts.
fn race_two_tenants(w1: u32, w2: u32, offsets: &[u64], target: u64) -> (u64, u64) {
    let cluster = workers_on();
    let mut disk1 = encrypted_disk(&cluster, "tenant-1", 1);
    let mut disk2 = encrypted_disk(&cluster, "tenant-2", 2);

    // A scarce inflight budget keeps the tenants in permanent
    // contention — fairness is only observable under contention.
    let runtime = Runtime::new(4);
    let t1 = runtime.register(TenantSpec::new("t1").weight(w1).qd_cap(8).backlog_cap(64));
    let t2 = runtime.register(TenantSpec::new("t2").weight(w2).qd_cap(8).backlog_cap(64));
    let mut q1 = t1.attach(disk1.io_queue());
    let mut q2 = t2.attach(disk2.io_queue());

    let mut submitted = [0usize; 2];
    let mut done = [0u64; 2];
    while done[0] + done[1] < target {
        // Keep both backlogs topped up so neither tenant ever goes
        // idle: every grant is contested.
        for (i, q) in [&mut q1, &mut q2].into_iter().enumerate() {
            while q.backlog() < 8 {
                let offset = offsets[submitted[i] % offsets.len()] * SECTOR;
                submitted[i] += 1;
                q.submit(IoOp::Write {
                    offset,
                    data: vec![i as u8 + 1; SECTOR as usize],
                })
                .unwrap();
            }
        }
        done[0] += q1.poll().unwrap().len() as u64;
        done[1] += q2.poll().unwrap().len() as u64;
        std::thread::yield_now();
    }
    (done[0], done[1])
}

// ---------------------------------------------------------------------
// Proptests
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Invariant: arbitration never changes IO semantics. Budget, QD
    /// cap and weight vary; results must match sequential replay.
    #[test]
    fn arbitrated_interleavings_match_sequential_replay(
        actions in proptest::collection::vec(action_strategy(), 4..14),
        budget in 1usize..=6,
        qd_cap in 1usize..=8,
        weight in 1u32..=4,
    ) {
        drive_arbitrated(&actions, budget, qd_cap, weight);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Two tenants, identical loads: completed ops stay within a 2x
    /// band of the configured weight ratio.
    #[test]
    fn completed_ops_track_weights_within_a_2x_band(
        w1 in 1u32..=4,
        w2 in 1u32..=4,
        offsets in proptest::collection::vec(0u64..(IMAGE_SIZE / SECTOR), 64..128),
    ) {
        let (d1, d2) = race_two_tenants(w1, w2, &offsets, 240);
        prop_assert!(d1 > 0 && d2 > 0, "a tenant starved outright: {d1} vs {d2}");
        let ratio = d1 as f64 / d2 as f64;
        let ideal = f64::from(w1) / f64::from(w2);
        prop_assert!(
            ratio >= ideal / 2.0 && ratio <= ideal * 2.0,
            "weights {w1}:{w2} (ideal {ideal:.2}) but completed {d1}:{d2} (ratio {ratio:.2})"
        );
    }
}

// ---------------------------------------------------------------------
// 3. Starvation bound
// ---------------------------------------------------------------------

/// A QD-64 hog with a deep backlog cannot delay a QD-1 tenant's
/// single op beyond a bounded number of its own completions.
#[test]
fn qd1_tenant_is_not_starved_by_a_qd64_hog() {
    let cluster = workers_on();
    let mut hog_disk = encrypted_disk(&cluster, "hog", 3);
    let mut victim_disk = encrypted_disk(&cluster, "victim", 4);

    let runtime = Runtime::new(8);
    let hog = runtime.register(TenantSpec::new("hog").weight(1).qd_cap(64).backlog_cap(256));
    let victim = runtime.register(TenantSpec::new("victim").weight(1).qd_cap(1).backlog_cap(4));
    let mut hog_q = hog.attach(hog_disk.io_queue());
    let mut victim_q = victim.attach(victim_disk.io_queue());

    // The hog may complete at most this many ops between a victim
    // submit and its completion: its in-flight window (≤ budget 8)
    // can drain ahead on the shard FIFOs, plus its fair share while
    // the victim's op is in flight, plus scheduling slack. What it
    // must never do is burn its 256-deep backlog first.
    const BOUND: u64 = 32;
    const ROUNDS: usize = 24;

    let mut hog_submitted = 0u64;
    let mut hog_done = 0u64;
    for round in 0..ROUNDS {
        while hog_q.backlog() < 64 {
            let offset = (hog_submitted * 8 % (IMAGE_SIZE / SECTOR)) * SECTOR;
            hog_submitted += 1;
            hog_q
                .submit(IoOp::Write {
                    offset,
                    data: vec![0xA0; SECTOR as usize],
                })
                .unwrap();
        }
        let wanted = victim_q
            .submit(IoOp::Write {
                offset: (round as u64 % 16) * SECTOR,
                data: vec![0x77; SECTOR as usize],
            })
            .unwrap();
        let hog_before = hog_done;
        loop {
            hog_done += hog_q.poll().unwrap().len() as u64;
            let results = victim_q.poll().unwrap();
            let landed = results.iter().any(|r| r.completion.id() == wanted.id());
            if landed {
                break;
            }
            std::thread::yield_now();
        }
        let interleaved = hog_done - hog_before;
        assert!(
            interleaved <= BOUND,
            "round {round}: hog completed {interleaved} ops while the victim's \
             single op waited (bound {BOUND})"
        );
    }
    drop(victim_q);
    let _ = hog_q.fence().unwrap();
}

// ---------------------------------------------------------------------
// Admission control and rate limits at the API surface
// ---------------------------------------------------------------------

/// Past the backlog cap `submit` refuses with the observed depth, and
/// the rejection shows up in the tenant's stats.
#[test]
fn admission_denies_past_the_backlog_cap() {
    let cluster = workers_on();
    let mut disk = encrypted_disk(&cluster, "cap", 5);
    let runtime = Runtime::new(1);
    let tenant = runtime.register(TenantSpec::new("cap").qd_cap(1).backlog_cap(2));
    let id = tenant.id();
    let mut queue = tenant.attach(disk.io_queue());

    // Op 1 dispatches (budget 1), ops 2 and 3 fill the backlog; op 4
    // must bounce. No polling in between, so nothing drains.
    for _ in 0..3 {
        queue
            .submit(IoOp::Write {
                offset: 0,
                data: vec![1; SECTOR as usize],
            })
            .unwrap();
    }
    let denied = queue.submit(IoOp::Write {
        offset: 0,
        data: vec![2; SECTOR as usize],
    });
    match denied {
        Err(RuntimeError::AdmissionDenied {
            tenant,
            backlog,
            cap,
        }) => {
            assert_eq!(tenant, id);
            assert_eq!((backlog, cap), (2, 2));
        }
        other => panic!("expected AdmissionDenied, got {other:?}"),
    }

    let results = queue.fence().unwrap();
    assert_eq!(results.len(), 3, "admitted ops all complete");
    let stats = runtime.tenant_stats(id);
    assert_eq!(stats.admitted_ops, 3);
    assert_eq!(stats.rejected_ops, 1);
    assert_eq!(stats.completed_ops, 3);
}

/// A dispatch failure mid-grant must refund the rest of the grant:
/// the granted-but-undispatched ops return to the arbiter's backlog
/// mirror instead of counting in flight forever (which would leak the
/// shared budget across every tenant and deadlock later fences).
#[test]
fn dispatch_failure_mid_grant_refunds_the_undispatched_remainder() {
    // Inline application keeps grant timing deterministic.
    let cluster = Cluster::builder().concurrent_apply(false).build();
    let image = Image::create(&cluster, "abort", 1 << 20).unwrap();
    let runtime = Runtime::new(4);
    let tenant = runtime.register(TenantSpec::new("abort").qd_cap(8).backlog_cap(16));
    let mut queue = tenant.attach(vdisk_rbd::IoQueue::new(&image));

    // Fill the whole budget with valid ops…
    for i in 0..4u64 {
        queue
            .submit(IoOp::Write {
                offset: i * SECTOR,
                data: vec![1; SECTOR as usize],
            })
            .unwrap();
    }
    // …then queue a poisoned op (out of bounds at dispatch) with two
    // valid ops behind it. No free slots, so all three stay queued.
    queue
        .submit(IoOp::Write {
            offset: 2 << 20,
            data: vec![2; SECTOR as usize],
        })
        .unwrap();
    for _ in 0..2 {
        queue
            .submit(IoOp::Write {
                offset: 0,
                data: vec![3; SECTOR as usize],
            })
            .unwrap();
    }
    assert_eq!(queue.backlog(), 3);

    // Reap the first four; the next pump claims all three queued ops
    // in one grant and the poisoned dispatch aborts it.
    assert_eq!(queue.poll().unwrap().len(), 4);
    match queue.poll() {
        Err(RuntimeError::Queue(_)) => {}
        other => panic!("expected the poisoned dispatch to fail, got {other:?}"),
    }

    // The two undispatched grants must be refunded, not leaked.
    assert_eq!(
        runtime.in_flight(),
        0,
        "aborted grants leaked shared budget"
    );
    let stats = tenant.stats();
    assert_eq!(stats.in_flight_ops, 0);
    assert_eq!(stats.backlog_ops, 2);
    assert_eq!(queue.backlog(), 2);

    // And they still dispatch and complete: no deadlock, no loss.
    let results = queue.fence().unwrap();
    assert_eq!(results.len(), 2);
    assert_eq!(tenant.stats().completed_ops, 6);
}

/// When `submit` queues an op and its pump then fails dispatching an
/// *earlier* queued op, the error return un-admits the fresh op: the
/// caller never received its token, so leaving it admitted would
/// later complete an op nobody can match.
#[test]
fn submit_error_for_an_earlier_op_unadmits_the_fresh_op() {
    let cluster = Cluster::builder().concurrent_apply(false).build();
    let image = Image::create(&cluster, "unadmit", 1 << 20).unwrap();
    let runtime = Runtime::new(4);
    let tenant = runtime.register(TenantSpec::new("unadmit").qd_cap(8).backlog_cap(16));
    let mut queue = tenant.attach(vdisk_rbd::IoQueue::new(&image));

    for i in 0..4u64 {
        queue
            .submit(IoOp::Write {
                offset: i * SECTOR,
                data: vec![1; SECTOR as usize],
            })
            .unwrap();
    }
    // The poisoned op queues behind the full budget…
    queue
        .submit(IoOp::Write {
            offset: 2 << 20,
            data: vec![2; SECTOR as usize],
        })
        .unwrap();
    assert_eq!(queue.poll().unwrap().len(), 4);

    // …so this submit's pump dispatches it first and hits its error.
    let err = queue.submit(IoOp::Write {
        offset: 0,
        data: vec![3; SECTOR as usize],
    });
    assert!(
        matches!(err, Err(RuntimeError::Queue(_))),
        "expected the earlier op's dispatch error, got {err:?}"
    );

    // The fresh op must be gone as if never admitted.
    assert_eq!(queue.backlog(), 0);
    assert_eq!(tenant.stats().backlog_ops, 0);
    assert_eq!(runtime.in_flight(), 0);

    // A retry is admitted cleanly and its token matches its result.
    let token = queue
        .submit(IoOp::Write {
            offset: 0,
            data: vec![4; SECTOR as usize],
        })
        .unwrap();
    let results = queue.fence().unwrap();
    assert_eq!(results.len(), 1);
    assert_eq!(results[0].completion.id(), token.id());
    assert_eq!(tenant.stats().completed_ops, 5);
}

/// A zero-rate bucket grants its burst and then starves: waiting on
/// work that can never dispatch is an error, not a hang.
#[test]
fn zero_rate_bucket_starves_deterministically() {
    let cluster = workers_on();
    let mut disk = encrypted_disk(&cluster, "rate", 6);
    let runtime = Runtime::new(4);
    let tenant = runtime.register(TenantSpec::new("rate").rate_limit(RateLimit {
        bytes_per_sec: 0,
        burst_bytes: SECTOR,
    }));
    let id = tenant.id();
    let mut queue = tenant.attach(disk.io_queue());

    // First sector-sized write fits the burst exactly.
    queue
        .submit(IoOp::Write {
            offset: 0,
            data: vec![3; SECTOR as usize],
        })
        .unwrap();
    let first = queue.wait_any().unwrap();
    assert_eq!(first.len(), 1);

    // The second can never earn tokens.
    queue
        .submit(IoOp::Write {
            offset: SECTOR,
            data: vec![4; SECTOR as usize],
        })
        .unwrap();
    match queue.wait_any() {
        Err(RuntimeError::Starved { tenant }) => assert_eq!(tenant, id),
        other => panic!("expected Starved, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// 4. Rekey pressure backoff and tenant-mode completion
// ---------------------------------------------------------------------

const OLD_PASS: &[u8] = b"property";
const NEW_PASS: &[u8] = b"rotated";

/// The driver's window halves when the sampled client queue-depth
/// peak crosses the threshold — fewer submissions per window, the
/// measurable "rekey yields" signal — and doubles back once quiet.
#[test]
fn rekey_driver_yields_under_client_pressure_and_recovers() {
    let cluster = workers_on();
    let mut disk = encrypted_disk(&cluster, "rekey", 7);
    let pattern: Vec<u8> = (0..IMAGE_SIZE).map(|i| (i % 251) as u8).collect();
    disk.write(0, &pattern).unwrap();

    let mut driver = disk
        .rekey_begin_with_iterations(OLD_PASS, NEW_PASS, 25)
        .unwrap()
        .with_chunk_sectors(4)
        .with_queue_depth(8)
        .with_pressure_threshold(4);

    // Settle the pressure window: formatting and the pattern write
    // are not client load the driver should react to.
    let _ = cluster.take_queue_depth_window_peak();

    // Quiet step: full window (4 sectors × depth 8 = 32).
    let before = driver.progress(&disk).unwrap().migrated_sectors;
    let after = driver.step(&mut disk).unwrap().migrated_sectors;
    assert!(driver.last_pressure() <= 4, "quiet cluster sampled as busy");
    assert_eq!(driver.effective_queue_depth(), 8);
    assert_eq!(after - before, 32);

    // A client bursts 16 queued writes on another image of the same
    // cluster. Each holds its submission-depth bracket until reaped,
    // so the window peak deterministically records the full burst.
    let noise = Image::create(&cluster, "noise", 1 << 20).unwrap();
    let mut noise_q = vdisk_rbd::IoQueue::new(&noise);
    for i in 0..16u64 {
        noise_q
            .submit(IoOp::Write {
                offset: i * SECTOR,
                data: vec![0xBB; SECTOR as usize],
            })
            .unwrap();
    }
    let drained = noise_q.fence().unwrap();
    assert_eq!(drained.len(), 16);

    // Pressured step: the driver sees the spike and halves its window.
    let before = driver.progress(&disk).unwrap().migrated_sectors;
    let after = driver.step(&mut disk).unwrap().migrated_sectors;
    assert!(
        driver.last_pressure() >= 16,
        "burst peak not observed: {}",
        driver.last_pressure()
    );
    assert_eq!(driver.effective_queue_depth(), 4);
    assert_eq!(after - before, 16, "window submissions did not drop");

    // Quiet again: the window doubles back to the configured depth.
    // The driver discards its own window's contribution to the peak,
    // so its own 4-deep window never reads as client pressure.
    let before = after;
    let after = driver.step(&mut disk).unwrap().migrated_sectors;
    assert_eq!(driver.effective_queue_depth(), 8);
    assert_eq!(after - before, 32);

    // Migrated data stays intact along the way.
    let mut readback = vec![0u8; 64 * SECTOR as usize];
    disk.read(0, &mut readback).unwrap();
    assert_eq!(readback[..], pattern[..64 * SECTOR as usize]);
}

/// Client-tenant pressure that lands while a rekey window is open is
/// wiped from the shared cluster window by the driver's own
/// post-window reset; the runtime's per-tenant demand peaks must
/// carry it into the next sample anyway.
#[test]
fn tenant_rekey_sees_client_bursts_hidden_by_its_own_window_reset() {
    let cluster = workers_on();
    let mut disk = encrypted_disk(&cluster, "rekey-press", 9);
    let pattern: Vec<u8> = (0..IMAGE_SIZE).map(|i| (i % 233) as u8).collect();
    disk.write(0, &pattern).unwrap();

    let runtime = Runtime::new(16);
    let rekey_tenant =
        runtime.register(TenantSpec::new("rekey").weight(1).qd_cap(8).backlog_cap(16));
    let client_tenant = runtime.register(
        TenantSpec::new("client")
            .weight(3)
            .qd_cap(8)
            .backlog_cap(16),
    );

    let mut driver = disk
        .rekey_begin_with_iterations(OLD_PASS, NEW_PASS, 25)
        .unwrap()
        .with_chunk_sectors(4)
        .with_queue_depth(8)
        .with_pressure_threshold(4)
        .with_runtime_tenant(rekey_tenant);

    // Settle the cluster window: setup traffic is not client load.
    let _ = cluster.take_queue_depth_window_peak();

    // Quiet step: the full configured window.
    let before = driver.progress(&disk).unwrap().migrated_sectors;
    let after = driver.step(&mut disk).unwrap().migrated_sectors;
    assert!(
        driver.last_pressure() <= 4,
        "quiet runtime sampled as busy: {}",
        driver.last_pressure()
    );
    assert_eq!(after - before, 32);

    // A client tenant bursts eight queued writes on another image and
    // fully drains them…
    let mut client_disk = encrypted_disk(&cluster, "client-press", 10);
    let mut client_q = client_tenant.attach(client_disk.io_queue());
    for i in 0..8u64 {
        client_q
            .submit(IoOp::Write {
                offset: i * SECTOR,
                data: vec![0xCC; SECTOR as usize],
            })
            .unwrap();
    }
    assert_eq!(client_q.fence().unwrap().len(), 8);

    // …and the cluster-wide window is then reset, exactly as the tail
    // of a rekey window does — the burst is gone from that signal.
    let _ = cluster.take_queue_depth_window_peak();

    // The next step must still see the burst through the runtime's
    // per-tenant demand peaks and halve its window.
    let before = after;
    let after = driver.step(&mut disk).unwrap().migrated_sectors;
    assert!(
        driver.last_pressure() >= 8,
        "client-tenant burst lost to the window reset: {}",
        driver.last_pressure()
    );
    assert_eq!(driver.effective_queue_depth(), 4);
    assert_eq!(after - before, 16);

    // Data stays intact through the pressured window.
    let mut readback = vec![0u8; 48 * SECTOR as usize];
    disk.read(0, &mut readback).unwrap();
    assert_eq!(readback[..], pattern[..48 * SECTOR as usize]);
}

/// Rekey as an ordinary low-weight runtime tenant: drives to
/// completion through the arbitrated queue, leaves every byte intact,
/// and its traffic shows up in the tenant's stats rollup.
#[test]
fn rekey_as_runtime_tenant_completes_with_data_intact() {
    let cluster = workers_on();
    let mut disk = encrypted_disk(&cluster, "rekey-tenant", 8);
    let pattern: Vec<u8> = (0..IMAGE_SIZE).map(|i| (i % 241) as u8).collect();
    disk.write(0, &pattern).unwrap();

    let runtime = Runtime::new(8);
    let tenant = runtime.register(TenantSpec::new("rekey").weight(1).qd_cap(4).backlog_cap(8));
    let id = tenant.id();

    let driver = disk
        .rekey_begin_with_iterations(OLD_PASS, NEW_PASS, 25)
        .unwrap()
        .with_chunk_sectors(8)
        .with_queue_depth(4)
        .with_runtime_tenant(tenant);
    driver.drive_to_completion(&mut disk).unwrap();

    let stats = runtime.tenant_stats(id);
    assert!(
        stats.completed_ops > 0,
        "rekey traffic missing from tenant stats"
    );
    assert_eq!(stats.backlog_ops, 0);
    assert_eq!(stats.in_flight_ops, 0);

    let mut readback = vec![0u8; IMAGE_SIZE as usize];
    disk.read(0, &mut readback).unwrap();
    assert_eq!(readback, pattern);

    // The new passphrase opens the image; the old one is gone.
    drop(disk);
    let image = Image::open(&cluster, "rekey-tenant").unwrap();
    let reopened = EncryptedImage::open(image, NEW_PASS).unwrap();
    let mut buf = vec![0u8; SECTOR as usize];
    reopened.read(0, &mut buf).unwrap();
    assert_eq!(buf[..], pattern[..SECTOR as usize]);
}
