//! Crash-recovery and retry proofs over the encryption pipeline
//! (ISSUE 9): an online rekey killed at **any** injected commit point
//! and then reopened + resumed is byte-identical to a clean run; a
//! transient-fault storm is absorbed by the retry layer without a
//! single byte diverging; a window that fails mid-flight recovers
//! through the persisted intent + marker protocol; and a tenant whose
//! op exhausts its retry budget gets its arbiter slot and backlog
//! fully refunded (the PR-8 leak, now a typed failure path).
//!
//! CI's fault matrix runs this suite with `VDISK_BACKEND=memory|file`
//! and several `VDISK_FAULT_SEED`s; tests that build default clusters
//! inherit the matrix backend, while the crash tests pin the file
//! backend (a crash without durability has nothing to recover).

use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use vdisk_core::{EncryptedImage, EncryptionConfig, IoOp, MetaLayout, Runtime, TenantSpec};
use vdisk_crypto::rng::SeededIvSource;
use vdisk_rados::{BackendKind, Cluster, FaultConfig, FaultKind, RetryPolicy};
use vdisk_rbd::Image;

const IMAGE_SIZE: u64 = 1 << 20;
const OBJECT_SIZE: u64 = 256 << 10;
const SECTOR: u64 = 4096;
const OLD_PASS: &[u8] = b"before the rotation";
const NEW_PASS: &[u8] = b"after the rotation";

fn matrix_seed() -> u64 {
    std::env::var("VDISK_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xFA_17)
}

fn scratch(label: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/backend-scratch")
        .join(format!(
            "{label}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ))
}

/// Bounded-retry counter for chaos tests: panics if a blindly retried
/// op never lands (the schedule would have to be pathological).
fn bump(attempts: &mut u32, what: &str) {
    *attempts += 1;
    assert!(*attempts < 10_000, "{what} made no progress");
}

/// Recognizable per-sector plaintext.
fn pattern() -> Vec<u8> {
    let mut data = vec![0u8; IMAGE_SIZE as usize];
    for sector in 0..IMAGE_SIZE / SECTOR {
        let s = (sector * SECTOR) as usize;
        data[s..s + SECTOR as usize].fill(0x20 + (sector % 200) as u8);
        data[s..s + 8].copy_from_slice(&sector.to_le_bytes());
    }
    data
}

/// One replica so each transaction is exactly one durable commit: the
/// crash ordinal then addresses transactions, deterministically.
fn file_cluster(dir: &Path, faults: Option<FaultConfig>) -> Cluster {
    let mut builder = Cluster::builder()
        .backend(BackendKind::File {
            dir: dir.to_path_buf(),
        })
        .replicas(1);
    if let Some(config) = faults {
        builder = builder.fault_plane(config);
    }
    builder.build()
}

/// The crash-at-any-point scenario: precondition fault-free, rekey
/// under a cluster that dies at durable commit `n`, then reopen the
/// store directory from scratch, resume the rekey, and demand byte
/// identity with the preconditioned image. Exercised for every `n`
/// a full rekey can reach, so the crash lands on the intent persist,
/// each chunk rewrite, the watermark advance, `rekey_begin` and
/// `finish` alike.
fn crash_resume_is_byte_identical(
    config: &EncryptionConfig,
    crash_at: u64,
    chunk_sectors: u64,
    depth: usize,
) {
    let dir = scratch("crash-rekey");
    let mirror = pattern();

    // Phase 1 (fault-free): format and fill the image durably.
    {
        let cluster = file_cluster(&dir, None);
        let image =
            Image::create_with_object_size(&cluster, "vm0", IMAGE_SIZE, OBJECT_SIZE).unwrap();
        let mut disk = EncryptedImage::format_with_iv_source(
            image,
            config,
            OLD_PASS,
            Box::new(SeededIvSource::new(9)),
        )
        .unwrap();
        disk.write(0, &mirror).unwrap();
        cluster.flush();
    }

    // Phase 2: rekey until the injected crash kills the process-model
    // (or to completion, when `crash_at` is beyond the run's commits).
    let crashed = {
        let cluster = file_cluster(&dir, Some(FaultConfig::new(1).crash_at_commit(crash_at)));
        let image = Image::open(&cluster, "vm0").unwrap();
        let mut disk =
            EncryptedImage::open_with_iv_source(image, OLD_PASS, Box::new(SeededIvSource::new(10)))
                .unwrap();
        let outcome = disk
            .rekey_begin_with_iterations(OLD_PASS, NEW_PASS, 25)
            .map(|driver| {
                driver
                    .with_chunk_sectors(chunk_sectors)
                    .with_queue_depth(depth)
            })
            .and_then(|driver| driver.drive_to_completion(&mut disk));
        cluster.flush(); // no-op once crashed; durable otherwise
        outcome.is_err()
    };

    // Phase 3 (fault-free reopen): nothing survives but the directory.
    let cluster = file_cluster(&dir, None);
    let image = Image::open(&cluster, "vm0").unwrap();
    let mut disk = match EncryptedImage::open_with_iv_source(
        image,
        NEW_PASS,
        Box::new(SeededIvSource::new(11)),
    ) {
        Ok(disk) => disk,
        // The crash predates `rekey_begin`'s durable header update:
        // the store never heard of the new passphrase.
        Err(_) => EncryptedImage::open_with_iv_source(
            Image::open(&cluster, "vm0").unwrap(),
            OLD_PASS,
            Box::new(SeededIvSource::new(11)),
        )
        .unwrap(),
    };
    if let Some(driver) = disk.rekey_resume() {
        driver
            .with_chunk_sectors(chunk_sectors)
            .with_queue_depth(depth)
            .drive_to_completion(&mut disk)
            .unwrap();
    }
    assert!(
        disk.rekey_status().is_none() || !crashed,
        "a resumed rekey must run to completion"
    );

    let mut after = vec![0u8; IMAGE_SIZE as usize];
    disk.read(0, &mut after).unwrap();
    assert_eq!(
        after, mirror,
        "crash at commit {crash_at} diverged from the clean run ({config:?})"
    );
}

/// Every commit ordinal a full rekey reaches, exhaustively: ~26
/// commits cover `rekey_begin`, four windows' intent + chunk + water-
/// mark commits, and `finish`; larger ordinals prove the no-crash path
/// through the same harness.
#[test]
fn rekey_crash_at_every_commit_point_resumes_byte_identical() {
    let config = EncryptionConfig::random_iv(MetaLayout::ObjectEnd);
    for crash_at in 0..30 {
        crash_resume_is_byte_identical(&config, crash_at, 16, 4);
    }
}

/// The baseline layout has no per-sector epoch tags — recovery leans
/// entirely on the watermark + intent + marker protocol. (Only rekey
/// traffic runs during the faulted phase: a torn *client* write is
/// ambiguous on any storage system, tagged or not.)
#[test]
fn baseline_rekey_crash_recovery_without_sector_tags() {
    let config = EncryptionConfig::luks2_baseline();
    for crash_at in [0, 3, 7, 11, 15, 19, 23, 27] {
        crash_resume_is_byte_identical(&config, crash_at, 16, 4);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random (layout, crash point, chunking) triples widen the
    /// exhaustive sweep: different chunk sizes move every commit
    /// boundary, so the crash lands between different protocol steps.
    #[test]
    fn rekey_crash_recovery_property(
        crash_at in 0u64..40,
        layout in 0usize..3,
        chunk in prop_oneof![Just(8u64), Just(16u64), Just(32u64)],
        depth in 2usize..5,
    ) {
        let config = match layout {
            0 => EncryptionConfig::luks2_baseline(),
            1 => EncryptionConfig::random_iv(MetaLayout::ObjectEnd),
            _ => EncryptionConfig::random_iv(MetaLayout::Omap),
        };
        crash_resume_is_byte_identical(&config, crash_at, chunk, depth);
    }
}

/// A transient-fault storm (40% of jobs fail on first attempt) is
/// absorbed entirely by the in-worker retry layer: the whole
/// write → rekey → read lifecycle completes with zero divergence, and
/// the absorbed replays are visible in `ExecStats::retries`. Runs on
/// the matrix backend (`VDISK_BACKEND`).
#[test]
fn rekey_under_transient_storm_is_byte_identical() {
    let cluster = Cluster::builder()
        .concurrent_apply(true)
        .fault_plane(FaultConfig::new(matrix_seed()).transient_rate(0.4))
        .build();
    let image = Image::create_with_object_size(&cluster, "storm", IMAGE_SIZE, OBJECT_SIZE).unwrap();
    let mut disk = EncryptedImage::format_with_iv_source(
        image,
        &EncryptionConfig::random_iv(MetaLayout::ObjectEnd),
        OLD_PASS,
        Box::new(SeededIvSource::new(21)),
    )
    .unwrap();
    let mirror = pattern();
    disk.write(0, &mirror).unwrap();

    let driver = disk
        .rekey_begin_with_iterations(OLD_PASS, NEW_PASS, 25)
        .unwrap()
        .with_chunk_sectors(16)
        .with_queue_depth(4);
    driver.drive_to_completion(&mut disk).unwrap();

    let mut after = vec![0u8; IMAGE_SIZE as usize];
    disk.read(0, &mut after).unwrap();
    assert_eq!(after, mirror, "retried IO must be byte-transparent");
    assert!(
        cluster.exec_stats().retries > 0,
        "a 40% transient rate must exercise the retry layer"
    );
}

/// Windows that fail mid-flight (retries disabled, so every injected
/// transient surfaces) recover through the persisted intent: the
/// driver is simply stepped until it completes, each failed window
/// rolling back and each retried step re-proving the window's chunks
/// before migrating on. Byte identity at the end is the proof that
/// rollback + marker recovery compose.
#[test]
fn failed_windows_recover_through_the_intent_protocol() {
    let cluster = Cluster::builder()
        .concurrent_apply(true)
        .fault_plane(FaultConfig::new(matrix_seed()).transient_rate(0.15))
        .retry_policy(RetryPolicy::none())
        .build();
    // With retries off, even setup ops surface injections. They are
    // safe to retry blindly: faults are drawn *before* a transaction
    // applies, so a failed call is a call that changed nothing.
    let mut attempts = 0u32;
    let image = loop {
        match Image::create_with_object_size(&cluster, "flaky", IMAGE_SIZE, OBJECT_SIZE) {
            Ok(image) => break image,
            Err(_) => bump(&mut attempts, "image create"),
        }
    };
    let mut disk = loop {
        match EncryptedImage::format_with_iv_source(
            image.clone(),
            &EncryptionConfig::random_iv(MetaLayout::ObjectEnd),
            OLD_PASS,
            Box::new(SeededIvSource::new(31)),
        ) {
            Ok(disk) => break disk,
            Err(_) => bump(&mut attempts, "format"),
        }
    };
    let mirror = pattern();
    // Preconditioning: the full-image write is idempotent; retry it
    // until every extent lands.
    while disk.write(0, &mirror).is_err() {
        bump(&mut attempts, "preconditioning");
    }

    let mut driver = loop {
        match disk.rekey_begin_with_iterations(OLD_PASS, NEW_PASS, 25) {
            Ok(driver) => break driver.with_chunk_sectors(16).with_queue_depth(4),
            Err(_) => {
                attempts += 1;
                assert!(attempts < 10_000, "rekey_begin made no progress");
            }
        }
    };
    let mut failures = 0u64;
    loop {
        match driver.step(&mut disk) {
            Ok(progress) if progress.is_complete() => break,
            Ok(_) => {}
            Err(_) => {
                failures += 1;
                assert!(failures < 10_000, "rekey made no progress");
            }
        }
    }
    let mut finisher = Some(driver);
    while let Some(d) = finisher.take() {
        if d.finish(&mut disk).is_err() {
            failures += 1;
            assert!(failures < 10_000, "finish made no progress");
            finisher = disk.rekey_resume();
        }
    }
    assert!(disk.rekey_status().is_none());

    let mut after = vec![0u8; IMAGE_SIZE as usize];
    loop {
        if disk.read(0, &mut after).is_ok() {
            break;
        }
    }
    assert_eq!(after, mirror, "window rollback + recovery diverged");
    assert!(
        cluster.fault_plane().unwrap().injected_transients() > 0,
        "the schedule must actually inject"
    );
}

/// The PR-8 refund regression, deterministic: a tenant whose op
/// exhausts the retry budget must get its arbiter slot and backlog
/// space back — with a shared inflight budget of one, a healthy
/// tenant's IO can only complete if the failed tenant's grant was
/// refunded.
#[test]
fn retry_exhaustion_refunds_the_tenant_grant() {
    let cluster = Cluster::builder()
        .fault_plane(
            FaultConfig::new(matrix_seed()).fail_objects("rbd_data.victim", FaultKind::Transient),
        )
        .retry_policy(
            RetryPolicy::default()
                .max_retries(2)
                .backoff(Duration::ZERO, Duration::ZERO),
        )
        .build();
    let image =
        Image::create_with_object_size(&cluster, "victim", IMAGE_SIZE, OBJECT_SIZE).unwrap();
    let mut victim_disk = EncryptedImage::format_with_iv_source(
        image,
        &EncryptionConfig::random_iv(MetaLayout::ObjectEnd),
        OLD_PASS,
        Box::new(SeededIvSource::new(41)),
    )
    .unwrap();
    let image =
        Image::create_with_object_size(&cluster, "healthy", IMAGE_SIZE, OBJECT_SIZE).unwrap();
    let mut healthy_disk = EncryptedImage::format_with_iv_source(
        image,
        &EncryptionConfig::random_iv(MetaLayout::ObjectEnd),
        OLD_PASS,
        Box::new(SeededIvSource::new(42)),
    )
    .unwrap();

    // One shared inflight slot: a leaked grant wedges the runtime.
    let runtime = Runtime::new(1);
    let victim = runtime.register(TenantSpec::new("victim").qd_cap(4).backlog_cap(16));
    let healthy = runtime.register(TenantSpec::new("healthy").qd_cap(4).backlog_cap(16));

    for round in 0u64..4 {
        // The victim's write dispatches (taking the only slot), burns
        // its retry budget against the always-faulting object, and
        // surfaces the injected error at reap.
        {
            let mut queue = victim.attach(victim_disk.io_queue());
            queue
                .submit(IoOp::Write {
                    offset: 0,
                    data: vec![round as u8; SECTOR as usize],
                })
                .unwrap();
            let err = queue.fence().expect_err("the faulted op must surface");
            let text = err.to_string();
            assert!(text.contains("injected"), "unexpected error: {text}");
        }
        let stats = victim.stats();
        assert_eq!(stats.failed_ops, round + 1, "each round fails exactly once");
        assert_eq!(runtime.in_flight(), 0, "the failed op must leave in-flight");

        // The healthy tenant can only run if the slot was refunded.
        let mut queue = healthy.attach(healthy_disk.io_queue());
        queue
            .submit(IoOp::Write {
                offset: round * SECTOR,
                data: vec![0x5A; SECTOR as usize],
            })
            .unwrap();
        queue.fence().unwrap();
        drop(queue);
        assert_eq!(healthy.stats().completed_ops, round + 1);
        assert_eq!(healthy.stats().failed_ops, 0);
    }
    assert_eq!(
        runtime.snapshot().tenants.len(),
        2,
        "both tenants stay registered after repeated failures"
    );
}
