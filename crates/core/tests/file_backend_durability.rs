//! Encrypted images on the durable file backend: a formatted image
//! survives dropping every handle and reopening the store directory
//! from scratch (header, keyslots, per-sector IV metadata and data all
//! intact), the bytes at rest never leak plaintext, and
//! `secure_erase` leaves the data objects on disk undecryptable — the
//! paper's crypto-shred story made literal: the files are still there,
//! the key is not.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use vdisk_core::{CryptError, EncryptedImage, EncryptionConfig, MetaLayout};
use vdisk_crypto::rng::SeededIvSource;
use vdisk_rados::{BackendKind, Cluster};
use vdisk_rbd::Image;

const IMAGE_SIZE: u64 = 1 << 20;
const OBJECT_SIZE: u64 = 256 << 10;
const SECTOR: usize = 4096;
const PASS: &[u8] = b"correct horse battery staple";
/// A recognizable plaintext pattern no encrypted byte stream should
/// reproduce (64 bytes make an accidental match astronomically
/// unlikely).
const MARKER: &[u8; 64] = b"PLAINTEXT-MARKER-0123456789-abcdefghijklmnopqrstuvwxyz-MARKER-!!";

/// A scratch directory inside the workspace's `target/` (tests must
/// not write outside the repository).
fn scratch(label: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/backend-scratch")
        .join(format!(
            "{label}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ))
}

fn file_cluster(dir: &Path) -> Cluster {
    Cluster::builder()
        .backend(BackendKind::File {
            dir: dir.to_path_buf(),
        })
        .build()
}

fn marker_sector() -> Vec<u8> {
    let mut data = vec![0u8; SECTOR];
    for chunk in data.chunks_mut(MARKER.len()) {
        chunk.copy_from_slice(&MARKER[..chunk.len()]);
    }
    data
}

/// Whether any regular file under `dir` contains `needle`.
fn any_file_contains(dir: &Path, needle: &[u8]) -> bool {
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d).expect("store dir readable") {
            let path = entry.expect("dir entry").path();
            if path.is_dir() {
                stack.push(path);
            } else {
                let bytes = std::fs::read(&path).expect("object file readable");
                if bytes.windows(needle.len()).any(|w| w == needle) {
                    return true;
                }
            }
        }
    }
    false
}

#[test]
fn encrypted_image_reopens_from_disk_and_never_stores_plaintext() {
    let dir = scratch("crypt-reopen");
    {
        let cluster = file_cluster(&dir);
        let image =
            Image::create_with_object_size(&cluster, "vm0", IMAGE_SIZE, OBJECT_SIZE).unwrap();
        let mut disk = EncryptedImage::format_with_iv_source(
            image,
            &EncryptionConfig::random_iv(MetaLayout::Omap),
            PASS,
            Box::new(SeededIvSource::new(7)),
        )
        .unwrap();
        disk.write(0, &marker_sector()).unwrap();
        disk.write(IMAGE_SIZE - SECTOR as u64, &marker_sector())
            .unwrap();
        cluster.flush();
    }

    assert!(
        !any_file_contains(&dir, MARKER),
        "plaintext leaked into the on-disk object files"
    );

    // A brand-new process: nothing survives but the directory.
    let cluster = file_cluster(&dir);
    let image = Image::open(&cluster, "vm0").unwrap();
    let disk = EncryptedImage::open(image, PASS).unwrap();
    let mut buf = vec![0u8; SECTOR];
    disk.read(0, &mut buf).unwrap();
    assert_eq!(buf, marker_sector());
    disk.read(IMAGE_SIZE - SECTOR as u64, &mut buf).unwrap();
    assert_eq!(buf, marker_sector());

    let image = Image::open(&cluster, "vm0").unwrap();
    assert!(
        matches!(
            EncryptedImage::open(image, b"wrong passphrase"),
            Err(CryptError::WrongPassphrase)
        ),
        "keyslots must still gate the reopened image"
    );
}

#[test]
fn secure_erase_leaves_on_disk_objects_undecryptable() {
    let dir = scratch("crypt-shred");
    {
        let cluster = file_cluster(&dir);
        let image =
            Image::create_with_object_size(&cluster, "vm0", IMAGE_SIZE, OBJECT_SIZE).unwrap();
        let mut disk = EncryptedImage::format_with_iv_source(
            image,
            &EncryptionConfig::random_iv(MetaLayout::Omap),
            PASS,
            Box::new(SeededIvSource::new(11)),
        )
        .unwrap();
        disk.write(0, &marker_sector()).unwrap();
        cluster.flush();
        assert!(
            any_file_contains(&dir, b"VLUKS2"),
            "sanity: the header object (with its LUKS magic) is on disk before the shred"
        );

        disk.secure_erase().unwrap();
        cluster.flush();
    }

    // The ciphertext data objects are still on disk by design — the
    // key material is not, anywhere.
    let cluster = file_cluster(&dir);
    assert!(
        !cluster.list_objects().is_empty(),
        "crypto-shred keeps the (undecryptable) data objects"
    );
    assert!(
        !any_file_contains(&dir, b"VLUKS2"),
        "no header bytes may survive the shred on disk"
    );
    assert!(
        !any_file_contains(&dir, MARKER),
        "no plaintext may be recoverable from the shredded store"
    );
    let image = Image::open(&cluster, "vm0").unwrap();
    assert!(
        EncryptedImage::open(image, PASS).is_err(),
        "a shredded image must never open again, even with the right passphrase"
    );
}
