//! The key-lifecycle acceptance suite: online rekey under concurrent
//! queued IO, passphrase rotation, crypto-shredding, and concurrent
//! header updates.
//!
//! The acceptance bar (ISSUE 5): `rekey_begin` → drive-to-completion
//! on a written image changes **every** sector's ciphertext, the old
//! passphrase no longer unlocks, and data reads back byte-identical
//! throughout — with queued IO at QD ≥ 8 in flight between driver
//! steps, on every metadata layout (and the baseline, whose epochs
//! ride the driver's watermark instead of per-sector tags).

use proptest::prelude::*;
use vdisk_core::{
    CryptError, EncryptedImage, EncryptionConfig, IoOp, IoPayload, MetaLayout, RekeyDriver,
};
use vdisk_crypto::rng::SeededIvSource;
use vdisk_rados::{Cluster, SnapId};
use vdisk_rbd::Image;

const IMAGE_SIZE: u64 = 4 << 20;
const OBJECT_SIZE: u64 = 512 << 10;
const SECTOR: u64 = 4096;
const OLD_PASS: &[u8] = b"original passphrase";
const NEW_PASS: &[u8] = b"rotated passphrase";

fn all_configs() -> Vec<EncryptionConfig> {
    vec![
        EncryptionConfig::luks2_baseline(),
        EncryptionConfig::random_iv(MetaLayout::Unaligned),
        EncryptionConfig::random_iv(MetaLayout::ObjectEnd),
        EncryptionConfig::random_iv(MetaLayout::Omap),
    ]
}

fn make_disk(config: &EncryptionConfig, seed: u64) -> (Cluster, EncryptedImage) {
    // Workers forced on: queued IO genuinely overlaps the driver's
    // migration windows on the shard workers, on any host.
    let cluster = Cluster::builder().concurrent_apply(true).build();
    let image = Image::create_with_object_size(&cluster, "rekey", IMAGE_SIZE, OBJECT_SIZE).unwrap();
    let disk = EncryptedImage::format_with_iv_source(
        image,
        config,
        OLD_PASS,
        Box::new(SeededIvSource::new(seed)),
    )
    .unwrap();
    (cluster, disk)
}

/// Per-sector recognizable plaintext.
fn sector_pattern(sector: u64, tag: u8) -> Vec<u8> {
    let mut data = vec![tag; SECTOR as usize];
    data[..8].copy_from_slice(&sector.to_le_bytes());
    data
}

fn begin(disk: &mut EncryptedImage) -> RekeyDriver {
    disk.rekey_begin_with_iterations(OLD_PASS, NEW_PASS, 25)
        .unwrap()
        .with_chunk_sectors(64)
        .with_queue_depth(8)
}

/// The acceptance test proper, per config: write the whole image,
/// rekey it with queued IO (QD ≥ 8) interleaved between driver steps,
/// verify byte-identity throughout, then check that every sector's
/// ciphertext changed and only the new passphrase opens the image.
fn rekey_under_concurrent_queued_io(config: &EncryptionConfig) {
    let (cluster, mut disk) = make_disk(config, 0x5EED);
    let total_sectors = IMAGE_SIZE / SECTOR;

    // Precondition every sector and mirror the plaintext.
    let mut mirror = vec![0u8; IMAGE_SIZE as usize];
    for sector in 0..total_sectors {
        let data = sector_pattern(sector, 0x11);
        mirror[(sector * SECTOR) as usize..((sector + 1) * SECTOR) as usize].copy_from_slice(&data);
        disk.write(sector * SECTOR, &data).unwrap();
    }
    let before: Vec<Vec<u8>> = (0..total_sectors)
        .map(|lba| disk.observe_sector(lba, None).unwrap().ciphertext)
        .collect();

    let mut driver = begin(&mut disk);
    assert!(
        matches!(
            disk.rekey_begin(NEW_PASS, b"x"),
            Err(CryptError::RekeyInProgress)
        ),
        "a second rekey must be refused while one migrates"
    );

    // Interleave: one driver step, then a burst of queued IO held at
    // QD >= 8, repeating until the migration completes.
    let mut burst = 0u64;
    loop {
        let progress = driver.step(&mut disk).unwrap();

        let mut queue = disk.io_queue();
        let mut expected = Vec::new();
        for i in 0..5u64 {
            let sector = (burst * 7 + i * 131) % total_sectors;
            let data = sector_pattern(sector, 0x40 + (burst % 32) as u8);
            mirror[(sector * SECTOR) as usize..((sector + 1) * SECTOR) as usize]
                .copy_from_slice(&data);
            queue
                .submit(IoOp::Write {
                    offset: sector * SECTOR,
                    data,
                })
                .unwrap();
        }
        for i in 0..5u64 {
            let sector = (burst * 13 + i * 89) % total_sectors;
            let completion = queue
                .submit(IoOp::Read {
                    offset: sector * SECTOR,
                    len: SECTOR,
                })
                .unwrap();
            expected.push((completion, sector));
        }
        assert!(queue.in_flight() >= 8, "the burst must realize QD >= 8");
        let results = queue.fence().unwrap();
        for (completion, sector) in expected {
            let result = results
                .iter()
                .find(|r| r.completion == completion)
                .expect("read reaped");
            let IoPayload::Data(data) = &result.payload else {
                panic!("read payload");
            };
            // The queued read was submitted after the burst's queued
            // writes; its mirror expectation is the post-burst state.
            assert_eq!(
                data,
                &mirror[(sector * SECTOR) as usize..((sector + 1) * SECTOR) as usize],
                "mid-rekey queued read diverged (config {config:?})"
            );
        }
        drop(queue);
        burst += 1;
        if progress.is_complete() {
            break;
        }
    }
    assert!(burst >= 2, "the image must take several windows to migrate");
    driver.finish(&mut disk).unwrap();
    assert!(disk.rekey_status().is_none());

    // Byte-identity after completion.
    let mut after_plain = vec![0u8; IMAGE_SIZE as usize];
    disk.read(0, &mut after_plain).unwrap();
    assert_eq!(after_plain, mirror, "plaintext must survive the rekey");

    // Every sector's ciphertext changed — even sectors never touched
    // by the interleaved bursts, and even under the deterministic-IV
    // baseline (the key itself changed).
    for (lba, old) in before.iter().enumerate() {
        let now = disk.observe_sector(lba as u64, None).unwrap().ciphertext;
        assert_ne!(
            &now, old,
            "sector {lba} ciphertext unchanged by the rekey (config {config:?})"
        );
    }

    // The old passphrase is revoked; the new one opens and reads.
    drop(disk);
    let image = Image::open(&cluster, "rekey").unwrap();
    assert!(matches!(
        EncryptedImage::open(image.clone(), OLD_PASS),
        Err(CryptError::WrongPassphrase)
    ));
    let reopened = EncryptedImage::open(image, NEW_PASS).unwrap();
    let mut buf = vec![0u8; IMAGE_SIZE as usize];
    reopened.read(0, &mut buf).unwrap();
    assert_eq!(buf, mirror, "reopen under the new passphrase diverged");
}

#[test]
fn rekey_acceptance_baseline() {
    rekey_under_concurrent_queued_io(&EncryptionConfig::luks2_baseline());
}

#[test]
fn rekey_acceptance_unaligned() {
    rekey_under_concurrent_queued_io(&EncryptionConfig::random_iv(MetaLayout::Unaligned));
}

#[test]
fn rekey_acceptance_object_end() {
    rekey_under_concurrent_queued_io(&EncryptionConfig::random_iv(MetaLayout::ObjectEnd));
}

#[test]
fn rekey_acceptance_omap() {
    rekey_under_concurrent_queued_io(&EncryptionConfig::random_iv(MetaLayout::Omap));
}

/// Snapshots taken mid-rekey stay readable afterwards: tagged layouts
/// route by per-sector epoch tags, the baseline by the epoch map the
/// snapshot recorded at creation — and the retired key stays reachable
/// through the header's wrap chain, across a reopen.
#[test]
fn mid_rekey_snapshots_stay_readable_after_completion() {
    for config in all_configs() {
        let (cluster, mut disk) = make_disk(&config, 0xACE);
        let total_sectors = IMAGE_SIZE / SECTOR;
        for sector in 0..total_sectors {
            disk.write(sector * SECTOR, &sector_pattern(sector, 0x21))
                .unwrap();
        }
        let mut driver = begin(&mut disk);
        driver.step(&mut disk).unwrap();
        let frozen: Vec<u8> = (0..total_sectors)
            .flat_map(|s| sector_pattern(s, 0x21))
            .collect();
        let snap = disk.snap_create("mid-rekey").unwrap();
        // Overwrite some sectors after the snapshot, then finish.
        disk.write(0, &sector_pattern(0, 0x99)).unwrap();
        disk.write(
            (total_sectors - 1) * SECTOR,
            &sector_pattern(total_sectors - 1, 0x99),
        )
        .unwrap();
        while !driver.step(&mut disk).unwrap().is_complete() {}
        driver.finish(&mut disk).unwrap();

        let mut buf = vec![0u8; IMAGE_SIZE as usize];
        disk.read_at_snap(snap, 0, &mut buf).unwrap();
        assert_eq!(buf, frozen, "snapshot diverged (config {config:?})");

        // Same through a fresh open under the new passphrase.
        drop(disk);
        let reopened =
            EncryptedImage::open(Image::open(&cluster, "rekey").unwrap(), NEW_PASS).unwrap();
        reopened.read_at_snap(snap, 0, &mut buf).unwrap();
        assert_eq!(buf, frozen, "snapshot diverged after reopen ({config:?})");
    }
}

/// An abandoned driver can be resumed from the persisted watermark by
/// a fresh handle opened with the new passphrase.
#[test]
fn rekey_resumes_from_the_persisted_watermark() {
    let config = EncryptionConfig::random_iv(MetaLayout::ObjectEnd);
    let (cluster, mut disk) = make_disk(&config, 0xC0DE);
    for sector in 0..IMAGE_SIZE / SECTOR {
        disk.write(sector * SECTOR, &sector_pattern(sector, 0x31))
            .unwrap();
    }
    let mut driver = begin(&mut disk);
    driver.step(&mut disk).unwrap();
    let done_so_far = disk.rekey_status().unwrap().watermark;
    assert!(done_so_far > 0);
    let _abandoned = driver;
    drop(disk);

    let mut reopened =
        EncryptedImage::open(Image::open(&cluster, "rekey").unwrap(), NEW_PASS).unwrap();
    assert_eq!(reopened.rekey_status().unwrap().watermark, done_so_far);
    let driver = reopened
        .rekey_resume()
        .expect("rekey still in flight")
        .with_chunk_sectors(64)
        .with_queue_depth(8);
    driver.drive_to_completion(&mut reopened).unwrap();
    assert!(reopened.rekey_status().is_none());
    let mut buf = vec![0u8; IMAGE_SIZE as usize];
    reopened.read(0, &mut buf).unwrap();
    for sector in 0..IMAGE_SIZE / SECTOR {
        assert_eq!(
            &buf[(sector * SECTOR) as usize..(sector * SECTOR) as usize + 8],
            &sector.to_le_bytes()
        );
    }
}

/// Passphrase rotation is a pure header update: no data IO, no key
/// change (ciphertexts untouched), old passphrase revoked.
#[test]
fn rotate_passphrase_is_cheap_and_revokes_the_old_one() {
    let config = EncryptionConfig::random_iv(MetaLayout::ObjectEnd);
    let (cluster, mut disk) = make_disk(&config, 0xF1A7);
    disk.write(0, &sector_pattern(0, 0x44)).unwrap();
    let before = disk.observe_sector(0, None).unwrap().ciphertext;
    let tx_before = cluster.exec_stats().transactions;

    assert_eq!(disk.rotate_passphrase(OLD_PASS, NEW_PASS).unwrap(), 1);

    let tx_delta = cluster.exec_stats().transactions - tx_before;
    assert_eq!(tx_delta, 1, "rotation is exactly one header transaction");
    assert_eq!(
        disk.observe_sector(0, None).unwrap().ciphertext,
        before,
        "rotation must not touch data"
    );
    assert!(matches!(
        disk.rotate_passphrase(OLD_PASS, b"x"),
        Err(CryptError::WrongPassphrase)
    ));
    drop(disk);
    let image = Image::open(&cluster, "rekey").unwrap();
    assert!(EncryptedImage::open(image.clone(), OLD_PASS).is_err());
    let reopened = EncryptedImage::open(image, NEW_PASS).unwrap();
    let mut buf = vec![0u8; SECTOR as usize];
    reopened.read(0, &mut buf).unwrap();
    assert_eq!(buf, sector_pattern(0, 0x44));
}

/// Crypto-shred: after `secure_erase`, every subsequent open fails
/// (the header — and with it every wrapped key — is gone), while the
/// undecryptable data objects may remain.
#[test]
fn secure_erase_makes_all_subsequent_opens_fail() {
    let config = EncryptionConfig::random_iv(MetaLayout::ObjectEnd);
    let (cluster, mut disk) = make_disk(&config, 0xDEAD);
    disk.write(0, &sector_pattern(0, 0x55)).unwrap();
    assert!(cluster.object_exists("rbd_header.rekey.luks"));

    disk.secure_erase().unwrap();

    assert!(
        !cluster.object_exists("rbd_header.rekey.luks"),
        "the crypt header object must be overwritten and deleted"
    );
    let image = Image::open(&cluster, "rekey").unwrap();
    for pass in [OLD_PASS, NEW_PASS, b"anything".as_slice()] {
        assert!(
            matches!(
                EncryptedImage::open(image.clone(), pass),
                Err(CryptError::HeaderCorrupt(_))
            ),
            "no passphrase may open a shredded image"
        );
    }
    // The ciphertext is still there — and now permanently noise.
    assert!(cluster.object_exists(&image.object_name(0)));
}

/// Two handles racing header updates: the loser gets
/// `HeaderContended` instead of silently clobbering the winner.
#[test]
fn concurrent_header_updates_contend_instead_of_tearing() {
    let config = EncryptionConfig::random_iv(MetaLayout::Omap);
    let (cluster, mut a) = make_disk(&config, 0xAB);
    let mut b = EncryptedImage::open(Image::open(&cluster, "rekey").unwrap(), OLD_PASS).unwrap();

    a.add_passphrase(OLD_PASS, b"second").unwrap();
    assert!(matches!(
        b.rotate_passphrase(OLD_PASS, b"third"),
        Err(CryptError::HeaderContended)
    ));
    // A fresh open sees the winner's update intact.
    let c = EncryptedImage::open(Image::open(&cluster, "rekey").unwrap(), b"second").unwrap();
    drop(c);
}

/// A `rekey_begin` that loses the header CAS must leave the handle
/// exactly as it was: still on the old epoch, still writing sectors
/// the store's recorded keys can decrypt. (Without the rollback, the
/// loser would keep encrypting under a key that exists only in its
/// RAM — permanently unreadable once the handle closes.)
#[test]
fn contended_rekey_begin_rolls_back_completely() {
    let config = EncryptionConfig::random_iv(MetaLayout::ObjectEnd);
    let (cluster, mut a) = make_disk(&config, 0xCAFE);
    a.write(0, &sector_pattern(0, 0x71)).unwrap();
    let mut b = EncryptedImage::open(Image::open(&cluster, "rekey").unwrap(), OLD_PASS).unwrap();

    a.add_passphrase(OLD_PASS, b"second").unwrap(); // bumps the generation
    assert!(matches!(
        b.rekey_begin_with_iterations(OLD_PASS, NEW_PASS, 25),
        Err(CryptError::HeaderContended)
    ));
    assert_eq!(b.current_key_epoch(), 0, "the loser must stay on epoch 0");
    assert!(b.rekey_status().is_none());

    // Writes through the losing handle stay readable by everyone.
    b.write(4096, &sector_pattern(1, 0x72)).unwrap();
    drop(a);
    drop(b);
    let reopened = EncryptedImage::open(Image::open(&cluster, "rekey").unwrap(), OLD_PASS).unwrap();
    let mut buf = vec![0u8; SECTOR as usize];
    reopened.read(4096, &mut buf).unwrap();
    assert_eq!(buf, sector_pattern(1, 0x72));
}

/// Removing an encrypted image leaves nothing behind — the regression
/// the `Image::remove` fix closes (the `.luks` sidecar used to leak).
#[test]
fn image_remove_deletes_the_crypt_header_too() {
    let config = EncryptionConfig::random_iv(MetaLayout::ObjectEnd);
    let (cluster, mut disk) = make_disk(&config, 0xBEE);
    disk.write(0, &sector_pattern(0, 0x66)).unwrap();
    drop(disk);
    Image::remove(&cluster, "rekey").unwrap();
    assert!(
        cluster.list_objects().is_empty(),
        "an encrypted image must remove its data, header, and crypt header"
    );
}

// ---------------------------------------------------------------------
// Property: any interleaving of queued reads/writes/snapshots with an
// in-flight RekeyDriver is byte-identical to a quiesced rekey followed
// by a sequential replay of the same operations.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Action {
    Write { offset: u64, len: usize, fill: u8 },
    Read { offset: u64, len: usize },
    Step,
    Snapshot,
    SnapRead { offset: u64, len: usize },
    Fence,
}

fn action_strategy() -> impl Strategy<Value = Action> {
    let span = (0u64..IMAGE_SIZE, 1usize..100_000);
    prop_oneof![
        (0u64..IMAGE_SIZE, 1usize..100_000, any::<u8>()).prop_map(|(offset, len, fill)| {
            let len = len.min((IMAGE_SIZE - offset) as usize);
            Action::Write { offset, len, fill }
        }),
        span.clone().prop_map(|(offset, len)| {
            let len = len.min((IMAGE_SIZE - offset) as usize);
            Action::Read { offset, len }
        }),
        Just(Action::Step),
        Just(Action::Step),
        Just(Action::Snapshot),
        span.prop_map(|(offset, len)| {
            let len = len.min((IMAGE_SIZE - offset) as usize);
            Action::SnapRead { offset, len }
        }),
        Just(Action::Fence),
    ]
}

fn run_interleaving(config: &EncryptionConfig, actions: &[Action], seed: u64) {
    let (_cluster, mut live) = make_disk(config, seed);
    // The reference: identical initial content, rekeyed while fully
    // quiesced, then the same ops replayed sequentially.
    let (_ref_cluster, mut quiesced) = make_disk(config, seed ^ 0x1234);

    let mut mirror = vec![0u8; IMAGE_SIZE as usize];
    for sector in 0..IMAGE_SIZE / SECTOR {
        let data = sector_pattern(sector, 0x10);
        mirror[(sector * SECTOR) as usize..((sector + 1) * SECTOR) as usize].copy_from_slice(&data);
        live.write(sector * SECTOR, &data).unwrap();
        quiesced.write(sector * SECTOR, &data).unwrap();
    }

    // Quiesced reference: migrate everything up front.
    begin(&mut quiesced)
        .drive_to_completion(&mut quiesced)
        .unwrap();

    // Live run: the driver steps interleave with queued IO. The queue
    // is re-opened around each driver step, so completion ids restart;
    // reads are keyed by a stable sequence number of our own.
    let mut driver = begin(&mut live);
    let mut snaps: Vec<(SnapId, Vec<u8>)> = Vec::new();
    let mut expected_reads: Vec<(u64, Vec<u8>)> = Vec::new();
    let mut seen_reads: Vec<(u64, Vec<u8>)> = Vec::new();
    let mut next_seq = 0u64;
    let mut pending: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();

    let mut queue = live.io_queue();
    for (i, action) in actions.iter().enumerate() {
        match action {
            Action::Write { offset, len, fill } => {
                let data = vec![*fill; *len];
                mirror[*offset as usize..*offset as usize + len].copy_from_slice(&data);
                queue
                    .submit(IoOp::Write {
                        offset: *offset,
                        data,
                    })
                    .unwrap();
            }
            Action::Read { offset, len } => {
                let completion = queue
                    .submit(IoOp::Read {
                        offset: *offset,
                        len: *len as u64,
                    })
                    .unwrap();
                pending.insert(completion.id(), next_seq);
                expected_reads.push((
                    next_seq,
                    mirror[*offset as usize..*offset as usize + len].to_vec(),
                ));
                next_seq += 1;
            }
            Action::Step => {
                // The driver needs the disk; queued client ops keep
                // riding the shard FIFOs underneath regardless.
                for result in queue.fence().unwrap() {
                    if let IoPayload::Data(data) = result.payload {
                        let seq = pending.remove(&result.completion.id()).unwrap();
                        seen_reads.push((seq, data));
                    }
                }
                drop(queue);
                let progress = driver.progress(&live).unwrap();
                if !progress.is_complete() {
                    driver.step(&mut live).unwrap();
                }
                queue = live.io_queue();
            }
            Action::Snapshot => {
                let snap = queue.disk().snap_create(&format!("s{i}")).unwrap();
                snaps.push((snap, mirror.clone()));
            }
            Action::SnapRead { offset, len } => {
                let Some((snap, frozen)) = snaps.last() else {
                    continue;
                };
                let mut buf = vec![0u8; *len];
                queue.disk().read_at_snap(*snap, *offset, &mut buf).unwrap();
                assert_eq!(
                    buf,
                    frozen[*offset as usize..*offset as usize + len],
                    "snapshot read diverged mid-rekey ({config:?})"
                );
            }
            Action::Fence => {
                for result in queue.fence().unwrap() {
                    if let IoPayload::Data(data) = result.payload {
                        let seq = pending.remove(&result.completion.id()).unwrap();
                        seen_reads.push((seq, data));
                    }
                }
            }
        }
    }
    for result in queue.fence().unwrap() {
        if let IoPayload::Data(data) = result.payload {
            let seq = pending.remove(&result.completion.id()).unwrap();
            seen_reads.push((seq, data));
        }
    }
    drop(queue);
    while !driver.step(&mut live).unwrap().is_complete() {}
    driver.finish(&mut live).unwrap();

    // Every queued read saw exactly its submission-point bytes.
    seen_reads.sort_by_key(|(id, _)| *id);
    assert_eq!(seen_reads.len(), expected_reads.len());
    for ((id_seen, data), (id_expected, expected)) in seen_reads.iter().zip(&expected_reads) {
        assert_eq!(id_seen, id_expected);
        assert_eq!(
            data, expected,
            "queued read {id_seen} diverged ({config:?})"
        );
    }

    // Quiesced reference: replay the same writes sequentially.
    for action in actions {
        if let Action::Write { offset, len, fill } = action {
            quiesced.write_owned(*offset, vec![*fill; *len]).unwrap();
        }
    }

    // Byte-identity: live interleaved run == mirror == quiesced
    // rekey + sequential replay.
    let mut from_live = vec![0u8; IMAGE_SIZE as usize];
    let mut from_quiesced = vec![0u8; IMAGE_SIZE as usize];
    live.read(0, &mut from_live).unwrap();
    quiesced.read(0, &mut from_quiesced).unwrap();
    assert_eq!(from_live, mirror, "live rekey run diverged ({config:?})");
    assert_eq!(
        from_quiesced, mirror,
        "quiesced reference diverged ({config:?})"
    );

    // And the mid-rekey snapshots still read their frozen state now
    // that the old epoch is retired.
    for (snap, frozen) in &snaps {
        let mut buf = vec![0u8; IMAGE_SIZE as usize];
        live.read_at_snap(*snap, 0, &mut buf).unwrap();
        assert_eq!(&buf, frozen, "snapshot diverged post-rekey ({config:?})");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn interleaved_rekey_matches_quiesced_replay_baseline(
        actions in proptest::collection::vec(action_strategy(), 4..14)
    ) {
        run_interleaving(&EncryptionConfig::luks2_baseline(), &actions, 0xB0);
    }

    #[test]
    fn interleaved_rekey_matches_quiesced_replay_object_end(
        actions in proptest::collection::vec(action_strategy(), 4..14)
    ) {
        run_interleaving(
            &EncryptionConfig::random_iv(MetaLayout::ObjectEnd),
            &actions,
            0x0E,
        );
    }

    #[test]
    fn interleaved_rekey_matches_quiesced_replay_omap(
        actions in proptest::collection::vec(action_strategy(), 4..12)
    ) {
        run_interleaving(&EncryptionConfig::random_iv(MetaLayout::Omap), &actions, 0x0A);
    }

    #[test]
    fn interleaved_rekey_matches_quiesced_replay_unaligned(
        actions in proptest::collection::vec(action_strategy(), 4..12)
    ) {
        run_interleaving(
            &EncryptionConfig::random_iv(MetaLayout::Unaligned),
            &actions,
            0x0B,
        );
    }
}
