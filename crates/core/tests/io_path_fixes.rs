//! Regression tests for the IO-path correctness sweep:
//!
//! 1. images whose size is not a sector multiple are rejected at
//!    format time (previously the unaligned tail RMW span rounded up
//!    past the image end and a legitimate in-bounds IO was refused);
//! 2. unaligned writes read-modify-write **only the partially-written
//!    boundary sectors**, never decrypting interior sectors that are
//!    about to be fully overwritten;
//! 3. out-of-bounds errors report the true requested end.

use vdisk_core::{CryptError, EncryptedImage, EncryptionConfig, MetaLayout};
use vdisk_crypto::rng::SeededIvSource;
use vdisk_rados::{Cluster, Transaction};
use vdisk_rbd::{Image, RbdError};

const SS: u64 = 4096;

fn make_disk(config: &EncryptionConfig, image_size: u64) -> (Cluster, EncryptedImage) {
    let cluster = Cluster::builder().build();
    let image = Image::create(&cluster, "fixes", image_size).unwrap();
    let disk = EncryptedImage::format_with_iv_source(
        image,
        config,
        b"io-path-fixes",
        Box::new(SeededIvSource::new(17)),
    )
    .unwrap();
    (cluster, disk)
}

#[test]
fn non_sector_multiple_image_size_is_rejected_at_format() {
    let cluster = Cluster::builder().build();
    let image = Image::create(&cluster, "ragged", (8 << 20) + 100).unwrap();
    let err = EncryptedImage::format(
        image,
        &EncryptionConfig::random_iv(MetaLayout::ObjectEnd),
        b"pw",
    )
    .unwrap_err();
    let CryptError::UnsupportedConfig(why) = err else {
        panic!("expected UnsupportedConfig, got {err:?}");
    };
    assert!(
        why.contains("not a multiple"),
        "error must say what is wrong: {why}"
    );
}

#[test]
fn unaligned_io_at_the_image_tail_round_trips() {
    // The case the old span arithmetic got wrong: an IO whose aligned
    // span ends exactly at the image end must be accepted.
    let size = 8 << 20;
    let (_cluster, mut disk) = make_disk(&EncryptionConfig::random_iv(MetaLayout::ObjectEnd), size);
    let payload = [0xABu8; 100];
    disk.write(size - 100, &payload).unwrap();
    let mut buf = [0u8; 100];
    disk.read(size - 100, &mut buf).unwrap();
    assert_eq!(buf, payload);
    // Spanning the last sector boundary unaligned works too.
    let payload: Vec<u8> = (0..5000u32).map(|i| (i % 251) as u8).collect();
    disk.write(size - 5000, &payload).unwrap();
    let mut buf = vec![0u8; 5000];
    disk.read(size - 5000, &mut buf).unwrap();
    assert_eq!(buf, payload);
}

#[test]
fn rmw_reads_only_the_boundary_sectors() {
    let (cluster, mut disk) =
        make_disk(&EncryptionConfig::random_iv(MetaLayout::ObjectEnd), 8 << 20);
    // Prefill eight sectors so the RMW has real data to preserve.
    disk.write(0, &vec![0x11u8; (8 * SS) as usize]).unwrap();

    // Overwrite sectors 1..=5, partial at both ends: head sector 1 and
    // tail sector 5 must be read back; interior sectors 2..=4 are
    // fully overwritten and must NOT be.
    let offset = SS + 16;
    let len = 4 * SS;
    let plan = disk.write(offset, &vec![0x22u8; len as usize]).unwrap();

    // Client crypto cost proves what got decrypted: 2 boundary sectors
    // read back + the 5-sector aligned span encrypted. The old
    // whole-span RMW decrypted all 5.
    let crypto = cluster.resources().client_crypto;
    assert_eq!(
        plan.bytes_on(crypto),
        2 * SS + 5 * SS,
        "RMW must decrypt exactly the two partially-written boundary sectors"
    );

    // And the splice is correct.
    let mut buf = vec![0u8; (8 * SS) as usize];
    disk.read(0, &mut buf).unwrap();
    let mut expected = vec![0x11u8; (8 * SS) as usize];
    expected[offset as usize..(offset + len) as usize].fill(0x22);
    assert_eq!(buf, expected);
}

#[test]
fn rmw_skips_interior_sectors_even_when_tampered() {
    // The sharpest observable consequence of boundary-only RMW: with
    // integrity on, corrupted ciphertext in a fully-overwritten
    // interior sector must not fail the write (the old code read and
    // MAC-checked the whole span).
    let config = EncryptionConfig::random_iv(MetaLayout::ObjectEnd).with_mac();
    let (cluster, mut disk) = make_disk(&config, 8 << 20);
    disk.write(0, &vec![0x33u8; (8 * SS) as usize]).unwrap();

    // Corrupt sector 3's ciphertext directly in the object store.
    let object = disk.image().object_name(0);
    let (data_off, _) = disk.geometry().data_extent(config.layout, 3, 1);
    let mut tx = Transaction::new(&object);
    tx.write(data_off, vec![0xFF; SS as usize]);
    cluster.execute(tx).unwrap();

    // Unaligned overwrite spanning sectors 1..=5: interior sector 3 is
    // fully replaced, so the tamper must not block the write...
    let offset = SS + 16;
    let len = 4 * SS;
    disk.write(offset, &vec![0x44u8; len as usize]).unwrap();

    // ...and afterwards the whole range reads clean again.
    let mut buf = vec![0u8; (8 * SS) as usize];
    disk.read(0, &mut buf).unwrap();
    let mut expected = vec![0x33u8; (8 * SS) as usize];
    expected[offset as usize..(offset + len) as usize].fill(0x44);
    assert_eq!(buf, expected);
}

#[test]
fn aligned_head_unaligned_tail_reads_one_boundary_sector() {
    let (cluster, mut disk) =
        make_disk(&EncryptionConfig::random_iv(MetaLayout::ObjectEnd), 8 << 20);
    disk.write(0, &vec![0x55u8; (4 * SS) as usize]).unwrap();
    // Aligned start, tail ends mid-sector 2: only sector 2 is read.
    let plan = disk
        .write(0, &vec![0x66u8; (2 * SS + 100) as usize])
        .unwrap();
    let crypto = cluster.resources().client_crypto;
    assert_eq!(plan.bytes_on(crypto), SS + 3 * SS);
    let mut buf = vec![0u8; (4 * SS) as usize];
    disk.read(0, &mut buf).unwrap();
    let mut expected = vec![0x55u8; (4 * SS) as usize];
    expected[..(2 * SS + 100) as usize].fill(0x66);
    assert_eq!(buf, expected);
}

#[test]
fn out_of_bounds_reports_the_true_requested_end() {
    let size = 8 << 20;
    let (_cluster, mut disk) = make_disk(&EncryptionConfig::luks2_baseline(), size);
    let err = disk.write(size - 100, &[0u8; 4096]).unwrap_err();
    let CryptError::Rbd(RbdError::OutOfBounds { offset, size: sz }) = err else {
        panic!("expected OutOfBounds, got {err:?}");
    };
    assert_eq!(offset, size - 100 + 4096, "must report offset + len");
    assert_eq!(sz, size);

    let mut buf = [0u8; 8];
    let err = disk.read(u64::MAX - 4, &mut buf).unwrap_err();
    let CryptError::Rbd(RbdError::OutOfBounds { offset, .. }) = err else {
        panic!("expected OutOfBounds, got {err:?}");
    };
    assert_eq!(offset, u64::MAX, "overflowing end saturates");
}

#[test]
fn zero_length_io_is_a_noop_anywhere_in_bounds() {
    let size = 8 << 20;
    let (_cluster, mut disk) = make_disk(&EncryptionConfig::luks2_baseline(), size);
    assert_eq!(disk.write(size, &[]).unwrap(), vdisk_sim::Plan::Noop);
    let mut empty = [0u8; 0];
    assert_eq!(disk.read(size, &mut empty).unwrap(), vdisk_sim::Plan::Noop);
}
