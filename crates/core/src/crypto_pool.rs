//! Parallel client-side encryption: one batched write's sector run
//! split across scoped worker threads, reproducing the serial IV
//! stream bit-for-bit.
//!
//! The only stateful input to sector encryption is the [`IvSource`] —
//! every other input (keys, epoch map, LBAs) is a pure function of the
//! sector index. So a parallel encode pre-draws the whole request's IV
//! bytes **serially, one draw per sector in sector order** (exactly
//! the sequence a serial encode performs), then hands each lane the
//! sub-range its sectors would have drawn. Lane count therefore never
//! changes the ciphertext: lanes = 1 and lanes = N are bit-identical.

use crate::keychain::{EpochMap, KeyChain};
use crate::Result;
use vdisk_crypto::rng::IvSource;

/// Replays a pre-drawn IV byte stream: each `fill` copies the next
/// `buf.len()` bytes off the front of the slice. A lane's source holds
/// exactly the bytes its sectors draw, so the slice is fully consumed.
struct SliceIvSource<'a> {
    bytes: &'a [u8],
}

impl IvSource for SliceIvSource<'_> {
    fn fill(&mut self, buf: &mut [u8]) {
        let (head, rest) = self.bytes.split_at(buf.len());
        buf.copy_from_slice(head);
        self.bytes = rest;
    }
}

/// Encrypts a contiguous LBA run in place across `lanes` scoped
/// threads, appending the packed metadata run to `metas` in sector
/// order — the parallel equivalent of
/// [`KeyChain::encrypt_sectors`] over the whole run. `lanes <= 1`
/// (or a run smaller than the lane count) falls back to the serial
/// codec call, drawing IVs straight from `iv_source`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn encrypt_run_parallel(
    chain: &KeyChain,
    base_lba: u64,
    write_seq: u64,
    data: &mut [u8],
    metas: &mut Vec<u8>,
    iv_source: &mut dyn IvSource,
    epochs: EpochMap,
    tagged: bool,
    lanes: usize,
) -> Result<()> {
    let ss = chain.sector_size();
    debug_assert_eq!(data.len() % ss, 0, "whole sectors only");
    let total = data.len() / ss;
    let lanes = lanes.min(total);
    if lanes <= 1 {
        return chain.encrypt_sectors(base_lba, write_seq, data, metas, iv_source, epochs, tagged);
    }

    // Pre-draw the serial IV stream: one draw per sector, in sector
    // order, so seeded sources and draw counters observe exactly the
    // sequence a serial encode would produce.
    let draw = chain.iv_draw_len();
    let mut ivs = vec![0u8; total * draw];
    if draw > 0 {
        for chunk in ivs.chunks_exact_mut(draw) {
            iv_source.fill(chunk);
        }
    }

    let me = chain.meta_entry_len();
    let base = total / lanes;
    let rem = total % lanes;
    let mut results: Vec<Result<Vec<u8>>> = Vec::with_capacity(lanes);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(lanes);
        let mut rest = &mut data[..];
        let mut iv_rest = &ivs[..];
        let mut sector = 0u64;
        for lane in 0..lanes {
            let count = base + usize::from(lane < rem);
            let (chunk, tail) = rest.split_at_mut(count * ss);
            rest = tail;
            let (iv_chunk, iv_tail) = iv_rest.split_at(count * draw);
            iv_rest = iv_tail;
            let lba = base_lba + sector;
            sector += count as u64;
            handles.push(scope.spawn(move || {
                let mut local = Vec::with_capacity(count * me);
                let mut source = SliceIvSource { bytes: iv_chunk };
                chain.encrypt_sectors(
                    lba,
                    write_seq,
                    chunk,
                    &mut local,
                    &mut source,
                    epochs,
                    tagged,
                )?;
                Ok(local)
            }));
        }
        for handle in handles {
            results.push(handle.join().expect("crypto lane panicked"));
        }
    });
    for lane_metas in results {
        metas.extend_from_slice(&lane_metas?);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{EncryptionConfig, MetaLayout};
    use crate::luks::DerivedKeys;
    use crate::sector::SectorCodec;
    use vdisk_crypto::mem::SecretBytes;
    use vdisk_crypto::rng::SeededIvSource;

    fn chain(config: &EncryptionConfig) -> KeyChain {
        let master = SecretBytes::from(vec![0x42; 64]);
        let keys = DerivedKeys::derive(&master, config.cipher);
        KeyChain::new(0, SectorCodec::new(config, &keys, 0).unwrap())
    }

    #[test]
    fn lane_count_never_changes_the_ciphertext() {
        for config in [
            EncryptionConfig::random_iv(MetaLayout::ObjectEnd),
            EncryptionConfig::luks2_baseline(),
        ] {
            let chain = chain(&config);
            let ss = config.sector_size as usize;
            let plain: Vec<u8> = (0..64 * ss).map(|i| (i % 251) as u8).collect();
            let mut outputs = Vec::new();
            for lanes in [1, 3, 4] {
                let mut data = plain.clone();
                let mut metas = Vec::new();
                let mut rng = SeededIvSource::new(77);
                encrypt_run_parallel(
                    &chain,
                    9,
                    0,
                    &mut data,
                    &mut metas,
                    &mut rng,
                    EpochMap::uniform(0),
                    config.layout.is_some(),
                    lanes,
                )
                .unwrap();
                outputs.push((data, metas));
            }
            assert_eq!(outputs[0], outputs[1]);
            assert_eq!(outputs[0], outputs[2]);
        }
    }

    #[test]
    fn tiny_runs_fall_back_to_one_lane() {
        let config = EncryptionConfig::random_iv(MetaLayout::ObjectEnd);
        let chain = chain(&config);
        let ss = config.sector_size as usize;
        let mut data = vec![0xA5; ss];
        let mut metas = Vec::new();
        let mut rng = SeededIvSource::new(5);
        encrypt_run_parallel(
            &chain,
            0,
            0,
            &mut data,
            &mut metas,
            &mut rng,
            EpochMap::uniform(0),
            true,
            8,
        )
        .unwrap();
        let mut round = data.clone();
        chain
            .decrypt_sectors(0, None, &mut round, &metas, EpochMap::uniform(0))
            .unwrap();
        assert_eq!(round, vec![0xA5; ss]);
    }
}
