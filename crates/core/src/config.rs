//! Encryption configuration: ciphers, IV schemes and metadata layouts.

use crate::{CryptError, Result};

/// Bytes of the key-epoch tag appended to every persisted metadata
/// entry (little-endian `u32`). The tag names the key epoch a sector
/// was encrypted under, so reads select the right master key while an
/// online rekey is migrating the image — and after it completes,
/// snapshot reads still reach retired epochs. The baseline layout
/// stores no metadata at all; it tracks epochs with the rekey
/// watermark instead (see `EncryptedImage::rekey_begin`).
pub const KEY_EPOCH_TAG_LEN: u32 = 4;

/// Where per-sector metadata lives — the paper's three alternatives
/// (Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MetaLayout {
    /// Each IV is stored immediately after its sector (Fig. 2a). Data
    /// becomes unaligned to physical sectors; cheap to address, costly
    /// to write (read-modify-write).
    Unaligned,
    /// All IVs of an object are batched after the data region, at the
    /// object end (Fig. 2b). Keeps data aligned; the paper's winner.
    ObjectEnd,
    /// IVs live in the per-object key-value database (OMAP / RocksDB,
    /// Fig. 2c). Wins at 4 KB, collapses at large IO sizes.
    Omap,
}

impl MetaLayout {
    /// All three layouts, in the paper's presentation order.
    pub const ALL: [MetaLayout; 3] = [
        MetaLayout::Unaligned,
        MetaLayout::ObjectEnd,
        MetaLayout::Omap,
    ];

    /// Display label matching the paper's figures.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            MetaLayout::Unaligned => "Unaligned",
            MetaLayout::ObjectEnd => "Object end",
            MetaLayout::Omap => "OMAP",
        }
    }

    pub(crate) fn to_wire(self) -> u8 {
        match self {
            MetaLayout::Unaligned => 1,
            MetaLayout::ObjectEnd => 2,
            MetaLayout::Omap => 3,
        }
    }

    pub(crate) fn from_wire(b: u8) -> Option<Option<MetaLayout>> {
        match b {
            0 => Some(None),
            1 => Some(Some(MetaLayout::Unaligned)),
            2 => Some(Some(MetaLayout::ObjectEnd)),
            3 => Some(Some(MetaLayout::Omap)),
            _ => None,
        }
    }
}

impl std::fmt::Display for MetaLayout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The sector cipher.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Cipher {
    /// AES-128-XTS (two 128-bit keys).
    Aes128Xts,
    /// AES-256-XTS (two 256-bit keys) — the LUKS2 default.
    #[default]
    Aes256Xts,
    /// AES-256-GCM: authenticated encryption. Requires a metadata
    /// layout with a random IV (nonce reuse breaks GCM, §2.1).
    Aes256Gcm,
    /// EME2-style wide-block AES-256 (§2.2's mitigation).
    Eme2Aes256,
    /// AES-256-CBC with ESSIV — the pre-XTS legacy mode (§1 fn. 1).
    /// Deterministic-IV only.
    CbcEssiv256,
}

impl Cipher {
    pub(crate) fn to_wire(self) -> u8 {
        match self {
            Cipher::Aes128Xts => 1,
            Cipher::Aes256Xts => 2,
            Cipher::Aes256Gcm => 3,
            Cipher::Eme2Aes256 => 4,
            Cipher::CbcEssiv256 => 5,
        }
    }

    pub(crate) fn from_wire(b: u8) -> Option<Cipher> {
        match b {
            1 => Some(Cipher::Aes128Xts),
            2 => Some(Cipher::Aes256Xts),
            3 => Some(Cipher::Aes256Gcm),
            4 => Some(Cipher::Eme2Aes256),
            5 => Some(Cipher::CbcEssiv256),
            _ => None,
        }
    }

    /// Human-readable name (LUKS-style spec string).
    #[must_use]
    pub fn spec(self) -> &'static str {
        match self {
            Cipher::Aes128Xts => "aes-xts-plain64-128",
            Cipher::Aes256Xts => "aes-xts-plain64-256",
            Cipher::Aes256Gcm => "aes-gcm-random-256",
            Cipher::Eme2Aes256 => "aes-eme2-256",
            Cipher::CbcEssiv256 => "aes-cbc-essiv:sha256-256",
        }
    }
}

/// Complete encryption configuration of an image.
///
/// Use the constructors; then [`EncryptionConfig::validate`] enforces
/// the cross-field rules (GCM needs metadata, CBC-ESSIV cannot take a
/// random IV, integrity needs metadata space, ...).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncryptionConfig {
    /// Sector cipher.
    pub cipher: Cipher,
    /// Metadata placement; `None` = length-preserving baseline (LUKS2).
    pub layout: Option<MetaLayout>,
    /// Fresh random IV per sector write (the paper's proposal). When
    /// false with a layout present, the LBA tweak is still used and the
    /// metadata region carries only MACs.
    pub random_iv: bool,
    /// Append a truncated HMAC-SHA256 per sector (§2.2's
    /// authentication option).
    pub mac: bool,
    /// Bind each sector's write-time snapshot sequence into the tweak
    /// and store it, blocking cross-snapshot replay (footnote 3).
    pub snapshot_binding: bool,
    /// Encryption sector size. The paper evaluates 4096 (LUKS2);
    /// 512 reproduces the LUKS1 comparison (footnote 4).
    pub sector_size: u32,
}

impl Default for EncryptionConfig {
    fn default() -> Self {
        EncryptionConfig::luks2_baseline()
    }
}

impl EncryptionConfig {
    /// The paper's baseline: AES-256-XTS, LBA-derived deterministic
    /// IVs, no stored metadata (Ceph RBD's LUKS2 encryption).
    #[must_use]
    pub fn luks2_baseline() -> Self {
        EncryptionConfig {
            cipher: Cipher::Aes256Xts,
            layout: None,
            random_iv: false,
            mac: false,
            snapshot_binding: false,
            sector_size: 4096,
        }
    }

    /// The paper's proposal: AES-256-XTS with a fresh random IV
    /// persisted in the given layout.
    #[must_use]
    pub fn random_iv(layout: MetaLayout) -> Self {
        EncryptionConfig {
            cipher: Cipher::Aes256Xts,
            layout: Some(layout),
            random_iv: true,
            mac: false,
            snapshot_binding: false,
            sector_size: 4096,
        }
    }

    /// Shorthand for the paper's best-performing variant.
    #[must_use]
    pub fn random_iv_object_end() -> Self {
        Self::random_iv(MetaLayout::ObjectEnd)
    }

    /// Adds the per-sector MAC extension.
    #[must_use]
    pub fn with_mac(mut self) -> Self {
        self.mac = true;
        self
    }

    /// Adds the snapshot-binding extension (footnote 3).
    #[must_use]
    pub fn with_snapshot_binding(mut self) -> Self {
        self.snapshot_binding = true;
        self
    }

    /// Selects a different cipher.
    #[must_use]
    pub fn with_cipher(mut self, cipher: Cipher) -> Self {
        self.cipher = cipher;
        self
    }

    /// Selects a sector size (512 or 4096).
    #[must_use]
    pub fn with_sector_size(mut self, sector_size: u32) -> Self {
        self.sector_size = sector_size;
        self
    }

    /// Bytes of metadata stored per sector. Every layout entry ends
    /// with the 4-byte key-epoch tag ([`KEY_EPOCH_TAG_LEN`]) naming
    /// the master-key epoch the sector was encrypted under.
    ///
    /// - XTS/EME2 random IV: 16 (+16 with MAC, +8 with snapshot
    ///   binding) + 4;
    /// - GCM: 12-byte nonce + 16-byte tag, padded to 32 (+8 binding)
    ///   + 4;
    /// - deterministic IV with MAC: 16 (+8 binding) + 4;
    /// - baseline: 0 (epochs tracked by the rekey watermark instead).
    #[must_use]
    pub fn meta_entry_len(&self) -> u32 {
        if self.layout.is_none() {
            return 0;
        }
        let mut len = 0;
        match self.cipher {
            Cipher::Aes256Gcm => len += 32,
            _ => {
                if self.random_iv {
                    len += 16;
                }
                if self.mac {
                    len += 16;
                }
            }
        }
        if self.snapshot_binding {
            len += 8;
        }
        len + KEY_EPOCH_TAG_LEN
    }

    /// Checks cross-field consistency.
    ///
    /// # Errors
    ///
    /// Returns [`CryptError::UnsupportedConfig`] describing the first
    /// violated rule.
    pub fn validate(&self) -> Result<()> {
        if self.sector_size != 512 && self.sector_size != 4096 {
            return Err(CryptError::UnsupportedConfig(format!(
                "sector size {} (only 512 and 4096 are supported)",
                self.sector_size
            )));
        }
        match self.cipher {
            Cipher::Aes256Gcm => {
                if self.layout.is_none() || !self.random_iv {
                    return Err(CryptError::UnsupportedConfig(
                        "AES-GCM requires a metadata layout with random IVs \
                         (nonce reuse is catastrophic, §2.1)"
                            .into(),
                    ));
                }
                if self.mac {
                    return Err(CryptError::UnsupportedConfig(
                        "AES-GCM already authenticates; drop the extra MAC".into(),
                    ));
                }
            }
            Cipher::CbcEssiv256 if self.random_iv => {
                return Err(CryptError::UnsupportedConfig(
                    "CBC-ESSIV derives its IV from the sector number".into(),
                ));
            }
            _ => {}
        }
        if self.random_iv && self.layout.is_none() {
            return Err(CryptError::UnsupportedConfig(
                "a random IV must be persisted: pick a metadata layout".into(),
            ));
        }
        if self.mac && self.layout.is_none() {
            return Err(CryptError::UnsupportedConfig(
                "a MAC needs metadata space: pick a metadata layout".into(),
            ));
        }
        if self.snapshot_binding && self.layout.is_none() {
            return Err(CryptError::UnsupportedConfig(
                "snapshot binding needs metadata space: pick a layout".into(),
            ));
        }
        if self.layout.is_some() && self.meta_entry_len() == KEY_EPOCH_TAG_LEN {
            return Err(CryptError::UnsupportedConfig(
                "a metadata layout without anything to store; enable \
                 random_iv and/or mac, or drop the layout"
                    .into(),
            ));
        }
        Ok(())
    }

    /// Display label matching the paper's figure legends.
    #[must_use]
    pub fn label(&self) -> String {
        match self.layout {
            None => "LUKS2".to_string(),
            Some(layout) => layout.label().to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_has_no_metadata() {
        let c = EncryptionConfig::luks2_baseline();
        c.validate().unwrap();
        assert_eq!(c.meta_entry_len(), 0);
        assert_eq!(c.label(), "LUKS2");
    }

    #[test]
    fn random_iv_variants_validate() {
        for layout in MetaLayout::ALL {
            let c = EncryptionConfig::random_iv(layout);
            c.validate().unwrap();
            assert_eq!(c.meta_entry_len(), 16 + KEY_EPOCH_TAG_LEN);
            assert_eq!(c.label(), layout.label());
        }
    }

    #[test]
    fn mac_and_binding_extend_the_entry() {
        let c = EncryptionConfig::random_iv(MetaLayout::ObjectEnd).with_mac();
        c.validate().unwrap();
        assert_eq!(c.meta_entry_len(), 32 + KEY_EPOCH_TAG_LEN);
        let c = c.with_snapshot_binding();
        c.validate().unwrap();
        assert_eq!(c.meta_entry_len(), 40 + KEY_EPOCH_TAG_LEN);
    }

    #[test]
    fn gcm_entry_is_32_bytes_plus_epoch_tag() {
        let c = EncryptionConfig::random_iv(MetaLayout::Omap).with_cipher(Cipher::Aes256Gcm);
        c.validate().unwrap();
        assert_eq!(c.meta_entry_len(), 32 + KEY_EPOCH_TAG_LEN);
    }

    #[test]
    fn gcm_without_metadata_rejected() {
        let c = EncryptionConfig::luks2_baseline().with_cipher(Cipher::Aes256Gcm);
        assert!(matches!(
            c.validate(),
            Err(CryptError::UnsupportedConfig(_))
        ));
    }

    #[test]
    fn random_iv_without_layout_rejected() {
        let mut c = EncryptionConfig::luks2_baseline();
        c.random_iv = true;
        assert!(c.validate().is_err());
    }

    #[test]
    fn cbc_with_random_iv_rejected() {
        let c = EncryptionConfig::random_iv(MetaLayout::ObjectEnd).with_cipher(Cipher::CbcEssiv256);
        assert!(c.validate().is_err());
    }

    #[test]
    fn mac_only_layout_is_legal() {
        // Deterministic IV + MAC: authentication without random IVs,
        // the "authentication alone" option of §2.2.
        let mut c = EncryptionConfig::luks2_baseline();
        c.layout = Some(MetaLayout::ObjectEnd);
        c.mac = true;
        c.validate().unwrap();
        assert_eq!(c.meta_entry_len(), 16 + KEY_EPOCH_TAG_LEN);
    }

    #[test]
    fn empty_layout_rejected() {
        let mut c = EncryptionConfig::luks2_baseline();
        c.layout = Some(MetaLayout::Omap);
        assert!(c.validate().is_err(), "layout with nothing to store");
    }

    #[test]
    fn bad_sector_size_rejected() {
        let c = EncryptionConfig::luks2_baseline().with_sector_size(1024);
        assert!(c.validate().is_err());
        EncryptionConfig::luks2_baseline()
            .with_sector_size(512)
            .validate()
            .unwrap();
    }

    #[test]
    fn wire_round_trips() {
        for cipher in [
            Cipher::Aes128Xts,
            Cipher::Aes256Xts,
            Cipher::Aes256Gcm,
            Cipher::Eme2Aes256,
            Cipher::CbcEssiv256,
        ] {
            assert_eq!(Cipher::from_wire(cipher.to_wire()), Some(cipher));
        }
        assert_eq!(Cipher::from_wire(0), None);
        for layout in MetaLayout::ALL {
            assert_eq!(MetaLayout::from_wire(layout.to_wire()), Some(Some(layout)));
        }
        assert_eq!(MetaLayout::from_wire(0), Some(None));
        assert_eq!(MetaLayout::from_wire(9), None);
    }
}
