//! The online rekey driver: migrates every sector of an
//! [`EncryptedImage`] from one key epoch to the next, through the
//! image's own [`crate::EncryptedIoQueue`], while client IO keeps
//! flowing between steps.
//!
//! One [`RekeyDriver::step`] processes a bounded **window** of the
//! image (`queue_depth × chunk_sectors` sectors past the watermark):
//!
//! 1. reads for every chunk in the window are submitted up front —
//!    each captures the pre-step epoch map, and per-shard FIFO orders
//!    it after every previously queued client write, so the reaped
//!    plaintext is exact;
//! 2. the in-memory watermark advances to the window end, so the
//!    rewrites encrypt under the new epoch;
//! 3. completions are reaped with [`crate::EncryptedIoQueue::wait_any`]
//!    — whichever chunk's read lands first is immediately resubmitted
//!    as a write, keeping the pipeline full instead of head-of-line
//!    blocking on the window's slowest chunk;
//! 4. once the window is quiet, the advanced watermark is persisted
//!    (a CASed header update), making the progress visible to
//!    concurrent opens.
//!
//! Between steps the driver owns nothing: the caller is free to run
//! arbitrary queued IO against the image — reads and writes select
//! keys by sector epoch (entry tags, or the watermark for the
//! baseline), so any interleaving stays byte-exact. That is the
//! paper's thesis applied to key management: because the virtual-disk
//! layer owns per-sector metadata, key rotation becomes an online
//! background activity instead of a device-level outage.
//!
//! # Crash recovery
//!
//! Two CASed header updates bracket every window: a **window intent**
//! (`[start, end)` plus the chunk size) persists *before* any chunk is
//! rewritten, and the watermark advance that *clears* it persists only
//! after the window is quiet — one atomic header update, so "intent
//! gone" and "watermark past the window" are the same fact. Each
//! chunk is clamped to one object and its rewrite transaction carries
//! an epoch-keyed **migration-proof marker** xattr, committed (or torn)
//! atomically with the chunk's ciphertext. A handle that reopens the
//! image after a crash — or retries after a failed window — finds the
//! uncleared intent via [`EncryptedImage::rekey_resume`] and replays
//! the window chunk by chunk: a marked chunk provably landed and is
//! skipped; an unmarked chunk is re-read under the old epoch and
//! rewritten (idempotent — the crashed attempt never got its marker
//! down, so for tagged layouts its data never left the old epoch's
//! readable state, and for the baseline the watermark still maps it to
//! the old key). Baseline caveat: the baseline layout cannot tag
//! sectors, so *client* writes landing inside a crashed window between
//! the crash and the recovery are re-migrated from their marker-less
//! state — correct only if no such writes occurred (tagged layouts
//! have no such window; their entries route by epoch).

use crate::encrypted_image::EncryptedImage;
use crate::luks::WindowIntent;
use crate::runtime::{RuntimeError, TenantHandle};
use crate::{CryptError, IoOp, IoPayload, Result};
use std::collections::HashMap;

/// Default sectors per migration chunk (64 KiB at 4 KiB sectors).
pub const DEFAULT_CHUNK_SECTORS: u64 = 16;
/// Default chunks in flight per step.
pub const DEFAULT_QUEUE_DEPTH: usize = 8;
/// Default client-pressure threshold: a sampled queue-depth peak above
/// this many open submissions makes the driver halve its window (see
/// [`RekeyDriver::with_pressure_threshold`]).
pub const DEFAULT_PRESSURE_THRESHOLD: u64 = 4;

/// Progress of an in-flight rekey.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RekeyProgress {
    /// The epoch being retired.
    pub from: u32,
    /// The epoch taking over.
    pub to: u32,
    /// Sectors migrated so far (the watermark).
    pub migrated_sectors: u64,
    /// Total sectors in the image.
    pub total_sectors: u64,
}

impl RekeyProgress {
    /// Whether every sector has been migrated.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.migrated_sectors >= self.total_sectors
    }
}

/// Drives one online rekey to completion (see
/// [`EncryptedImage::rekey_begin`], which documents the migration
/// protocol).
#[derive(Debug)]
pub struct RekeyDriver {
    from: u32,
    to: u32,
    chunk_sectors: u64,
    queue_depth: usize,
    /// Queue depth the next window will actually use: halved while
    /// sampled client pressure exceeds the threshold, doubled back
    /// toward `queue_depth` when pressure subsides.
    effective_depth: usize,
    pressure_threshold: u64,
    /// Client queue-depth peak sampled before the last window.
    last_pressure: u64,
    /// When set, window IO flows through this tenant of a
    /// multi-tenant [`crate::runtime::Runtime`] — background rekey
    /// becomes an ordinary (typically low-weight) tenant competing
    /// under weighted fair scheduling instead of a special case.
    tenant: Option<TenantHandle>,
}

impl RekeyDriver {
    pub(crate) fn new(from: u32, to: u32) -> RekeyDriver {
        RekeyDriver {
            from,
            to,
            chunk_sectors: DEFAULT_CHUNK_SECTORS,
            queue_depth: DEFAULT_QUEUE_DEPTH,
            effective_depth: DEFAULT_QUEUE_DEPTH,
            pressure_threshold: DEFAULT_PRESSURE_THRESHOLD,
            last_pressure: 0,
            tenant: None,
        }
    }

    /// Overrides the migration chunk size in sectors.
    ///
    /// # Panics
    ///
    /// Panics if `sectors` is 0.
    #[must_use]
    pub fn with_chunk_sectors(mut self, sectors: u64) -> Self {
        assert!(sectors > 0, "chunk must cover at least one sector");
        self.chunk_sectors = sectors;
        self
    }

    /// Overrides how many chunks each step keeps in flight.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is 0.
    #[must_use]
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        assert!(depth > 0, "queue depth must be at least 1");
        self.queue_depth = depth;
        self.effective_depth = depth;
        self
    }

    /// Overrides the client-pressure threshold (open submissions in
    /// the sampled queue-depth peak) above which a step halves its
    /// window. Synchronous wrappers hold one open submission each, so
    /// the default of [`DEFAULT_PRESSURE_THRESHOLD`] ignores light
    /// sync traffic and reacts to genuinely queued client IO.
    #[must_use]
    pub fn with_pressure_threshold(mut self, peak: u64) -> Self {
        self.pressure_threshold = peak;
        self
    }

    /// Routes every window's reads and rewrites through `tenant` —
    /// registered on a [`crate::runtime::Runtime`] shared with client
    /// tenants, typically at low weight, so the fair scheduler damps
    /// the rekey exactly like any other tenant.
    #[must_use]
    pub fn with_runtime_tenant(mut self, tenant: TenantHandle) -> Self {
        self.tenant = Some(tenant);
        self
    }

    /// The queue depth the next window will use: `queue_depth` when
    /// the cluster was quiet, smaller (down to 1) while sampled client
    /// pressure exceeds the threshold. The observable signal that the
    /// rekey yields: window submissions drop with it.
    #[must_use]
    pub fn effective_queue_depth(&self) -> usize {
        self.effective_depth
    }

    /// The client queue-depth peak sampled before the last window.
    #[must_use]
    pub fn last_pressure(&self) -> u64 {
        self.last_pressure
    }

    /// The epoch pair this driver migrates.
    #[must_use]
    pub fn epochs(&self) -> (u32, u32) {
        (self.from, self.to)
    }

    /// Current progress against `disk`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptError::NoRekeyInProgress`] if the image carries
    /// no (or a different) in-flight rekey.
    pub fn progress(&self, disk: &EncryptedImage) -> Result<RekeyProgress> {
        let state = disk.rekey_status().ok_or(CryptError::NoRekeyInProgress)?;
        if state.from != self.from || state.to != self.to {
            return Err(CryptError::NoRekeyInProgress);
        }
        Ok(RekeyProgress {
            from: self.from,
            to: self.to,
            migrated_sectors: state.watermark,
            total_sectors: disk.total_sectors(),
        })
    }

    /// Whether the migration has covered the whole image.
    ///
    /// # Errors
    ///
    /// As [`RekeyDriver::progress`].
    pub fn is_complete(&self, disk: &EncryptedImage) -> Result<bool> {
        Ok(self.progress(disk)?.is_complete())
    }

    /// Migrates one window (up to `effective_queue_depth ×
    /// chunk_sectors` sectors past the watermark) and persists the
    /// advanced watermark. Returns the new progress; a no-op once
    /// complete.
    ///
    /// Before each window the driver samples the cluster's
    /// queue-depth peak since its previous step
    /// ([`vdisk_rados::Cluster::take_queue_depth_window_peak`]); in
    /// tenant mode it additionally samples the runtime's per-tenant
    /// demand peaks excluding its own tenant
    /// ([`crate::runtime::Runtime::take_demand_peak_excluding`]), a
    /// signal that keeps client-tenant bursts landing *during* a
    /// window visible even though the shared cluster window is reset
    /// after each window. A peak above the pressure threshold means
    /// client IO was queuing — the window halves (down to one chunk);
    /// quiet samples double it back toward the configured depth.
    /// Background rekey thereby yields to foreground tenants instead
    /// of competing at full depth.
    ///
    /// # Errors
    ///
    /// [`CryptError::NoRekeyInProgress`] if the image carries no
    /// matching rekey, plus any IO-path error (nothing of the window
    /// is considered migrated then — the watermark only advances past
    /// fully rewritten prefixes).
    pub fn step(&mut self, disk: &mut EncryptedImage) -> Result<RekeyProgress> {
        let progress = self.progress(disk)?;
        if progress.is_complete() {
            return Ok(progress);
        }
        // A persisted-but-uncleared window intent means a prior attempt
        // (this handle's failed window, or a crashed handle this one
        // reopened after) started rewriting the window without proving
        // it landed. Recover it — skip chunks whose migration-proof
        // marker committed, re-migrate the rest — before any new work.
        if let Some(intent) = disk.rekey_window_intent() {
            if let Err(e) = self.recover_window(disk, intent) {
                disk.rollback_rekey_boundary(intent.start);
                disk.clear_rekey_markers();
                return Err(e);
            }
            // Publishing the recovered watermark clears the intent in
            // the same header update.
            disk.persist_rekey_watermark()?;
            return self.progress(disk);
        }
        // Adapt to client pressure observed since the previous step.
        // The shared cluster window is reset after every window
        // (below) so the driver's own submissions never read as
        // pressure — at the cost of discarding client bursts that
        // landed *during* a window. In tenant mode the runtime's
        // per-tenant demand peaks restore that signal: they never
        // include this driver's own tenant, so they survive the reset
        // and keep mid-window foreground bursts visible to the
        // backoff.
        let cluster_peak = disk.image().cluster().take_queue_depth_window_peak();
        self.last_pressure = match &self.tenant {
            Some(tenant) => {
                cluster_peak.max(tenant.runtime().take_demand_peak_excluding(tenant.id()))
            }
            None => cluster_peak,
        };
        self.effective_depth = if self.last_pressure > self.pressure_threshold {
            (self.effective_depth / 2).max(1)
        } else {
            (self.effective_depth * 2).min(self.queue_depth)
        };
        let start = progress.migrated_sectors;
        let window_end =
            (start + self.chunk_sectors * self.effective_depth as u64).min(progress.total_sectors);

        // Durably record the window before touching any of it: from
        // here until the watermark advance clears it, every chunk in
        // [start, window_end) is "in doubt" and a crash recovers it
        // through the marker protocol above.
        disk.persist_rekey_intent(WindowIntent {
            start,
            end: window_end,
            chunk_sectors: self.chunk_sectors,
        })?;

        // A window that fails mid-flight rolls the in-memory watermark
        // back to the last fully-migrated prefix and drops any armed
        // (not yet consumed) markers; the persisted intent stays, so a
        // retried step recovers the window through the proof markers
        // instead of silently skipping it.
        let migrated = match self.tenant.clone() {
            Some(tenant) => self.migrate_window_tenant(disk, start, window_end, &tenant),
            None => self.migrate_window(disk, start, window_end),
        };
        if let Err(e) = migrated {
            disk.rollback_rekey_boundary(start);
            disk.clear_rekey_markers();
            return Err(e);
        }
        // Our own window's submissions must not read as "pressure" in
        // the next step's sample.
        let _ = disk.image().cluster().take_queue_depth_window_peak();
        // Publish the progress. On a persist failure the rewrites have
        // already landed, so the in-memory watermark (the truth for
        // this handle) stays advanced; the error still propagates.
        disk.persist_rekey_watermark()?;
        self.progress(disk)
    }

    /// Sectors the chunk at `chunk` may cover: the configured size,
    /// clamped to the window end **and to the object boundary** — a
    /// chunk confined to one object is one transaction, so its
    /// ciphertext and its migration-proof marker commit atomically.
    fn chunk_span(chunk_sectors: u64, spo: u64, chunk: u64, end: u64) -> u64 {
        chunk_sectors.min(end - chunk).min(spo - (chunk % spo))
    }

    /// Phases 1–3 of one [`RekeyDriver::step`] window.
    fn migrate_window(&self, disk: &mut EncryptedImage, start: u64, window_end: u64) -> Result<()> {
        let ss = disk.sector_size();
        let spo = disk.geometry().sectors_per_object;
        let mut queue = disk.io_queue();
        // Phase 1: submit every chunk's read. Each captures the
        // pre-advance epoch map; FIFO pins it to the right data.
        let mut chunk_offsets: HashMap<u64, u64> = HashMap::new();
        let mut chunk = start;
        while chunk < window_end {
            let sectors = Self::chunk_span(self.chunk_sectors, spo, chunk, window_end);
            let completion = queue.submit(IoOp::Read {
                offset: chunk * ss,
                len: sectors * ss,
            })?;
            chunk_offsets.insert(completion.id(), chunk * ss);
            chunk += sectors;
        }
        // Phase 2: the window's rewrites encrypt under the new epoch.
        queue.disk_mut().advance_rekey_boundary(window_end);
        // Phase 3: pipeline — whichever read lands first is rewritten
        // first; writes drain alongside the remaining reads. Each
        // rewrite is armed with its chunk's migration-proof marker.
        while queue.in_flight() > 0 {
            for result in queue.wait_any()? {
                let Some(offset) = chunk_offsets.remove(&result.completion.id()) else {
                    continue; // a rewrite completing
                };
                let IoPayload::Data(plaintext) = result.payload else {
                    return Err(CryptError::Internal(
                        "chunk read completed without a data payload".into(),
                    ));
                };
                queue.disk_mut().arm_rekey_marker(offset, plaintext.len());
                queue.submit(IoOp::Write {
                    offset,
                    data: plaintext,
                })?;
            }
        }
        Ok(())
    }

    /// Replays a window a prior attempt left in doubt (its intent
    /// persisted, its clearing watermark not): walk the window's
    /// chunks **in order**, skipping each chunk whose migration-proof
    /// marker committed and synchronously re-migrating the rest. The
    /// in-memory watermark advances chunk by chunk, so at the moment
    /// an unproven chunk is read the boundary sits exactly at its
    /// first sector — the read decrypts under the retiring epoch even
    /// on the baseline layout, and the rewrite (marker re-armed)
    /// encrypts under the new one. Re-entrant: a crash *during*
    /// recovery leaves strictly more markers for the next attempt.
    fn recover_window(&self, disk: &mut EncryptedImage, intent: WindowIntent) -> Result<()> {
        let ss = disk.sector_size();
        let spo = disk.geometry().sectors_per_object;
        // A watermark persist that failed *after* its window fully
        // migrated leaves this handle's in-memory boundary already at
        // the window end while the intent survives in the restored
        // header. Realign to the intent: every chunk of such a window
        // is proven (each marker committed atomically with its
        // rewrite), so the walk below re-advances without a single
        // read and merely retries the publish.
        if disk
            .rekey_status()
            .is_some_and(|s| s.watermark != intent.start)
        {
            disk.rollback_rekey_boundary(intent.start);
        }
        let mut chunk = intent.start;
        while chunk < intent.end {
            let sectors = Self::chunk_span(intent.chunk_sectors, spo, chunk, intent.end);
            let offset = chunk * ss;
            let len = (sectors * ss) as usize;
            if disk.rekey_chunk_proven(self.to, offset)? {
                // The marker committed with the chunk's rewrite: it
                // provably landed under the new epoch.
                disk.advance_rekey_boundary(chunk + sectors);
            } else {
                let mut plaintext = vec![0u8; len];
                disk.read(offset, &mut plaintext)?;
                disk.advance_rekey_boundary(chunk + sectors);
                disk.arm_rekey_marker(offset, len);
                let mut queue = disk.io_queue();
                queue.submit(IoOp::Write {
                    offset,
                    data: plaintext,
                })?;
                queue.wait()?;
            }
            chunk += sectors;
        }
        Ok(())
    }

    /// [`RekeyDriver::migrate_window`] with the window's IO flowing
    /// through the driver's runtime tenant: submissions pass admission
    /// control and dispatch only as the fair scheduler grants slots,
    /// so a low-weight rekey tenant is damped exactly like any other
    /// tenant while client queues are busy.
    fn migrate_window_tenant(
        &self,
        disk: &mut EncryptedImage,
        start: u64,
        window_end: u64,
        tenant: &TenantHandle,
    ) -> Result<()> {
        let ss = disk.sector_size();
        let spo = disk.geometry().sectors_per_object;
        let mut queue = tenant.attach(disk.io_queue());
        // Phase 1: queue every chunk's read, blocking (and reaping)
        // at the tenant's backlog cap rather than failing.
        let mut chunk_offsets: HashMap<u64, u64> = HashMap::new();
        let mut chunk = start;
        while chunk < window_end {
            let sectors = Self::chunk_span(self.chunk_sectors, spo, chunk, window_end);
            let completion = queue
                .submit_blocking(IoOp::Read {
                    offset: chunk * ss,
                    len: sectors * ss,
                })
                .map_err(flatten)?;
            chunk_offsets.insert(completion.id(), chunk * ss);
            chunk += sectors;
        }
        // Phase 2: every read must *dispatch* (capturing the
        // pre-advance epoch map at the inner queue) before the
        // boundary moves — an arbitrated read still queued when the
        // epoch advanced would decrypt with the wrong keys.
        queue.dispatch_backlog().map_err(flatten)?;
        queue
            .inner_mut()
            .disk_mut()
            .advance_rekey_boundary(window_end);
        // Phase 3: the same land-first-rewrite-first pipeline, paced
        // by the scheduler's grants.
        while !chunk_offsets.is_empty() || queue.backlog() > 0 || queue.in_flight() > 0 {
            for result in queue.wait_any().map_err(flatten)? {
                let Some(offset) = chunk_offsets.remove(&result.completion.id()) else {
                    continue; // a rewrite completing
                };
                let IoPayload::Data(plaintext) = result.payload else {
                    return Err(CryptError::Internal(
                        "chunk read completed without a data payload".into(),
                    ));
                };
                // Arm the chunk's migration-proof marker keyed by the
                // write's (offset, len): the arbiter may defer this
                // write into the backlog, and the marker is consumed
                // only when the write actually submits.
                queue
                    .inner_mut()
                    .disk_mut()
                    .arm_rekey_marker(offset, plaintext.len());
                queue
                    .submit_blocking(IoOp::Write {
                        offset,
                        data: plaintext,
                    })
                    .map_err(flatten)?;
            }
        }
        Ok(())
    }

    /// Runs [`RekeyDriver::step`] until the whole image is migrated,
    /// then [`RekeyDriver::finish`]es.
    ///
    /// # Errors
    ///
    /// As [`RekeyDriver::step`] and [`RekeyDriver::finish`].
    pub fn drive_to_completion(mut self, disk: &mut EncryptedImage) -> Result<()> {
        while !self.step(disk)?.is_complete() {}
        self.finish(disk)
    }

    /// Completes the rekey: retires the old epoch's key into the
    /// header's wrap chain and clears the rekey state (see
    /// [`EncryptedImage::rekey_begin`]). After this the old passphrase
    /// unlocks nothing and head reads never touch the old key again.
    ///
    /// # Errors
    ///
    /// [`CryptError::RekeyInProgress`] if sectors remain unmigrated,
    /// [`CryptError::HeaderContended`] on a concurrent header update.
    pub fn finish(self, disk: &mut EncryptedImage) -> Result<()> {
        disk.rekey_finish(self.from, self.to)
    }
}

/// Maps a tenant-queue error back into the crypto error space: queue
/// errors pass through, scheduling dead-ends become
/// [`CryptError::RuntimeStalled`].
fn flatten(e: RuntimeError<CryptError>) -> CryptError {
    match e {
        RuntimeError::Queue(e) => e,
        other => CryptError::RuntimeStalled(other.to_string()),
    }
}
