//! The client-side IV/metadata cache: skip the per-sector metadata
//! round trip on read-heavy workloads.
//!
//! The paper's cost argument (§3.3) is that storing per-sector IVs
//! costs extra physical accesses on **every** read: the object-end
//! layout adds a second read extent per object, OMAP adds a key-value
//! range lookup. Both are pure overhead for data that changes only on
//! writes — exactly what a client-side read cache amortizes away. The
//! cache holds the raw persisted metadata entries (IV ‖ optional MAC ‖
//! optional snapshot-binding sequence), keyed by logical sector
//! number, for the **head** of one [`crate::EncryptedImage`].
//!
//! # Correctness under the submission-queue API
//!
//! Completions are reaped out of band, so the cache is filled **at
//! reap time** with entries fetched at some earlier submit time. The
//! window in between is the hazard: a queued overwrite (or a snapshot)
//! landing inside it would make the fetched entries stale before they
//! ever enter the cache. Two rules close the hazard, both keyed by
//! submission order rather than wall clock:
//!
//! 1. **Invalidate on write submit**: when a write is submitted, every
//!    cached entry it overwrites is dropped immediately (counted in
//!    `ExecStats::meta_cache_invalidations`), and
//!    [`vdisk_rados::Cluster`] advances the touched shards'
//!    write-submission epochs before any of the write can apply.
//! 2. **Validate fills against the epoch**: a read captures its
//!    extents' shard epochs *before* submitting; at reap, an extent's
//!    fetched metadata enters the cache only if its shard epoch is
//!    unchanged (and the cache generation didn't change — snapshots
//!    bump it). Per-shard FIFO means an unchanged epoch proves no
//!    overwrite was even *submitted* to that shard in the window.
//!
//! Cache **hits** need no epoch check: ops on one image's queue are
//! serialized by the `&mut` borrow, so an entry present at submit
//! reflects every write submitted before this read — and per-shard
//! FIFO orders the read's data fetch before any later write.
//!
//! Eviction is CLOCK (second chance): one referenced bit per resident
//! sector, a hand that sweeps on insert. Hot IV entries of a
//! read-heavy working set survive scans of cold ranges at a fraction
//! of LRU's bookkeeping.
//!
//! The cache is enabled only for layouts whose metadata costs a
//! separate fetch ([`crate::MetaLayout::ObjectEnd`] and
//! [`crate::MetaLayout::Omap`]); the baseline has no metadata and the
//! unaligned layout interleaves it into the data extent, so there is
//! no round trip to save. Size it (or disable it with `0`) via
//! [`vdisk_rados::ClusterBuilder::meta_cache_bytes`].

use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// One resident sector's entry.
struct Slot {
    /// Logical sector number (image-absolute).
    lba: u64,
    /// Raw persisted metadata entry (`entry_len` bytes).
    meta: Box<[u8]>,
    /// CLOCK second-chance bit: set on hit, cleared by the sweeping
    /// hand; a slot is evicted only after a full sweep without a hit.
    referenced: bool,
}

struct CacheInner {
    /// lba → index into `slots`.
    map: HashMap<u64, usize>,
    slots: Vec<Slot>,
    /// CLOCK hand: next slot the eviction sweep inspects.
    hand: usize,
    /// Bumped by [`MetaCache::invalidate_all`] (snapshots): fills
    /// captured before the wipe are rejected.
    generation: u64,
}

/// A read-only, sector-granular cache of persisted IV/metadata entries
/// for one encrypted image (see the [module docs](self) for the
/// invalidation contract).
pub(crate) struct MetaCache {
    /// `None` when disabled (zero budget, or a layout with no separate
    /// metadata round trip).
    inner: Option<Mutex<CacheInner>>,
    entry_len: usize,
    capacity: usize,
}

impl MetaCache {
    /// Builds a cache of up to `budget_bytes / entry_len` sectors.
    /// Disabled (every call a no-op) unless `separate_meta_io` holds,
    /// `entry_len > 0`, and the budget fits at least one entry.
    pub(crate) fn new(budget_bytes: u64, entry_len: usize, separate_meta_io: bool) -> MetaCache {
        let capacity = if separate_meta_io && entry_len > 0 {
            usize::try_from(budget_bytes / entry_len as u64).unwrap_or(usize::MAX)
        } else {
            0
        };
        MetaCache {
            inner: (capacity > 0).then(|| {
                Mutex::new(CacheInner {
                    map: HashMap::new(),
                    slots: Vec::new(),
                    hand: 0,
                    generation: 0,
                })
            }),
            entry_len,
            capacity,
        }
    }

    /// Whether lookups can ever hit.
    pub(crate) fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Resident sector capacity (0 when disabled).
    pub(crate) fn capacity_sectors(&self) -> usize {
        self.capacity
    }

    fn lock(&self) -> Option<MutexGuard<'_, CacheInner>> {
        self.inner
            .as_ref()
            .map(|m| m.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// The current generation; captured at read submit and re-checked
    /// by [`MetaCache::fill`] so fills never span an
    /// [`MetaCache::invalidate_all`].
    pub(crate) fn generation(&self) -> u64 {
        self.lock().map_or(0, |inner| inner.generation)
    }

    /// Sectors currently resident (observability and tests).
    pub(crate) fn resident_sectors(&self) -> usize {
        self.lock().map_or(0, |inner| inner.map.len())
    }

    /// Looks up a whole extent (`count` sectors from `base_lba`):
    /// returns the packed metadata run — the exact shape
    /// `SectorCodec::decrypt_sectors` takes — only if **every** sector
    /// is resident. Partial hits return `None`: the extent's metadata
    /// is fetched in one store op either way, so a partial hit saves
    /// nothing.
    pub(crate) fn lookup_extent(&self, base_lba: u64, count: u64) -> Option<Vec<u8>> {
        let mut inner = self.lock()?;
        // Residency first, side effects second: a partial hit saves
        // nothing, so it must neither refresh CLOCK bits (that would
        // make cold, never-served extents outlive genuinely hit
        // sectors) nor pack entries it is about to discard.
        if (base_lba..base_lba + count).any(|lba| !inner.map.contains_key(&lba)) {
            return None;
        }
        let mut packed = Vec::with_capacity(count as usize * self.entry_len);
        for lba in base_lba..base_lba + count {
            let slot_idx = inner.map[&lba];
            let slot = &mut inner.slots[slot_idx];
            slot.referenced = true;
            packed.extend_from_slice(&slot.meta);
        }
        Some(packed)
    }

    /// Fills `count = metas.len() / entry_len` sectors from `base_lba`
    /// with their entries — called at reap time, for both read fills
    /// and write-through fills. The fill is abandoned wholesale if
    /// `expected_generation` is stale (an
    /// [`MetaCache::invalidate_all`] landed since the op was
    /// submitted); the caller has already checked the shard epoch.
    /// Returns the number of entries installed (0 when abandoned or
    /// disabled).
    pub(crate) fn fill(&self, base_lba: u64, metas: &[u8], expected_generation: u64) -> u64 {
        let Some(mut inner) = self.lock() else {
            return 0;
        };
        if inner.generation != expected_generation {
            return 0;
        }
        debug_assert_eq!(metas.len() % self.entry_len, 0, "whole entries only");
        let mut installed = 0;
        for (i, entry) in metas.chunks_exact(self.entry_len).enumerate() {
            inner.insert(base_lba + i as u64, entry, self.capacity);
            installed += 1;
        }
        installed
    }

    /// Drops every cached entry in `[base_lba, base_lba + count)` —
    /// the write-submit hook. Returns how many sectors were actually
    /// resident (the `meta_cache_invalidations` delta).
    pub(crate) fn invalidate_range(&self, base_lba: u64, count: u64) -> u64 {
        let Some(mut inner) = self.lock() else {
            return 0;
        };
        let mut removed = 0;
        for lba in base_lba..base_lba + count {
            if inner.remove(lba) {
                removed += 1;
            }
        }
        removed
    }

    /// Drops everything and bumps the generation (the snapshot hook),
    /// abandoning any in-flight fills. Returns the sectors dropped.
    pub(crate) fn invalidate_all(&self) -> u64 {
        let Some(mut inner) = self.lock() else {
            return 0;
        };
        let removed = inner.map.len() as u64;
        inner.map.clear();
        inner.slots.clear();
        inner.hand = 0;
        inner.generation += 1;
        removed
    }
}

impl CacheInner {
    /// Inserts (or refreshes) one sector's entry, evicting via CLOCK
    /// when at capacity.
    fn insert(&mut self, lba: u64, entry: &[u8], capacity: usize) {
        if let Some(&slot_idx) = self.map.get(&lba) {
            let slot = &mut self.slots[slot_idx];
            slot.meta.copy_from_slice(entry);
            slot.referenced = true;
            return;
        }
        if self.slots.len() < capacity {
            self.map.insert(lba, self.slots.len());
            self.slots.push(Slot {
                lba,
                meta: entry.into(),
                referenced: false,
            });
            return;
        }
        // CLOCK sweep: give referenced slots a second chance, take the
        // first unreferenced one. Bounded: after one full sweep every
        // bit is clear, so the second pass always stops.
        let victim = loop {
            let idx = self.hand;
            self.hand = (self.hand + 1) % self.slots.len();
            let slot = &mut self.slots[idx];
            if slot.referenced {
                slot.referenced = false;
            } else {
                break idx;
            }
        };
        self.map.remove(&self.slots[victim].lba);
        self.map.insert(lba, victim);
        let slot = &mut self.slots[victim];
        slot.lba = lba;
        slot.meta.copy_from_slice(entry);
        slot.referenced = false;
    }

    /// Removes one sector if resident. The vacated slot is filled by
    /// swapping in the last slot (O(1), keeps `slots` dense for the
    /// CLOCK sweep).
    fn remove(&mut self, lba: u64) -> bool {
        let Some(slot_idx) = self.map.remove(&lba) else {
            return false;
        };
        let last = self.slots.len() - 1;
        if slot_idx != last {
            self.slots.swap(slot_idx, last);
            let moved_lba = self.slots[slot_idx].lba;
            self.map.insert(moved_lba, slot_idx);
        }
        self.slots.pop();
        if self.hand >= self.slots.len() {
            self.hand = 0;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(capacity_sectors: u64) -> MetaCache {
        MetaCache::new(capacity_sectors * 16, 16, true)
    }

    fn entry(tag: u8) -> Vec<u8> {
        vec![tag; 16]
    }

    #[test]
    fn disabled_configurations_never_hit() {
        for c in [
            MetaCache::new(0, 16, true),     // zero budget
            MetaCache::new(4096, 0, true),   // no metadata at all
            MetaCache::new(4096, 16, false), // metadata rides the data extent
            MetaCache::new(8, 16, true),     // budget below one entry
        ] {
            assert!(!c.enabled());
            assert_eq!(c.capacity_sectors(), 0);
            c.fill(0, &entry(1), 0);
            assert_eq!(c.lookup_extent(0, 1), None);
            assert_eq!(c.invalidate_range(0, 10), 0);
            assert_eq!(c.invalidate_all(), 0);
        }
    }

    #[test]
    fn fill_then_lookup_round_trips_packed_runs() {
        let c = cache(8);
        let mut run = Vec::new();
        for tag in 0..4u8 {
            run.extend_from_slice(&entry(tag));
        }
        c.fill(100, &run, c.generation());
        assert_eq!(c.resident_sectors(), 4);
        assert_eq!(c.lookup_extent(100, 4).as_deref(), Some(&run[..]));
        // Partial coverage misses wholesale.
        assert_eq!(c.lookup_extent(99, 2), None);
        assert_eq!(c.lookup_extent(103, 2), None);
        // Sub-extents hit.
        assert_eq!(c.lookup_extent(101, 2).as_deref(), Some(&run[16..48]));
    }

    #[test]
    fn invalidate_range_counts_only_resident_sectors() {
        let c = cache(8);
        c.fill(10, &[entry(1), entry(2)].concat(), 0);
        // [5, 15) covers both resident sectors plus eight absent ones.
        assert_eq!(c.invalidate_range(5, 10), 2);
        assert_eq!(c.invalidate_range(5, 10), 0, "already gone");
        assert_eq!(c.lookup_extent(10, 1), None);
    }

    #[test]
    fn stale_generation_fills_are_abandoned() {
        let c = cache(8);
        let g = c.generation();
        assert_eq!(c.invalidate_all(), 0);
        c.fill(0, &entry(7), g); // captured before the wipe
        assert_eq!(c.resident_sectors(), 0, "stale fill must be dropped");
        c.fill(0, &entry(7), c.generation());
        assert_eq!(c.resident_sectors(), 1);
    }

    #[test]
    fn clock_eviction_prefers_unreferenced_slots() {
        let c = cache(4);
        for lba in 0..4u64 {
            c.fill(lba, &entry(lba as u8), 0);
        }
        // Touch 0..3; sector 3 is the only unreferenced slot.
        assert!(c.lookup_extent(0, 3).is_some());
        c.fill(10, &entry(10), 0);
        assert_eq!(c.lookup_extent(3, 1), None, "cold slot evicted");
        for lba in [0u64, 1, 2, 10] {
            assert!(c.lookup_extent(lba, 1).is_some(), "hot sector {lba} kept");
        }
    }

    #[test]
    fn partial_lookups_have_no_side_effects() {
        let c = cache(2);
        c.fill(0, &[entry(0), entry(1)].concat(), 0);
        // Partial miss over [1, 3): sector 1 must NOT gain a second
        // chance from a lookup that served nothing.
        assert_eq!(c.lookup_extent(1, 2), None);
        assert!(c.lookup_extent(0, 1).is_some(), "reference sector 0 only");
        c.fill(9, &entry(9), 0);
        assert!(c.lookup_extent(0, 1).is_some(), "hit sector survives");
        assert_eq!(c.lookup_extent(1, 1), None, "cold sector evicted");
    }

    #[test]
    fn eviction_terminates_when_everything_is_referenced() {
        let c = cache(3);
        for lba in 0..3u64 {
            c.fill(lba, &entry(lba as u8), 0);
        }
        assert!(c.lookup_extent(0, 3).is_some(), "reference every slot");
        // All bits set: the sweep clears one full lap, then evicts.
        c.fill(50, &entry(50), 0);
        assert_eq!(c.resident_sectors(), 3);
        assert!(c.lookup_extent(50, 1).is_some());
    }

    #[test]
    fn refill_refreshes_in_place() {
        let c = cache(2);
        c.fill(5, &entry(1), 0);
        c.fill(5, &entry(2), 0);
        assert_eq!(c.resident_sectors(), 1);
        assert_eq!(c.lookup_extent(5, 1).as_deref(), Some(&entry(2)[..]));
    }

    #[test]
    fn remove_keeps_the_ring_dense() {
        let c = cache(4);
        for lba in 0..4u64 {
            c.fill(lba, &entry(lba as u8), 0);
        }
        assert_eq!(c.invalidate_range(1, 1), 1);
        assert_eq!(c.resident_sectors(), 3);
        // Survivors still resolve through the swapped slot.
        for lba in [0u64, 2, 3] {
            assert_eq!(
                c.lookup_extent(lba, 1).as_deref(),
                Some(&entry(lba as u8)[..])
            );
        }
        // And the ring still inserts/evicts correctly after the swap.
        c.fill(20, &entry(20), 0);
        c.fill(21, &entry(21), 0);
        assert_eq!(c.resident_sectors(), 4);
    }
}
