//! Vectored IO planning: one up-front mapping of a sector-aligned
//! request onto the objects it touches.
//!
//! Both halves of the encrypted IO path share this plan. The write
//! path encrypts the whole request into one contiguous buffer and
//! emits one transaction per [`SectorExtent`], dispatched as a single
//! batch (`Cluster::execute_batch` → `Plan::par`); the read path
//! issues one vectored `read_batch` over the same extents and
//! decrypts each one in place in the destination buffer.

use vdisk_rbd::Striper;

use crate::layout::Geometry;

/// One object's slice of a sector-aligned request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectorExtent {
    /// Object index within the image.
    pub object_no: u64,
    /// First touched sector *within the object*.
    pub first_sector: u64,
    /// Number of touched sectors.
    pub sector_count: u64,
    /// Logical (image-absolute) sector number of the first sector —
    /// the value bound into tweaks, MACs and AADs.
    pub base_lba: u64,
    /// Start of this extent's bytes within the request buffer.
    pub buf_start: usize,
    /// End (exclusive) of this extent's bytes within the request
    /// buffer.
    pub buf_end: usize,
}

impl SectorExtent {
    /// Bytes of request payload covered by this extent.
    #[must_use]
    pub fn byte_len(&self) -> usize {
        self.buf_end - self.buf_start
    }
}

/// The full extent plan of one sector-aligned request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IoBatch {
    /// Byte offset of the request within the image.
    pub offset: u64,
    /// Request length in bytes.
    pub len: u64,
    /// Object extents, ascending by object number, jointly
    /// partitioning `[0, len)` of the request buffer.
    pub extents: Vec<SectorExtent>,
}

impl IoBatch {
    /// Maps a sector-aligned request onto object extents.
    ///
    /// # Panics
    ///
    /// Panics if `offset` or `len` is not sector-aligned (callers
    /// align first; unaligned IO goes through read-modify-write).
    #[must_use]
    pub fn plan(striper: Striper, geometry: &Geometry, offset: u64, len: u64) -> IoBatch {
        let ss = geometry.sector_size;
        assert!(
            offset.is_multiple_of(ss) && len.is_multiple_of(ss),
            "IoBatch requires sector-aligned requests"
        );
        let spo = geometry.sectors_per_object;
        let extents = striper
            .map(offset, len)
            .into_iter()
            .map(|extent| {
                let first_sector = extent.offset / ss;
                SectorExtent {
                    object_no: extent.object_no,
                    first_sector,
                    sector_count: extent.len / ss,
                    base_lba: extent.object_no * spo + first_sector,
                    buf_start: extent.buf_offset as usize,
                    buf_end: (extent.buf_offset + extent.len) as usize,
                }
            })
            .collect();
        IoBatch {
            offset,
            len,
            extents,
        }
    }

    /// Number of objects (and therefore transactions or read
    /// requests) the request fans out to.
    #[must_use]
    pub fn object_count(&self) -> usize {
        self.extents.len()
    }

    /// Total sectors in the request.
    #[must_use]
    pub fn sector_count(&self) -> u64 {
        self.extents.iter().map(|e| e.sector_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB4: u64 = 4 << 20;

    fn geo() -> Geometry {
        Geometry::new(MB4, 4096, 16)
    }

    #[test]
    fn single_object_plan() {
        let batch = IoBatch::plan(Striper::new(MB4), &geo(), 8192, 12288);
        assert_eq!(batch.object_count(), 1);
        assert_eq!(batch.sector_count(), 3);
        let e = &batch.extents[0];
        assert_eq!(e.object_no, 0);
        assert_eq!(e.first_sector, 2);
        assert_eq!(e.base_lba, 2);
        assert_eq!((e.buf_start, e.buf_end), (0, 12288));
    }

    #[test]
    fn spanning_plan_partitions_the_buffer() {
        let batch = IoBatch::plan(Striper::new(MB4), &geo(), MB4 - 8192, 3 * MB4);
        assert_eq!(batch.object_count(), 4);
        assert_eq!(batch.sector_count(), 3 * 1024);
        // Extents tile the buffer with no gaps.
        let mut cursor = 0usize;
        for e in &batch.extents {
            assert_eq!(e.buf_start, cursor);
            cursor = e.buf_end;
            assert_eq!(e.byte_len() as u64, e.sector_count * 4096);
        }
        assert_eq!(cursor as u64, batch.len);
        // LBAs are image-absolute: object 1 starts at sector 1024.
        assert_eq!(batch.extents[0].base_lba, 1022);
        assert_eq!(batch.extents[1].base_lba, 1024);
    }

    #[test]
    #[should_panic(expected = "sector-aligned")]
    fn unaligned_requests_rejected() {
        let _ = IoBatch::plan(Striper::new(MB4), &geo(), 100, 4096);
    }
}
