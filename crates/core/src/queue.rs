//! The encrypted aio-style submission queue: the paper's IO surface
//! driven the way fio drives a block device — owned buffers, many IOs
//! in flight, completions reaped out of band.
//!
//! [`EncryptedIoQueue`] mirrors the raw [`vdisk_rbd::IoQueue`] but
//! runs the full encryption pipeline: a submitted write is encrypted
//! **on ingest, in place in the submitted buffer** (zero-copy down to
//! the object transactions), then dispatched to the cluster's
//! per-shard work queues; a read decrypts client-side at reap time.
//! Ops from different submissions interleave on the shard workers —
//! the cross-batch concurrency the paper's queue-depth bandwidth
//! argument (fio at QD 32, §3.3) relies on — while per-shard FIFO
//! ordering keeps overlapping same-sector ops in submission order.
//!
//! Unaligned writes read-modify-write their partially-covered boundary
//! sectors *synchronously at submit* (the read rides the same shard
//! FIFOs, so it observes every previously queued write); the aligned
//! span then dispatches asynchronously like any other write.
//!
//! # Example
//!
//! ```
//! use vdisk_core::{EncryptedImage, EncryptionConfig, IoOp, MetaLayout};
//! use vdisk_rados::Cluster;
//! use vdisk_rbd::Image;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cluster = Cluster::builder().build();
//! let image = Image::create(&cluster, "secure-aio", 16 << 20)?;
//! let config = EncryptionConfig::random_iv(MetaLayout::ObjectEnd);
//! let mut disk = EncryptedImage::format(image, &config, b"hunter2")?;
//!
//! let mut queue = disk.io_queue();
//! queue.submit(IoOp::Write { offset: 0, data: b"top secret".to_vec() })?;
//! let read = queue.submit(IoOp::Read { offset: 0, len: 10 })?;
//! let done = queue.fence()?;
//! assert_eq!(done[1].completion, read);
//! assert_eq!(done[1].payload.data(), b"top secret");
//! # Ok(())
//! # }
//! ```

use crate::encrypted_image::{EncryptedImage, ReadSpan, SubmittedWrite};
use crate::{CryptError, Result};
use std::sync::Arc;
use vdisk_rados::{Doorbell, ReadTicket};
use vdisk_rbd::queue_engine::{PendingOp, ReapQueue};
use vdisk_rbd::{Completion, IoOp, IoPayload, IoResult};
use vdisk_sim::Plan;

enum PendingState {
    Write(SubmittedWrite),
    Read {
        ticket: ReadTicket,
        /// Span plan of the aligned span: extents, per-extent metadata
        /// sourcing (cache hit vs fetch), for decryption — and cache
        /// fills — at reap.
        span: ReadSpan,
        /// The originally requested range (a sub-range of the span for
        /// unaligned requests).
        offset: u64,
        len: u64,
        /// `Some` for scatter reads: the requested segment lengths.
        split: Option<Vec<u64>>,
        /// The span's plaintext, assembled incrementally: each extent
        /// decrypts into its slice as its shard's data lands — not
        /// after the whole span reaps.
        buf: Vec<u8>,
        /// Per-request dispatch cost plans, filled as slots drain.
        plans: Vec<Plan>,
        /// Request slots whose results have not landed (and decrypted)
        /// yet; the op completes when this reaches zero.
        remaining: usize,
    },
}

impl PendingOp for PendingState {
    fn subscribe(&self, bell: &Arc<Doorbell>) {
        match self {
            PendingState::Write(write) => write.ticket.subscribe(bell),
            PendingState::Read { ticket, .. } => ticket.subscribe(bell),
        }
    }
}

/// Makes whatever progress one pending op can without blocking: writes
/// just report their ticket, reads drain every request slot whose
/// shard has served it — decrypting each landed extent into its slice
/// of the span buffer immediately (and performing its reap-time cache
/// fill) — and report done once no slot remains. Idempotent once
/// finished, as the reap engine requires.
fn advance(disk: &EncryptedImage, state: &mut PendingState) -> Result<bool> {
    match state {
        PendingState::Write(write) => Ok(write.ticket.is_complete()),
        PendingState::Read {
            ticket,
            span,
            buf,
            plans,
            remaining,
            ..
        } => {
            if *remaining == 0 {
                return Ok(true);
            }
            for (idx, result, plan) in ticket.take_ready()? {
                // vdisk-lint: allow(hot-path-index) reason="take_ready yields indices into this ticket's own extent table"
                let extent = &span.batch.extents[idx];
                disk.decrypt_extent_into(
                    span,
                    idx,
                    &result,
                    None,
                    // vdisk-lint: allow(hot-path-index) reason="extent buf ranges were computed from this buf's layout at batch build"
                    &mut buf[extent.buf_start..extent.buf_end],
                )?;
                // vdisk-lint: allow(hot-path-index) reason="plans was sized to the extent table this idx indexes"
                plans[idx] = plan;
                *remaining -= 1;
            }
            Ok(*remaining == 0)
        }
    }
}

/// An aio-style submission queue over an [`EncryptedImage`]: owned
/// buffers, encrypt-on-ingest, many IOs in flight, completions reaped
/// by `poll`/`wait`/`fence`. Borrows the image mutably for its
/// lifetime — encryption state (the IV source) advances at submit
/// time.
pub struct EncryptedIoQueue<'d> {
    disk: &'d mut EncryptedImage,
    /// The shared submission-tracking/reap engine (see
    /// `vdisk_rbd::queue_engine::ReapQueue` for the error-retention
    /// semantics).
    reap: ReapQueue<PendingState>,
}

impl EncryptedImage {
    /// Opens a submission queue over this disk.
    pub fn io_queue(&mut self) -> EncryptedIoQueue<'_> {
        EncryptedIoQueue {
            disk: self,
            reap: ReapQueue::default(),
        }
    }
}

impl<'d> EncryptedIoQueue<'d> {
    /// The disk this queue drives.
    #[must_use]
    pub fn disk(&self) -> &EncryptedImage {
        self.disk
    }

    /// Mutable access to the disk for crate-internal drivers (the
    /// rekey driver advances the watermark between its read and write
    /// phases while the queue is open).
    pub(crate) fn disk_mut(&mut self) -> &mut EncryptedImage {
        self.disk
    }

    /// Operations submitted and not yet reaped.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.reap.in_flight()
    }

    /// The queue's completion doorbell: shard workers ring it as parts
    /// of submissions land, and the multi-tenant runtime rings it when
    /// a scheduling change should wake a parked owner.
    #[must_use]
    pub fn doorbell(&self) -> Arc<Doorbell> {
        self.reap.doorbell()
    }

    /// Drains the completion ids of operations consumed by reap errors
    /// since the last call (each failed reap consumes exactly one op).
    /// Runtimes that account per-op budget use this to refund exactly
    /// the ops that died.
    pub fn take_failed(&mut self) -> Vec<u64> {
        self.reap.take_failed()
    }

    /// Submits one operation; returns its completion token with the
    /// work in flight on the shard queues. Writes encrypt on ingest in
    /// the submitted buffer; gather-writes coalesce their buffers into
    /// one owned span first (the one copy scatter input inherently
    /// costs here, since encryption mutates a contiguous run).
    ///
    /// # Errors
    ///
    /// Returns [`crate::CryptError::Rbd`] for out-of-bounds ops, plus
    /// decryption errors if an unaligned write reads back tampered
    /// boundary sectors; nothing stays queued on error.
    pub fn submit(&mut self, op: IoOp) -> Result<Completion> {
        let state = match op {
            IoOp::Write { offset, data } => {
                PendingState::Write(self.disk.submit_write_owned(offset, data)?)
            }
            IoOp::Writev { offset, buffers } => {
                let mut gathered = Vec::with_capacity(buffers.iter().map(Vec::len).sum());
                for buffer in buffers {
                    gathered.extend_from_slice(&buffer);
                }
                PendingState::Write(self.disk.submit_write_owned(offset, gathered)?)
            }
            IoOp::Read { offset, len } => {
                let (ticket, span) = self.disk.submit_read_span(None, offset, len)?;
                pending_read(ticket, span, offset, len, None)
            }
            IoOp::Readv { offset, lens } => {
                let len = lens.iter().sum();
                let (ticket, span) = self.disk.submit_read_span(None, offset, len)?;
                pending_read(ticket, span, offset, len, Some(lens))
            }
        };
        Ok(self.reap.push(state))
    }

    /// Park-and-wakeup cycles this queue's reap calls have performed:
    /// each increment is one doorbell wait with no completed work to
    /// drain. Stays near zero under load (completions arrive before
    /// the reaper parks twice) — and proves the waits park rather than
    /// spin when a completion is deliberately delayed.
    #[must_use]
    pub fn idle_passes(&self) -> u64 {
        self.reap.idle_passes()
    }

    /// Reaps every already-finished operation without blocking, in
    /// submission order.
    ///
    /// # Errors
    ///
    /// Surfaces decryption errors ([`crate::CryptError::IntegrityViolation`],
    /// [`crate::CryptError::ReplayDetected`]) and store errors from
    /// completed reads. The failed op's result is consumed with the
    /// error; completions already finalized are retained and delivered
    /// by the next reap call.
    pub fn poll(&mut self) -> Result<Vec<IoResult>> {
        let disk: &EncryptedImage = self.disk;
        self.reap.poll(
            &mut |state| advance(disk, state),
            &mut |completion, state| finalize(disk, completion, state),
        )
    }

    /// Blocks until at least one operation completes (the oldest
    /// outstanding one), then reaps everything finished. Returns an
    /// empty vector when nothing is in flight.
    ///
    /// # Errors
    ///
    /// As [`EncryptedIoQueue::poll`].
    pub fn wait(&mut self) -> Result<Vec<IoResult>> {
        let disk: &EncryptedImage = self.disk;
        self.reap.wait(
            &mut |state| advance(disk, state),
            &mut |completion, state| finalize(disk, completion, state),
        )
    }

    /// Blocks until **any** in-flight operation has completed — the
    /// first available, not the oldest — then reaps everything
    /// finished. The high-QD reap primitive: a slow op at the queue
    /// head no longer stalls the completions behind it, which is what
    /// lets [`crate::RekeyDriver`] keep its migration window full
    /// while client IO shares the queue. Returns an empty vector when
    /// nothing is in flight.
    ///
    /// # Errors
    ///
    /// As [`EncryptedIoQueue::poll`].
    pub fn wait_any(&mut self) -> Result<Vec<IoResult>> {
        let disk: &EncryptedImage = self.disk;
        self.reap.wait_any(
            &mut |state| advance(disk, state),
            &mut |completion, state| finalize(disk, completion, state),
        )
    }

    /// Full barrier: blocks until **every** submitted operation has
    /// completed and returns their results in submission order.
    /// Everything submitted afterwards is ordered after everything
    /// reaped here.
    ///
    /// # Errors
    ///
    /// As [`EncryptedIoQueue::poll`].
    pub fn fence(&mut self) -> Result<Vec<IoResult>> {
        let disk: &EncryptedImage = self.disk;
        self.reap.fence(
            &mut |state| advance(disk, state),
            &mut |completion, state| finalize(disk, completion, state),
        )
    }
}

/// Builds a read's pending state: the span buffer its extents decrypt
/// into incrementally, one dispatch-plan slot per request, and the
/// count of slots still to land (zero-extent spans are born complete).
fn pending_read(
    ticket: ReadTicket,
    span: ReadSpan,
    offset: u64,
    len: u64,
    split: Option<Vec<u64>>,
) -> PendingState {
    let buf = vec![0u8; span.batch.len as usize];
    let slots = span.batch.extents.len();
    PendingState::Read {
        ticket,
        span,
        offset,
        len,
        split,
        buf,
        plans: (0..slots).map(|_| Plan::Noop).collect(),
        remaining: slots,
    }
}

/// Finalizes one completed op: reaps its ticket, decrypts read spans,
/// and assembles the result.
fn finalize(
    disk: &EncryptedImage,
    completion: Completion,
    state: PendingState,
) -> std::result::Result<IoResult, CryptError> {
    match state {
        PendingState::Write(write) => {
            let mut stats = write.ticket.stats_delta();
            stats.meta_cache_invalidations = write.invalidated;
            // Boundary RMW reads of an unaligned write consulted the
            // cache at submit; their deltas belong to this op so
            // per-op stats sum to the cluster-wide counters.
            stats.meta_cache_hits = write.rmw_hits;
            stats.meta_cache_misses = write.rmw_misses;
            let dispatch = write.ticket.wait().map_err(vdisk_rbd::RbdError::from)?;
            // Write-through fill: the entries this write persisted
            // enter the cache now (reap time), unless a later write or
            // snapshot was submitted to the extent's shard meanwhile.
            stats.meta_cache_write_fills = disk.apply_write_fills(&write.fills);
            Ok(IoResult {
                completion,
                plan: Plan::seq([write.rmw.unwrap_or(Plan::Noop), write.crypto, dispatch]),
                payload: IoPayload::None,
                stats,
            })
        }
        PendingState::Read {
            ticket,
            span,
            offset,
            len,
            split,
            buf,
            plans,
            remaining,
        } => {
            debug_assert_eq!(remaining, 0, "finalize runs only after advance finished");
            let mut stats = ticket.stats_delta();
            stats.meta_cache_hits = span.hits;
            stats.meta_cache_misses = span.misses;
            // Every extent already decrypted into `buf` as its shard's
            // data landed (see `advance`); only assembly remains here.
            drop(ticket);
            let dispatch = Plan::par(plans);
            let start = (offset - span.batch.offset) as usize;
            let data = if start == 0 && len == span.batch.len {
                buf
            } else {
                // vdisk-lint: allow(hot-path-index) reason="the batch was built to cover [offset, offset+len); the range is within its buffer by construction"
                buf[start..start + len as usize].to_vec()
            };
            let payload = IoPayload::from_read(data, split);
            let crypto = if span.batch.len == 0 {
                Plan::Noop
            } else {
                disk.image().cluster().crypto_plan(span.batch.len)
            };
            Ok(IoResult {
                completion,
                plan: Plan::seq([dispatch, crypto]),
                payload,
                stats,
            })
        }
    }
}

impl std::fmt::Debug for EncryptedIoQueue<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "EncryptedIoQueue({}, {} in flight)",
            self.disk.image().name(),
            self.reap.in_flight()
        )
    }
}
