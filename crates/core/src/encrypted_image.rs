//! The client-side encrypting IO path over an RBD image.

use crate::audit::SectorObservation;
use crate::config::{EncryptionConfig, MetaLayout};
use crate::layout::Geometry;
use crate::luks::{DerivedKeys, LuksHeader};
use crate::sector::SectorCodec;
use crate::{CryptError, Result};
use vdisk_crypto::rng::{IvSource, OsIvSource};
use vdisk_rados::{RadosError, ReadOp, ReadResult, SnapId, Transaction};
use vdisk_rbd::{Image, RbdError};
use vdisk_sim::Plan;

/// An encrypted virtual disk: every write encrypts client-side and
/// persists per-sector metadata (when configured) in the same atomic
/// RADOS transaction as the data; every read fetches data + metadata
/// and decrypts client-side.
///
/// See the [crate docs](crate) for an end-to-end example.
pub struct EncryptedImage {
    image: Image,
    header: LuksHeader,
    codec: SectorCodec,
    iv_source: Box<dyn IvSource>,
    geometry: Geometry,
}

impl std::fmt::Debug for EncryptedImage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EncryptedImage")
            .field("image", &self.image.name())
            .field("config", self.header.config())
            .finish_non_exhaustive()
    }
}

impl EncryptedImage {
    fn crypt_header_object(image_name: &str) -> String {
        format!("rbd_header.{image_name}.luks")
    }

    /// Formats an image for encryption: generates a master key, writes
    /// the LUKS-style header, and returns the opened device. IVs come
    /// from the OS CSPRNG.
    ///
    /// # Errors
    ///
    /// Returns [`CryptError::UnsupportedConfig`] for invalid configs or
    /// [`CryptError::Rbd`] on store failures.
    pub fn format(
        image: Image,
        config: &EncryptionConfig,
        passphrase: &[u8],
    ) -> Result<EncryptedImage> {
        Self::format_with_iv_source(image, config, passphrase, Box::new(OsIvSource))
    }

    /// Formats with an explicit IV source (seeded for reproducible
    /// tests and benchmarks).
    ///
    /// # Errors
    ///
    /// As [`EncryptedImage::format`].
    pub fn format_with_iv_source(
        image: Image,
        config: &EncryptionConfig,
        passphrase: &[u8],
        mut iv_source: Box<dyn IvSource>,
    ) -> Result<EncryptedImage> {
        config.validate()?;
        if u64::from(config.sector_size) > image.object_size() {
            return Err(CryptError::UnsupportedConfig(
                "sector size exceeds object size".into(),
            ));
        }
        let (header, master) = LuksHeader::format(config, passphrase, iv_source.as_mut())?;
        let mut tx = Transaction::new(Self::crypt_header_object(image.name()));
        tx.write(0, header.encode());
        image.cluster().execute(tx)?;

        let keys = DerivedKeys::derive(&master, config.cipher);
        let codec = SectorCodec::new(config, &keys)?;
        let geometry = Geometry::new(
            image.object_size(),
            u64::from(config.sector_size),
            u64::from(config.meta_entry_len()),
        );
        Ok(EncryptedImage {
            image,
            header,
            codec,
            iv_source,
            geometry,
        })
    }

    /// Opens an encrypted image with a passphrase.
    ///
    /// # Errors
    ///
    /// Returns [`CryptError::WrongPassphrase`] if no keyslot matches,
    /// or [`CryptError::HeaderCorrupt`] if the header fails to parse.
    pub fn open(image: Image, passphrase: &[u8]) -> Result<EncryptedImage> {
        Self::open_with_iv_source(image, passphrase, Box::new(OsIvSource))
    }

    /// Opens with an explicit IV source.
    ///
    /// # Errors
    ///
    /// As [`EncryptedImage::open`].
    pub fn open_with_iv_source(
        image: Image,
        passphrase: &[u8],
        iv_source: Box<dyn IvSource>,
    ) -> Result<EncryptedImage> {
        let header_object = Self::crypt_header_object(image.name());
        let cluster = image.cluster().clone();
        let stat = cluster
            .stat(&header_object)
            .map_err(|_| CryptError::HeaderCorrupt("missing encryption header".into()))?;
        let (results, _) = cluster.read(
            &header_object,
            None,
            &[ReadOp::Read {
                offset: 0,
                len: stat.size,
            }],
        )?;
        let header = LuksHeader::decode(results[0].as_data())?;
        let master = header.unlock(passphrase)?;
        let config = header.config().clone();
        let keys = DerivedKeys::derive(&master, config.cipher);
        let codec = SectorCodec::new(&config, &keys)?;
        let geometry = Geometry::new(
            image.object_size(),
            u64::from(config.sector_size),
            u64::from(config.meta_entry_len()),
        );
        Ok(EncryptedImage {
            image,
            header,
            codec,
            iv_source,
            geometry,
        })
    }

    /// Adds a new passphrase (authorized by an existing one) and
    /// persists the updated header.
    ///
    /// # Errors
    ///
    /// Returns [`CryptError::WrongPassphrase`] if `existing` unlocks no
    /// keyslot, or [`CryptError::NoFreeKeyslot`] when all 8 slots are
    /// taken.
    pub fn add_passphrase(&mut self, existing: &[u8], new: &[u8]) -> Result<usize> {
        let master = self.header.unlock(existing)?;
        let idx = self
            .header
            .add_keyslot(new, &master, self.iv_source.as_mut())?;
        let mut tx = Transaction::new(Self::crypt_header_object(self.image.name()));
        tx.write(0, self.header.encode());
        self.image.cluster().execute(tx)?;
        Ok(idx)
    }

    /// The underlying image.
    #[must_use]
    pub fn image(&self) -> &Image {
        &self.image
    }

    /// The encryption configuration in force.
    #[must_use]
    pub fn config(&self) -> &EncryptionConfig {
        self.header.config()
    }

    /// The object geometry in force.
    #[must_use]
    pub fn geometry(&self) -> Geometry {
        self.geometry
    }

    /// Encryption sector size in bytes.
    #[must_use]
    pub fn sector_size(&self) -> u64 {
        self.geometry.sector_size
    }

    /// Takes an image snapshot (see [`Image::snap_create`]).
    ///
    /// # Errors
    ///
    /// As [`Image::snap_create`].
    pub fn snap_create(&self, name: &str) -> Result<SnapId> {
        Ok(self.image.snap_create(name)?)
    }

    fn check_bounds(&self, offset: u64, len: u64) -> Result<()> {
        let end = offset
            .checked_add(len)
            .filter(|&end| end <= self.image.size())
            .ok_or(CryptError::Rbd(RbdError::OutOfBounds {
                offset: offset.saturating_add(len),
                size: self.image.size(),
            }))?;
        let _ = end;
        Ok(())
    }

    /// Encrypts and writes `data` at byte `offset`; returns the IO's
    /// cost plan. Writes not aligned to the sector size perform
    /// client-side read-modify-write of the touched boundary sectors.
    ///
    /// # Errors
    ///
    /// Returns [`CryptError::Rbd`] for out-of-bounds IO or store
    /// failures, and decryption errors if an unaligned write has to
    /// read back tampered sectors.
    pub fn write(&mut self, offset: u64, data: &[u8]) -> Result<Plan> {
        self.check_bounds(offset, data.len() as u64)?;
        if data.is_empty() {
            return Ok(Plan::Noop);
        }
        let ss = self.geometry.sector_size;
        if offset % ss == 0 && data.len() as u64 % ss == 0 {
            return self.write_aligned(offset, data);
        }
        // Client-side RMW: fetch the boundary sectors, splice, write
        // the aligned span.
        let first_sector = offset / ss;
        let end_sector = (offset + data.len() as u64).div_ceil(ss);
        let aligned_off = first_sector * ss;
        let aligned_len = (end_sector - first_sector) * ss;
        let mut span = vec![0u8; aligned_len as usize];
        let read_plan = self.read_common(None, aligned_off, &mut span)?;
        let start = (offset - aligned_off) as usize;
        span[start..start + data.len()].copy_from_slice(data);
        let write_plan = self.write_aligned(aligned_off, &span)?;
        Ok(Plan::seq([read_plan, write_plan]))
    }

    fn write_aligned(&mut self, offset: u64, data: &[u8]) -> Result<Plan> {
        let ss = self.geometry.sector_size;
        let spo = self.geometry.sectors_per_object;
        let layout = self.config().layout;
        let write_seq = self.image.cluster().snap_seq().0;

        let mut plans = Vec::new();
        for extent in self.image.striper().map(offset, data.len() as u64) {
            let first = extent.offset / ss;
            let count = extent.len / ss;
            let base_lba = extent.object_no * spo + first;

            let mut ciphertexts: Vec<Vec<u8>> = Vec::with_capacity(count as usize);
            let mut metas: Vec<Vec<u8>> = Vec::with_capacity(count as usize);
            for s in 0..count {
                let lba = base_lba + s;
                let src = (extent.buf_offset + s * ss) as usize;
                let mut sector = data[src..src + ss as usize].to_vec();
                let meta =
                    self.codec
                        .encrypt(lba, write_seq, &mut sector, self.iv_source.as_mut())?;
                ciphertexts.push(sector);
                metas.push(meta);
            }

            let mut tx = Transaction::new(self.image.object_name(extent.object_no));
            match layout {
                None => {
                    let (off, _) = self.geometry.data_extent(None, first, count);
                    tx.write(off, ciphertexts.concat());
                }
                Some(MetaLayout::Unaligned) => {
                    let (off, _) =
                        self.geometry
                            .data_extent(Some(MetaLayout::Unaligned), first, count);
                    tx.write(off, self.geometry.interleave_unaligned(&ciphertexts, &metas));
                }
                Some(MetaLayout::ObjectEnd) => {
                    let (off, _) =
                        self.geometry
                            .data_extent(Some(MetaLayout::ObjectEnd), first, count);
                    tx.write(off, ciphertexts.concat());
                    let (meta_off, _) = self
                        .geometry
                        .meta_extent(Some(MetaLayout::ObjectEnd), first, count)
                        .expect("object-end has a meta extent");
                    tx.write(meta_off, metas.concat());
                }
                Some(MetaLayout::Omap) => {
                    let (off, _) = self.geometry.data_extent(Some(MetaLayout::Omap), first, count);
                    tx.write(off, ciphertexts.concat());
                    let entries: Vec<(Vec<u8>, Vec<u8>)> = metas
                        .iter()
                        .enumerate()
                        .map(|(s, meta)| (Geometry::omap_key(first + s as u64), meta.clone()))
                        .collect();
                    tx.omap_set(entries);
                }
            }
            plans.push(self.image.cluster().execute(tx)?);
        }
        // Client-side encryption cost precedes the dispatch.
        let crypto = self.image.cluster().crypto_plan(data.len() as u64);
        Ok(Plan::seq([crypto, Plan::par(plans)]))
    }

    /// Reads and decrypts into `buf` from the image head.
    ///
    /// # Errors
    ///
    /// Returns [`CryptError::IntegrityViolation`] /
    /// [`CryptError::ReplayDetected`] per the configuration, or
    /// [`CryptError::Rbd`] for out-of-bounds IO.
    pub fn read(&self, offset: u64, buf: &mut [u8]) -> Result<Plan> {
        self.read_common(None, offset, buf)
    }

    /// Reads and decrypts as of a snapshot.
    ///
    /// # Errors
    ///
    /// As [`EncryptedImage::read`].
    pub fn read_at_snap(&self, snap: SnapId, offset: u64, buf: &mut [u8]) -> Result<Plan> {
        self.read_common(Some(snap), offset, buf)
    }

    fn read_common(&self, snap: Option<SnapId>, offset: u64, buf: &mut [u8]) -> Result<Plan> {
        self.check_bounds(offset, buf.len() as u64)?;
        if buf.is_empty() {
            return Ok(Plan::Noop);
        }
        let ss = self.geometry.sector_size;
        if offset % ss != 0 || buf.len() as u64 % ss != 0 {
            // Unaligned read: fetch the aligned span and slice.
            let first_sector = offset / ss;
            let end_sector = (offset + buf.len() as u64).div_ceil(ss);
            let aligned_off = first_sector * ss;
            let mut span = vec![0u8; ((end_sector - first_sector) * ss) as usize];
            let plan = self.read_common(snap, aligned_off, &mut span)?;
            let start = (offset - aligned_off) as usize;
            buf.copy_from_slice(&span[start..start + buf.len()]);
            return Ok(plan);
        }

        let spo = self.geometry.sectors_per_object;
        let layout = self.config().layout;
        let seq_limit = snap.map(|s| s.0);
        let me = self.geometry.meta_entry as usize;

        let mut plans = Vec::new();
        for extent in self.image.striper().map(offset, buf.len() as u64) {
            let first = extent.offset / ss;
            let count = extent.len / ss;
            let base_lba = extent.object_no * spo + first;
            let object = self.image.object_name(extent.object_no);
            let out =
                &mut buf[extent.buf_offset as usize..(extent.buf_offset + extent.len) as usize];

            let ops: Vec<ReadOp> = match layout {
                None => {
                    let (off, len) = self.geometry.data_extent(None, first, count);
                    vec![ReadOp::Read { offset: off, len }]
                }
                Some(MetaLayout::Unaligned) => {
                    let (off, len) =
                        self.geometry
                            .data_extent(Some(MetaLayout::Unaligned), first, count);
                    vec![ReadOp::Read { offset: off, len }]
                }
                Some(MetaLayout::ObjectEnd) => {
                    let (off, len) =
                        self.geometry
                            .data_extent(Some(MetaLayout::ObjectEnd), first, count);
                    let (meta_off, meta_len) = self
                        .geometry
                        .meta_extent(Some(MetaLayout::ObjectEnd), first, count)
                        .expect("object-end has a meta extent");
                    vec![
                        ReadOp::Read { offset: off, len },
                        ReadOp::Read {
                            offset: meta_off,
                            len: meta_len,
                        },
                    ]
                }
                Some(MetaLayout::Omap) => {
                    let (off, len) = self.geometry.data_extent(Some(MetaLayout::Omap), first, count);
                    vec![
                        ReadOp::Read { offset: off, len },
                        ReadOp::OmapGetRange {
                            start: Geometry::omap_key(first),
                            end: Geometry::omap_key(first + count),
                        },
                    ]
                }
            };

            match self.image.cluster().read(&object, snap, &ops) {
                Ok((results, plan)) => {
                    self.decrypt_extent(
                        layout, &results, first, count, base_lba, seq_limit, me, out,
                    )?;
                    plans.push(plan);
                }
                Err(RadosError::NoSuchObject(_)) | Err(RadosError::NoSuchSnapshot { .. }) => {
                    out.fill(0);
                }
                Err(e) => return Err(e.into()),
            }
        }
        let crypto = self.image.cluster().crypto_plan(buf.len() as u64);
        Ok(Plan::seq([Plan::par(plans), crypto]))
    }

    #[allow(clippy::too_many_arguments)]
    fn decrypt_extent(
        &self,
        layout: Option<MetaLayout>,
        results: &[ReadResult],
        first: u64,
        count: u64,
        base_lba: u64,
        seq_limit: Option<u64>,
        me: usize,
        out: &mut [u8],
    ) -> Result<()> {
        let ss = self.geometry.sector_size as usize;
        match layout {
            None => {
                let data = results[0].as_data();
                for s in 0..count as usize {
                    let mut sector = data[s * ss..(s + 1) * ss].to_vec();
                    self.codec
                        .decrypt(base_lba + s as u64, seq_limit, &mut sector, &[])?;
                    out[s * ss..(s + 1) * ss].copy_from_slice(&sector);
                }
            }
            Some(MetaLayout::Unaligned) => {
                let pairs = self.geometry.deinterleave_unaligned(results[0].as_data());
                for (s, (mut sector, meta)) in pairs.into_iter().enumerate() {
                    self.codec
                        .decrypt(base_lba + s as u64, seq_limit, &mut sector, &meta)?;
                    out[s * ss..(s + 1) * ss].copy_from_slice(&sector);
                }
            }
            Some(MetaLayout::ObjectEnd) => {
                let data = results[0].as_data();
                let metas = results[1].as_data();
                for s in 0..count as usize {
                    let mut sector = data[s * ss..(s + 1) * ss].to_vec();
                    let meta = &metas[s * me..(s + 1) * me];
                    self.codec
                        .decrypt(base_lba + s as u64, seq_limit, &mut sector, meta)?;
                    out[s * ss..(s + 1) * ss].copy_from_slice(&sector);
                }
            }
            Some(MetaLayout::Omap) => {
                let data = results[0].as_data();
                let entries = results[1].as_omap();
                let zero_meta = vec![0u8; me];
                for s in 0..count as usize {
                    let key = Geometry::omap_key(first + s as u64);
                    let meta = entries
                        .iter()
                        .find(|(k, _)| *k == key)
                        .map_or(zero_meta.as_slice(), |(_, v)| v.as_slice());
                    let mut sector = data[s * ss..(s + 1) * ss].to_vec();
                    self.codec
                        .decrypt(base_lba + s as u64, seq_limit, &mut sector, meta)?;
                    out[s * ss..(s + 1) * ss].copy_from_slice(&sector);
                }
            }
        }
        Ok(())
    }

    /// The adversary's view of one sector: raw ciphertext and raw
    /// metadata entry, **without** decryption. Used by the audit
    /// tooling and the security examples.
    ///
    /// # Errors
    ///
    /// Returns [`CryptError::Rbd`] if the sector's object is absent.
    pub fn observe_sector(
        &self,
        lba: u64,
        snap: Option<SnapId>,
    ) -> Result<SectorObservation> {
        let spo = self.geometry.sectors_per_object;
        let object_no = lba / spo;
        let k = lba % spo;
        let object = self.image.object_name(object_no);
        let layout = self.config().layout;

        let mut ops: Vec<ReadOp> = Vec::new();
        match layout {
            None | Some(MetaLayout::ObjectEnd) | Some(MetaLayout::Omap) => {
                let (off, len) = self.geometry.data_extent(layout, k, 1);
                ops.push(ReadOp::Read { offset: off, len });
            }
            Some(MetaLayout::Unaligned) => {
                let (off, len) = self.geometry.data_extent(layout, k, 1);
                ops.push(ReadOp::Read { offset: off, len });
            }
        }
        match layout {
            Some(MetaLayout::ObjectEnd) => {
                let (off, len) = self
                    .geometry
                    .meta_extent(layout, k, 1)
                    .expect("object-end meta extent");
                ops.push(ReadOp::Read { offset: off, len });
            }
            Some(MetaLayout::Omap) => {
                ops.push(ReadOp::OmapGetKeys(vec![Geometry::omap_key(k)]));
            }
            _ => {}
        }

        let (results, _) = self.image.cluster().read(&object, snap, &ops)?;
        let ss = self.geometry.sector_size as usize;
        let (ciphertext, meta) = match layout {
            None => (results[0].as_data().to_vec(), None),
            Some(MetaLayout::Unaligned) => {
                let raw = results[0].as_data();
                (raw[..ss].to_vec(), Some(raw[ss..].to_vec()))
            }
            Some(MetaLayout::ObjectEnd) => (
                results[0].as_data().to_vec(),
                Some(results[1].as_data().to_vec()),
            ),
            Some(MetaLayout::Omap) => {
                let entries = results[1].as_omap();
                let meta = entries.first().map(|(_, v)| v.clone());
                (results[0].as_data().to_vec(), meta)
            }
        };
        Ok(SectorObservation { lba, ciphertext, meta })
    }
}
