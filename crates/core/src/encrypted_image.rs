//! The client-side encrypting IO path over an RBD image.

use crate::audit::SectorObservation;
use crate::batch::{IoBatch, SectorExtent};
use crate::config::{EncryptionConfig, MetaLayout};
use crate::keychain::{EpochMap, KeyChain};
use crate::layout::Geometry;
use crate::luks::{DerivedKeys, LuksHeader, RekeyState, WindowIntent};
use crate::meta_cache::MetaCache;
use crate::rekey::RekeyDriver;
use crate::sector::SectorCodec;
use crate::{CryptError, Result};
use std::borrow::Cow;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Mutex, PoisonError};
use vdisk_crypto::mem::SecretBytes;
use vdisk_crypto::rng::{IvSource, OsIvSource};
use vdisk_rados::{
    ObjectReads, RadosError, ReadOp, ReadResult, ReadTicket, SharedBuf, SnapId, Transaction,
};
use vdisk_rbd::{Image, RbdError};
use vdisk_sim::Plan;

/// Xattr on the crypt-header object carrying the header generation —
/// the CAS token serializing concurrent header updates.
const GEN_XATTR: &str = "luks.gen";

/// OMAP key prefix (on the crypt-header object) recording each
/// snapshot's epoch map — how baseline-layout snapshot reads know
/// which sectors carried which key epoch when the snapshot froze.
const SNAP_EPOCH_PREFIX: &str = "snapepoch.";

/// An encrypted virtual disk: every write encrypts client-side and
/// persists per-sector metadata (when configured) in the same atomic
/// RADOS transaction as the data; every read fetches data + metadata
/// and decrypts client-side — unless the sector's metadata is resident
/// in the image's client-side IV/metadata cache, in which case the
/// metadata round trip is skipped entirely (size the cache with
/// [`vdisk_rados::ClusterBuilder::meta_cache_bytes`]; see the crate
/// docs for the invalidation contract).
///
/// See the [crate docs](crate) for an end-to-end example.
pub struct EncryptedImage {
    image: Image,
    header: LuksHeader,
    /// Every loaded key epoch's codec (current, the retiring epoch of
    /// an in-flight rekey, and retired epochs for snapshot reads).
    chain: KeyChain,
    /// Master keys by epoch — needed to wrap the outgoing key into the
    /// retired chain at rekey completion. Zeroized on drop.
    masters: BTreeMap<u32, SecretBytes>,
    iv_source: Box<dyn IvSource>,
    geometry: Geometry,
    /// Client-side cache of persisted per-sector metadata entries for
    /// head reads. Interior-mutable: reads fill and hit it through
    /// `&self`, writes invalidate through `&mut self`.
    meta_cache: MetaCache,
    /// Baseline-layout snapshots' epoch maps (snap id → map at
    /// creation), mirrored from the crypt-header object's OMAP.
    /// Interior-mutable: `snap_create` records through `&self`.
    snap_epochs: Mutex<BTreeMap<u64, EpochMap>>,
    /// Crypto lane count, captured from the cluster at open: large
    /// writes split their sector run across this many scoped encrypt
    /// threads (see [`crate::crypto_pool`]); small IOs stay serial.
    crypto_lanes: usize,
    /// Rekey-migration proof markers armed by [`crate::RekeyDriver`]:
    /// the next write matching `(offset, len)` stamps the named xattr
    /// onto its (single) transaction, so the chunk's data and its
    /// migrated-proof land atomically. Keyed by the submitted request
    /// shape because the tenant runtime may defer a driver write into
    /// its backlog — arming at actual submission time, not driver
    /// dispatch time, keeps the marker glued to the right write.
    armed_markers: HashMap<(u64, usize), String>,
}

/// Requests below this size encrypt serially: thread-spawn overhead
/// dominates the codec work, and the simulated cost model likewise
/// charges them as one crypto op.
const CRYPTO_PARALLEL_MIN_BYTES: usize = 128 << 10;

impl std::fmt::Debug for EncryptedImage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EncryptedImage")
            .field("image", &self.image.name())
            .field("config", self.header.config())
            .finish_non_exhaustive()
    }
}

/// An asynchronously submitted write: everything
/// [`crate::EncryptedIoQueue`] needs to finalize it at reap time.
pub(crate) struct SubmittedWrite {
    pub(crate) ticket: vdisk_rados::ApplyTicket,
    /// Client-side encryption cost, sequenced before the dispatch.
    pub(crate) crypto: Plan,
    /// Boundary-sector RMW reads of an unaligned write (already
    /// performed at submit), sequenced before the crypto.
    pub(crate) rmw: Option<Plan>,
    /// Cached IV/metadata sectors this write invalidated at submit.
    pub(crate) invalidated: u64,
    /// Cache hits/misses of the RMW boundary reads, so per-op
    /// `IoResult` deltas reconcile with the cluster-wide counters.
    pub(crate) rmw_hits: u64,
    pub(crate) rmw_misses: u64,
    /// Write-through cache fills: the metadata entries this write
    /// persisted, installable at reap time if the extent's shard
    /// epoch is unchanged (see [`EncryptedImage::apply_write_fills`]).
    pub(crate) fills: Vec<WriteFill>,
}

/// One extent's write-through cache fill, captured at submit: the
/// entries the write persisted plus the validity token (shard
/// write-submission epoch taken **after** this write's own submission
/// bump, cache generation at submit). At reap, an unchanged epoch
/// proves no later overwrite or snapshot was submitted for the shard,
/// so the entries are current and may enter the cache — the same rule
/// read fills follow.
pub(crate) struct WriteFill {
    pub(crate) base_lba: u64,
    pub(crate) metas: SharedBuf,
    pub(crate) shard: usize,
    pub(crate) epoch: u64,
    pub(crate) generation: u64,
}

/// How one extent of a read span obtains its per-sector metadata.
pub(crate) enum ExtentMeta {
    /// No separate metadata fetch exists for this layout: the baseline
    /// stores none, the unaligned layout interleaves it into the data
    /// extent. Nothing to cache, nothing to save.
    Inline,
    /// Every sector's entry was resident in the IV/metadata cache at
    /// submit: the metadata op was skipped and these packed bytes
    /// decrypt the extent at reap.
    Cached(Vec<u8>),
    /// The metadata is fetched from the store alongside the data.
    /// `fill` is `Some((shard, epoch))` when the fetched entries are
    /// eligible to enter the cache at reap — a head read with the
    /// cache enabled — carrying the extent's shard index and its
    /// write-submission epoch captured **before** the read was
    /// submitted. The fill happens only if the epoch is unchanged at
    /// reap (see [`vdisk_rados::Cluster::shard_write_seq`]).
    Fetched { fill: Option<(usize, u64)> },
}

/// Accumulates an unaligned write's boundary-sector reads: their cost
/// plans and the cache hit/miss deltas they recorded.
#[derive(Default)]
pub(crate) struct RmwReads {
    pub(crate) plans: Vec<Plan>,
    pub(crate) hits: u64,
    pub(crate) misses: u64,
}

impl RmwReads {
    fn read(&mut self, disk: &EncryptedImage, offset: u64, buf: &mut [u8]) -> Result<()> {
        let (plan, hits, misses) = disk.read_common(None, offset, buf)?;
        self.plans.push(plan);
        self.hits += hits;
        self.misses += misses;
        Ok(())
    }
}

/// A read's aligned-span plan: the extent mapping plus the per-extent
/// metadata sourcing and cache accounting decided at submit time.
pub(crate) struct ReadSpan {
    pub(crate) batch: IoBatch,
    /// Parallel to `batch.extents`.
    pub(crate) meta: Vec<ExtentMeta>,
    /// IV/metadata cache generation at submit; fills re-validate
    /// against it so they never span a snapshot's wholesale
    /// invalidation.
    pub(crate) generation: u64,
    /// Key-epoch map captured at submit (the baseline layout's only
    /// epoch source; tagged layouts route by entry). Per-shard FIFO
    /// pins the fetched data to the same submission point, so the
    /// captured map matches the fetched ciphertext even while the
    /// rekey driver advances the watermark in between.
    pub(crate) epochs: EpochMap,
    /// Sectors whose metadata round trip the cache absorbed.
    pub(crate) hits: u64,
    /// Sectors that had to fetch metadata despite the cache.
    pub(crate) misses: u64,
}

impl EncryptedImage {
    fn crypt_header_object(image_name: &str) -> String {
        format!("rbd_header.{image_name}.luks")
    }

    /// Formats an image for encryption: generates a master key, writes
    /// the LUKS-style header, and returns the opened device. IVs come
    /// from the OS CSPRNG.
    ///
    /// # Errors
    ///
    /// Returns [`CryptError::UnsupportedConfig`] for invalid configs or
    /// [`CryptError::Rbd`] on store failures.
    pub fn format(
        image: Image,
        config: &EncryptionConfig,
        passphrase: &[u8],
    ) -> Result<EncryptedImage> {
        Self::format_with_iv_source(image, config, passphrase, Box::new(OsIvSource::new()))
    }

    /// Formats with an explicit IV source (seeded for reproducible
    /// tests and benchmarks).
    ///
    /// # Errors
    ///
    /// As [`EncryptedImage::format`].
    pub fn format_with_iv_source(
        image: Image,
        config: &EncryptionConfig,
        passphrase: &[u8],
        mut iv_source: Box<dyn IvSource>,
    ) -> Result<EncryptedImage> {
        config.validate()?;
        if u64::from(config.sector_size) > image.object_size() {
            return Err(CryptError::UnsupportedConfig(
                "sector size exceeds object size".into(),
            ));
        }
        Self::check_sector_multiple(&image, u64::from(config.sector_size))?;
        let (mut header, master) = LuksHeader::format(config, passphrase, iv_source.as_mut())?;
        let keys = DerivedKeys::derive(&master, config.cipher);
        let codec = SectorCodec::new(config, &keys, 0)?;
        let geometry = Geometry::new(
            image.object_size(),
            u64::from(config.sector_size),
            u64::from(config.meta_entry_len()),
        );
        let meta_cache = Self::build_meta_cache(&image, config);

        // First persist: the generation xattr must not exist yet, so
        // two concurrent formats cannot both win.
        let generation = header.bump_generation();
        let mut tx = Transaction::new(Self::crypt_header_object(image.name()));
        tx.compare_xattr(GEN_XATTR, None);
        let bytes = header.encode();
        let len = bytes.len() as u64;
        tx.write(0, bytes);
        tx.truncate(len);
        tx.set_xattr(GEN_XATTR, generation.to_le_bytes().to_vec());
        image
            .cluster()
            .execute(tx)
            .map_err(Self::map_header_contention)?;

        let mut masters = BTreeMap::new();
        masters.insert(0, master);
        let crypto_lanes = image.cluster().crypto_lanes();
        Ok(EncryptedImage {
            image,
            header,
            chain: KeyChain::new(0, codec),
            masters,
            iv_source,
            geometry,
            meta_cache,
            snap_epochs: Mutex::new(BTreeMap::new()),
            crypto_lanes,
            armed_markers: HashMap::new(),
        })
    }

    /// Opens an encrypted image with a passphrase.
    ///
    /// # Errors
    ///
    /// Returns [`CryptError::WrongPassphrase`] if no keyslot matches,
    /// or [`CryptError::HeaderCorrupt`] if the header fails to parse.
    pub fn open(image: Image, passphrase: &[u8]) -> Result<EncryptedImage> {
        Self::open_with_iv_source(image, passphrase, Box::new(OsIvSource::new()))
    }

    /// Opens with an explicit IV source.
    ///
    /// # Errors
    ///
    /// As [`EncryptedImage::open`].
    pub fn open_with_iv_source(
        image: Image,
        passphrase: &[u8],
        iv_source: Box<dyn IvSource>,
    ) -> Result<EncryptedImage> {
        let header_object = Self::crypt_header_object(image.name());
        let cluster = image.cluster().clone();
        let stat = cluster
            .stat(&header_object)
            .map_err(|_| CryptError::HeaderCorrupt("missing encryption header".into()))?;
        let (results, _) = cluster.read(
            &header_object,
            None,
            &[
                ReadOp::Read {
                    offset: 0,
                    len: stat.size,
                },
                ReadOp::OmapGetRange {
                    start: SNAP_EPOCH_PREFIX.as_bytes().to_vec(),
                    end: format!("{SNAP_EPOCH_PREFIX}\u{ff}").into_bytes(),
                },
            ],
        )?;
        let header = LuksHeader::decode(results[0].as_data())?;
        let config = header.config().clone();
        Self::check_sector_multiple(&image, u64::from(config.sector_size))?;

        // Unlock every epoch this passphrase reaches: the current one
        // (mandatory), the retiring one mid-rekey (through the bridge
        // slot), and every retired epoch through the wrap chain.
        let unlocked = header.unlock_all(passphrase);
        let current = header.current_epoch();
        let current_master = unlocked
            .iter()
            .find_map(|(epoch, master)| (*epoch == current).then(|| master.clone()))
            .ok_or(CryptError::WrongPassphrase)?;
        let mut masters: BTreeMap<u32, SecretBytes> = unlocked.into_iter().collect();
        for (epoch, master) in header.unwrap_retired(&current_master) {
            masters.entry(epoch).or_insert(master);
        }
        if let Some(state) = header.rekey() {
            if !masters.contains_key(&state.from) {
                return Err(CryptError::HeaderCorrupt(
                    "rekey in flight but the retiring epoch is locked".into(),
                ));
            }
        }

        let mut chain: Option<KeyChain> = None;
        for (&epoch, master) in &masters {
            let keys = DerivedKeys::derive(master, config.cipher);
            let codec = SectorCodec::new(&config, &keys, epoch)?;
            match chain.as_mut() {
                None => chain = Some(KeyChain::new(epoch, codec)),
                Some(chain) => chain.install(epoch, codec),
            }
        }
        let mut chain = chain.expect("current epoch always unlocked");
        chain.set_current(current);

        let snap_epochs = results[1]
            .as_omap()
            .iter()
            .filter_map(|(key, value)| {
                let snap = std::str::from_utf8(&key[SNAP_EPOCH_PREFIX.len()..])
                    .ok()?
                    .parse()
                    .ok()?;
                Some((snap, decode_epoch_map(value)?))
            })
            .collect();

        let geometry = Geometry::new(
            image.object_size(),
            u64::from(config.sector_size),
            u64::from(config.meta_entry_len()),
        );
        let meta_cache = Self::build_meta_cache(&image, &config);
        let crypto_lanes = image.cluster().crypto_lanes();
        Ok(EncryptedImage {
            image,
            header,
            chain,
            masters,
            iv_source,
            geometry,
            meta_cache,
            snap_epochs: Mutex::new(snap_epochs),
            crypto_lanes,
            armed_markers: HashMap::new(),
        })
    }

    /// Persists the in-memory header, CASed on the generation it last
    /// read: concurrent updates from other handles lose with
    /// [`CryptError::HeaderContended`] instead of tearing the header.
    /// On success the in-memory generation has advanced; on contention
    /// this handle's header view is stale — reopen the image.
    fn persist_header(&mut self) -> Result<()> {
        let old = self.header.generation();
        let new = self.header.bump_generation();
        let mut tx = Transaction::new(Self::crypt_header_object(self.image.name()));
        tx.compare_xattr(GEN_XATTR, Some(old.to_le_bytes().to_vec()));
        let bytes = self.header.encode();
        let len = bytes.len() as u64;
        tx.write(0, bytes);
        tx.truncate(len);
        tx.set_xattr(GEN_XATTR, new.to_le_bytes().to_vec());
        self.image
            .cluster()
            .execute(tx)
            .map_err(Self::map_header_contention)?;
        Ok(())
    }

    fn map_header_contention(e: RadosError) -> CryptError {
        match e {
            RadosError::CompareFailed { .. } => CryptError::HeaderContended,
            other => other.into(),
        }
    }

    /// Persists the header; on failure restores `saved`, so the
    /// in-memory view never drifts ahead of the store on a lost CAS.
    fn persist_header_or_restore(&mut self, saved: LuksHeader) -> Result<()> {
        match self.persist_header() {
            Ok(()) => Ok(()),
            Err(e) => {
                self.header = saved;
                Err(e)
            }
        }
    }

    /// Builds the image's IV/metadata cache from the cluster's budget.
    /// Only layouts whose metadata costs a **separate** fetch benefit:
    /// object-end adds a second read extent, OMAP a key-value lookup.
    /// The baseline stores nothing and the unaligned layout interleaves
    /// metadata into the data extent, so the cache stays disabled
    /// there (no round trip to save).
    fn build_meta_cache(image: &Image, config: &EncryptionConfig) -> MetaCache {
        MetaCache::new(
            image.cluster().meta_cache_bytes(),
            config.meta_entry_len() as usize,
            matches!(
                config.layout,
                Some(MetaLayout::ObjectEnd | MetaLayout::Omap)
            ),
        )
    }

    /// Adds a new passphrase (authorized by an existing one) and
    /// persists the updated header.
    ///
    /// # Errors
    ///
    /// Returns [`CryptError::WrongPassphrase`] if `existing` unlocks no
    /// keyslot, [`CryptError::NoFreeKeyslot`] when all 8 slots are
    /// taken, or [`CryptError::HeaderContended`] if another handle
    /// updated the header concurrently.
    pub fn add_passphrase(&mut self, existing: &[u8], new: &[u8]) -> Result<usize> {
        let saved = self.header.clone();
        let master = self.header.unlock(existing)?;
        let idx = self
            .header
            .add_keyslot(new, &master, self.iv_source.as_mut())?;
        self.persist_header_or_restore(saved)?;
        Ok(idx)
    }

    /// Rotates a passphrase: every keyslot `existing` unlocks is
    /// re-wrapped under `new` in place — a pure header update (one
    /// small CASed write), no data IO, no key change. Returns the
    /// number of slots rotated.
    ///
    /// # Errors
    ///
    /// Returns [`CryptError::WrongPassphrase`] if `existing` unlocks
    /// nothing, or [`CryptError::HeaderContended`] on a concurrent
    /// header update.
    pub fn rotate_passphrase(&mut self, existing: &[u8], new: &[u8]) -> Result<usize> {
        let saved = self.header.clone();
        let rotated = self
            .header
            .rotate_passphrase(existing, new, self.iv_source.as_mut())?;
        self.persist_header_or_restore(saved)?;
        Ok(rotated.len())
    }

    /// Starts an **online rekey**: installs a fresh master key as the
    /// next key epoch (authorized by `existing`, unlocked by
    /// `new_pass` from here on), persists the updated header, and
    /// returns the [`RekeyDriver`] that migrates every sector's
    /// ciphertext to the new key — through the image's own
    /// [`crate::EncryptedIoQueue`], at a bounded queue depth, while
    /// reads and writes keep flowing:
    ///
    /// - layouts with per-sector metadata stamp each sector's epoch
    ///   into its stored entry, so mixed-epoch states are self-routing;
    /// - the baseline layout uses the driver's sequential watermark
    ///   (sectors below it are new-epoch);
    /// - the old passphrase stops unlocking immediately; `new_pass`
    ///   bridges both epochs until the migration completes.
    ///
    /// Drive it with [`RekeyDriver::step`] (interleaving your own IO
    /// between steps) or [`RekeyDriver::drive_to_completion`].
    ///
    /// # Errors
    ///
    /// [`CryptError::RekeyInProgress`] if a rekey is already
    /// migrating, [`CryptError::WrongPassphrase`] if `existing` does
    /// not unlock the current epoch, [`CryptError::HeaderContended`]
    /// on a concurrent header update.
    pub fn rekey_begin(&mut self, existing: &[u8], new_pass: &[u8]) -> Result<RekeyDriver> {
        self.rekey_begin_with_iterations(existing, new_pass, crate::luks::DEFAULT_ITERATIONS)
    }

    /// [`EncryptedImage::rekey_begin`] with an explicit PBKDF2 cost
    /// for the new keyslots (tests and benchmarks).
    ///
    /// # Errors
    ///
    /// As [`EncryptedImage::rekey_begin`].
    pub fn rekey_begin_with_iterations(
        &mut self,
        existing: &[u8],
        new_pass: &[u8],
        iterations: u32,
    ) -> Result<RekeyDriver> {
        // Stage everything against a saved header so a lost CAS leaves
        // this handle exactly as it was: without the rollback, a
        // contended handle would keep encrypting new writes under an
        // epoch the store never recorded — permanently unreadable the
        // moment this handle closes.
        let saved = self.header.clone();
        let old_epoch = self.chain.current();
        let (from_master, to_master) =
            self.header
                .begin_rekey(existing, new_pass, iterations, self.iv_source.as_mut())?;
        let state = self.header.rekey().expect("just begun");
        let config = self.config().clone();
        let keys = DerivedKeys::derive(&to_master, config.cipher);
        let codec = SectorCodec::new(&config, &keys, state.to)?;
        self.chain.install(state.to, codec);
        self.chain.set_current(state.to);
        self.masters.insert(state.from, from_master);
        self.masters.insert(state.to, to_master);
        if let Err(e) = self.persist_header() {
            self.header = saved;
            self.chain.set_current(old_epoch);
            self.chain.uninstall(state.to);
            self.masters.remove(&state.to);
            return Err(e);
        }
        Ok(RekeyDriver::new(state.from, state.to))
    }

    /// Resumes driving an already-started rekey (e.g. after reopening
    /// an image another handle left mid-migration); `None` when no
    /// rekey is in flight.
    #[must_use]
    pub fn rekey_resume(&self) -> Option<RekeyDriver> {
        self.header
            .rekey()
            .map(|state| RekeyDriver::new(state.from, state.to))
    }

    /// The in-flight rekey state (epochs and watermark), if any.
    #[must_use]
    pub fn rekey_status(&self) -> Option<RekeyState> {
        self.header.rekey()
    }

    /// Completes a rekey once the driver has migrated every sector:
    /// retires the old epoch's master key into the header's wrap chain
    /// (snapshot reads still reach it through the new passphrase),
    /// drops the bridge keyslots, and persists the header. Called by
    /// [`RekeyDriver::finish`].
    pub(crate) fn rekey_finish(&mut self, from: u32, to: u32) -> Result<()> {
        let state = self.header.rekey().ok_or(CryptError::NoRekeyInProgress)?;
        if state.from != from || state.to != to {
            return Err(CryptError::UnsupportedConfig(
                "rekey driver does not match the in-flight rekey".into(),
            ));
        }
        if state.watermark < self.total_sectors() {
            return Err(CryptError::RekeyInProgress);
        }
        let from_master = self.masters[&from].clone();
        let to_master = self.masters[&to].clone();
        let saved = self.header.clone();
        self.header.finish_rekey(&from_master, &to_master)?;
        self.persist_header_or_restore(saved)
    }

    /// **Crypto-shreds** the image: zeroizes every keyslot, epoch
    /// digest, and retired-key wrap in memory
    /// ([`LuksHeader::shred`]), overwrites the stored header object
    /// with zeros, and deletes it — one atomic transaction. The data
    /// objects are left in place *by design*: without any wrapped
    /// master key they are undecryptable noise, which is the paper's
    /// secure-deletion story (destroy the key, not the data). Every
    /// subsequent [`EncryptedImage::open`] fails; handles already
    /// open retain their in-memory keys until dropped (zeroized then).
    ///
    /// # Errors
    ///
    /// Returns [`CryptError::Rbd`] on store failures; the in-memory
    /// key material is shredded regardless.
    pub fn secure_erase(mut self) -> Result<()> {
        let object = Self::crypt_header_object(self.image.name());
        let stat = self.image.cluster().stat(&object)?;
        self.header.shred();
        let mut tx = Transaction::new(object);
        // Overwrite-then-delete: the scrub pass models clearing the
        // physical extents before dropping the object, so even the
        // (already key-less) wrapped blobs are gone from the store.
        tx.write(0, vec![0u8; stat.size as usize]);
        tx.delete();
        self.image.cluster().execute(tx)?;
        // `self` drops here: SecretBytes masters zeroize themselves.
        Ok(())
    }

    /// The underlying image.
    #[must_use]
    pub fn image(&self) -> &Image {
        &self.image
    }

    /// The encryption configuration in force.
    #[must_use]
    pub fn config(&self) -> &EncryptionConfig {
        self.header.config()
    }

    /// The object geometry in force.
    #[must_use]
    pub fn geometry(&self) -> Geometry {
        self.geometry
    }

    /// Encryption sector size in bytes.
    #[must_use]
    pub fn sector_size(&self) -> u64 {
        self.geometry.sector_size
    }

    /// Logical sectors in the image.
    #[must_use]
    pub fn total_sectors(&self) -> u64 {
        self.image.size() / self.geometry.sector_size
    }

    /// The key epoch new head writes encrypt under.
    #[must_use]
    pub fn current_key_epoch(&self) -> u32 {
        self.header.current_epoch()
    }

    /// The head's epoch map right now: current epoch, plus the
    /// watermark split while a rekey is migrating.
    pub(crate) fn head_epoch_map(&self) -> EpochMap {
        EpochMap {
            current: self.header.current_epoch(),
            pending: self.header.rekey().map(|s| (s.from, s.watermark)),
        }
    }

    /// Whether the layout tags each sector's entry with its epoch
    /// (every layout with stored metadata does; the baseline cannot).
    fn tagged_layout(&self) -> bool {
        self.config().layout.is_some()
    }

    /// Driver-only: advances the in-memory rekey watermark so the
    /// window the driver is rewriting encrypts under the new epoch.
    /// Persist with [`EncryptedImage::persist_rekey_watermark`] after
    /// the window's writes complete.
    pub(crate) fn advance_rekey_boundary(&mut self, watermark: u64) {
        self.header.set_rekey_watermark(watermark);
    }

    /// Driver-only: rolls the in-memory watermark back to `watermark`
    /// (the last fully-migrated prefix) after a window failed
    /// mid-flight, so a retried step re-migrates the window instead of
    /// skipping it.
    pub(crate) fn rollback_rekey_boundary(&mut self, watermark: u64) {
        self.header.rollback_rekey_watermark(watermark);
    }

    /// Driver-only: persists the advanced watermark (CASed like every
    /// header update). A persisted window intent is cleared in the
    /// *same* header update: the watermark covering the window is the
    /// proof the window landed, so the two must move atomically. On
    /// failure the in-memory header (watermark *and* intent) is
    /// restored, so a retried or resumed rekey still sees the
    /// uncommitted window as in doubt.
    pub(crate) fn persist_rekey_watermark(&mut self) -> Result<()> {
        let saved = self.header.clone();
        if self.header.rekey().is_some_and(|s| s.intent.is_some()) {
            self.header.clear_rekey_intent();
        }
        self.persist_header_or_restore(saved)
    }

    /// The crashed (persisted-but-uncleared) rekey window intent, if
    /// any: evidence that a prior handle started migrating this window
    /// but never proved it complete. [`crate::RekeyDriver`] recovers
    /// it chunk by chunk before migrating anything new.
    pub(crate) fn rekey_window_intent(&self) -> Option<WindowIntent> {
        self.header.rekey().and_then(|state| state.intent)
    }

    /// Driver-only: durably records the window the driver is *about*
    /// to migrate, before any chunk of it is rewritten. Crash-safety
    /// contract: once this persists, a reopened image either finds the
    /// watermark advanced past the window (it landed) or finds this
    /// intent and re-proves each chunk individually.
    pub(crate) fn persist_rekey_intent(&mut self, intent: WindowIntent) -> Result<()> {
        let saved = self.header.clone();
        self.header.set_rekey_intent(intent);
        self.persist_header_or_restore(saved)
    }

    fn rekey_marker_name(to: u32, chunk_offset: u64) -> String {
        format!("rekey.mark.{to}.{chunk_offset}")
    }

    /// Driver-only: arms a migration-proof marker for the chunk write
    /// the driver is about to submit at `(offset, len)`. When that
    /// exact write reaches [`EncryptedImage::submit_write_owned`] it
    /// stamps the marker xattr into the same transaction as the chunk
    /// data — the driver clamps chunks to object boundaries, so the
    /// chunk is one transaction and marker + ciphertext commit (or
    /// tear) together. The marker name is epoch-keyed, so stale
    /// markers from an earlier rekey can never vouch for this one.
    pub(crate) fn arm_rekey_marker(&mut self, offset: u64, len: usize) {
        let to = self
            .header
            .rekey()
            .expect("rekey markers are only armed mid-rekey")
            .to;
        self.armed_markers
            .insert((offset, len), Self::rekey_marker_name(to, offset));
    }

    /// Driver-only: drops every armed-but-unconsumed marker after a
    /// window fails mid-flight. Without this, a later *client* write
    /// that happens to match an armed `(offset, len)` would get
    /// stamped as migration proof for data it never migrated.
    pub(crate) fn clear_rekey_markers(&mut self) {
        self.armed_markers.clear();
    }

    /// Whether the chunk starting at byte `chunk_offset` carries the
    /// migration-proof marker for epoch `to` — i.e. whether its
    /// rewrite under the new key durably landed before a crash. A
    /// missing object proves nothing landed there (`false`), which is
    /// still safe: re-migration is idempotent.
    pub(crate) fn rekey_chunk_proven(&self, to: u32, chunk_offset: u64) -> Result<bool> {
        let object = self
            .image
            .object_name(chunk_offset / self.image.object_size());
        let marker = Self::rekey_marker_name(to, chunk_offset);
        match self
            .image
            .cluster()
            .read(&object, None, &[ReadOp::GetXattr(marker)])
        {
            Ok((results, _)) => Ok(matches!(&results[0], ReadResult::Xattr(Some(_)))),
            Err(RadosError::NoSuchObject(_)) => Ok(false),
            Err(e) => Err(e.into()),
        }
    }

    /// The epoch map governing a snapshot's ciphertext (recorded at
    /// [`EncryptedImage::snap_create`]); falls back to the head map
    /// for snapshots taken outside this API.
    fn snap_epoch_map(&self, snap: SnapId) -> EpochMap {
        let recorded = self
            .snap_epochs
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&snap.0)
            .copied();
        recorded.unwrap_or_else(|| self.head_epoch_map())
    }

    /// Takes an image snapshot (see [`Image::snap_create`]) and drops
    /// the whole IV/metadata cache: the snapshot also bumps every
    /// shard's write-submission epoch, so cache fills whose
    /// submit→reap window spans the snapshot are abandoned too.
    ///
    /// # Errors
    ///
    /// As [`Image::snap_create`].
    pub fn snap_create(&self, name: &str) -> Result<SnapId> {
        let snap = self.image.snap_create(name)?;
        let invalidated = self.meta_cache.invalidate_all();
        self.image.cluster().record_meta_cache(0, 0, invalidated);
        if !self.tagged_layout() {
            // The baseline layout has no per-sector epoch tags, so a
            // snapshot must remember which sectors carried which key
            // when it froze (the head's map keeps moving as rekeys
            // migrate). Persisted next to the header, mirrored in
            // memory.
            let map = self.head_epoch_map();
            let mut tx = Transaction::new(Self::crypt_header_object(self.image.name()));
            tx.omap_set(vec![(
                format!("{SNAP_EPOCH_PREFIX}{}", snap.0).into_bytes(),
                encode_epoch_map(map),
            )]);
            self.image.cluster().execute(tx)?;
            self.snap_epochs
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .insert(snap.0, map);
        }
        Ok(snap)
    }

    /// Sectors of IV/metadata currently resident in this image's
    /// client-side cache. Always 0 when the cache is disabled
    /// ([`vdisk_rados::ClusterBuilder::meta_cache_bytes`] set to 0) or
    /// the layout has no separately-fetched metadata.
    #[must_use]
    pub fn meta_cache_resident_sectors(&self) -> usize {
        self.meta_cache.resident_sectors()
    }

    /// Capacity of the IV/metadata cache in sectors (0 = disabled).
    #[must_use]
    pub fn meta_cache_capacity_sectors(&self) -> usize {
        self.meta_cache.capacity_sectors()
    }

    /// Encryption operates on whole sectors, so an image whose size is
    /// not a sector multiple would leave an un-encryptable tail — and
    /// unaligned tail IOs would round their RMW span past the image
    /// end. Rejected up front with a clear error instead.
    fn check_sector_multiple(image: &Image, sector_size: u64) -> Result<()> {
        if image.size().is_multiple_of(sector_size) {
            Ok(())
        } else {
            Err(CryptError::UnsupportedConfig(format!(
                "image size {} is not a multiple of the {sector_size}-byte sector size",
                image.size()
            )))
        }
    }

    fn check_bounds(&self, offset: u64, len: u64) -> Result<()> {
        match offset.checked_add(len) {
            Some(end) if end <= self.image.size() => Ok(()),
            // Report the true requested end; an offset+len overflow
            // (necessarily out of bounds) reports the saturated end.
            end => Err(CryptError::Rbd(RbdError::OutOfBounds {
                offset: end.unwrap_or(u64::MAX),
                size: self.image.size(),
            })),
        }
    }

    /// Encrypts and writes `data` at byte `offset`; returns the IO's
    /// cost plan. The borrowing convenience wrapper: an aligned
    /// request copies `data` once into the owned zero-copy path; an
    /// unaligned one splices it straight into the RMW span (no extra
    /// copy). Hot paths that can hand over their buffer should call
    /// [`EncryptedImage::write_owned`] or drive an
    /// [`crate::EncryptedIoQueue`].
    ///
    /// # Errors
    ///
    /// Returns [`CryptError::Rbd`] for out-of-bounds IO or store
    /// failures, and decryption errors if an unaligned write has to
    /// read back tampered boundary sectors.
    pub fn write(&mut self, offset: u64, data: &[u8]) -> Result<Plan> {
        self.check_bounds(offset, data.len() as u64)?;
        if data.is_empty() {
            return Ok(Plan::Noop);
        }
        if self.is_sector_aligned(offset, data.len() as u64) {
            self.write_aligned_owned(offset, data.to_vec())
        } else {
            self.write_unaligned(offset, data)
        }
    }

    /// Encrypt-on-ingest owned-buffer write: ciphertext is produced
    /// **in place in the submitted buffer** and every touched object's
    /// transaction receives a slice view of that one allocation — an
    /// aligned write performs zero full-request copies end to end.
    /// Writes not aligned to the sector size perform client-side
    /// read-modify-write of **only the partially-written boundary
    /// sectors** — interior sectors are fully overwritten and never
    /// read back or decrypted.
    ///
    /// # Errors
    ///
    /// As [`EncryptedImage::write`].
    pub fn write_owned(&mut self, offset: u64, data: Vec<u8>) -> Result<Plan> {
        self.check_bounds(offset, data.len() as u64)?;
        if data.is_empty() {
            return Ok(Plan::Noop);
        }
        if self.is_sector_aligned(offset, data.len() as u64) {
            self.write_aligned_owned(offset, data)
        } else {
            self.write_unaligned(offset, &data)
        }
    }

    fn is_sector_aligned(&self, offset: u64, len: u64) -> bool {
        let ss = self.geometry.sector_size;
        offset.is_multiple_of(ss) && len.is_multiple_of(ss)
    }

    /// The unaligned write tail shared by both write entry points:
    /// RMW the boundary sectors, then write the aligned span.
    fn write_unaligned(&mut self, offset: u64, data: &[u8]) -> Result<Plan> {
        let (aligned_off, span, rmw) = self.rmw_span(offset, data)?;
        let write_plan = self.write_aligned_owned(aligned_off, span)?;
        Ok(Plan::seq([Plan::par(rmw.plans), write_plan]))
    }

    /// Client-side RMW for an unaligned write: fetches only the
    /// boundary sectors the write partially covers, splices the new
    /// bytes over them, and returns the aligned span to write (plus
    /// the boundary reads' cost plans and cache accounting).
    /// (`check_sector_multiple` guarantees the span cannot round past
    /// the image end.)
    fn rmw_span(&mut self, offset: u64, data: &[u8]) -> Result<(u64, Vec<u8>, RmwReads)> {
        let ss = self.geometry.sector_size;
        let first_sector = offset / ss;
        let end = offset + data.len() as u64;
        let end_sector = end.div_ceil(ss);
        let aligned_off = first_sector * ss;
        let aligned_len = ((end_sector - first_sector) * ss) as usize;
        let mut span = vec![0u8; aligned_len];
        let head_len = (offset - aligned_off) as usize;
        let tail_partial = !end.is_multiple_of(ss);
        let mut rmw = RmwReads::default();
        if end_sector - first_sector == 1 {
            // Single sector, partial at one or both ends.
            rmw.read(self, aligned_off, &mut span[..ss as usize])?;
        } else {
            if head_len > 0 {
                rmw.read(self, aligned_off, &mut span[..ss as usize])?;
            }
            if tail_partial {
                let tail_off = (end_sector - 1) * ss;
                rmw.read(self, tail_off, &mut span[aligned_len - ss as usize..])?;
            }
        }
        span[head_len..head_len + data.len()].copy_from_slice(data);
        Ok((aligned_off, span, rmw))
    }

    /// How many crypto lanes a request of `len` bytes encrypts over:
    /// the cluster's lane count for large requests, one (serial) below
    /// [`CRYPTO_PARALLEL_MIN_BYTES`]. Drives both the real scoped-
    /// thread split and the simulated cost plan, so they always agree.
    fn effective_crypto_lanes(&self, len: usize) -> usize {
        if self.crypto_lanes > 1 && len >= CRYPTO_PARALLEL_MIN_BYTES {
            self.crypto_lanes
        } else {
            1
        }
    }

    /// The synchronous aligned write over
    /// [`EncryptedImage::encrypt_batch`] (idle shards served inline).
    fn write_aligned_owned(&mut self, offset: u64, data: Vec<u8>) -> Result<Plan> {
        let (txs, len, _, fills) = self.encrypt_batch(offset, data)?;
        let fills = self.capture_fill_epochs(fills);
        let dispatch = self.image.cluster().execute_batch(txs)?;
        // The synchronous path completes here, which is its reap point:
        // install the write-through fills under the same epoch rule as
        // the queued path.
        self.apply_write_fills(&fills);
        // Client-side encryption cost precedes the dispatch, spread
        // over the lanes the encrypt actually used.
        let crypto = self
            .image
            .cluster()
            .crypto_plan_parallel(len as u64, self.effective_crypto_lanes(len));
        Ok(Plan::seq([crypto, dispatch]))
    }

    /// Stamps each pending fill with the shard write-submission epoch
    /// it expects to observe at reap: the value read **immediately
    /// before this write submits, plus one** (the submission itself
    /// advances every touched shard exactly once). Seeing exactly that
    /// value at reap proves no other write or snapshot was submitted
    /// to the shard between this write's submission and its reap —
    /// any concurrent submission, whether it slipped in before or
    /// after ours, leaves the epoch past the expectation and the fill
    /// conservatively yields.
    fn capture_fill_epochs(&self, fills: Vec<(u64, SharedBuf, usize)>) -> Vec<WriteFill> {
        let generation = self.meta_cache.generation();
        fills
            .into_iter()
            .map(|(base_lba, metas, shard)| WriteFill {
                base_lba,
                metas,
                shard,
                epoch: self.image.cluster().shard_write_seq(shard) + 1,
                generation,
            })
            .collect()
    }

    /// Installs a completed write's metadata entries into the
    /// IV/metadata cache (write-through fill): each extent fills only
    /// if its shard's write-submission epoch is unchanged since this
    /// write submitted — per-shard FIFO then proves no later overwrite
    /// or snapshot intervened — and the cache generation still
    /// matches. The first read after a write then hits without ever
    /// paying a miss.
    pub(crate) fn apply_write_fills(&self, fills: &[WriteFill]) -> u64 {
        let mut filled = 0;
        for fill in fills {
            if self.image.cluster().shard_write_seq(fill.shard) != fill.epoch {
                continue;
            }
            filled += self
                .meta_cache
                .fill(fill.base_lba, &fill.metas, fill.generation);
        }
        if filled > 0 {
            self.image.cluster().record_meta_cache_write_fills(filled);
        }
        filled
    }

    /// The zero-copy encrypt-on-ingest pipeline. The striper maps the
    /// whole request up front ([`IoBatch`]), the codec encrypts it
    /// **in place in the submitted buffer** (plus one packed metadata
    /// run — no per-sector allocations), and each object extent's
    /// transaction is built from **slice views** of those two
    /// allocations: no full-request clone, no per-extent copies. (The
    /// unaligned layout is the exception — interleaving ciphertext and
    /// metadata into one on-disk extent inherently materializes a new
    /// run; OMAP entries are per-sector key-value pairs by contract.)
    /// This is also the write path's cache hook: every cached
    /// IV/metadata entry the write overwrites is invalidated here, at
    /// submit time — before the write's transactions can dispatch, so
    /// no later read can hit a stale entry. Returns the transactions,
    /// the request length, and the invalidated-sector count.
    #[allow(clippy::type_complexity)]
    fn encrypt_batch(
        &mut self,
        offset: u64,
        mut data: Vec<u8>,
    ) -> Result<(Vec<Transaction>, usize, u64, Vec<(u64, SharedBuf, usize)>)> {
        let ss = self.geometry.sector_size as usize;
        let me = self.geometry.meta_entry as usize;
        let layout = self.config().layout;
        let write_seq = self.image.cluster().snap_seq().0;
        let epochs = self.head_epoch_map();
        let tagged = self.tagged_layout();
        let len = data.len();
        if len == 0 {
            return Ok((Vec::new(), 0, 0, Vec::new()));
        }
        let batch = IoBatch::plan(self.image.striper(), &self.geometry, offset, len as u64);
        let mut invalidated = 0;
        for extent in &batch.extents {
            invalidated += self
                .meta_cache
                .invalidate_range(extent.base_lba, extent.sector_count);
        }
        self.image.cluster().record_meta_cache(0, 0, invalidated);

        // Encrypt the whole request in the submitted buffer: one
        // metadata run packed in sector order alongside. The epoch map
        // picks the key per sector (tagged layouts always write the
        // current epoch; the baseline splits at the rekey watermark).
        // The span is one contiguous LBA run (extents abut), so large
        // requests split it across the cluster's crypto lanes — the
        // pre-drawn IV stream keeps the ciphertext identical to a
        // serial encode (see [`crate::crypto_pool`]).
        let mut metas = Vec::with_capacity(batch.sector_count() as usize * me);
        let lanes = self.effective_crypto_lanes(len);
        crate::crypto_pool::encrypt_run_parallel(
            &self.chain,
            offset / self.geometry.sector_size,
            write_seq,
            &mut data,
            &mut metas,
            self.iv_source.as_mut(),
            epochs,
            tagged,
            lanes,
        )?;
        let cipher = SharedBuf::from_vec(data);
        let metas = SharedBuf::from_vec(metas);
        // Write-through fill candidates: this write knows exactly the
        // entries it is persisting; remember them (plus their shard,
        // for the reap-time epoch check) so they can enter the cache
        // when the write completes.
        let fillable = self.meta_cache.enabled();

        // One transaction per object extent, built from buffer views.
        let mut txs = Vec::with_capacity(batch.object_count());
        let mut fills = Vec::new();
        for extent in &batch.extents {
            let first = extent.first_sector;
            let count = extent.sector_count;
            let sectors = cipher.slice(extent.buf_start..extent.buf_end);
            let meta_start = extent.buf_start / ss * me;
            let extent_metas = metas.slice(meta_start..meta_start + count as usize * me);
            let object = self.image.object_name(extent.object_no);
            if fillable {
                fills.push((
                    extent.base_lba,
                    extent_metas.clone(),
                    self.image.cluster().placement_shard(&object),
                ));
            }

            let mut tx = Transaction::new(object);
            let (off, _) = self.geometry.data_extent(layout, first, count);
            match layout {
                None => {
                    tx.write(off, sectors);
                }
                Some(MetaLayout::Unaligned) => {
                    tx.write(
                        off,
                        self.geometry
                            .interleave_unaligned_run(&sectors, &extent_metas),
                    );
                }
                Some(MetaLayout::ObjectEnd) => {
                    tx.write(off, sectors);
                    let (meta_off, _) = self
                        .geometry
                        .meta_extent(layout, first, count)
                        .expect("object-end has a meta extent");
                    tx.write(meta_off, extent_metas);
                }
                Some(MetaLayout::Omap) => {
                    tx.write(off, sectors);
                    let entries: Vec<(Vec<u8>, Vec<u8>)> = extent_metas
                        .chunks_exact(me)
                        .enumerate()
                        .map(|(s, meta)| (Geometry::omap_key(first + s as u64), meta.to_vec()))
                        .collect();
                    tx.omap_set(entries);
                }
            }
            txs.push(tx);
        }
        Ok((txs, len, invalidated, fills))
    }

    /// The asynchronous write primitive behind
    /// [`crate::EncryptedIoQueue`]: encrypts on ingest (in the
    /// submitted buffer), submits the batch to the shard work queues,
    /// and returns without waiting. Yields the ticket, the client-side
    /// crypto cost plan, the boundary read plan of an unaligned write
    /// (which RMWs its partially-covered boundary sectors synchronously
    /// before dispatch), and the number of cached IV/metadata sectors
    /// the write invalidated at submit.
    pub(crate) fn submit_write_owned(
        &mut self,
        offset: u64,
        data: Vec<u8>,
    ) -> Result<SubmittedWrite> {
        self.check_bounds(offset, data.len() as u64)?;
        let armed_marker = self.armed_markers.remove(&(offset, data.len()));
        let aligned = self.is_sector_aligned(offset, data.len() as u64);
        let (aligned_off, owned, rmw) = if aligned || data.is_empty() {
            (offset, data, None)
        } else {
            let (aligned_off, span, rmw) = self.rmw_span(offset, &data)?;
            (aligned_off, span, Some(rmw))
        };
        let (rmw_plan, rmw_hits, rmw_misses) = match rmw {
            Some(rmw) => (Some(Plan::par(rmw.plans)), rmw.hits, rmw.misses),
            None => (None, 0, 0),
        };
        let (mut txs, len, invalidated, fills) = self.encrypt_batch(aligned_off, owned)?;
        if let Some(marker) = armed_marker {
            // Rekey migration proof: ride the chunk's own transaction
            // (the driver clamps chunks to one object, so `txs` is a
            // single atomic commit of ciphertext + marker).
            if let Some(tx) = txs.first_mut() {
                tx.set_xattr(marker, vec![1]);
            }
        }
        let fills = self.capture_fill_epochs(fills);
        let ticket = self.image.cluster().submit_batch(txs)?;
        let crypto = self
            .image
            .cluster()
            .crypto_plan_parallel(len as u64, self.effective_crypto_lanes(len));
        Ok(SubmittedWrite {
            ticket,
            crypto,
            rmw: rmw_plan,
            invalidated,
            rmw_hits,
            rmw_misses,
            fills,
        })
    }

    /// Reads and decrypts into `buf` from the image head. Sectors
    /// whose IV/metadata is resident in the client-side cache skip the
    /// metadata half of the store round trip (visible in the returned
    /// [`Plan`] and in `ExecStats::meta_cache_hits`).
    ///
    /// # Errors
    ///
    /// Returns [`CryptError::IntegrityViolation`] /
    /// [`CryptError::ReplayDetected`] per the configuration, or
    /// [`CryptError::Rbd`] for out-of-bounds IO.
    pub fn read(&self, offset: u64, buf: &mut [u8]) -> Result<Plan> {
        Ok(self.read_common(None, offset, buf)?.0)
    }

    /// Reads and decrypts as of a snapshot.
    ///
    /// # Errors
    ///
    /// As [`EncryptedImage::read`].
    pub fn read_at_snap(&self, snap: SnapId, offset: u64, buf: &mut [u8]) -> Result<Plan> {
        Ok(self.read_common(Some(snap), offset, buf)?.0)
    }

    /// The batched read pipeline. The striper maps the whole (sector-
    /// aligned) span up front ([`IoBatch`]), every extent's
    /// data+metadata ops go out in one vectored submission, and each
    /// extent decrypts **in place in the destination buffer** (no
    /// per-sector allocations). Submit-then-wait over
    /// [`EncryptedImage::submit_read_span`]. Returns the cost plan
    /// plus the cache hit/miss deltas, so callers embedding this read
    /// in a larger op (the unaligned-write RMW) can account it.
    fn read_common(
        &self,
        snap: Option<SnapId>,
        offset: u64,
        buf: &mut [u8],
    ) -> Result<(Plan, u64, u64)> {
        self.check_bounds(offset, buf.len() as u64)?;
        if buf.is_empty() {
            return Ok((Plan::Noop, 0, 0));
        }
        let (requests, span) = self.span_requests(snap, offset, buf.len() as u64)?;
        let (results, dispatch) = self.image.cluster().read_batch(snap, requests)?;
        let seq_limit = snap.map(|s| s.0);
        if span.batch.offset == offset && span.batch.len == buf.len() as u64 {
            self.complete_read_span(&span, &results, seq_limit, buf)?;
        } else {
            // Unaligned request: decrypt the aligned span, then slice.
            // (`check_sector_multiple` guarantees the span cannot
            // round past the image end.)
            let mut aligned = vec![0u8; span.batch.len as usize];
            self.complete_read_span(&span, &results, seq_limit, &mut aligned)?;
            let start = (offset - span.batch.offset) as usize;
            buf.copy_from_slice(&aligned[start..start + buf.len()]);
        }
        let crypto = self.image.cluster().crypto_plan(span.batch.len);
        Ok((Plan::seq([dispatch, crypto]), span.hits, span.misses))
    }

    /// The asynchronous read primitive behind
    /// [`crate::EncryptedIoQueue`]: maps the request's aligned span,
    /// submits every extent's data (and, on cache misses, metadata)
    /// reads to the shard work queues, and returns the ticket plus the
    /// span plan needed to decrypt — and fill the IV/metadata cache —
    /// at completion ([`EncryptedImage::complete_read_span`]).
    pub(crate) fn submit_read_span(
        &self,
        snap: Option<SnapId>,
        offset: u64,
        len: u64,
    ) -> Result<(ReadTicket, ReadSpan)> {
        let (requests, span) = self.span_requests(snap, offset, len)?;
        Ok((self.image.cluster().submit_read_batch(snap, requests), span))
    }

    /// Maps a read's sector-aligned span onto its per-object requests
    /// and span plan. This is where the IV/metadata cache is
    /// consulted: a head-read extent whose sectors are all resident
    /// skips its metadata op entirely — the round-trip saving the
    /// cache exists for — while a miss captures the extent's shard
    /// write-submission epoch so the fetched entries can be filled at
    /// reap time if (and only if) no overwrite or snapshot was
    /// submitted in between. Snapshot reads bypass the cache in both
    /// directions: entries describe the head, not the snapshot.
    fn span_requests(
        &self,
        snap: Option<SnapId>,
        offset: u64,
        len: u64,
    ) -> Result<(Vec<ObjectReads>, ReadSpan)> {
        self.check_bounds(offset, len)?;
        // Capture the epoch map governing the data this read will
        // fetch: per-shard FIFO orders the fetch after every write
        // submitted before now and before any submitted later, so the
        // submit-time map (head, or the snapshot's frozen map) is
        // exactly right at reap — however far the rekey watermark has
        // moved in between.
        let epochs = match snap {
            None => self.head_epoch_map(),
            Some(snap) => self.snap_epoch_map(snap),
        };
        if len == 0 {
            // Match the synchronous path's no-op: no sector is fetched
            // or decrypted, and the op charges nothing.
            return Ok((
                Vec::new(),
                ReadSpan {
                    batch: IoBatch {
                        offset,
                        len: 0,
                        extents: Vec::new(),
                    },
                    meta: Vec::new(),
                    generation: 0,
                    epochs,
                    hits: 0,
                    misses: 0,
                },
            ));
        }
        let ss = self.geometry.sector_size;
        let first_sector = offset / ss;
        let end_sector = (offset + len).div_ceil(ss);
        let batch = IoBatch::plan(
            self.image.striper(),
            &self.geometry,
            first_sector * ss,
            (end_sector - first_sector) * ss,
        );
        let layout = self.config().layout;
        let cacheable = snap.is_none() && self.meta_cache.enabled();
        let mut meta = Vec::with_capacity(batch.extents.len());
        let mut hits = 0;
        let mut misses = 0;
        let requests: Vec<ObjectReads> = batch
            .extents
            .iter()
            .map(|extent| {
                let object = self.image.object_name(extent.object_no);
                let separate_meta =
                    matches!(layout, Some(MetaLayout::ObjectEnd | MetaLayout::Omap));
                let (ops, source) = if !separate_meta {
                    (
                        self.extent_read_ops(layout, extent, false),
                        ExtentMeta::Inline,
                    )
                } else if let Some(packed) = cacheable
                    .then(|| {
                        self.meta_cache
                            .lookup_extent(extent.base_lba, extent.sector_count)
                    })
                    .flatten()
                {
                    hits += extent.sector_count;
                    (
                        self.extent_read_ops(layout, extent, true),
                        ExtentMeta::Cached(packed),
                    )
                } else {
                    let fill = cacheable.then(|| {
                        let shard = self.image.cluster().placement_shard(&object);
                        (shard, self.image.cluster().shard_write_seq(shard))
                    });
                    if cacheable {
                        misses += extent.sector_count;
                    }
                    (
                        self.extent_read_ops(layout, extent, false),
                        ExtentMeta::Fetched { fill },
                    )
                };
                meta.push(source);
                ObjectReads::new(object, ops)
            })
            .collect();
        self.image.cluster().record_meta_cache(hits, misses, 0);
        Ok((
            requests,
            ReadSpan {
                batch,
                meta,
                generation: self.meta_cache.generation(),
                epochs,
                hits,
                misses,
            },
        ))
    }

    /// Decrypts one completed span submission into `out` (which must
    /// cover exactly the span's bytes): each extent in place in its
    /// slice of the destination, sparse holes (objects absent, or born
    /// after the snapshot) zero-filled. Extents that fetched their
    /// metadata fill the IV/metadata cache here — at reap time — after
    /// a successful decrypt, provided their shard's write-submission
    /// epoch (captured at submit) and the cache generation are both
    /// unchanged: per-shard FIFO then guarantees no overwrite or
    /// snapshot was even submitted inside the submit→reap window.
    pub(crate) fn complete_read_span(
        &self,
        span: &ReadSpan,
        results: &[Option<Vec<ReadResult>>],
        seq_limit: Option<u64>,
        out: &mut [u8],
    ) -> Result<()> {
        for (idx, result) in results.iter().enumerate() {
            let extent = &span.batch.extents[idx];
            let dest = &mut out[extent.buf_start..extent.buf_end];
            self.decrypt_extent_into(span, idx, result, seq_limit, dest)?;
        }
        Ok(())
    }

    /// Decrypts one extent of a read span into `dest` (the extent's
    /// slice of the span buffer) — the per-extent unit behind
    /// [`EncryptedImage::complete_read_span`], also driven
    /// incrementally by the encrypted IO queue as each shard's data
    /// lands. Carries the extent's reap-time cache fill.
    pub(crate) fn decrypt_extent_into(
        &self,
        span: &ReadSpan,
        idx: usize,
        result: &Option<Vec<ReadResult>>,
        seq_limit: Option<u64>,
        dest: &mut [u8],
    ) -> Result<()> {
        let layout = self.config().layout;
        let extent = &span.batch.extents[idx];
        let source = &span.meta[idx];
        let Some(results) = result else {
            dest.fill(0);
            return Ok(());
        };
        let base_lba = extent.base_lba;
        match source {
            ExtentMeta::Inline => match layout {
                None => {
                    dest.copy_from_slice(results[0].as_data());
                    self.chain
                        .decrypt_sectors(base_lba, seq_limit, dest, &[], span.epochs)?;
                }
                Some(MetaLayout::Unaligned) => {
                    let metas = self
                        .geometry
                        .deinterleave_unaligned_run(results[0].as_data(), dest);
                    self.chain
                        .decrypt_sectors(base_lba, seq_limit, dest, &metas, span.epochs)?;
                }
                Some(MetaLayout::ObjectEnd | MetaLayout::Omap) => {
                    unreachable!("separate-metadata layouts are never planned as inline")
                }
            },
            ExtentMeta::Cached(packed) => {
                dest.copy_from_slice(results[0].as_data());
                self.chain
                    .decrypt_sectors(base_lba, seq_limit, dest, packed, span.epochs)?;
            }
            ExtentMeta::Fetched { fill } => {
                dest.copy_from_slice(results[0].as_data());
                let packed: Cow<'_, [u8]> = match layout {
                    Some(MetaLayout::ObjectEnd) => Cow::Borrowed(results[1].as_data()),
                    Some(MetaLayout::Omap) => Cow::Owned(self.pack_omap_metas(extent, results)?),
                    None | Some(MetaLayout::Unaligned) => {
                        unreachable!("inline layouts are never planned as fetched")
                    }
                };
                self.chain
                    .decrypt_sectors(base_lba, seq_limit, dest, &packed, span.epochs)?;
                if let Some((shard, epoch)) = fill {
                    if self.image.cluster().shard_write_seq(*shard) == *epoch {
                        self.meta_cache.fill(base_lba, &packed, span.generation);
                    }
                }
            }
        }
        Ok(())
    }

    /// The read operations fetching one extent's ciphertext and
    /// (unless served from the cache) its metadata.
    fn extent_read_ops(
        &self,
        layout: Option<MetaLayout>,
        extent: &SectorExtent,
        meta_cached: bool,
    ) -> Vec<ReadOp> {
        let first = extent.first_sector;
        let count = extent.sector_count;
        let (off, len) = self.geometry.data_extent(layout, first, count);
        let data_op = ReadOp::Read { offset: off, len };
        if meta_cached {
            // The saved round trip: ciphertext only, no metadata op.
            return vec![data_op];
        }
        match layout {
            // Baseline has no metadata; unaligned carries it inside
            // the data extent.
            None | Some(MetaLayout::Unaligned) => vec![data_op],
            Some(MetaLayout::ObjectEnd) => {
                let (meta_off, meta_len) = self
                    .geometry
                    .meta_extent(layout, first, count)
                    .expect("object-end has a meta extent");
                vec![
                    data_op,
                    ReadOp::Read {
                        offset: meta_off,
                        len: meta_len,
                    },
                ]
            }
            Some(MetaLayout::Omap) => vec![
                data_op,
                ReadOp::OmapGetRange {
                    start: Geometry::omap_key(first),
                    end: Geometry::omap_key(first + count),
                },
            ],
        }
    }

    /// Packs one extent's fetched OMAP entries into a contiguous run
    /// in sector order; absent keys stay all-zero, which the codec
    /// reads as "never written" and zero-fills.
    fn pack_omap_metas(&self, extent: &SectorExtent, results: &[ReadResult]) -> Result<Vec<u8>> {
        let me = self.geometry.meta_entry as usize;
        let first = extent.first_sector;
        let count = extent.sector_count as usize;
        let mut metas = vec![0u8; count * me];
        for (key, value) in results[1].as_omap() {
            let Some(sector) = Geometry::sector_from_omap_key(key) else {
                continue;
            };
            if sector < first || sector >= first + count as u64 {
                continue;
            }
            if value.len() != me {
                return Err(CryptError::HeaderCorrupt(format!(
                    "metadata entry is {} bytes, expected {me}",
                    value.len()
                )));
            }
            let idx = (sector - first) as usize;
            metas[idx * me..(idx + 1) * me].copy_from_slice(value);
        }
        Ok(metas)
    }

    /// The adversary's view of one sector: raw ciphertext and raw
    /// metadata entry, **without** decryption. Used by the audit
    /// tooling and the security examples.
    ///
    /// # Errors
    ///
    /// Returns [`CryptError::Rbd`] if the sector's object is absent.
    pub fn observe_sector(&self, lba: u64, snap: Option<SnapId>) -> Result<SectorObservation> {
        let spo = self.geometry.sectors_per_object;
        let object_no = lba / spo;
        let k = lba % spo;
        let object = self.image.object_name(object_no);
        let layout = self.config().layout;

        let mut ops: Vec<ReadOp> = Vec::new();
        match layout {
            None | Some(MetaLayout::ObjectEnd) | Some(MetaLayout::Omap) => {
                let (off, len) = self.geometry.data_extent(layout, k, 1);
                ops.push(ReadOp::Read { offset: off, len });
            }
            Some(MetaLayout::Unaligned) => {
                let (off, len) = self.geometry.data_extent(layout, k, 1);
                ops.push(ReadOp::Read { offset: off, len });
            }
        }
        match layout {
            Some(MetaLayout::ObjectEnd) => {
                let (off, len) = self
                    .geometry
                    .meta_extent(layout, k, 1)
                    .expect("object-end meta extent");
                ops.push(ReadOp::Read { offset: off, len });
            }
            Some(MetaLayout::Omap) => {
                ops.push(ReadOp::OmapGetKeys(vec![Geometry::omap_key(k)]));
            }
            _ => {}
        }

        let (results, _) = self.image.cluster().read(&object, snap, &ops)?;
        let ss = self.geometry.sector_size as usize;
        let (ciphertext, meta) = match layout {
            None => (results[0].as_data().to_vec(), None),
            Some(MetaLayout::Unaligned) => {
                let raw = results[0].as_data();
                (raw[..ss].to_vec(), Some(raw[ss..].to_vec()))
            }
            Some(MetaLayout::ObjectEnd) => (
                results[0].as_data().to_vec(),
                Some(results[1].as_data().to_vec()),
            ),
            Some(MetaLayout::Omap) => {
                let entries = results[1].as_omap();
                let meta = entries.first().map(|(_, v)| v.clone());
                (results[0].as_data().to_vec(), meta)
            }
        };
        Ok(SectorObservation {
            lba,
            ciphertext,
            meta,
        })
    }
}

impl Drop for EncryptedImage {
    fn drop(&mut self) {
        // Defense in depth: the master keys (SecretBytes) wipe
        // themselves, and the header's wrapped blobs are zeroized too
        // so no passphrase-derivable material lingers on the heap.
        self.header.shred();
    }
}

/// Wire form of an [`EpochMap`] (the `snapepoch.*` OMAP values):
/// `current u32 ‖ pending flag u8 ‖ from u32 ‖ watermark u64`, LE.
fn encode_epoch_map(map: EpochMap) -> Vec<u8> {
    let mut out = Vec::with_capacity(17);
    out.extend_from_slice(&map.current.to_le_bytes());
    match map.pending {
        None => out.extend_from_slice(&[0u8; 13]),
        Some((from, watermark)) => {
            out.push(1);
            out.extend_from_slice(&from.to_le_bytes());
            out.extend_from_slice(&watermark.to_le_bytes());
        }
    }
    out
}

fn decode_epoch_map(bytes: &[u8]) -> Option<EpochMap> {
    if bytes.len() != 17 {
        return None;
    }
    let current = u32::from_le_bytes(bytes[..4].try_into().ok()?);
    let pending = match bytes[4] {
        0 => None,
        _ => Some((
            u32::from_le_bytes(bytes[5..9].try_into().ok()?),
            u64::from_le_bytes(bytes[9..17].try_into().ok()?),
        )),
    };
    Some(EpochMap { current, pending })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdisk_crypto::rng::SeededIvSource;
    use vdisk_rados::{Cluster, TxOp};

    fn zc_disk(config: &EncryptionConfig) -> EncryptedImage {
        let cluster = Cluster::builder().build();
        let image = Image::create(&cluster, "zc", 16 << 20).unwrap();
        EncryptedImage::format_with_iv_source(
            image,
            config,
            b"zero-copy",
            Box::new(SeededIvSource::new(7)),
        )
        .unwrap()
    }

    fn write_ptr(tx: &Transaction, op_idx: usize) -> *const u8 {
        match &tx.ops[op_idx] {
            TxOp::Write { data, .. } => data.as_slice().as_ptr(),
            other => panic!("expected write op, got {other:?}"),
        }
    }

    /// The acceptance bar for the owned-buffer path: an aligned
    /// `write_owned` produces its ciphertext *in the submitted buffer*
    /// and hands transactions slice views of it — asserted by pointer
    /// identity against the caller's allocation.
    #[test]
    fn aligned_owned_write_is_zero_copy_into_transactions() {
        for config in [
            EncryptionConfig::luks2_baseline(),
            EncryptionConfig::random_iv(MetaLayout::ObjectEnd),
            EncryptionConfig::random_iv(MetaLayout::Omap),
        ] {
            let mut disk = zc_disk(&config);
            let data = vec![0x42u8; 64 << 10];
            let base = data.as_ptr();
            let (txs, len, _, _) = disk.encrypt_batch(0, data).unwrap();
            assert_eq!(len, 64 << 10);
            assert_eq!(txs.len(), 1, "single object");
            assert_eq!(
                write_ptr(&txs[0], 0),
                base,
                "config {config:?}: ciphertext must live in the submitted buffer"
            );
        }
    }

    /// A write spanning objects splits into slice views of ONE shared
    /// allocation — no per-extent copies — and the object-end layout's
    /// metadata extents are slice views of one packed metadata run.
    #[test]
    fn spanning_owned_write_shares_one_allocation() {
        let config = EncryptionConfig::random_iv(MetaLayout::ObjectEnd);
        let mut disk = zc_disk(&config);
        let object = disk.image().object_size();
        let me = disk.geometry().meta_entry as usize;
        let offset = object - 8192;
        let data = vec![0x5Au8; 16384];
        let base = data.as_ptr();
        let (txs, _, _, _) = disk.encrypt_batch(offset, data).unwrap();
        assert_eq!(txs.len(), 2, "write spans two objects");

        // Data slices: extent 0 at the buffer head, extent 1 exactly
        // 8192 bytes in — same allocation, no copies.
        assert_eq!(write_ptr(&txs[0], 0), base);
        assert_eq!(write_ptr(&txs[1], 0), base.wrapping_add(8192));

        // Metadata slices: one packed run, extent 1's entries directly
        // after extent 0's (2 sectors × entry length).
        let meta0 = write_ptr(&txs[0], 1);
        let meta1 = write_ptr(&txs[1], 1);
        assert_eq!(meta1, meta0.wrapping_add(2 * me));
    }

    /// A write fills the cache with the entries it just persisted
    /// (write-through), so even the **first** read of freshly written
    /// sectors skips the metadata op and costs strictly less than on
    /// an uncached twin — the paper's "metadata round trip" measurably
    /// gone from the Plan without ever paying a cold miss.
    #[test]
    fn write_through_fills_make_first_reads_hit_and_drop_the_meta_round_trip() {
        for config in [
            EncryptionConfig::random_iv(MetaLayout::ObjectEnd),
            EncryptionConfig::random_iv(MetaLayout::Omap),
        ] {
            let mut disk = zc_disk(&config);
            disk.write(0, &vec![0x5Au8; 64 << 10]).unwrap();
            let stats = disk.image().cluster().exec_stats();
            assert_eq!(
                stats.meta_cache_write_fills, 16,
                "{config:?}: the write installs its own entries"
            );
            assert_eq!(
                disk.meta_cache_resident_sectors(),
                16,
                "{config:?}: resident before any read"
            );

            let mut buf = vec![0u8; 64 << 10];
            let warm = disk.read(0, &mut buf).unwrap();
            assert_eq!(buf, vec![0x5Au8; 64 << 10]);
            let stats = disk.image().cluster().exec_stats();
            assert_eq!(
                stats.meta_cache_hits, 16,
                "{config:?}: the first read hits write-filled entries"
            );
            assert_eq!(stats.meta_cache_misses, 0, "{config:?}: no miss was paid");

            // The round trip really is gone: the uncached twin's read
            // issues more ops and moves more bytes.
            let cluster = Cluster::builder().meta_cache_bytes(0).build();
            let image = Image::create(&cluster, "zc-off", 16 << 20).unwrap();
            let mut uncached = EncryptedImage::format_with_iv_source(
                image,
                &config,
                b"zero-copy",
                Box::new(SeededIvSource::new(7)),
            )
            .unwrap();
            uncached.write(0, &vec![0x5Au8; 64 << 10]).unwrap();
            let cold = uncached.read(0, &mut buf).unwrap();
            assert!(
                warm.op_count() < cold.op_count(),
                "{config:?}: cache hit must drop ops ({} -> {})",
                cold.op_count(),
                warm.op_count()
            );
            assert!(warm.total_op_bytes() < cold.total_op_bytes(), "{config:?}");
        }
    }

    #[test]
    fn overwrites_invalidate_exactly_the_cached_sectors_they_touch() {
        let config = EncryptionConfig::random_iv(MetaLayout::ObjectEnd);
        let mut disk = zc_disk(&config);
        disk.write(0, &vec![1u8; 32 << 10]).unwrap(); // write-fills 8 sectors
        assert_eq!(disk.meta_cache_resident_sectors(), 8);
        let mut buf = vec![0u8; 32 << 10];
        disk.read(0, &mut buf).unwrap(); // pure hits

        // Overwrite sectors 5..9: 3 of them resident (plus sector 8,
        // absent) — invalidated at submit, then write-through refilled
        // with the fresh entries at completion.
        disk.write(5 * 4096, &vec![2u8; 4 * 4096]).unwrap();
        let stats = disk.image().cluster().exec_stats();
        assert_eq!(
            stats.meta_cache_invalidations, 3,
            "every overwritten cached sector is accounted, absent ones are not"
        );
        assert_eq!(
            disk.meta_cache_resident_sectors(),
            9,
            "8 original - 3 invalidated + 4 write-through refills"
        );

        // The next read decrypts the fresh entries correctly.
        disk.read(0, &mut buf).unwrap();
        assert_eq!(&buf[..5 * 4096], &vec![1u8; 5 * 4096][..]);
        assert_eq!(&buf[5 * 4096..], &vec![2u8; 3 * 4096][..]);
    }

    #[test]
    fn snapshots_wipe_the_cache_and_snapshot_reads_bypass_it() {
        let config = EncryptionConfig::random_iv(MetaLayout::ObjectEnd);
        let mut disk = zc_disk(&config);
        disk.write(0, &vec![7u8; 16 << 10]).unwrap();
        let mut buf = vec![0u8; 16 << 10];
        disk.read(0, &mut buf).unwrap();
        assert_eq!(disk.meta_cache_resident_sectors(), 4);

        let snap = disk.snap_create("s1").unwrap();
        assert_eq!(disk.meta_cache_resident_sectors(), 0, "snapshot wipes");
        assert_eq!(
            disk.image().cluster().exec_stats().meta_cache_invalidations,
            4
        );

        disk.write(0, &vec![8u8; 16 << 10]).unwrap();
        disk.read(0, &mut buf).unwrap(); // refill from the new head
        let hits_before = disk.image().cluster().exec_stats().meta_cache_hits;
        disk.read_at_snap(snap, 0, &mut buf).unwrap();
        assert_eq!(buf, vec![7u8; 16 << 10], "snapshot content preserved");
        assert_eq!(
            disk.image().cluster().exec_stats().meta_cache_hits,
            hits_before,
            "snapshot reads must not consult head-state cache entries"
        );
    }

    #[test]
    fn disabled_or_inline_layouts_never_cache() {
        // Layouts with no separate metadata round trip: cache is off.
        for config in [
            EncryptionConfig::luks2_baseline(),
            EncryptionConfig::random_iv(MetaLayout::Unaligned),
        ] {
            let mut disk = zc_disk(&config);
            assert_eq!(disk.meta_cache_capacity_sectors(), 0, "{config:?}");
            disk.write(0, &vec![1u8; 8192]).unwrap();
            let mut buf = vec![0u8; 8192];
            disk.read(0, &mut buf).unwrap();
            disk.read(0, &mut buf).unwrap();
            let stats = disk.image().cluster().exec_stats();
            assert_eq!(stats.meta_cache_hits + stats.meta_cache_misses, 0);
        }
        // Explicitly disabled via the builder knob.
        let cluster = Cluster::builder().meta_cache_bytes(0).build();
        let image = Image::create(&cluster, "nocache", 16 << 20).unwrap();
        let mut disk = EncryptedImage::format_with_iv_source(
            image,
            &EncryptionConfig::random_iv(MetaLayout::ObjectEnd),
            b"zero-copy",
            Box::new(SeededIvSource::new(7)),
        )
        .unwrap();
        assert_eq!(disk.meta_cache_capacity_sectors(), 0);
        disk.write(0, &vec![1u8; 8192]).unwrap();
        let mut buf = vec![0u8; 8192];
        disk.read(0, &mut buf).unwrap();
        disk.read(0, &mut buf).unwrap();
        let stats = cluster.exec_stats();
        assert_eq!(stats.meta_cache_hits + stats.meta_cache_misses, 0);
    }

    #[test]
    fn owned_and_borrowing_writes_store_identical_bytes() {
        let config = EncryptionConfig::random_iv(MetaLayout::ObjectEnd);
        let mut a = zc_disk(&config);
        let mut b = zc_disk(&config);
        let payload: Vec<u8> = (0..32768u32).map(|i| (i % 253) as u8).collect();
        // Unaligned on purpose: both paths share the RMW logic.
        a.write(4000, &payload).unwrap();
        b.write_owned(4000, payload.clone()).unwrap();
        let mut ra = vec![0u8; payload.len()];
        let mut rb = vec![0u8; payload.len()];
        a.read(4000, &mut ra).unwrap();
        b.read(4000, &mut rb).unwrap();
        assert_eq!(ra, payload);
        assert_eq!(ra, rb);
    }
}
