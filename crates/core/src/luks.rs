//! A LUKS2-style encryption header: passphrase keyslots wrapping a
//! master key, stored as a cluster object next to the image.
//!
//! RBD client-side encryption "follows the LUKS standard" (§2.4); this
//! is a simplified but faithful analog:
//!
//! - a 64-byte master key, generated once at format time;
//! - up to 8 keyslots, each holding the master key XOR-wrapped under a
//!   PBKDF2-HMAC-SHA256 stream derived from a passphrase and per-slot
//!   salt (real LUKS2 uses argon2id + AF-splitting; PBKDF2 is its
//!   supported fallback and needs no new primitives);
//! - a keyed master-key digest so unlocking can verify a candidate;
//! - the [`EncryptionConfig`] serialized
//!   alongside, so `open()` needs only the passphrase.

use crate::config::{Cipher, EncryptionConfig, MetaLayout};
use crate::{CryptError, Result};
use vdisk_crypto::kdf::{hkdf_expand, pbkdf2_hmac_sha256};
use vdisk_crypto::mem::{ct_eq, SecretBytes};
use vdisk_crypto::rng::IvSource;

/// Header magic ("VLUKS2" + version byte + NUL).
pub const MAGIC: [u8; 8] = *b"VLUKS2\x01\x00";
/// Number of keyslots, as in LUKS.
pub const KEYSLOTS: usize = 8;
/// Master key length: 64 bytes covers AES-256-XTS's two keys.
pub const MASTER_KEY_LEN: usize = 64;
/// PBKDF2 iteration count for new keyslots. Real deployments measure
/// the host; tests override through
/// [`LuksHeader::add_keyslot_with_iterations`].
pub const DEFAULT_ITERATIONS: u32 = 2000;

const SLOT_SIZE: usize = 1 + 4 + 32 + MASTER_KEY_LEN;
const HEADER_FIXED: usize = 8 + 1 + 1 + 1 + 4 + 32 + 16;

/// One passphrase keyslot.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Keyslot {
    active: bool,
    iterations: u32,
    salt: [u8; 32],
    wrapped: [u8; MASTER_KEY_LEN],
}

impl Keyslot {
    fn empty() -> Self {
        Keyslot {
            active: false,
            iterations: 0,
            salt: [0; 32],
            wrapped: [0; MASTER_KEY_LEN],
        }
    }
}

/// The parsed encryption header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LuksHeader {
    config: EncryptionConfig,
    digest_salt: [u8; 16],
    mk_digest: [u8; 32],
    slots: Vec<Keyslot>,
}

fn wrap_stream(passphrase: &[u8], salt: &[u8], iterations: u32) -> SecretBytes {
    let kek = pbkdf2_hmac_sha256(passphrase, salt, iterations, 32);
    hkdf_expand(kek.expose(), b"vdisk-luks-wrap", MASTER_KEY_LEN)
}

fn digest_of(master: &[u8], digest_salt: &[u8; 16]) -> [u8; 32] {
    vdisk_crypto::hmac::hmac_sha256(digest_salt, master)
}

impl LuksHeader {
    /// Creates a header for a fresh master key, with the passphrase in
    /// keyslot 0.
    ///
    /// # Errors
    ///
    /// Returns [`CryptError::UnsupportedConfig`] if `config` fails
    /// validation.
    pub fn format(
        config: &EncryptionConfig,
        passphrase: &[u8],
        iv_source: &mut dyn IvSource,
    ) -> Result<(LuksHeader, SecretBytes)> {
        config.validate()?;
        let mut master = SecretBytes::zeroed(MASTER_KEY_LEN);
        iv_source.fill(master.expose_mut());
        let mut digest_salt = [0u8; 16];
        iv_source.fill(&mut digest_salt);
        let mut header = LuksHeader {
            config: config.clone(),
            digest_salt,
            mk_digest: digest_of(master.expose(), &digest_salt),
            slots: (0..KEYSLOTS).map(|_| Keyslot::empty()).collect(),
        };
        header.add_keyslot_with_iterations(passphrase, &master, DEFAULT_ITERATIONS, iv_source)?;
        Ok((header, master))
    }

    /// The configuration carried by this header.
    #[must_use]
    pub fn config(&self) -> &EncryptionConfig {
        &self.config
    }

    /// Number of active keyslots.
    #[must_use]
    pub fn active_keyslots(&self) -> usize {
        self.slots.iter().filter(|s| s.active).count()
    }

    /// Adds a passphrase to the first free keyslot; returns its index.
    ///
    /// # Errors
    ///
    /// Returns [`CryptError::NoFreeKeyslot`] when all 8 are taken.
    pub fn add_keyslot(
        &mut self,
        passphrase: &[u8],
        master: &SecretBytes,
        iv_source: &mut dyn IvSource,
    ) -> Result<usize> {
        self.add_keyslot_with_iterations(passphrase, master, DEFAULT_ITERATIONS, iv_source)
    }

    /// Adds a passphrase with an explicit PBKDF2 cost.
    ///
    /// # Errors
    ///
    /// Returns [`CryptError::NoFreeKeyslot`] when all 8 are taken.
    pub fn add_keyslot_with_iterations(
        &mut self,
        passphrase: &[u8],
        master: &SecretBytes,
        iterations: u32,
        iv_source: &mut dyn IvSource,
    ) -> Result<usize> {
        let idx = self
            .slots
            .iter()
            .position(|s| !s.active)
            .ok_or(CryptError::NoFreeKeyslot)?;
        let mut salt = [0u8; 32];
        iv_source.fill(&mut salt);
        let stream = wrap_stream(passphrase, &salt, iterations);
        let mut wrapped = [0u8; MASTER_KEY_LEN];
        for (i, w) in wrapped.iter_mut().enumerate() {
            *w = master.expose()[i] ^ stream.expose()[i];
        }
        self.slots[idx] = Keyslot {
            active: true,
            iterations,
            salt,
            wrapped,
        };
        Ok(idx)
    }

    /// Deactivates a keyslot (revoking its passphrase).
    ///
    /// # Errors
    ///
    /// Returns [`CryptError::UnsupportedConfig`] for an out-of-range
    /// index.
    pub fn remove_keyslot(&mut self, index: usize) -> Result<()> {
        let slot = self
            .slots
            .get_mut(index)
            .ok_or_else(|| CryptError::UnsupportedConfig(format!("keyslot {index}")))?;
        *slot = Keyslot::empty();
        Ok(())
    }

    /// Tries the passphrase against every active keyslot.
    ///
    /// # Errors
    ///
    /// Returns [`CryptError::WrongPassphrase`] if none unlocks.
    pub fn unlock(&self, passphrase: &[u8]) -> Result<SecretBytes> {
        for slot in self.slots.iter().filter(|s| s.active) {
            let stream = wrap_stream(passphrase, &slot.salt, slot.iterations);
            let mut candidate = SecretBytes::zeroed(MASTER_KEY_LEN);
            for (i, c) in candidate.expose_mut().iter_mut().enumerate() {
                *c = slot.wrapped[i] ^ stream.expose()[i];
            }
            let digest = digest_of(candidate.expose(), &self.digest_salt);
            if ct_eq(&digest, &self.mk_digest) {
                return Ok(candidate);
            }
        }
        Err(CryptError::WrongPassphrase)
    }

    /// Serializes the header to its on-disk byte form.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_FIXED + KEYSLOTS * SLOT_SIZE);
        out.extend_from_slice(&MAGIC);
        out.push(self.config.cipher.to_wire());
        out.push(self.config.layout.map_or(0, MetaLayout::to_wire));
        let mut flags = 0u8;
        if self.config.random_iv {
            flags |= 1;
        }
        if self.config.mac {
            flags |= 2;
        }
        if self.config.snapshot_binding {
            flags |= 4;
        }
        out.push(flags);
        out.extend_from_slice(&self.config.sector_size.to_le_bytes());
        out.extend_from_slice(&self.mk_digest);
        out.extend_from_slice(&self.digest_salt);
        for slot in &self.slots {
            out.push(u8::from(slot.active));
            out.extend_from_slice(&slot.iterations.to_le_bytes());
            out.extend_from_slice(&slot.salt);
            out.extend_from_slice(&slot.wrapped);
        }
        out
    }

    /// Parses a header from disk.
    ///
    /// # Errors
    ///
    /// Returns [`CryptError::HeaderCorrupt`] on truncation, bad magic,
    /// or unknown field values.
    pub fn decode(bytes: &[u8]) -> Result<LuksHeader> {
        let corrupt = |why: &str| CryptError::HeaderCorrupt(why.to_string());
        if bytes.len() < HEADER_FIXED + KEYSLOTS * SLOT_SIZE {
            return Err(corrupt("truncated"));
        }
        if bytes[..8] != MAGIC {
            return Err(corrupt("bad magic"));
        }
        let cipher = Cipher::from_wire(bytes[8]).ok_or_else(|| corrupt("unknown cipher"))?;
        let layout = MetaLayout::from_wire(bytes[9]).ok_or_else(|| corrupt("unknown layout"))?;
        let flags = bytes[10];
        let sector_size = u32::from_le_bytes(bytes[11..15].try_into().expect("4 bytes"));
        let mut mk_digest = [0u8; 32];
        mk_digest.copy_from_slice(&bytes[15..47]);
        let mut digest_salt = [0u8; 16];
        digest_salt.copy_from_slice(&bytes[47..63]);

        let config = EncryptionConfig {
            cipher,
            layout,
            random_iv: flags & 1 != 0,
            mac: flags & 2 != 0,
            snapshot_binding: flags & 4 != 0,
            sector_size,
        };
        config
            .validate()
            .map_err(|e| CryptError::HeaderCorrupt(format!("invalid config: {e}")))?;

        let mut slots = Vec::with_capacity(KEYSLOTS);
        let mut cursor = HEADER_FIXED;
        for _ in 0..KEYSLOTS {
            let active = match bytes[cursor] {
                0 => false,
                1 => true,
                _ => return Err(corrupt("bad keyslot flag")),
            };
            let iterations =
                u32::from_le_bytes(bytes[cursor + 1..cursor + 5].try_into().expect("4 bytes"));
            let mut salt = [0u8; 32];
            salt.copy_from_slice(&bytes[cursor + 5..cursor + 37]);
            let mut wrapped = [0u8; MASTER_KEY_LEN];
            wrapped.copy_from_slice(&bytes[cursor + 37..cursor + 37 + MASTER_KEY_LEN]);
            slots.push(Keyslot {
                active,
                iterations,
                salt,
                wrapped,
            });
            cursor += SLOT_SIZE;
        }
        Ok(LuksHeader {
            config,
            digest_salt,
            mk_digest,
            slots,
        })
    }
}

/// Derives the per-purpose subkeys the IO path needs from the master
/// key (HKDF-SHA256 with distinct info strings, so no two uses share
/// key material).
#[derive(Debug)]
pub struct DerivedKeys {
    /// XTS data key (32 or 64 bytes depending on the cipher).
    pub xts: SecretBytes,
    /// GCM key (32 bytes).
    pub gcm: SecretBytes,
    /// EME2 key (32 bytes).
    pub eme2: SecretBytes,
    /// CBC-ESSIV key (32 bytes).
    pub cbc: SecretBytes,
    /// Per-sector MAC key (32 bytes).
    pub mac: SecretBytes,
}

impl DerivedKeys {
    /// Derives all subkeys.
    #[must_use]
    pub fn derive(master: &SecretBytes, cipher: Cipher) -> DerivedKeys {
        let expand = |info: &[u8], len: usize| -> SecretBytes {
            let prk = vdisk_crypto::kdf::hkdf_extract(b"vdisk-subkeys", master.expose());
            hkdf_expand(&prk, info, len)
        };
        let xts_len = match cipher {
            Cipher::Aes128Xts => 32,
            _ => 64,
        };
        DerivedKeys {
            xts: expand(b"xts-data", xts_len),
            gcm: expand(b"gcm-data", 32),
            eme2: expand(b"eme2-data", 32),
            cbc: expand(b"cbc-data", 32),
            mac: expand(b"sector-mac", 32),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdisk_crypto::rng::SeededIvSource;

    fn format_default() -> (LuksHeader, SecretBytes) {
        let mut rng = SeededIvSource::new(7);
        LuksHeader::format(
            &EncryptionConfig::random_iv_object_end(),
            b"correct horse",
            &mut rng,
        )
        .unwrap()
    }

    #[test]
    fn format_unlock_round_trip() {
        let (header, master) = format_default();
        let unlocked = header.unlock(b"correct horse").unwrap();
        assert_eq!(unlocked.expose(), master.expose());
        assert!(matches!(
            header.unlock(b"battery staple"),
            Err(CryptError::WrongPassphrase)
        ));
    }

    #[test]
    fn encode_decode_round_trip() {
        let (header, _master) = format_default();
        let bytes = header.encode();
        let decoded = LuksHeader::decode(&bytes).unwrap();
        assert_eq!(decoded, header);
        assert_eq!(decoded.config(), header.config());
    }

    #[test]
    fn decode_rejects_corruption() {
        let (header, _) = format_default();
        let bytes = header.encode();

        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xFF;
        assert!(matches!(
            LuksHeader::decode(&bad_magic),
            Err(CryptError::HeaderCorrupt(_))
        ));

        assert!(matches!(
            LuksHeader::decode(&bytes[..bytes.len() - 1]),
            Err(CryptError::HeaderCorrupt(_))
        ));

        let mut bad_cipher = bytes.clone();
        bad_cipher[8] = 0xEE;
        assert!(LuksHeader::decode(&bad_cipher).is_err());
    }

    #[test]
    fn tampered_wrapped_key_fails_digest() {
        let (header, _) = format_default();
        let mut bytes = header.encode();
        // Flip a byte inside keyslot 0's wrapped key region.
        let offset = HEADER_FIXED + 1 + 4 + 32 + 5;
        bytes[offset] ^= 0x01;
        let tampered = LuksHeader::decode(&bytes).unwrap();
        assert!(matches!(
            tampered.unlock(b"correct horse"),
            Err(CryptError::WrongPassphrase)
        ));
    }

    #[test]
    fn multiple_keyslots() {
        let (mut header, master) = format_default();
        let mut rng = SeededIvSource::new(8);
        let idx = header
            .add_keyslot_with_iterations(b"second pass", &master, 100, &mut rng)
            .unwrap();
        assert_eq!(idx, 1);
        assert_eq!(header.active_keyslots(), 2);
        assert_eq!(
            header.unlock(b"second pass").unwrap().expose(),
            master.expose()
        );
        header.remove_keyslot(0).unwrap();
        assert!(header.unlock(b"correct horse").is_err());
        assert!(header.unlock(b"second pass").is_ok());
    }

    #[test]
    fn keyslots_exhaust() {
        let (mut header, master) = format_default();
        let mut rng = SeededIvSource::new(9);
        for _ in 1..KEYSLOTS {
            header
                .add_keyslot_with_iterations(b"p", &master, 10, &mut rng)
                .unwrap();
        }
        assert!(matches!(
            header.add_keyslot_with_iterations(b"p", &master, 10, &mut rng),
            Err(CryptError::NoFreeKeyslot)
        ));
    }

    #[test]
    fn derived_keys_are_distinct_and_deterministic() {
        let master = SecretBytes::from(vec![0x42; MASTER_KEY_LEN]);
        let a = DerivedKeys::derive(&master, Cipher::Aes256Xts);
        let b = DerivedKeys::derive(&master, Cipher::Aes256Xts);
        assert_eq!(a.xts.expose(), b.xts.expose());
        assert_ne!(a.xts.expose(), a.gcm.expose());
        assert_ne!(a.gcm.expose(), a.mac.expose());
        assert_ne!(a.eme2.expose(), a.cbc.expose());
        assert_eq!(a.xts.len(), 64);
        let c = DerivedKeys::derive(&master, Cipher::Aes128Xts);
        assert_eq!(c.xts.len(), 32);
    }

    #[test]
    fn header_carries_config_faithfully() {
        let mut rng = SeededIvSource::new(10);
        let config = EncryptionConfig::random_iv(MetaLayout::Omap)
            .with_mac()
            .with_snapshot_binding();
        let (header, _) = LuksHeader::format(&config, b"p", &mut rng).unwrap();
        let decoded = LuksHeader::decode(&header.encode()).unwrap();
        assert_eq!(decoded.config(), &config);
        assert_eq!(decoded.config().meta_entry_len(), 40);
    }
}
