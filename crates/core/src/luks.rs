//! A LUKS2-style encryption header with a full key lifecycle:
//! passphrase keyslots, **versioned master keys (key epochs)**, online
//! rekey state, and crypto-shredding.
//!
//! RBD client-side encryption "follows the LUKS standard" (§2.4); this
//! is a simplified but faithful analog, extended the way LUKS2's
//! online reencryption extends the base format:
//!
//! - **Epochs**: each rekey generates a fresh 64-byte master key; the
//!   header carries one digest record per *active* epoch (one
//!   normally, two while a rekey migrates the image) so unlocking can
//!   verify candidates per epoch.
//! - **Keyslots**: up to 8, each binding a passphrase to one epoch's
//!   master key (XOR-wrapped under a PBKDF2-HMAC-SHA256 stream with a
//!   per-slot salt — PBKDF2 is LUKS2's supported fallback KDF and
//!   needs no new primitives).
//! - **Retired chain**: when a rekey completes, the outgoing master
//!   key is not destroyed — snapshots frozen under it must stay
//!   readable — but re-wrapped under its successor
//!   (`master_e XOR HKDF(master_{e+1})`), forming a linear chain the
//!   current passphrase unlocks end to end. Destroying the header
//!   (see [`LuksHeader::shred`]) therefore crypto-shreds every epoch
//!   at once: the paper's secure-deletion story.
//! - **Rekey state**: the `(from, to, watermark)` triple an in-flight
//!   rekey persists, so concurrent opens (and resumed drivers) agree
//!   on which sectors carry which key — per-sector epoch tags cover
//!   the tagged layouts, the watermark covers the baseline.
//! - **Generation counter**: every persisted update bumps it, and the
//!   writer CASes on the previous value (via the store's
//!   `CompareXattr`), so two handles can never interleave
//!   read-modify-write header updates into a torn result.

use crate::config::{Cipher, EncryptionConfig, MetaLayout};
use crate::{CryptError, Result};
use std::fmt;
use vdisk_crypto::kdf::{hkdf_expand, hkdf_extract, pbkdf2_hmac_sha256};
use vdisk_crypto::mem::{ct_eq, xor_in_place, zeroize, SecretBytes};
use vdisk_crypto::rng::IvSource;

/// Header magic ("VLUKS2" + version byte + NUL). Version 2 added key
/// epochs, the retired-key chain, rekey state, and the generation
/// counter.
pub const MAGIC: [u8; 8] = *b"VLUKS2\x02\x00";
/// Number of keyslots, as in LUKS.
pub const KEYSLOTS: usize = 8;
/// Master key length: 64 bytes covers AES-256-XTS's two keys.
pub const MASTER_KEY_LEN: usize = 64;
/// PBKDF2 iteration count for new keyslots. Real deployments measure
/// the host; tests override through
/// [`LuksHeader::add_keyslot_with_iterations`].
pub const DEFAULT_ITERATIONS: u32 = 2000;

const SLOT_SIZE: usize = 1 + 4 + 4 + 32 + MASTER_KEY_LEN;
const EPOCH_SIZE: usize = 4 + 16 + 32;
const RETIRED_SIZE: usize = 4 + MASTER_KEY_LEN;
const FIXED_HEAD: usize = 8 + 1 + 1 + 1 + 4 + 8 + 4 + 1 + 4 + 4 + 8;

/// One passphrase keyslot, wrapping one epoch's master key.
// Clone is load-bearing: header snapshots (rollback on failed rekey
// commits) clone the whole slot table, and the wrap stays wrapped.
// vdisk-lint: allow(secret-derive) reason="Clone copies only KEK-wrapped key material; rollback snapshots depend on it"
#[derive(Clone, PartialEq, Eq)]
struct Keyslot {
    active: bool,
    /// The key epoch this slot's passphrase unlocks.
    epoch: u32,
    iterations: u32,
    salt: [u8; 32],
    wrapped: [u8; MASTER_KEY_LEN],
}

impl fmt::Debug for Keyslot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Keyslot")
            .field("active", &self.active)
            .field("epoch", &self.epoch)
            .field("iterations", &self.iterations)
            .field("salt", &"(32 bytes)")
            .field("wrapped", &format_args!("({MASTER_KEY_LEN} bytes)"))
            .finish()
    }
}

impl Keyslot {
    fn empty() -> Self {
        Keyslot {
            active: false,
            epoch: 0,
            iterations: 0,
            salt: [0; 32],
            wrapped: [0; MASTER_KEY_LEN],
        }
    }
}

/// One active epoch's verification record.
// vdisk-lint: allow(secret-derive) reason="Clone copies a salted one-way digest, not the key; header snapshots need it"
#[derive(Clone, PartialEq, Eq)]
struct EpochRecord {
    epoch: u32,
    digest_salt: [u8; 16],
    mk_digest: [u8; 32],
}

impl fmt::Debug for EpochRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EpochRecord")
            .field("epoch", &self.epoch)
            .field("digest_salt", &"(16 bytes)")
            .field("mk_digest", &"(32 bytes)")
            .finish()
    }
}

/// One retired epoch's master key, wrapped under its successor
/// (epoch `e` is always wrapped under epoch `e + 1`).
// vdisk-lint: allow(secret-derive) reason="Clone copies only chain-wrapped key material; header snapshots need it"
#[derive(Clone, PartialEq, Eq)]
struct RetiredKey {
    epoch: u32,
    wrapped: [u8; MASTER_KEY_LEN],
}

impl fmt::Debug for RetiredKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RetiredKey")
            .field("epoch", &self.epoch)
            .field("wrapped", &format_args!("({MASTER_KEY_LEN} bytes)"))
            .finish()
    }
}

/// The persisted record of a rekey window the driver had in flight
/// when the header was last written: sectors `[start, end)` were being
/// rewritten in `chunk_sectors`-sized chunks. While an intent is
/// present the window's migration state on disk is unknown — some
/// chunks may have been rewritten under the new epoch, some not. Each
/// chunk's rewrite transaction stamps a proof marker on its object
/// atomically, so a restarted driver can interrogate the store chunk
/// by chunk and re-migrate exactly the unproven ones (see
/// `RekeyDriver` in `rekey.rs`). Cleared in the same header update
/// that advances the watermark past `end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowIntent {
    /// First sector of the window (equals the persisted watermark).
    pub start: u64,
    /// One past the window's last sector.
    pub end: u64,
    /// The chunk granularity the window was migrated (and its proof
    /// markers stamped) at.
    pub chunk_sectors: u64,
}

/// The persisted state of an in-flight online rekey.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RekeyState {
    /// The epoch being retired.
    pub from: u32,
    /// The epoch taking over (always `from + 1`).
    pub to: u32,
    /// Sectors `< watermark` have been re-encrypted under `to`;
    /// sectors `>= watermark` still carry `from`. Advanced only by the
    /// rekey driver, strictly monotonically.
    pub watermark: u64,
    /// The window the driver was migrating when the header was last
    /// persisted, if it had one in flight — the crash-recovery record.
    pub intent: Option<WindowIntent>,
}

/// The parsed encryption header.
// Clone backs the copy-modify-persist update pattern and rollback
// snapshots; every secret it copies is wrapped or digested.
// vdisk-lint: allow(secret-derive) reason="Clone is the header update/rollback mechanism; all embedded key material is wrapped"
#[derive(Clone, PartialEq, Eq)]
pub struct LuksHeader {
    config: EncryptionConfig,
    generation: u64,
    current_epoch: u32,
    rekey: Option<RekeyState>,
    epochs: Vec<EpochRecord>,
    retired: Vec<RetiredKey>,
    slots: Vec<Keyslot>,
}

impl fmt::Debug for LuksHeader {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Slot/epoch/retired entries redact their own key fields; the
        // counts alone are what header debugging actually needs.
        f.debug_struct("LuksHeader")
            .field("generation", &self.generation)
            .field("current_epoch", &self.current_epoch)
            .field("rekey", &self.rekey)
            .field("epochs", &self.epochs.len())
            .field("retired", &self.retired.len())
            .field(
                "active_slots",
                &self.slots.iter().filter(|s| s.active).count(),
            )
            .finish()
    }
}

fn wrap_stream(passphrase: &[u8], salt: &[u8], iterations: u32) -> SecretBytes {
    let kek = pbkdf2_hmac_sha256(passphrase, salt, iterations, 32);
    hkdf_expand(kek.expose(), b"vdisk-luks-wrap", MASTER_KEY_LEN)
}

fn digest_of(master: &[u8], digest_salt: &[u8; 16]) -> [u8; 32] {
    vdisk_crypto::hmac::hmac_sha256(digest_salt, master)
}

/// The XOR stream wrapping a retired epoch's master key under its
/// successor's: `HKDF(successor, "vdisk-retire-<epoch>")`.
fn retire_stream(successor: &SecretBytes, epoch: u32) -> SecretBytes {
    let prk = hkdf_extract(b"vdisk-retire", successor.expose());
    let mut info = *b"retire-epoch-\0\0\0\0";
    info[13..17].copy_from_slice(&epoch.to_le_bytes());
    hkdf_expand(&prk, &info, MASTER_KEY_LEN)
}

fn xor_wrap(master: &SecretBytes, stream: &SecretBytes) -> [u8; MASTER_KEY_LEN] {
    let mut wrapped = [0u8; MASTER_KEY_LEN];
    wrapped.copy_from_slice(master.expose());
    xor_in_place(&mut wrapped, stream.expose());
    wrapped
}

impl LuksHeader {
    /// Creates a header for a fresh master key (epoch 0), with the
    /// passphrase in keyslot 0.
    ///
    /// # Errors
    ///
    /// Returns [`CryptError::UnsupportedConfig`] if `config` fails
    /// validation.
    pub fn format(
        config: &EncryptionConfig,
        passphrase: &[u8],
        iv_source: &mut dyn IvSource,
    ) -> Result<(LuksHeader, SecretBytes)> {
        config.validate()?;
        let mut header = LuksHeader {
            config: config.clone(),
            generation: 0,
            current_epoch: 0,
            rekey: None,
            epochs: Vec::new(),
            retired: Vec::new(),
            slots: (0..KEYSLOTS).map(|_| Keyslot::empty()).collect(),
        };
        let master = header.install_epoch(0, iv_source);
        header.add_keyslot_with_iterations(
            passphrase,
            0,
            &master,
            DEFAULT_ITERATIONS,
            iv_source,
        )?;
        Ok((header, master))
    }

    /// Generates a fresh master key and registers its epoch record.
    fn install_epoch(&mut self, epoch: u32, iv_source: &mut dyn IvSource) -> SecretBytes {
        let mut master = SecretBytes::zeroed(MASTER_KEY_LEN);
        iv_source.fill(master.expose_mut());
        let mut digest_salt = [0u8; 16];
        iv_source.fill(&mut digest_salt);
        self.epochs.push(EpochRecord {
            epoch,
            digest_salt,
            mk_digest: digest_of(master.expose(), &digest_salt),
        });
        master
    }

    /// The configuration carried by this header.
    #[must_use]
    pub fn config(&self) -> &EncryptionConfig {
        &self.config
    }

    /// The header generation (bumped by every persisted update; the
    /// CAS token of the optimistic-concurrency scheme).
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Advances the generation; returns the new value.
    pub fn bump_generation(&mut self) -> u64 {
        self.generation += 1;
        self.generation
    }

    /// The epoch new writes encrypt under.
    #[must_use]
    pub fn current_epoch(&self) -> u32 {
        self.current_epoch
    }

    /// The in-flight rekey, if one is migrating the image.
    #[must_use]
    pub fn rekey(&self) -> Option<RekeyState> {
        self.rekey
    }

    /// Advances the rekey watermark (driver-only; strictly monotonic).
    ///
    /// # Panics
    ///
    /// Panics if no rekey is in flight or the watermark would regress.
    pub fn set_rekey_watermark(&mut self, watermark: u64) {
        let state = self.rekey.as_mut().expect("no rekey in flight");
        assert!(watermark >= state.watermark, "watermark may only advance");
        state.watermark = watermark;
    }

    /// Driver-internal rollback of a window whose rewrites failed:
    /// unlike [`LuksHeader::set_rekey_watermark`], this may move the
    /// watermark backwards (never below what was last persisted — the
    /// rekey driver enforces that).
    pub(crate) fn rollback_rekey_watermark(&mut self, watermark: u64) {
        let state = self.rekey.as_mut().expect("no rekey in flight");
        state.watermark = watermark;
    }

    /// Records a window the driver is about to migrate (see
    /// [`WindowIntent`]); persisted before any of the window's
    /// rewrites are submitted.
    ///
    /// # Panics
    ///
    /// Panics if no rekey is in flight.
    pub(crate) fn set_rekey_intent(&mut self, intent: WindowIntent) {
        let state = self.rekey.as_mut().expect("no rekey in flight");
        state.intent = Some(intent);
    }

    /// Clears the window-intent record (the window's watermark advance
    /// is being persisted in the same update, proving it landed).
    ///
    /// # Panics
    ///
    /// Panics if no rekey is in flight.
    pub(crate) fn clear_rekey_intent(&mut self) {
        let state = self.rekey.as_mut().expect("no rekey in flight");
        state.intent = None;
    }

    /// Number of active keyslots.
    #[must_use]
    pub fn active_keyslots(&self) -> usize {
        self.slots.iter().filter(|s| s.active).count()
    }

    /// Epochs retired into the wrap chain (oldest first).
    #[must_use]
    pub fn retired_epochs(&self) -> Vec<u32> {
        self.retired.iter().map(|r| r.epoch).collect()
    }

    /// Adds a passphrase for the **current** epoch to the first free
    /// keyslot; returns its index.
    ///
    /// # Errors
    ///
    /// Returns [`CryptError::NoFreeKeyslot`] when all 8 are taken.
    pub fn add_keyslot(
        &mut self,
        passphrase: &[u8],
        master: &SecretBytes,
        iv_source: &mut dyn IvSource,
    ) -> Result<usize> {
        self.add_keyslot_with_iterations(
            passphrase,
            self.current_epoch,
            master,
            DEFAULT_ITERATIONS,
            iv_source,
        )
    }

    /// Adds a passphrase for `epoch` with an explicit PBKDF2 cost.
    ///
    /// # Errors
    ///
    /// Returns [`CryptError::NoFreeKeyslot`] when all 8 are taken.
    pub fn add_keyslot_with_iterations(
        &mut self,
        passphrase: &[u8],
        epoch: u32,
        master: &SecretBytes,
        iterations: u32,
        iv_source: &mut dyn IvSource,
    ) -> Result<usize> {
        let idx = self
            .slots
            .iter()
            .position(|s| !s.active)
            .ok_or(CryptError::NoFreeKeyslot)?;
        let mut salt = [0u8; 32];
        iv_source.fill(&mut salt);
        let stream = wrap_stream(passphrase, &salt, iterations);
        self.slots[idx] = Keyslot {
            active: true,
            epoch,
            iterations,
            salt,
            wrapped: xor_wrap(master, &stream),
        };
        Ok(idx)
    }

    /// Deactivates a keyslot (revoking its passphrase), zeroizing the
    /// slot's wrapped key material.
    ///
    /// # Errors
    ///
    /// Returns [`CryptError::UnsupportedConfig`] for an out-of-range
    /// index.
    pub fn remove_keyslot(&mut self, index: usize) -> Result<()> {
        let slot = self
            .slots
            .get_mut(index)
            .ok_or_else(|| CryptError::UnsupportedConfig(format!("keyslot {index}")))?;
        zeroize(&mut slot.wrapped);
        zeroize(&mut slot.salt);
        *slot = Keyslot::empty();
        Ok(())
    }

    /// Unwraps one slot with `passphrase` and verifies the candidate
    /// against the slot's epoch digest.
    fn try_slot(&self, idx: usize, passphrase: &[u8]) -> Option<SecretBytes> {
        let slot = &self.slots[idx];
        if !slot.active {
            return None;
        }
        let record = self.epochs.iter().find(|e| e.epoch == slot.epoch)?;
        let stream = wrap_stream(passphrase, &slot.salt, slot.iterations);
        let mut candidate = SecretBytes::from(slot.wrapped.as_slice());
        xor_in_place(candidate.expose_mut(), stream.expose());
        let digest = digest_of(candidate.expose(), &record.digest_salt);
        ct_eq(&digest, &record.mk_digest).then_some(candidate)
    }

    /// Tries the passphrase against every active keyslot and returns
    /// the **current** epoch's master key.
    ///
    /// # Errors
    ///
    /// Returns [`CryptError::WrongPassphrase`] if no slot of the
    /// current epoch unlocks — including for passphrases that only
    /// unlock a retiring epoch mid-rekey (revoked at `rekey_begin`).
    pub fn unlock(&self, passphrase: &[u8]) -> Result<SecretBytes> {
        self.unlock_all(passphrase)
            .into_iter()
            .find_map(|(epoch, master)| (epoch == self.current_epoch).then_some(master))
            .ok_or(CryptError::WrongPassphrase)
    }

    /// Tries the passphrase against every active keyslot; returns every
    /// `(epoch, master)` it unlocks (at most one entry per epoch).
    #[must_use]
    pub fn unlock_all(&self, passphrase: &[u8]) -> Vec<(u32, SecretBytes)> {
        let mut unlocked: Vec<(u32, SecretBytes)> = Vec::new();
        for idx in 0..self.slots.len() {
            if unlocked.iter().any(|(e, _)| *e == self.slots[idx].epoch) {
                continue;
            }
            if let Some(master) = self.try_slot(idx, passphrase) {
                unlocked.push((self.slots[idx].epoch, master));
            }
        }
        unlocked
    }

    /// Re-wraps every keyslot `existing` unlocks under `new` (fresh
    /// salt, same epoch) — passphrase rotation without touching any
    /// data or master key. Returns the rotated slot indices.
    ///
    /// # Errors
    ///
    /// Returns [`CryptError::WrongPassphrase`] if `existing` unlocks no
    /// slot.
    pub fn rotate_passphrase(
        &mut self,
        existing: &[u8],
        new: &[u8],
        iv_source: &mut dyn IvSource,
    ) -> Result<Vec<usize>> {
        let mut rotated = Vec::new();
        for idx in 0..self.slots.len() {
            let Some(master) = self.try_slot(idx, existing) else {
                continue;
            };
            let mut salt = [0u8; 32];
            iv_source.fill(&mut salt);
            let iterations = self.slots[idx].iterations;
            let stream = wrap_stream(new, &salt, iterations);
            let slot = &mut self.slots[idx];
            slot.salt = salt;
            slot.wrapped = xor_wrap(&master, &stream);
            rotated.push(idx);
        }
        if rotated.is_empty() {
            return Err(CryptError::WrongPassphrase);
        }
        Ok(rotated)
    }

    /// Starts an online rekey: installs epoch `current + 1` with a
    /// fresh master key, revokes **every** existing keyslot (the old
    /// passphrases stop unlocking immediately), and binds `new_pass`
    /// to both the new epoch and — through a bridge slot — the
    /// retiring one, so a fresh open mid-rekey can read both halves of
    /// the image. Returns `(retiring master, new master)`.
    ///
    /// # Errors
    ///
    /// - [`CryptError::RekeyInProgress`] if one is already migrating;
    /// - [`CryptError::WrongPassphrase`] if `existing` does not unlock
    ///   the current epoch.
    pub fn begin_rekey(
        &mut self,
        existing: &[u8],
        new_pass: &[u8],
        iterations: u32,
        iv_source: &mut dyn IvSource,
    ) -> Result<(SecretBytes, SecretBytes)> {
        if self.rekey.is_some() {
            return Err(CryptError::RekeyInProgress);
        }
        let from = self.current_epoch;
        let from_master = self.unlock(existing)?;
        let to = from + 1;
        let to_master = self.install_epoch(to, iv_source);
        for idx in 0..self.slots.len() {
            self.remove_keyslot(idx)?;
        }
        self.add_keyslot_with_iterations(new_pass, to, &to_master, iterations, iv_source)?;
        // The bridge: the new passphrase also unlocks the retiring
        // epoch until the migration retires it into the wrap chain.
        self.add_keyslot_with_iterations(new_pass, from, &from_master, iterations, iv_source)?;
        self.current_epoch = to;
        self.rekey = Some(RekeyState {
            from,
            to,
            watermark: 0,
            intent: None,
        });
        Ok((from_master, to_master))
    }

    /// Completes a rekey: moves the retiring master key into the
    /// retired chain (wrapped under its successor), drops its epoch
    /// record and bridge slots, and clears the rekey state. After
    /// this, only the new passphrase unlocks anything — yet snapshot
    /// reads still reach the old epoch through the chain.
    ///
    /// # Errors
    ///
    /// Returns [`CryptError::NoRekeyInProgress`] if no rekey is active.
    pub fn finish_rekey(
        &mut self,
        from_master: &SecretBytes,
        to_master: &SecretBytes,
    ) -> Result<()> {
        if self.retired.len() >= u8::MAX as usize {
            // The wire format length-prefixes the chain with a u8;
            // refuse the 256th retirement cleanly instead of panicking
            // in `encode` mid-update.
            return Err(CryptError::UnsupportedConfig(
                "retired-key chain is full (255 completed rekeys)".into(),
            ));
        }
        let state = self.rekey.take().ok_or(CryptError::NoRekeyInProgress)?;
        let stream = retire_stream(to_master, state.from);
        self.retired.push(RetiredKey {
            epoch: state.from,
            wrapped: xor_wrap(from_master, &stream),
        });
        self.retired.sort_by_key(|r| r.epoch);
        self.epochs.retain(|e| e.epoch != state.from);
        for idx in 0..self.slots.len() {
            if self.slots[idx].active && self.slots[idx].epoch == state.from {
                self.remove_keyslot(idx)?;
            }
        }
        Ok(())
    }

    /// Unwraps the retired chain starting from the current epoch's
    /// master key: epoch `e` is wrapped under `e + 1`, so the chain
    /// unwinds newest-to-oldest. Returns `(epoch, master)` pairs for
    /// every retired epoch reachable from `current_master`.
    #[must_use]
    pub fn unwrap_retired(&self, current_master: &SecretBytes) -> Vec<(u32, SecretBytes)> {
        let mut out: Vec<(u32, SecretBytes)> = Vec::new();
        let mut successors: Vec<(u32, SecretBytes)> =
            vec![(self.current_epoch, current_master.clone())];
        for retired in self.retired.iter().rev() {
            let Some((_, successor)) = successors.iter().find(|(e, _)| *e == retired.epoch + 1)
            else {
                continue;
            };
            let stream = retire_stream(successor, retired.epoch);
            let mut master = SecretBytes::from(retired.wrapped.as_slice());
            xor_in_place(master.expose_mut(), stream.expose());
            successors.push((retired.epoch, master.clone()));
            out.push((retired.epoch, master));
        }
        out.reverse();
        out
    }

    /// Crypto-shreds the header in memory: every keyslot, epoch
    /// digest, and retired-chain wrap is zeroized
    /// ([`vdisk_crypto::mem::zeroize`]), leaving nothing that could
    /// recover any epoch's master key. Pair with overwriting and
    /// deleting the stored header object (see
    /// `EncryptedImage::secure_erase`) — data objects then hold only
    /// undecryptable ciphertext, which *is* the deletion.
    pub fn shred(&mut self) {
        for slot in &mut self.slots {
            zeroize(&mut slot.wrapped);
            zeroize(&mut slot.salt);
            slot.iterations = 0;
            slot.epoch = 0;
            slot.active = false;
        }
        for record in &mut self.epochs {
            zeroize(&mut record.mk_digest);
            zeroize(&mut record.digest_salt);
        }
        for retired in &mut self.retired {
            zeroize(&mut retired.wrapped);
        }
        self.epochs.clear();
        self.retired.clear();
        self.rekey = None;
    }

    /// Serializes the header to its on-disk byte form.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            FIXED_HEAD
                + self.epochs.len() * EPOCH_SIZE
                + self.retired.len() * RETIRED_SIZE
                + KEYSLOTS * SLOT_SIZE,
        );
        out.extend_from_slice(&MAGIC);
        out.push(self.config.cipher.to_wire());
        out.push(self.config.layout.map_or(0, MetaLayout::to_wire));
        let mut flags = 0u8;
        if self.config.random_iv {
            flags |= 1;
        }
        if self.config.mac {
            flags |= 2;
        }
        if self.config.snapshot_binding {
            flags |= 4;
        }
        out.push(flags);
        out.extend_from_slice(&self.config.sector_size.to_le_bytes());
        out.extend_from_slice(&self.generation.to_le_bytes());
        out.extend_from_slice(&self.current_epoch.to_le_bytes());
        match self.rekey {
            None => {
                out.push(0);
                out.extend_from_slice(&[0u8; 16]);
            }
            Some(state) => {
                // Flag 2 appends the 24-byte window-intent record after
                // the fixed rekey triple; flag-0/1 layouts are
                // unchanged, so headers without an in-flight window
                // stay readable by older decoders.
                out.push(if state.intent.is_some() { 2 } else { 1 });
                out.extend_from_slice(&state.from.to_le_bytes());
                out.extend_from_slice(&state.to.to_le_bytes());
                out.extend_from_slice(&state.watermark.to_le_bytes());
                if let Some(intent) = state.intent {
                    out.extend_from_slice(&intent.start.to_le_bytes());
                    out.extend_from_slice(&intent.end.to_le_bytes());
                    out.extend_from_slice(&intent.chunk_sectors.to_le_bytes());
                }
            }
        }
        out.push(u8::try_from(self.epochs.len()).expect("few epochs"));
        for record in &self.epochs {
            out.extend_from_slice(&record.epoch.to_le_bytes());
            out.extend_from_slice(&record.digest_salt);
            out.extend_from_slice(&record.mk_digest);
        }
        out.push(u8::try_from(self.retired.len()).expect("few retired"));
        for retired in &self.retired {
            out.extend_from_slice(&retired.epoch.to_le_bytes());
            out.extend_from_slice(&retired.wrapped);
        }
        for slot in &self.slots {
            out.push(u8::from(slot.active));
            out.extend_from_slice(&slot.epoch.to_le_bytes());
            out.extend_from_slice(&slot.iterations.to_le_bytes());
            out.extend_from_slice(&slot.salt);
            out.extend_from_slice(&slot.wrapped);
        }
        out
    }

    /// Parses a header from disk. Trailing bytes beyond the encoded
    /// length are ignored (a shrinking header may leave a stale tail
    /// until the truncate in the same transaction lands).
    ///
    /// # Errors
    ///
    /// Returns [`CryptError::HeaderCorrupt`] on truncation, bad magic,
    /// or unknown field values.
    pub fn decode(bytes: &[u8]) -> Result<LuksHeader> {
        let corrupt = |why: &str| CryptError::HeaderCorrupt(why.to_string());
        let mut cursor = Cursor { bytes, at: 0 };
        if cursor.take(8)? != MAGIC {
            return Err(corrupt("bad magic"));
        }
        let cipher = Cipher::from_wire(cursor.u8()?).ok_or_else(|| corrupt("unknown cipher"))?;
        let layout =
            MetaLayout::from_wire(cursor.u8()?).ok_or_else(|| corrupt("unknown layout"))?;
        let flags = cursor.u8()?;
        let sector_size = cursor.u32()?;
        let generation = cursor.u64()?;
        let current_epoch = cursor.u32()?;
        let rekey = match cursor.u8()? {
            0 => {
                cursor.take(16)?;
                None
            }
            flag @ (1 | 2) => {
                let from = cursor.u32()?;
                let to = cursor.u32()?;
                let watermark = cursor.u64()?;
                let intent = if flag == 2 {
                    Some(WindowIntent {
                        start: cursor.u64()?,
                        end: cursor.u64()?,
                        chunk_sectors: cursor.u64()?,
                    })
                } else {
                    None
                };
                Some(RekeyState {
                    from,
                    to,
                    watermark,
                    intent,
                })
            }
            _ => return Err(corrupt("bad rekey flag")),
        };

        let config = EncryptionConfig {
            cipher,
            layout,
            random_iv: flags & 1 != 0,
            mac: flags & 2 != 0,
            snapshot_binding: flags & 4 != 0,
            sector_size,
        };
        config
            .validate()
            .map_err(|e| CryptError::HeaderCorrupt(format!("invalid config: {e}")))?;

        let epoch_count = cursor.u8()? as usize;
        let mut epochs = Vec::with_capacity(epoch_count);
        for _ in 0..epoch_count {
            let epoch = cursor.u32()?;
            let mut digest_salt = [0u8; 16];
            digest_salt.copy_from_slice(cursor.take(16)?);
            let mut mk_digest = [0u8; 32];
            mk_digest.copy_from_slice(cursor.take(32)?);
            epochs.push(EpochRecord {
                epoch,
                digest_salt,
                mk_digest,
            });
        }
        let retired_count = cursor.u8()? as usize;
        let mut retired = Vec::with_capacity(retired_count);
        for _ in 0..retired_count {
            let epoch = cursor.u32()?;
            let mut wrapped = [0u8; MASTER_KEY_LEN];
            wrapped.copy_from_slice(cursor.take(MASTER_KEY_LEN)?);
            retired.push(RetiredKey { epoch, wrapped });
        }
        let mut slots = Vec::with_capacity(KEYSLOTS);
        for _ in 0..KEYSLOTS {
            let active = match cursor.u8()? {
                0 => false,
                1 => true,
                _ => return Err(corrupt("bad keyslot flag")),
            };
            let epoch = cursor.u32()?;
            let iterations = cursor.u32()?;
            let mut salt = [0u8; 32];
            salt.copy_from_slice(cursor.take(32)?);
            let mut wrapped = [0u8; MASTER_KEY_LEN];
            wrapped.copy_from_slice(cursor.take(MASTER_KEY_LEN)?);
            slots.push(Keyslot {
                active,
                epoch,
                iterations,
                salt,
                wrapped,
            });
        }
        if epochs.iter().all(|e| e.epoch != current_epoch) {
            return Err(corrupt("current epoch has no record"));
        }
        Ok(LuksHeader {
            config,
            generation,
            current_epoch,
            rekey,
            epochs,
            retired,
            slots,
        })
    }
}

/// A bounds-checked byte cursor for [`LuksHeader::decode`].
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.at + n > self.bytes.len() {
            return Err(CryptError::HeaderCorrupt("truncated".into()));
        }
        let out = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
}

/// Derives the per-purpose subkeys the IO path needs from the master
/// key (HKDF-SHA256 with distinct info strings, so no two uses share
/// key material). Each key epoch derives its own independent set.
// vdisk-lint: allow(secret-derive) reason="every field is a SecretBytes whose Debug prints only the length"
#[derive(Debug)]
pub struct DerivedKeys {
    /// XTS data key (32 or 64 bytes depending on the cipher).
    pub xts: SecretBytes,
    /// GCM key (32 bytes).
    pub gcm: SecretBytes,
    /// EME2 key (32 bytes).
    pub eme2: SecretBytes,
    /// CBC-ESSIV key (32 bytes).
    pub cbc: SecretBytes,
    /// Per-sector MAC key (32 bytes).
    pub mac: SecretBytes,
}

impl DerivedKeys {
    /// Derives all subkeys.
    #[must_use]
    pub fn derive(master: &SecretBytes, cipher: Cipher) -> DerivedKeys {
        let expand = |info: &[u8], len: usize| -> SecretBytes {
            let prk = hkdf_extract(b"vdisk-subkeys", master.expose());
            hkdf_expand(&prk, info, len)
        };
        let xts_len = match cipher {
            Cipher::Aes128Xts => 32,
            _ => 64,
        };
        DerivedKeys {
            xts: expand(b"xts-data", xts_len),
            gcm: expand(b"gcm-data", 32),
            eme2: expand(b"eme2-data", 32),
            cbc: expand(b"cbc-data", 32),
            mac: expand(b"sector-mac", 32),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdisk_crypto::rng::SeededIvSource;

    fn format_default() -> (LuksHeader, SecretBytes) {
        let mut rng = SeededIvSource::new(7);
        LuksHeader::format(
            &EncryptionConfig::random_iv_object_end(),
            b"correct horse",
            &mut rng,
        )
        .unwrap()
    }

    #[test]
    fn format_unlock_round_trip() {
        let (header, master) = format_default();
        let unlocked = header.unlock(b"correct horse").unwrap();
        assert_eq!(unlocked.expose(), master.expose());
        assert!(matches!(
            header.unlock(b"battery staple"),
            Err(CryptError::WrongPassphrase)
        ));
        assert_eq!(header.current_epoch(), 0);
        assert!(header.rekey().is_none());
    }

    #[test]
    fn encode_decode_round_trip() {
        let (header, _master) = format_default();
        let bytes = header.encode();
        let decoded = LuksHeader::decode(&bytes).unwrap();
        assert_eq!(decoded, header);
        assert_eq!(decoded.config(), header.config());
        // Trailing garbage (a stale tail before its truncate lands) is
        // ignored.
        let mut padded = bytes;
        padded.extend_from_slice(&[0xEE; 32]);
        assert_eq!(LuksHeader::decode(&padded).unwrap(), header);
    }

    #[test]
    fn decode_rejects_corruption() {
        let (header, _) = format_default();
        let bytes = header.encode();

        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xFF;
        assert!(matches!(
            LuksHeader::decode(&bad_magic),
            Err(CryptError::HeaderCorrupt(_))
        ));

        assert!(matches!(
            LuksHeader::decode(&bytes[..bytes.len() - 1]),
            Err(CryptError::HeaderCorrupt(_))
        ));

        let mut bad_cipher = bytes.clone();
        bad_cipher[8] = 0xEE;
        assert!(LuksHeader::decode(&bad_cipher).is_err());
    }

    #[test]
    fn tampered_wrapped_key_fails_digest() {
        let (header, _) = format_default();
        let mut bytes = header.encode();
        // Flip a byte inside keyslot 0's wrapped key region (the slots
        // are the encoding's tail: KEYSLOTS slots of SLOT_SIZE bytes,
        // wrapped key last).
        let offset = bytes.len() - KEYSLOTS * SLOT_SIZE + SLOT_SIZE - 5;
        bytes[offset] ^= 0x01;
        let tampered = LuksHeader::decode(&bytes).unwrap();
        assert!(matches!(
            tampered.unlock(b"correct horse"),
            Err(CryptError::WrongPassphrase)
        ));
    }

    #[test]
    fn multiple_keyslots() {
        let (mut header, master) = format_default();
        let mut rng = SeededIvSource::new(8);
        let idx = header
            .add_keyslot_with_iterations(b"second pass", 0, &master, 100, &mut rng)
            .unwrap();
        assert_eq!(idx, 1);
        assert_eq!(header.active_keyslots(), 2);
        assert_eq!(
            header.unlock(b"second pass").unwrap().expose(),
            master.expose()
        );
        header.remove_keyslot(0).unwrap();
        assert!(header.unlock(b"correct horse").is_err());
        assert!(header.unlock(b"second pass").is_ok());
    }

    #[test]
    fn keyslots_exhaust() {
        let (mut header, master) = format_default();
        let mut rng = SeededIvSource::new(9);
        for _ in 1..KEYSLOTS {
            header
                .add_keyslot_with_iterations(b"p", 0, &master, 10, &mut rng)
                .unwrap();
        }
        assert!(matches!(
            header.add_keyslot_with_iterations(b"p", 0, &master, 10, &mut rng),
            Err(CryptError::NoFreeKeyslot)
        ));
    }

    #[test]
    fn rotate_passphrase_rewraps_in_place() {
        let (mut header, master) = format_default();
        let mut rng = SeededIvSource::new(12);
        let rotated = header
            .rotate_passphrase(b"correct horse", b"fresh steed", &mut rng)
            .unwrap();
        assert_eq!(rotated, vec![0]);
        assert_eq!(header.active_keyslots(), 1, "rotation adds no slot");
        assert!(header.unlock(b"correct horse").is_err());
        assert_eq!(
            header.unlock(b"fresh steed").unwrap().expose(),
            master.expose()
        );
        assert!(matches!(
            header.rotate_passphrase(b"wrong", b"x", &mut rng),
            Err(CryptError::WrongPassphrase)
        ));
    }

    #[test]
    fn rekey_lifecycle_epochs_slots_and_chain() {
        let (mut header, master0) = format_default();
        let mut rng = SeededIvSource::new(13);
        let (from_master, to_master) = header
            .begin_rekey(b"correct horse", b"new pass", 50, &mut rng)
            .unwrap();
        assert_eq!(from_master.expose(), master0.expose());
        assert_eq!(header.current_epoch(), 1);
        assert_eq!(
            header.rekey(),
            Some(RekeyState {
                from: 0,
                to: 1,
                watermark: 0,
                intent: None,
            })
        );
        // Old passphrase is revoked immediately; the new one unlocks
        // both epochs through the bridge slot.
        assert!(header.unlock(b"correct horse").is_err());
        let unlocked = header.unlock_all(b"new pass");
        assert_eq!(unlocked.len(), 2);
        assert!(matches!(
            header.begin_rekey(b"new pass", b"x", 50, &mut rng),
            Err(CryptError::RekeyInProgress)
        ));

        header.set_rekey_watermark(1024);
        header.finish_rekey(&from_master, &to_master).unwrap();
        assert!(header.rekey().is_none());
        assert_eq!(header.retired_epochs(), vec![0]);
        // Only the new epoch remains unlockable directly...
        let unlocked = header.unlock_all(b"new pass");
        assert_eq!(unlocked.len(), 1);
        assert_eq!(unlocked[0].0, 1);
        // ...but the retired chain recovers epoch 0 from it.
        let retired = header.unwrap_retired(&unlocked[0].1);
        assert_eq!(retired.len(), 1);
        assert_eq!(retired[0].0, 0);
        assert_eq!(retired[0].1.expose(), master0.expose());
        assert!(matches!(
            header.finish_rekey(&from_master, &to_master),
            Err(CryptError::NoRekeyInProgress)
        ));

        // Round-trips through the wire form, chain included.
        let decoded = LuksHeader::decode(&header.encode()).unwrap();
        assert_eq!(decoded, header);
    }

    #[test]
    fn window_intent_roundtrips_and_clears() {
        let (mut header, _master) = format_default();
        let mut rng = SeededIvSource::new(21);
        header
            .begin_rekey(b"correct horse", b"new pass", 50, &mut rng)
            .unwrap();
        header.set_rekey_intent(WindowIntent {
            start: 128,
            end: 256,
            chunk_sectors: 16,
        });
        // A header persisted mid-window round-trips the intent.
        let decoded = LuksHeader::decode(&header.encode()).unwrap();
        assert_eq!(decoded, header);
        assert_eq!(
            decoded.rekey().and_then(|s| s.intent),
            Some(WindowIntent {
                start: 128,
                end: 256,
                chunk_sectors: 16,
            })
        );
        // The watermark advance and the intent clear are one update.
        header.set_rekey_watermark(256);
        header.clear_rekey_intent();
        let decoded = LuksHeader::decode(&header.encode()).unwrap();
        assert_eq!(decoded.rekey().map(|s| s.watermark), Some(256));
        assert_eq!(decoded.rekey().and_then(|s| s.intent), None);
    }

    #[test]
    fn retired_chain_unwinds_across_multiple_rekeys() {
        let (mut header, master0) = format_default();
        let mut rng = SeededIvSource::new(14);
        let (m0, m1) = header
            .begin_rekey(b"correct horse", b"p1", 50, &mut rng)
            .unwrap();
        header.finish_rekey(&m0, &m1).unwrap();
        let (m1b, m2) = header.begin_rekey(b"p1", b"p2", 50, &mut rng).unwrap();
        assert_eq!(m1b.expose(), m1.expose());
        header.finish_rekey(&m1b, &m2).unwrap();

        assert_eq!(header.current_epoch(), 2);
        assert_eq!(header.retired_epochs(), vec![0, 1]);
        let retired = header.unwrap_retired(&m2);
        assert_eq!(retired.len(), 2);
        assert_eq!(retired[0].0, 0);
        assert_eq!(retired[0].1.expose(), master0.expose());
        assert_eq!(retired[1].0, 1);
        assert_eq!(retired[1].1.expose(), m1.expose());
    }

    #[test]
    fn shred_zeroizes_every_secret_bearing_field() {
        let (mut header, master) = format_default();
        let mut rng = SeededIvSource::new(15);
        let (m0, m1) = header
            .begin_rekey(b"correct horse", b"p1", 50, &mut rng)
            .unwrap();
        header.finish_rekey(&m0, &m1).unwrap();
        drop(master);

        header.shred();
        assert_eq!(header.active_keyslots(), 0);
        assert!(header.retired_epochs().is_empty());
        assert!(header.unlock_all(b"p1").is_empty());
        // The encoded form carries no key material: beyond the fixed
        // head, every byte region that held wraps/salts/digests is
        // zero.
        let bytes = header.encode();
        assert!(
            bytes[FIXED_HEAD..].iter().all(|&b| b == 0),
            "shredded header must encode to all-zero key regions"
        );
    }

    #[test]
    fn derived_keys_are_distinct_and_deterministic() {
        let master = SecretBytes::from(vec![0x42; MASTER_KEY_LEN]);
        let a = DerivedKeys::derive(&master, Cipher::Aes256Xts);
        let b = DerivedKeys::derive(&master, Cipher::Aes256Xts);
        assert_eq!(a.xts.expose(), b.xts.expose());
        assert_ne!(a.xts.expose(), a.gcm.expose());
        assert_ne!(a.gcm.expose(), a.mac.expose());
        assert_ne!(a.eme2.expose(), a.cbc.expose());
        assert_eq!(a.xts.len(), 64);
        let c = DerivedKeys::derive(&master, Cipher::Aes128Xts);
        assert_eq!(c.xts.len(), 32);
    }

    #[test]
    fn header_carries_config_faithfully() {
        let mut rng = SeededIvSource::new(10);
        let config = EncryptionConfig::random_iv(MetaLayout::Omap)
            .with_mac()
            .with_snapshot_binding();
        let (header, _) = LuksHeader::format(&config, b"p", &mut rng).unwrap();
        let decoded = LuksHeader::decode(&header.encode()).unwrap();
        assert_eq!(decoded.config(), &config);
        assert_eq!(decoded.config().meta_entry_len(), 44);
    }
}
