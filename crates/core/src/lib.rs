//! **The paper's contribution**: virtual-disk block encryption with
//! per-sector metadata.
//!
//! Standard disk encryption (LUKS2 / dm-crypt / RBD encryption) is
//! length-preserving: AES-XTS with the LBA as the deterministic tweak,
//! no room for an IV or a MAC. The paper observes that a *virtual* disk
//! already owns a mapping layer and can piggyback per-sector metadata
//! on it, enabling a **fresh random IV per sector write** — semantic
//! security across overwrites and snapshots — and optionally integrity.
//!
//! This crate implements that design over the `vdisk-rbd`/`vdisk-rados`
//! stack:
//!
//! - [`EncryptionConfig`]: cipher (AES-XTS 128/256, AES-GCM, EME2
//!   wide-block, legacy CBC-ESSIV), IV scheme (LBA-derived baseline or
//!   random-persisted), and the paper's three metadata layouts
//!   ([`MetaLayout::Unaligned`], [`MetaLayout::ObjectEnd`],
//!   [`MetaLayout::Omap`] — Fig. 2a/2b/2c), plus the integrity (MAC)
//!   and snapshot-binding extensions (§2.2, footnote 3).
//! - [`luks`]: a LUKS2-style on-disk header with PBKDF2 keyslots,
//!   **versioned master keys (key epochs)**, a retired-key chain, and
//!   CASed generation-counter updates, stored as a cluster object —
//!   the substrate of the key-lifecycle API
//!   ([`EncryptedImage::rekey_begin`] online rekey via [`RekeyDriver`],
//!   [`EncryptedImage::rotate_passphrase`],
//!   [`EncryptedImage::secure_erase`] crypto-shredding).
//! - [`layout`]: the exact byte arithmetic of each metadata placement.
//! - [`EncryptedImage`]: the client-side encrypting IO path — every
//!   data+metadata update rides a single atomic RADOS transaction, as
//!   in §3.1 — with a client-side **IV/metadata cache** that skips the
//!   per-sector metadata fetch on read hits. The cache fills at reap
//!   time, validated against per-shard write-submission epochs
//!   ([`vdisk_rados::Cluster::shard_write_seq`]) so queued overwrites
//!   and snapshots landing between a read's submit and reap can never
//!   leave stale entries; size or disable it with
//!   [`vdisk_rados::ClusterBuilder::meta_cache_bytes`], observe it via
//!   `ExecStats::{meta_cache_hits, meta_cache_misses,
//!   meta_cache_invalidations}`.
//! - [`audit`]: the adversary's view — raw ciphertext observation and
//!   sub-block diffing — used to *demonstrate* the leaks the paper
//!   describes and their elimination.
//!
//! # Example
//!
//! ```
//! use vdisk_core::{EncryptedImage, EncryptionConfig, MetaLayout};
//! use vdisk_rados::Cluster;
//! use vdisk_rbd::Image;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cluster = Cluster::builder().build();
//! let image = Image::create(&cluster, "secure-vm", 16 << 20)?;
//! let config = EncryptionConfig::random_iv(MetaLayout::ObjectEnd);
//! let mut disk = EncryptedImage::format(image, &config, b"hunter2")?;
//! disk.write(0, b"top secret")?;
//! let mut buf = vec![0u8; 10];
//! disk.read(0, &mut buf)?;
//! assert_eq!(&buf, b"top secret");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod batch;
mod config;
mod crypto_pool;
mod encrypted_image;
mod keychain;
pub mod layout;
pub mod luks;
mod meta_cache;
mod queue;
mod rekey;
pub mod runtime;
mod sector;

pub use config::{Cipher, EncryptionConfig, MetaLayout, KEY_EPOCH_TAG_LEN};
pub use encrypted_image::EncryptedImage;
pub use luks::{RekeyState, WindowIntent};
pub use queue::EncryptedIoQueue;
pub use rekey::{
    RekeyDriver, RekeyProgress, DEFAULT_CHUNK_SECTORS, DEFAULT_PRESSURE_THRESHOLD,
    DEFAULT_QUEUE_DEPTH,
};
pub use runtime::{
    RateLimit, Runtime, RuntimeError, RuntimeSnapshot, TenantHandle, TenantId, TenantQueue,
    TenantSpec, TenantStats,
};
pub use sector::SectorState;
// The op/completion vocabulary is shared with the raw queue.
pub use vdisk_rbd::{Completion, IoOp, IoPayload, IoResult};

use std::error::Error as StdError;
use std::fmt;

/// Errors surfaced by the encryption layer.
#[derive(Debug)]
#[non_exhaustive]
pub enum CryptError {
    /// No keyslot matched the passphrase.
    WrongPassphrase,
    /// All keyslots are occupied.
    NoFreeKeyslot,
    /// The on-disk header failed to parse or verify.
    HeaderCorrupt(String),
    /// A sector's MAC (or GCM tag) failed to verify.
    IntegrityViolation {
        /// The logical sector that failed.
        lba: u64,
    },
    /// Snapshot binding detected data from the "future" (replayed
    /// across snapshots).
    ReplayDetected {
        /// The logical sector that failed.
        lba: u64,
    },
    /// The configuration is internally inconsistent (e.g. AES-GCM
    /// without a metadata layout to store its nonce and tag).
    UnsupportedConfig(String),
    /// An online rekey is already migrating this image (or still has
    /// sectors to migrate, where completion was requested).
    RekeyInProgress,
    /// No online rekey is in flight.
    NoRekeyInProgress,
    /// A sector's metadata names a key epoch this handle holds no key
    /// for (corrupt epoch tag, or an image opened without its
    /// retired-key chain).
    UnknownKeyEpoch {
        /// The logical sector.
        lba: u64,
        /// The epoch the entry claims.
        epoch: u32,
    },
    /// A concurrent handle updated the encryption header between this
    /// handle's read and write (the generation CAS lost). The
    /// in-memory header view is stale; reopen the image and retry.
    HeaderContended,
    /// The multi-tenant runtime reported that a driver's tenant can
    /// make no progress (admission stalled or starved of rate-limit
    /// tokens with nothing in flight).
    RuntimeStalled(String),
    /// An error from the image layer.
    Rbd(vdisk_rbd::RbdError),
    /// An error from a cryptographic primitive.
    Crypto(vdisk_crypto::CryptoError),
    /// An internal invariant the IO path depends on failed to hold.
    /// Always a bug — reported as an error rather than a panic so a
    /// rekey driver or shard worker survives to surface it instead of
    /// poisoning queue state.
    Internal(String),
}

impl fmt::Display for CryptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptError::WrongPassphrase => write!(f, "no keyslot matches the passphrase"),
            CryptError::NoFreeKeyslot => write!(f, "all keyslots are in use"),
            CryptError::HeaderCorrupt(why) => write!(f, "encryption header corrupt: {why}"),
            CryptError::IntegrityViolation { lba } => {
                write!(f, "integrity violation at sector {lba}")
            }
            CryptError::ReplayDetected { lba } => {
                write!(f, "cross-snapshot replay detected at sector {lba}")
            }
            CryptError::UnsupportedConfig(why) => write!(f, "unsupported configuration: {why}"),
            CryptError::RekeyInProgress => write!(f, "an online rekey is in progress"),
            CryptError::NoRekeyInProgress => write!(f, "no online rekey is in progress"),
            CryptError::UnknownKeyEpoch { lba, epoch } => {
                write!(f, "sector {lba} names unknown key epoch {epoch}")
            }
            CryptError::HeaderContended => {
                write!(
                    f,
                    "encryption header updated concurrently; reopen and retry"
                )
            }
            CryptError::RuntimeStalled(why) => write!(f, "runtime stalled: {why}"),
            CryptError::Rbd(e) => write!(f, "image layer: {e}"),
            CryptError::Crypto(e) => write!(f, "crypto: {e}"),
            CryptError::Internal(why) => write!(f, "internal invariant violated: {why}"),
        }
    }
}

impl StdError for CryptError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            CryptError::Rbd(e) => Some(e),
            CryptError::Crypto(e) => Some(e),
            _ => None,
        }
    }
}

impl From<vdisk_rbd::RbdError> for CryptError {
    fn from(e: vdisk_rbd::RbdError) -> Self {
        CryptError::Rbd(e)
    }
}

impl From<vdisk_rados::RadosError> for CryptError {
    fn from(e: vdisk_rados::RadosError) -> Self {
        CryptError::Rbd(vdisk_rbd::RbdError::Rados(e))
    }
}

impl From<vdisk_crypto::CryptoError> for CryptError {
    fn from(e: vdisk_crypto::CryptoError) -> Self {
        CryptError::Crypto(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CryptError>;
