//! The multi-tenant client runtime: admission control, weighted fair
//! scheduling, and per-tenant QoS over the per-shard submission
//! queues.
//!
//! The paper's design hands the whole data path to the client — which
//! means the client is also where *fairness* has to live. One
//! [`EncryptedIoQueue`](crate::EncryptedIoQueue) per image with no
//! arbitration lets a single image at QD 64 starve every other image
//! sharing the shard workers. This module inserts the missing layer: a
//! [`Runtime`] owns tenant registration (weight, QD cap, backlog cap,
//! optional byte-rate token bucket), admission control at submit, and
//! a weighted-fair allocation of a shared in-flight budget — so
//! hundreds of queues share the cluster with proportional fairness
//! instead of free-for-all.
//!
//! # The model
//!
//! - **Tenant**: a registered identity ([`TenantHandle`]) with a
//!   [`TenantSpec`]. Weights set proportional share under contention;
//!   the QD cap bounds a tenant's own in-flight ops; the backlog cap
//!   is the admission bound ([`RuntimeError::AdmissionDenied`] past
//!   it); a [`RateLimit`] adds token-bucket pacing in bytes.
//! - **Queue**: a tenant attaches a concrete queue (the raw
//!   [`vdisk_rbd::IoQueue`] or the encrypted
//!   [`EncryptedIoQueue`](crate::EncryptedIoQueue)) with
//!   [`TenantHandle::attach`], yielding a [`TenantQueue`] with the
//!   same submit/poll/wait/fence surface. Submissions queue locally;
//!   dispatch happens only when the arbiter grants slots — always on
//!   the owning thread, never from a central dispatcher, so the
//!   borrow-based queue types need no lifetime contortions.
//! - **Fairness**: a virtual-time weighted-fair scheduler (see
//!   `sched.rs`): each tenant's clock advances by `bytes / weight` per
//!   dispatched op and free slots go to the smallest clock first. The
//!   allocation simulates all backlogged tenants at once, so slots a
//!   quieter tenant is entitled to are *reserved* — a deep-QD hog
//!   cannot claim them in between the quiet tenant's submissions.
//!
//! Per-tenant FIFO dispatch preserves the queue layers' ordering
//! contract: ops of one tenant dispatch in submission order, so the
//! interleaving ≡ sequential-replay property holds through the
//! scheduler (see `core/tests/runtime_properties.rs`).
//!
//! # Example
//!
//! ```
//! use vdisk_core::runtime::{Runtime, TenantSpec};
//! use vdisk_rados::Cluster;
//! use vdisk_rbd::{Image, IoOp, IoQueue};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cluster = Cluster::builder().build();
//! let runtime = Runtime::new(8);
//! let tenant = runtime.register(TenantSpec::new("vm-1").weight(3));
//!
//! let image = Image::create(&cluster, "vm-1", 16 << 20)?;
//! let mut queue = tenant.attach(IoQueue::new(&image));
//! queue.submit(IoOp::Write { offset: 0, data: vec![7u8; 4096] })?;
//! let done = queue.fence()?;
//! assert_eq!(done.len(), 1);
//! assert_eq!(tenant.stats().completed_ops, 1);
//! # Ok(())
//! # }
//! ```

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::{Arc, Mutex, PoisonError};
use vdisk_rados::{Doorbell, ExecStats};
use vdisk_rbd::{Completion, IoOp, IoResult};

mod sched;

use sched::{Arbiter, ParkHint};

/// Identifies a registered tenant within its [`Runtime`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(u32);

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant#{}", self.0)
    }
}

/// Byte-rate pacing for one tenant: a token bucket holding up to
/// `burst_bytes`, refilled at `bytes_per_sec`. A zero rate never
/// refills — the burst is the tenant's total allowance (deterministic
/// tests use this).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateLimit {
    /// Sustained refill rate in bytes per second (0 = never refills).
    pub bytes_per_sec: u64,
    /// Bucket capacity in bytes; also the initial fill.
    pub burst_bytes: u64,
}

/// Registration-time description of a tenant.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    name: String,
    weight: u32,
    qd_cap: usize,
    backlog_cap: usize,
    rate: Option<RateLimit>,
}

impl TenantSpec {
    /// A tenant with weight 1, QD cap 16, backlog cap 64 and no rate
    /// limit.
    #[must_use]
    pub fn new(name: impl Into<String>) -> TenantSpec {
        TenantSpec {
            name: name.into(),
            weight: 1,
            qd_cap: 16,
            backlog_cap: 64,
            rate: None,
        }
    }

    /// Proportional share under contention (≥ 1): at equal demand a
    /// weight-3 tenant dispatches ~3 bytes for a weight-1 tenant's 1.
    #[must_use]
    pub fn weight(mut self, weight: u32) -> TenantSpec {
        self.weight = weight;
        self
    }

    /// Maximum ops this tenant may hold in flight at once (≥ 1).
    #[must_use]
    pub fn qd_cap(mut self, qd_cap: usize) -> TenantSpec {
        self.qd_cap = qd_cap;
        self
    }

    /// Admission bound: submits past this many queued-but-undispatched
    /// ops fail with [`RuntimeError::AdmissionDenied`] (≥ 1).
    #[must_use]
    pub fn backlog_cap(mut self, backlog_cap: usize) -> TenantSpec {
        self.backlog_cap = backlog_cap;
        self
    }

    /// Adds token-bucket pacing in bytes.
    #[must_use]
    pub fn rate_limit(mut self, rate: RateLimit) -> TenantSpec {
        self.rate = Some(rate);
        self
    }
}

/// Point-in-time per-tenant counters (see [`Runtime::tenant_stats`]).
#[derive(Debug, Clone)]
pub struct TenantStats {
    /// The tenant.
    pub id: TenantId,
    /// Registration name.
    pub name: String,
    /// Configured weight.
    pub weight: u32,
    /// Ops accepted by admission control.
    pub admitted_ops: u64,
    /// Ops rejected at the backlog cap.
    pub rejected_ops: u64,
    /// Ops handed to the underlying queue.
    pub dispatched_ops: u64,
    /// Ops reaped back through the tenant's queue.
    pub completed_ops: u64,
    /// Ops that died with a reap error (e.g. retry-budget exhaustion
    /// under fault injection). Their slots and backlog were refunded;
    /// they never count as completed.
    pub failed_ops: u64,
    /// Payload bytes of completed ops.
    pub completed_bytes: u64,
    /// Ops admitted and not yet dispatched, right now.
    pub backlog_ops: usize,
    /// Ops dispatched and not yet reaped, right now.
    pub in_flight_ops: usize,
    /// Rollup of the per-op [`ExecStats`] deltas of every completed
    /// op: counters sum, high-water marks take the max.
    pub exec: ExecStats,
}

/// Point-in-time view of the whole runtime (see [`Runtime::snapshot`]).
#[derive(Debug, Clone)]
pub struct RuntimeSnapshot {
    /// The shared in-flight budget.
    pub inflight_budget: usize,
    /// Ops in flight across all tenants, right now.
    pub in_flight_ops: usize,
    /// Every registered tenant's counters, in registration order.
    pub tenants: Vec<TenantStats>,
}

/// Errors of the runtime layer, wrapping the attached queue's own
/// error type `E`.
#[derive(Debug)]
pub enum RuntimeError<E> {
    /// Admission control rejected the submit: the tenant's backlog is
    /// at its cap. Reap some completions (or wait) and resubmit.
    AdmissionDenied {
        /// The rejected tenant.
        tenant: TenantId,
        /// Ops currently queued.
        backlog: usize,
        /// The configured cap.
        cap: usize,
    },
    /// A blocking reap would never return: the tenant has queued work
    /// gated on a zero-rate token bucket with too few tokens, and
    /// nothing in flight to wait for.
    Starved {
        /// The stalled tenant.
        tenant: TenantId,
    },
    /// The underlying queue failed.
    Queue(E),
}

impl<E: fmt::Display> fmt::Display for RuntimeError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::AdmissionDenied {
                tenant,
                backlog,
                cap,
            } => write!(f, "{tenant} backlog full ({backlog}/{cap})"),
            RuntimeError::Starved { tenant } => write!(
                f,
                "{tenant} is out of tokens with no refill and nothing in flight"
            ),
            RuntimeError::Queue(e) => write!(f, "queue error: {e}"),
        }
    }
}

impl<E: std::error::Error + 'static> std::error::Error for RuntimeError<E> {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Queue(e) => Some(e),
            _ => None,
        }
    }
}

impl<E> From<E> for RuntimeError<E> {
    fn from(e: E) -> Self {
        RuntimeError::Queue(e)
    }
}

/// A queue the runtime can arbitrate: non-blocking submit and reap,
/// an in-flight count, and the completion doorbell the runtime rings
/// when a scheduling change should wake the owner. Implemented by the
/// raw [`vdisk_rbd::IoQueue`] and the encrypted
/// [`EncryptedIoQueue`](crate::EncryptedIoQueue).
pub trait ArbitratedQueue {
    /// The queue's error type.
    type Error;

    /// Submits directly to the underlying queue (dispatch).
    ///
    /// # Errors
    ///
    /// The queue's synchronous submit errors (e.g. out of bounds).
    fn submit_direct(&mut self, op: IoOp) -> Result<Completion, Self::Error>;

    /// Non-blocking reap of everything finished.
    ///
    /// # Errors
    ///
    /// The queue's reap errors.
    fn poll_direct(&mut self) -> Result<Vec<IoResult>, Self::Error>;

    /// Ops dispatched and not yet reaped.
    fn in_flight(&self) -> usize;

    /// The queue's completion doorbell.
    fn doorbell(&self) -> Arc<Doorbell>;

    /// Drains the completion ids of ops consumed by reap errors since
    /// the last call, so the runtime can refund their budget. The
    /// default (for queues that never consume ops on error) reports
    /// none.
    fn take_failed(&mut self) -> Vec<u64> {
        Vec::new()
    }
}

impl ArbitratedQueue for vdisk_rbd::IoQueue {
    type Error = vdisk_rbd::RbdError;

    fn submit_direct(&mut self, op: IoOp) -> Result<Completion, Self::Error> {
        self.submit(op)
    }

    fn poll_direct(&mut self) -> Result<Vec<IoResult>, Self::Error> {
        self.poll()
    }

    fn in_flight(&self) -> usize {
        self.in_flight()
    }

    fn doorbell(&self) -> Arc<Doorbell> {
        vdisk_rbd::IoQueue::doorbell(self)
    }

    fn take_failed(&mut self) -> Vec<u64> {
        self.take_failed()
    }
}

impl ArbitratedQueue for crate::EncryptedIoQueue<'_> {
    type Error = crate::CryptError;

    fn submit_direct(&mut self, op: IoOp) -> Result<Completion, Self::Error> {
        self.submit(op)
    }

    fn poll_direct(&mut self) -> Result<Vec<IoResult>, Self::Error> {
        self.poll()
    }

    fn in_flight(&self) -> usize {
        self.in_flight()
    }

    fn doorbell(&self) -> Arc<Doorbell> {
        crate::EncryptedIoQueue::doorbell(self)
    }

    fn take_failed(&mut self) -> Vec<u64> {
        self.take_failed()
    }
}

/// The shared arbiter. Cheap to clone; all clones share one scheduler
/// state. See the [module docs](self) for the model.
#[derive(Clone)]
pub struct Runtime {
    inner: Arc<Mutex<Arbiter>>,
}

impl Runtime {
    /// A runtime sharing `inflight_budget` concurrent ops across all
    /// tenants. The budget is what creates fairness: tenants contend
    /// for slots, and the scheduler hands free slots to whoever is
    /// furthest below its weighted share.
    ///
    /// # Panics
    ///
    /// Panics if `inflight_budget` is zero.
    #[must_use]
    pub fn new(inflight_budget: usize) -> Runtime {
        Runtime {
            inner: Arc::new(Mutex::new(Arbiter::new(inflight_budget))),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Arbiter> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Registers a tenant.
    ///
    /// # Panics
    ///
    /// Panics if the spec's weight, QD cap or backlog cap is zero.
    #[must_use]
    pub fn register(&self, spec: TenantSpec) -> TenantHandle {
        let id = self.lock().register(&spec);
        TenantHandle {
            runtime: self.clone(),
            id,
        }
    }

    /// One tenant's counters, point in time.
    #[must_use]
    pub fn tenant_stats(&self, id: TenantId) -> TenantStats {
        self.lock().tenant_stats(id)
    }

    /// The whole runtime's counters, point in time.
    #[must_use]
    pub fn snapshot(&self) -> RuntimeSnapshot {
        let arbiter = self.lock();
        RuntimeSnapshot {
            inflight_budget: arbiter.budget(),
            in_flight_ops: arbiter.in_flight_total(),
            tenants: arbiter.all_stats(),
        }
    }

    /// Ops in flight across all tenants, right now.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.lock().in_flight_total()
    }

    /// The highest open-op count (backlog + in flight) any tenant
    /// other than `excluding` has reached since the previous call,
    /// restarting the sampling window (each tenant's window restarts
    /// at its current open count, so still-open pressure remains
    /// visible). Background drivers use this to sense foreground
    /// client pressure without counting their own tenant's
    /// submissions — the rekey driver's backoff signal in tenant mode.
    pub fn take_demand_peak_excluding(&self, excluding: TenantId) -> u64 {
        self.lock().take_demand_peak_excluding(excluding)
    }
}

impl fmt::Debug for Runtime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let arbiter = self.lock();
        write!(
            f,
            "Runtime({} in flight / budget {})",
            arbiter.in_flight_total(),
            arbiter.budget()
        )
    }
}

/// A registered tenant: the key for attaching queues and reading
/// stats. Clones refer to the same tenant.
#[derive(Clone)]
pub struct TenantHandle {
    runtime: Runtime,
    id: TenantId,
}

impl TenantHandle {
    /// The tenant's id.
    #[must_use]
    pub fn id(&self) -> TenantId {
        self.id
    }

    /// The owning runtime.
    #[must_use]
    pub fn runtime(&self) -> &Runtime {
        &self.runtime
    }

    /// This tenant's counters, point in time.
    #[must_use]
    pub fn stats(&self) -> TenantStats {
        self.runtime.tenant_stats(self.id)
    }

    /// Puts `inner` under this tenant's arbitration. All IO to the
    /// queue now flows through admission control and the fair
    /// scheduler; drop the [`TenantQueue`] to release the tenant for
    /// a new attachment (undispatched work is abandoned then).
    ///
    /// # Panics
    ///
    /// Panics if the tenant already has an attached queue: the
    /// arbiter's per-tenant backlog is a single FIFO, so two queues
    /// interleaving in it would dispatch each other's grants.
    #[must_use]
    pub fn attach<Q: ArbitratedQueue>(&self, inner: Q) -> TenantQueue<Q> {
        let bell = inner.doorbell();
        self.runtime.lock().attach(self.id, Arc::clone(&bell));
        TenantQueue {
            runtime: self.runtime.clone(),
            id: self.id,
            inner,
            bell,
            backlog: VecDeque::new(),
            dispatched: HashMap::new(),
            staged: Vec::new(),
            next_outer: 0,
        }
    }
}

impl fmt::Debug for TenantHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TenantHandle({})", self.id)
    }
}

/// The payload cost of an op in bytes (min 1, so zero-length ops
/// still advance the fairness clock).
fn op_cost(op: &IoOp) -> u64 {
    let bytes = match op {
        IoOp::Write { data, .. } => data.len() as u64,
        IoOp::Writev { buffers, .. } => buffers.iter().map(|b| b.len() as u64).sum(),
        IoOp::Read { len, .. } => *len,
        IoOp::Readv { lens, .. } => lens.iter().sum(),
    };
    bytes.max(1)
}

/// A tenant-arbitrated queue: same submit/poll/wait/fence surface as
/// the queue it wraps, with admission control at submit and dispatch
/// gated by the runtime's fair scheduler. Completion tokens are the
/// wrapper's own (allotted at submit, delivered in results with the
/// inner queue's tokens rewritten).
///
/// Ops whose dispatch the inner queue rejects synchronously (e.g. out
/// of bounds) surface that error from whichever pumping call performs
/// the dispatch — not necessarily the `submit` that queued them.
pub struct TenantQueue<Q: ArbitratedQueue> {
    runtime: Runtime,
    id: TenantId,
    inner: Q,
    bell: Arc<Doorbell>,
    /// Admitted, undispatched ops with their wrapper completion ids.
    backlog: VecDeque<(u64, IoOp)>,
    /// Inner completion id → (wrapper completion id, cost bytes).
    dispatched: HashMap<u64, (u64, u64)>,
    /// Reaped results not yet delivered to the caller (a dispatch
    /// pump may reap while waiting for backlog slots).
    staged: Vec<IoResult>,
    next_outer: u64,
}

impl<Q: ArbitratedQueue> TenantQueue<Q> {
    /// The wrapped queue.
    #[must_use]
    pub fn inner(&self) -> &Q {
        &self.inner
    }

    /// Mutable access to the wrapped queue — for drivers that need
    /// queue-type-specific calls between submissions (the rekey driver
    /// advances the key-epoch boundary mid-window). Submitting to the
    /// inner queue directly bypasses arbitration; don't.
    #[must_use]
    pub fn inner_mut(&mut self) -> &mut Q {
        &mut self.inner
    }

    /// This queue's tenant.
    #[must_use]
    pub fn tenant(&self) -> TenantId {
        self.id
    }

    /// Ops admitted and not yet dispatched.
    #[must_use]
    pub fn backlog(&self) -> usize {
        self.backlog.len()
    }

    /// Ops dispatched and not yet reaped.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.inner.in_flight()
    }

    /// Submits one op through admission control; returns its wrapper
    /// completion token. The op dispatches now if the scheduler grants
    /// a slot, otherwise it queues and later pumping calls dispatch it.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::AdmissionDenied`] at the backlog cap; dispatch
    /// errors from the inner queue if the op (or an earlier queued
    /// one) dispatches within this call. When the dispatch error
    /// belongs to an *earlier* queued op, the op this call queued is
    /// un-admitted again — an error return never leaves behind an
    /// admitted op whose completion token the caller did not receive.
    pub fn submit(&mut self, op: IoOp) -> Result<Completion, RuntimeError<Q::Error>> {
        let cost = op_cost(&op);
        self.runtime
            .lock()
            .try_admit(self.id, cost)
            .map_err(|(backlog, cap)| RuntimeError::AdmissionDenied {
                tenant: self.id,
                backlog,
                cap,
            })?;
        let outer = self.next_outer;
        self.next_outer += 1;
        self.backlog.push_back((outer, op));
        if let Err(e) = self.pump() {
            // Dispatch is FIFO and aborts on the first failure, so if
            // the op queued above is still the newest backlog entry
            // the error was an earlier op's: revoke the fresh
            // admission (and its token) instead of stranding it. If
            // the failing op *was* this one, pump already refunded it
            // everywhere and the error speaks for itself.
            if self.backlog.back().is_some_and(|&(id, _)| id == outer) {
                self.backlog.pop_back();
                self.next_outer = outer;
                self.runtime.lock().unadmit_newest(self.id);
            }
            return Err(e);
        }
        Ok(Completion::from_id(outer))
    }

    /// Like [`TenantQueue::submit`], but blocks at the backlog cap
    /// instead of failing: pumps dispatch (and reaps, staging any
    /// results for the next reap call) until a backlog slot frees up.
    /// The submit primitive for background drivers that prefer
    /// throttling to error handling.
    ///
    /// # Errors
    ///
    /// As [`TenantQueue::wait_any`] — never
    /// [`RuntimeError::AdmissionDenied`].
    pub fn submit_blocking(&mut self, op: IoOp) -> Result<Completion, RuntimeError<Q::Error>> {
        loop {
            let seen = self.bell.generation();
            let hint = self.pump()?;
            if !self.runtime.lock().backlog_full(self.id) {
                break;
            }
            let reaped = self.reap_into_staged()?;
            if !self.runtime.lock().backlog_full(self.id) {
                break;
            }
            if reaped > 0 {
                // The reap freed slots; re-pump before parking.
                continue;
            }
            self.park(seen, hint)?;
        }
        self.submit(op)
    }

    /// Dispatches whatever the scheduler currently grants; returns the
    /// park hint of the final (empty) claim.
    fn pump(&mut self) -> Result<ParkHint, RuntimeError<Q::Error>> {
        loop {
            let (granted, hint) = self.runtime.lock().claim(self.id);
            if granted == 0 {
                return Ok(hint);
            }
            for done in 0..granted {
                // vdisk-lint: allow(hot-path-panic) reason="the arbiter granted against this wrapper's own backlog mirror under the runtime lock"
                let (outer, op) = self.backlog.pop_front().expect("granted within backlog");
                let cost = op_cost(&op);
                match self.inner.submit_direct(op) {
                    Ok(completion) => {
                        self.dispatched.insert(completion.id(), (outer, cost));
                    }
                    Err(e) => {
                        // The failing op's slot is refunded outright;
                        // the rest of this grant — still at the front
                        // of `self.backlog` — goes back to the
                        // arbiter's backlog mirror, or those ops would
                        // count in flight forever while no longer
                        // being tracked for dispatch.
                        let leftover: Vec<u64> = self
                            .backlog
                            .iter()
                            .take(granted - done - 1)
                            .map(|(_, op)| op_cost(op))
                            .collect();
                        let mut arbiter = self.runtime.lock();
                        arbiter.dispatch_failed(self.id, cost);
                        arbiter.dispatch_aborted(self.id, &leftover);
                        return Err(RuntimeError::Queue(e));
                    }
                }
            }
        }
    }

    /// Reaps the inner queue into the staging buffer, rewriting
    /// completion tokens and reporting per-tenant totals. Returns the
    /// number of ops reaped: a positive count frees scheduler slots,
    /// so callers must re-pump before parking (the runtime rings
    /// *other* tenants on completions — never the reaping thread,
    /// which is already awake).
    fn reap_into_staged(&mut self) -> Result<usize, RuntimeError<Q::Error>> {
        let results = match self.inner.poll_direct() {
            Ok(results) => results,
            Err(e) => {
                // The inner queue consumed the failing op(s) with the
                // error; refund their slots (and drop their dispatch
                // tracking) or the shared budget leaks one slot per
                // failure and the tenant's in-flight count never
                // drains.
                let failed = self.inner.take_failed();
                let mut ops = 0usize;
                for id in failed {
                    if self.dispatched.remove(&id).is_some() {
                        ops += 1;
                    }
                }
                self.runtime.lock().fail(self.id, ops);
                return Err(RuntimeError::Queue(e));
            }
        };
        if results.is_empty() {
            return Ok(0);
        }
        let mut ops = 0usize;
        let mut bytes = 0u64;
        let mut exec = ExecStats::default();
        for mut result in results {
            let (outer, cost) = self
                .dispatched
                .remove(&result.completion.id())
                // vdisk-lint: allow(hot-path-panic) reason="the inner queue only completes ops this wrapper submitted; ids are recorded at dispatch"
                .expect("inner completion was dispatched by this wrapper");
            result.completion = Completion::from_id(outer);
            ops += 1;
            bytes += cost;
            exec.absorb(&result.stats);
            self.staged.push(result);
        }
        self.runtime.lock().complete(self.id, ops, bytes, &exec);
        Ok(ops)
    }

    fn take_staged(&mut self) -> Vec<IoResult> {
        std::mem::take(&mut self.staged)
    }

    /// Pumps dispatch and reaps everything finished, without blocking.
    ///
    /// # Errors
    ///
    /// Dispatch and reap errors of the inner queue.
    pub fn poll(&mut self) -> Result<Vec<IoResult>, RuntimeError<Q::Error>> {
        self.pump()?;
        self.reap_into_staged()?;
        Ok(self.take_staged())
    }

    /// Blocks until at least one completion is available (parking on
    /// the doorbell, never spinning), then reaps everything finished.
    /// Returns empty only when the tenant has nothing queued and
    /// nothing in flight.
    ///
    /// # Errors
    ///
    /// As [`TenantQueue::poll`], plus [`RuntimeError::Starved`] when
    /// queued work can never dispatch (zero-rate bucket out of
    /// tokens) and nothing is in flight to wait for.
    pub fn wait_any(&mut self) -> Result<Vec<IoResult>, RuntimeError<Q::Error>> {
        loop {
            let seen = self.bell.generation();
            let hint = self.pump()?;
            self.reap_into_staged()?;
            if !self.staged.is_empty() {
                return Ok(self.take_staged());
            }
            if self.backlog.is_empty() && self.inner.in_flight() == 0 {
                return Ok(Vec::new());
            }
            self.park(seen, hint)?;
        }
    }

    /// Parks on the doorbell until something changes: a completion
    /// (shard workers ring per landed part), a scheduling change (the
    /// runtime rings on freed slots), or — for token-gated backlogs —
    /// the refill ETA.
    fn park(&mut self, seen: u64, hint: ParkHint) -> Result<(), RuntimeError<Q::Error>> {
        if self.inner.in_flight() > 0 {
            self.bell.wait_past(seen);
            return Ok(());
        }
        match hint {
            ParkHint::Tokens(eta) => {
                self.bell.wait_past_for(seen, eta.max(MIN_TOKEN_PARK));
            }
            ParkHint::Starved => {
                return Err(RuntimeError::Starved { tenant: self.id });
            }
            _ => {
                self.bell.wait_past(seen);
            }
        }
        Ok(())
    }

    /// Parks until every queued op has *dispatched* (not completed).
    /// Results reaped while waiting stay staged for the next reap
    /// call. Drivers that must order a state change after all queued
    /// submissions use this (the rekey driver's key-epoch boundary
    /// advance).
    ///
    /// # Errors
    ///
    /// As [`TenantQueue::wait_any`].
    pub fn dispatch_backlog(&mut self) -> Result<(), RuntimeError<Q::Error>> {
        loop {
            let seen = self.bell.generation();
            let hint = self.pump()?;
            if self.backlog.is_empty() {
                return Ok(());
            }
            let reaped = self.reap_into_staged()?;
            if self.backlog.is_empty() {
                return Ok(());
            }
            if reaped > 0 {
                continue;
            }
            self.park(seen, hint)?;
        }
    }

    /// Full barrier: dispatches and completes everything queued, then
    /// returns all results in wrapper-submission order.
    ///
    /// # Errors
    ///
    /// As [`TenantQueue::wait_any`].
    pub fn fence(&mut self) -> Result<Vec<IoResult>, RuntimeError<Q::Error>> {
        loop {
            let seen = self.bell.generation();
            let hint = self.pump()?;
            let reaped = self.reap_into_staged()?;
            if self.backlog.is_empty() && self.inner.in_flight() == 0 {
                let mut results = self.take_staged();
                results.sort_by_key(|r| r.completion.id());
                return Ok(results);
            }
            if reaped > 0 {
                continue;
            }
            self.park(seen, hint)?;
        }
    }
}

/// Floor for timed token parks: sub-millisecond ETAs would make the
/// park a near-spin.
const MIN_TOKEN_PARK: std::time::Duration = std::time::Duration::from_millis(1);

impl<Q: ArbitratedQueue> Drop for TenantQueue<Q> {
    fn drop(&mut self) {
        self.runtime.lock().detach(self.id);
    }
}

impl<Q: ArbitratedQueue> fmt::Debug for TenantQueue<Q> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TenantQueue({}, {} queued, {} in flight)",
            self.id,
            self.backlog.len(),
            self.inner.in_flight()
        )
    }
}
