//! The arbiter: weighted fair scheduling over a shared in-flight
//! budget, per-tenant token buckets, and the bookkeeping behind the
//! runtime's stats snapshots.
//!
//! The scheduler is a classic virtual-time WFQ. Every tenant carries a
//! virtual clock that advances by `cost / weight` per dispatched op
//! (cost = payload bytes, min 1), so at any instant the backlogged
//! tenant with the smallest clock is the one furthest below its fair
//! share. Free in-flight slots are allocated by simulating that rule
//! over *all* backlogged tenants — the claiming tenant realizes only
//! its own share, the rest of the allocation acts as a reservation so
//! a hot tenant cannot claim slots the clock says belong to a quieter
//! one.
//!
//! Everything here runs under the runtime's single mutex; physical
//! dispatch never happens here. A tenant claims grants and then
//! submits on its own thread, which is what lets hundreds of queues
//! share one arbiter without the arbiter owning any queue.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};
use vdisk_rados::{Doorbell, ExecStats};

use super::{RateLimit, TenantId, TenantSpec, TenantStats};

/// Sub-byte precision for the virtual clocks: costs are scaled up
/// before dividing by the weight so small ops under large weights
/// still advance the clock.
const VTIME_SHIFT: u32 = 16;

/// Why a claim came back empty — tells the owning thread how to park.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ParkHint {
    /// Nothing queued: the tenant is idle.
    Idle,
    /// Blocked on slots (budget, QD cap, or fair-share reservation):
    /// a completion will ring the doorbell.
    Completions,
    /// Blocked on token refill: re-claim after roughly this long.
    Tokens(Duration),
    /// Blocked on tokens that will never refill (zero-rate bucket):
    /// waiting is hopeless unless something is already in flight.
    Starved,
}

/// Token bucket in bytes. `rate == 0` means no refill — the burst is
/// all the tenant ever gets (deterministic tests rely on this).
struct TokenBucket {
    tokens: f64,
    burst: f64,
    rate: f64,
    last: Instant,
}

impl TokenBucket {
    fn new(limit: &RateLimit) -> TokenBucket {
        let burst = limit.burst_bytes as f64;
        TokenBucket {
            tokens: burst,
            burst,
            rate: limit.bytes_per_sec as f64,
            last: Instant::now(),
        }
    }

    fn refill(&mut self) {
        if self.rate > 0.0 {
            let now = Instant::now();
            let dt = now.duration_since(self.last).as_secs_f64();
            self.tokens = (self.tokens + dt * self.rate).min(self.burst);
            self.last = now;
        }
    }

    /// Time until `need` tokens will have accumulated, or `None` for a
    /// zero-rate bucket.
    fn time_until(&self, need: f64) -> Option<Duration> {
        if self.rate <= 0.0 {
            return None;
        }
        let deficit = (need - self.tokens).max(0.0);
        Some(Duration::from_secs_f64(deficit / self.rate))
    }
}

/// Running per-tenant totals behind [`TenantStats`].
#[derive(Default)]
struct Totals {
    admitted_ops: u64,
    rejected_ops: u64,
    dispatched_ops: u64,
    completed_ops: u64,
    failed_ops: u64,
    completed_bytes: u64,
    exec: ExecStats,
}

struct TenantState {
    name: String,
    weight: u32,
    qd_cap: usize,
    backlog_cap: usize,
    bucket: Option<TokenBucket>,
    /// Cost (bytes, min 1) of each admitted-but-undispatched op, in
    /// submission order — the arbiter-side mirror of the tenant
    /// queue's backlog.
    backlog: VecDeque<u64>,
    in_flight: usize,
    vtime: u128,
    /// Highest open-op count (backlog + in flight) since the last
    /// [`Arbiter::take_demand_peak_excluding`] sample — the runtime's
    /// own pressure signal, per tenant, so a background driver can
    /// sense foreground demand without counting its own submissions.
    demand_peak: u64,
    /// Whether a `TenantQueue` currently owns this tenant's dispatch.
    attached: bool,
    /// The attached queue's doorbell, rung on grant-affecting changes.
    bell: Option<Arc<Doorbell>>,
    totals: Totals,
}

impl TenantState {
    /// Active tenants pin the virtual clock floor: a tenant with work
    /// queued or in flight is competing right now.
    fn is_active(&self) -> bool {
        !self.backlog.is_empty() || self.in_flight > 0
    }

    fn vtime_step(&self, cost: u64) -> u128 {
        (u128::from(cost) << VTIME_SHIFT) / u128::from(self.weight.max(1))
    }

    /// Folds the current open-op count into the demand-peak window.
    /// Demand only grows at admission (dispatch moves an op from
    /// backlog to in-flight without changing the sum), so this is
    /// called from `try_admit` alone.
    fn note_demand(&mut self) {
        let demand = (self.backlog.len() + self.in_flight) as u64;
        self.demand_peak = self.demand_peak.max(demand);
    }
}

pub(crate) struct Arbiter {
    budget: usize,
    in_flight_total: usize,
    tenants: Vec<TenantState>,
}

impl Arbiter {
    pub(crate) fn new(budget: usize) -> Arbiter {
        assert!(budget > 0, "runtime in-flight budget must be at least 1");
        Arbiter {
            budget,
            in_flight_total: 0,
            tenants: Vec::new(),
        }
    }

    /// The state for a registered tenant. `TenantId`s are minted only
    /// by [`Arbiter::register`] and the tenant table is append-only,
    /// so the index is in range by construction.
    fn tenant(&self, id: TenantId) -> &TenantState {
        // vdisk-lint: allow(hot-path-index) reason="TenantId is minted by register() and the table is append-only; in range by construction"
        &self.tenants[id.0 as usize]
    }

    /// Mutable variant of [`Arbiter::tenant`]; same index invariant.
    fn tenant_mut(&mut self, id: TenantId) -> &mut TenantState {
        // vdisk-lint: allow(hot-path-index) reason="TenantId is minted by register() and the table is append-only; in range by construction"
        &mut self.tenants[id.0 as usize]
    }

    pub(crate) fn budget(&self) -> usize {
        self.budget
    }

    pub(crate) fn in_flight_total(&self) -> usize {
        self.in_flight_total
    }

    pub(crate) fn register(&mut self, spec: &TenantSpec) -> TenantId {
        assert!(spec.weight >= 1, "tenant weight must be at least 1");
        assert!(spec.qd_cap >= 1, "tenant QD cap must be at least 1");
        assert!(
            spec.backlog_cap >= 1,
            "tenant backlog cap must be at least 1"
        );
        // vdisk-lint: allow(hot-path-panic) reason="registration is setup-path; more than u32::MAX tenants is a configuration bug, not an IO fault"
        let id = TenantId(u32::try_from(self.tenants.len()).expect("tenant count fits u32"));
        self.tenants.push(TenantState {
            name: spec.name.clone(),
            weight: spec.weight,
            qd_cap: spec.qd_cap,
            backlog_cap: spec.backlog_cap,
            bucket: spec.rate.as_ref().map(TokenBucket::new),
            backlog: VecDeque::new(),
            in_flight: 0,
            vtime: 0,
            demand_peak: 0,
            attached: false,
            bell: None,
            totals: Totals::default(),
        });
        id
    }

    pub(crate) fn attach(&mut self, id: TenantId, bell: Arc<Doorbell>) {
        let state = self.tenant_mut(id);
        assert!(
            !state.attached,
            "tenant {} already has an attached queue",
            state.name
        );
        state.attached = true;
        state.bell = Some(bell);
    }

    /// Releases a dropped queue's claim on the tenant: queued work
    /// disappears and its in-flight slots return to the pool (the ops
    /// still complete at the cluster; nobody will report them).
    pub(crate) fn detach(&mut self, id: TenantId) {
        let state = self.tenant_mut(id);
        state.attached = false;
        state.bell = None;
        state.backlog.clear();
        let freed = std::mem::take(&mut state.in_flight);
        self.in_flight_total -= freed;
        self.ring_backlogged(Some(id));
    }

    /// Admission control at submit: rejects when the tenant's backlog
    /// cap is reached, otherwise queues the op's cost.
    pub(crate) fn try_admit(&mut self, id: TenantId, cost: u64) -> Result<(), (usize, usize)> {
        // The virtual clock floor must be read before the borrow below.
        let floor = self.active_vtime_floor(id);
        let state = self.tenant_mut(id);
        if state.backlog.len() >= state.backlog_cap {
            state.totals.rejected_ops += 1;
            return Err((state.backlog.len(), state.backlog_cap));
        }
        if !state.is_active() {
            // Re-activation: an idle tenant's clock rejoins at the
            // active floor, so sitting out does not bank credit.
            if let Some(floor) = floor {
                state.vtime = state.vtime.max(floor);
            }
        }
        state.backlog.push_back(cost.max(1));
        state.totals.admitted_ops += 1;
        state.note_demand();
        Ok(())
    }

    /// Revokes the most recent admission for `id`: the tenant queue's
    /// `submit` un-admits the op it just queued when pumping an
    /// *earlier* op's dispatch fails, so an error return never strands
    /// an admitted op whose completion token the caller never saw.
    pub(crate) fn unadmit_newest(&mut self, id: TenantId) {
        let state = self.tenant_mut(id);
        // vdisk-lint: allow(hot-path-panic) reason="called only by submit immediately after its own try_admit succeeded, under the same runtime lock"
        state.backlog.pop_back().expect("an admitted op to revoke");
        state.totals.admitted_ops -= 1;
    }

    /// Whether a submit for `id` would be rejected right now.
    pub(crate) fn backlog_full(&self, id: TenantId) -> bool {
        let state = self.tenant(id);
        state.backlog.len() >= state.backlog_cap
    }

    fn active_vtime_floor(&self, excluding: TenantId) -> Option<u128> {
        self.tenants
            .iter()
            .enumerate()
            .filter(|(i, t)| *i != excluding.0 as usize && t.is_active())
            .map(|(_, t)| t.vtime)
            .min()
    }

    /// Allocates the free budget over every backlogged tenant in
    /// virtual-time order and realizes the claiming tenant's share:
    /// its granted ops leave the backlog mirror and count in flight.
    /// Other tenants' shares are reservations — they realize them on
    /// their own claims.
    pub(crate) fn claim(&mut self, id: TenantId) -> (usize, ParkHint) {
        for tenant in &mut self.tenants {
            if let Some(bucket) = tenant.bucket.as_mut() {
                bucket.refill();
            }
        }
        let free = self.budget - self.in_flight_total;
        let me = id.0 as usize;

        // Scratch view of every backlogged tenant for the simulation.
        struct Scratch {
            idx: usize,
            vtime: u128,
            pos: usize,
            in_flight: usize,
            tokens: Option<f64>,
        }
        let mut scratch: Vec<Scratch> = self
            .tenants
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.backlog.is_empty())
            .map(|(idx, t)| Scratch {
                idx,
                vtime: t.vtime,
                pos: 0,
                in_flight: t.in_flight,
                tokens: t.bucket.as_ref().map(|b| b.tokens),
            })
            .collect();

        let mut granted = 0usize;
        for _ in 0..free {
            let next = scratch
                .iter_mut()
                .filter(|s| {
                    // vdisk-lint: allow(hot-path-index) reason="s.idx comes from enumerate() over this same tenants vec"
                    let t = &self.tenants[s.idx];
                    s.pos < t.backlog.len()
                        && s.in_flight < t.qd_cap
                        && s.tokens
                            // vdisk-lint: allow(hot-path-index) reason="guarded by the s.pos < backlog.len() conjunct on the line above"
                            .is_none_or(|tokens| tokens >= t.backlog[s.pos] as f64)
                })
                .min_by_key(|s| (s.vtime, s.idx));
            let Some(next) = next else { break };
            // vdisk-lint: allow(hot-path-index) reason="next.idx comes from enumerate() over this same tenants vec"
            let tenant = &self.tenants[next.idx];
            // vdisk-lint: allow(hot-path-index) reason="next passed the s.pos < backlog.len() filter this iteration"
            let cost = tenant.backlog[next.pos];
            next.vtime += tenant.vtime_step(cost);
            next.pos += 1;
            next.in_flight += 1;
            if let Some(tokens) = next.tokens.as_mut() {
                *tokens -= cost as f64;
            }
            if next.idx == me {
                granted += 1;
            }
        }

        // Realize the claimer's share.
        // vdisk-lint: allow(hot-path-index) reason="me is the claimer's own enumerate() index into this vec"
        let state = &mut self.tenants[me];
        for _ in 0..granted {
            // vdisk-lint: allow(hot-path-panic) reason="granted was counted against this backlog under the same lock a few lines up"
            let cost = state.backlog.pop_front().expect("granted within backlog");
            state.vtime += state.vtime_step(cost);
            state.in_flight += 1;
            state.totals.dispatched_ops += 1;
            if let Some(bucket) = state.bucket.as_mut() {
                bucket.tokens -= cost as f64;
            }
        }
        self.in_flight_total += granted;

        let hint = self.park_hint(me, granted);
        (granted, hint)
    }

    fn park_hint(&self, me: usize, granted: usize) -> ParkHint {
        // vdisk-lint: allow(hot-path-index) reason="me is the claimer's own enumerate() index into this vec"
        let state = &self.tenants[me];
        let Some(&head_cost) = state.backlog.front() else {
            return ParkHint::Idle;
        };
        if granted > 0 {
            // Progress was made; the caller will re-claim, not park.
            return ParkHint::Completions;
        }
        let head = head_cost as f64;
        if let Some(bucket) = state.bucket.as_ref() {
            if bucket.tokens < head && state.in_flight < state.qd_cap {
                return match bucket.time_until(head) {
                    Some(eta) => ParkHint::Tokens(eta),
                    None => ParkHint::Starved,
                };
            }
        }
        ParkHint::Completions
    }

    /// Records a dispatch the inner queue rejected synchronously (out
    /// of bounds): the slot returns to the pool and the tokens are
    /// refunded.
    pub(crate) fn dispatch_failed(&mut self, id: TenantId, cost: u64) {
        let state = self.tenant_mut(id);
        state.in_flight -= 1;
        state.totals.dispatched_ops -= 1;
        if let Some(bucket) = state.bucket.as_mut() {
            bucket.tokens = (bucket.tokens + cost.max(1) as f64).min(bucket.burst);
        }
        self.in_flight_total -= 1;
        self.ring_backlogged(Some(id));
    }

    /// Returns a claim's granted-but-undispatched remainder after a
    /// dispatch failure aborted it mid-grant: each cost goes back to
    /// the *front* of the backlog mirror in submission order (the ops
    /// are still the oldest entries of the wrapper's backlog), and the
    /// realized slots, clock advance and tokens are all refunded —
    /// leaving wrapper and arbiter state in sync so the ops dispatch
    /// on a later pump instead of leaking shared budget forever.
    pub(crate) fn dispatch_aborted(&mut self, id: TenantId, costs: &[u64]) {
        if costs.is_empty() {
            return;
        }
        let state = self.tenant_mut(id);
        for &cost in costs.iter().rev() {
            let step = state.vtime_step(cost);
            state.backlog.push_front(cost);
            state.vtime = state.vtime.saturating_sub(step);
            if let Some(bucket) = state.bucket.as_mut() {
                bucket.tokens = (bucket.tokens + cost as f64).min(bucket.burst);
            }
        }
        state.in_flight -= costs.len();
        state.totals.dispatched_ops -= costs.len() as u64;
        self.in_flight_total -= costs.len();
        self.ring_backlogged(Some(id));
    }

    /// The highest open-op count (backlog + in flight) any tenant
    /// other than `excluding` reached since its window last restarted,
    /// maxed across those tenants; every sampled window then restarts
    /// at the tenant's current open count, so still-open pressure
    /// stays visible to the next sample.
    pub(crate) fn take_demand_peak_excluding(&mut self, excluding: TenantId) -> u64 {
        let mut peak = 0;
        for (idx, tenant) in self.tenants.iter_mut().enumerate() {
            if idx == excluding.0 as usize {
                continue;
            }
            peak = peak.max(tenant.demand_peak);
            tenant.demand_peak = (tenant.backlog.len() + tenant.in_flight) as u64;
        }
        peak
    }

    /// Folds reaped completions back in: slots free up, per-tenant
    /// totals absorb the per-op [`ExecStats`] deltas, and every other
    /// backlogged tenant's doorbell rings — freed slots may turn their
    /// next claim positive.
    pub(crate) fn complete(&mut self, id: TenantId, ops: usize, bytes: u64, exec: &ExecStats) {
        let state = self.tenant_mut(id);
        state.in_flight -= ops;
        state.totals.completed_ops += ops as u64;
        state.totals.completed_bytes += bytes;
        state.totals.exec.absorb(exec);
        self.in_flight_total -= ops;
        self.ring_backlogged(Some(id));
    }

    /// Folds ops the inner queue consumed with a reap error back in:
    /// their slots free up exactly like completions (freeing the
    /// shared budget and ringing other backlogged tenants), but the
    /// ops count as failed — no bytes, no exec stats, nothing
    /// finished. Tokens stay spent: the op really dispatched and
    /// consumed cluster work before dying.
    pub(crate) fn fail(&mut self, id: TenantId, ops: usize) {
        if ops == 0 {
            return;
        }
        let state = self.tenant_mut(id);
        state.in_flight -= ops;
        state.totals.failed_ops += ops as u64;
        self.in_flight_total -= ops;
        self.ring_backlogged(Some(id));
    }

    /// Rings the doorbell of every attached tenant with queued work,
    /// optionally skipping one (the caller's own thread is awake).
    fn ring_backlogged(&self, except: Option<TenantId>) {
        for (idx, tenant) in self.tenants.iter().enumerate() {
            if except.is_some_and(|id| id.0 as usize == idx) {
                continue;
            }
            if !tenant.backlog.is_empty() {
                if let Some(bell) = tenant.bell.as_ref() {
                    bell.ring();
                }
            }
        }
    }

    pub(crate) fn tenant_stats(&self, id: TenantId) -> TenantStats {
        let state = self.tenant(id);
        TenantStats {
            id,
            name: state.name.clone(),
            weight: state.weight,
            admitted_ops: state.totals.admitted_ops,
            rejected_ops: state.totals.rejected_ops,
            dispatched_ops: state.totals.dispatched_ops,
            completed_ops: state.totals.completed_ops,
            failed_ops: state.totals.failed_ops,
            completed_bytes: state.totals.completed_bytes,
            backlog_ops: state.backlog.len(),
            in_flight_ops: state.in_flight,
            exec: state.totals.exec,
        }
    }

    pub(crate) fn all_stats(&self) -> Vec<TenantStats> {
        (0..self.tenants.len())
            .map(|i| self.tenant_stats(TenantId(i as u32)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(name: &str, weight: u32) -> TenantSpec {
        TenantSpec::new(name)
            .weight(weight)
            .qd_cap(8)
            .backlog_cap(1024)
    }

    /// Drives the arbiter with a deterministic completion model: every
    /// round each tenant tops up its backlog and claims; the oldest
    /// dispatched op then completes. Returns per-tenant dispatch
    /// counts.
    fn drive_rounds(weights: &[u32], budget: usize, rounds: usize) -> Vec<u64> {
        let mut arb = Arbiter::new(budget);
        let ids: Vec<TenantId> = weights
            .iter()
            .enumerate()
            .map(|(i, w)| arb.register(&spec(&format!("t{i}"), *w)))
            .collect();
        let mut fifo: VecDeque<TenantId> = VecDeque::new();
        for _ in 0..rounds {
            for &id in &ids {
                while arb.tenant_stats(id).backlog_ops < 8 {
                    arb.try_admit(id, 4096).unwrap();
                }
                let (granted, _) = arb.claim(id);
                for _ in 0..granted {
                    fifo.push_back(id);
                }
            }
            if let Some(done) = fifo.pop_front() {
                arb.complete(done, 1, 4096, &ExecStats::default());
            }
        }
        ids.iter()
            .map(|&id| arb.tenant_stats(id).dispatched_ops)
            .collect()
    }

    #[test]
    fn dispatch_shares_track_weights() {
        let counts = drive_rounds(&[3, 1], 4, 400);
        let ratio = counts[0] as f64 / counts[1] as f64;
        assert!(
            (2.0..=4.5).contains(&ratio),
            "3:1 weights must yield ~3:1 dispatches, got {counts:?}"
        );
    }

    #[test]
    fn equal_weights_split_evenly() {
        let counts = drive_rounds(&[2, 2, 2], 6, 600);
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        assert!(
            max / min < 1.5,
            "equal weights must dispatch evenly, got {counts:?}"
        );
    }

    #[test]
    fn idle_tenant_rejoins_at_the_clock_floor_without_banked_credit() {
        let mut arb = Arbiter::new(2);
        let a = arb.register(&spec("a", 1));
        let b = arb.register(&spec("b", 1));
        // A runs alone for a while, advancing its clock.
        for _ in 0..64 {
            arb.try_admit(a, 4096).unwrap();
            let (granted, _) = arb.claim(a);
            assert_eq!(granted, 1);
            arb.complete(a, 1, 4096, &ExecStats::default());
        }
        // B wakes up: its zero clock must be lifted to A's, not let it
        // monopolize the budget for 64 ops of "catch-up".
        for _ in 0..8 {
            arb.try_admit(a, 4096).unwrap();
            arb.try_admit(b, 4096).unwrap();
        }
        let (granted_b, _) = arb.claim(b);
        let (granted_a, _) = arb.claim(a);
        assert_eq!(granted_b, 1, "B gets its fair half of the budget");
        assert_eq!(granted_a, 1, "A keeps its half despite B's backlog");
    }

    #[test]
    fn qd_cap_binds_a_single_tenant() {
        let mut arb = Arbiter::new(16);
        let a = arb.register(&TenantSpec::new("capped").qd_cap(2).backlog_cap(64));
        for _ in 0..8 {
            arb.try_admit(a, 512).unwrap();
        }
        let (granted, hint) = arb.claim(a);
        assert_eq!(granted, 2, "QD cap must bind before the global budget");
        assert_eq!(hint, ParkHint::Completions);
        arb.complete(a, 2, 1024, &ExecStats::default());
        let (granted, _) = arb.claim(a);
        assert_eq!(granted, 2);
    }

    #[test]
    fn zero_rate_bucket_grants_burst_then_starves() {
        let mut arb = Arbiter::new(16);
        let a = arb.register(
            &TenantSpec::new("throttled")
                .backlog_cap(64)
                .qd_cap(16)
                .rate_limit(RateLimit {
                    bytes_per_sec: 0,
                    burst_bytes: 8192,
                }),
        );
        for _ in 0..4 {
            arb.try_admit(a, 4096).unwrap();
        }
        let (granted, hint) = arb.claim(a);
        assert_eq!(granted, 2, "the burst covers exactly two 4 KiB ops");
        assert_eq!(hint, ParkHint::Completions, "grants made this claim");
        let (granted, hint) = arb.claim(a);
        assert_eq!(granted, 0);
        assert_eq!(hint, ParkHint::Starved, "no refill will ever come");
    }

    #[test]
    fn admission_rejects_past_the_backlog_cap() {
        let mut arb = Arbiter::new(4);
        let a = arb.register(&TenantSpec::new("small").backlog_cap(2));
        arb.try_admit(a, 1).unwrap();
        arb.try_admit(a, 1).unwrap();
        assert_eq!(arb.try_admit(a, 1), Err((2, 2)));
        let stats = arb.tenant_stats(a);
        assert_eq!(stats.admitted_ops, 2);
        assert_eq!(stats.rejected_ops, 1);
    }

    #[test]
    fn aborted_grants_return_to_the_backlog_mirror() {
        let mut arb = Arbiter::new(4);
        let a = arb.register(&spec("a", 1));
        for _ in 0..3 {
            arb.try_admit(a, 4096).unwrap();
        }
        let (granted, _) = arb.claim(a);
        assert_eq!(granted, 3);
        // The first dispatch failed synchronously; the two remaining
        // grants were never handed to the inner queue.
        arb.dispatch_failed(a, 4096);
        arb.dispatch_aborted(a, &[4096, 4096]);
        assert_eq!(arb.in_flight_total(), 0, "aborted grants leaked budget");
        let stats = arb.tenant_stats(a);
        assert_eq!(stats.in_flight_ops, 0);
        assert_eq!(stats.backlog_ops, 2, "aborted grants left the mirror");
        assert_eq!(stats.dispatched_ops, 0);
        // The refunded ops are claimable again.
        let (granted, _) = arb.claim(a);
        assert_eq!(granted, 2);
    }

    #[test]
    fn unadmit_newest_revokes_the_last_admission() {
        let mut arb = Arbiter::new(4);
        let a = arb.register(&spec("a", 1));
        arb.try_admit(a, 4096).unwrap();
        arb.try_admit(a, 8192).unwrap();
        arb.unadmit_newest(a);
        let stats = arb.tenant_stats(a);
        assert_eq!(stats.admitted_ops, 1);
        assert_eq!(stats.backlog_ops, 1);
        let (granted, _) = arb.claim(a);
        assert_eq!(granted, 1);
    }

    #[test]
    fn demand_peak_excludes_the_sampler_and_restarts_at_open_demand() {
        let mut arb = Arbiter::new(8);
        let rekey = arb.register(&spec("rekey", 1));
        let client = arb.register(&spec("client", 1));
        for _ in 0..4 {
            arb.try_admit(client, 4096).unwrap();
        }
        for _ in 0..6 {
            arb.try_admit(rekey, 4096).unwrap();
        }
        // The sampler's own demand never counts toward its reading.
        assert_eq!(arb.take_demand_peak_excluding(client), 6);
        assert_eq!(arb.take_demand_peak_excluding(rekey), 4);
        // Still-open demand survives the window restart…
        let (granted, _) = arb.claim(client);
        assert_eq!(granted, 4);
        arb.complete(client, 4, 4 * 4096, &ExecStats::default());
        assert_eq!(arb.take_demand_peak_excluding(rekey), 4);
        // …and a fully drained tenant finally samples as quiet.
        assert_eq!(arb.take_demand_peak_excluding(rekey), 0);
    }

    #[test]
    fn reservation_protects_a_low_depth_tenant() {
        // Budget 2, a hog with a deep backlog and a victim with one op:
        // the hog's claim must leave the victim's fair slot unclaimed.
        let mut arb = Arbiter::new(2);
        let hog = arb.register(&spec("hog", 1));
        let victim = arb.register(&spec("victim", 1));
        for _ in 0..8 {
            arb.try_admit(hog, 4096).unwrap();
        }
        arb.try_admit(victim, 4096).unwrap();
        let (hog_granted, _) = arb.claim(hog);
        assert_eq!(
            hog_granted, 1,
            "the victim's reserved slot must not go to the hog"
        );
        let (victim_granted, _) = arb.claim(victim);
        assert_eq!(victim_granted, 1);
    }
}
