//! Byte-level placement of data and per-sector metadata inside 4 MB
//! objects — the exact arithmetic of the paper's Fig. 2.
//!
//! All three layouts keep the *logical* geometry identical (an object
//! holds `object_size / sector_size` sectors); they differ only in
//! where the ciphertext and the metadata physically live:
//!
//! - **Unaligned** (Fig. 2a): sector k occupies
//!   `[k·(ss+me), k·(ss+me)+ss)` and its metadata follows immediately.
//!   One contiguous extent per IO, but almost every sector straddles a
//!   physical 4 KB boundary → read-modify-write on writes.
//! - **Object end** (Fig. 2b): sector k's data stays at `k·ss` (fully
//!   aligned); its metadata lives at `spo·ss + k·me`, batched with its
//!   neighbors at the object tail.
//! - **OMAP** (Fig. 2c): data stays at `k·ss`; metadata is the value of
//!   key `big_endian(k)` in the object's key-value database.

use crate::config::MetaLayout;

/// Geometry of one encrypted object: sector size, metadata entry size,
/// sectors per object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    /// Encryption sector size in bytes.
    pub sector_size: u64,
    /// Metadata entry size per sector in bytes (0 for the baseline).
    pub meta_entry: u64,
    /// Sectors per object.
    pub sectors_per_object: u64,
}

impl Geometry {
    /// Builds the geometry.
    ///
    /// # Panics
    ///
    /// Panics if `object_size` is not a multiple of `sector_size`.
    #[must_use]
    pub fn new(object_size: u64, sector_size: u64, meta_entry: u64) -> Self {
        assert!(
            object_size.is_multiple_of(sector_size),
            "object size must be a whole number of sectors"
        );
        Geometry {
            sector_size,
            meta_entry,
            sectors_per_object: object_size / sector_size,
        }
    }

    /// Physical extent of the *data* of sectors `[first, first+count)`
    /// under a layout: `(offset, len)` within the object.
    ///
    /// # Panics
    ///
    /// Panics if the sector range exceeds the object.
    #[must_use]
    pub fn data_extent(&self, layout: Option<MetaLayout>, first: u64, count: u64) -> (u64, u64) {
        assert!(
            first + count <= self.sectors_per_object,
            "sector range beyond object"
        );
        match layout {
            // Baseline, object-end and OMAP all keep data at k·ss.
            None | Some(MetaLayout::ObjectEnd) | Some(MetaLayout::Omap) => {
                (first * self.sector_size, count * self.sector_size)
            }
            Some(MetaLayout::Unaligned) => {
                let stride = self.sector_size + self.meta_entry;
                (first * stride, count * stride)
            }
        }
    }

    /// Physical extent of the *metadata* of sectors
    /// `[first, first+count)`; `None` when the layout stores no
    /// separate metadata extent (baseline, unaligned-interleaved,
    /// OMAP).
    #[must_use]
    pub fn meta_extent(
        &self,
        layout: Option<MetaLayout>,
        first: u64,
        count: u64,
    ) -> Option<(u64, u64)> {
        match layout {
            Some(MetaLayout::ObjectEnd) => {
                let base = self.sectors_per_object * self.sector_size;
                Some((base + first * self.meta_entry, count * self.meta_entry))
            }
            _ => None,
        }
    }

    /// OMAP key for a sector's metadata (big-endian, so range queries
    /// iterate sectors in order).
    #[must_use]
    pub fn omap_key(sector_in_object: u64) -> Vec<u8> {
        sector_in_object.to_be_bytes().to_vec()
    }

    /// Inverse of [`Geometry::omap_key`].
    #[must_use]
    pub fn sector_from_omap_key(key: &[u8]) -> Option<u64> {
        if key.len() != 8 {
            return None;
        }
        let mut b = [0u8; 8];
        b.copy_from_slice(key);
        Some(u64::from_be_bytes(b))
    }

    /// Interleaves a contiguous ciphertext run and its packed metadata
    /// run into the unaligned layout's single on-disk extent — used by
    /// the batched write path (one output allocation, none per
    /// sector).
    ///
    /// # Panics
    ///
    /// Panics if the buffer lengths disagree with the geometry.
    #[must_use]
    pub fn interleave_unaligned_run(&self, sectors: &[u8], metas: &[u8]) -> Vec<u8> {
        let ss = self.sector_size as usize;
        let me = self.meta_entry as usize;
        assert_eq!(sectors.len() % ss, 0, "whole sectors only");
        let count = sectors.len() / ss;
        assert_eq!(metas.len(), count * me, "one meta entry per sector");
        let mut out = Vec::with_capacity(count * (ss + me));
        for i in 0..count {
            out.extend_from_slice(&sectors[i * ss..(i + 1) * ss]);
            out.extend_from_slice(&metas[i * me..(i + 1) * me]);
        }
        out
    }

    /// Splits an unaligned-layout extent into `out` (the contiguous
    /// ciphertext run, decrypted in place by the caller) and the
    /// packed metadata run it returns — the flat-buffer inverse of
    /// [`Geometry::interleave_unaligned_run`].
    ///
    /// # Panics
    ///
    /// Panics if `buf` is not a whole number of strides or `out` does
    /// not match its data size.
    #[must_use]
    pub fn deinterleave_unaligned_run(&self, buf: &[u8], out: &mut [u8]) -> Vec<u8> {
        let ss = self.sector_size as usize;
        let me = self.meta_entry as usize;
        let stride = ss + me;
        assert_eq!(buf.len() % stride, 0, "buffer must be whole strides");
        let count = buf.len() / stride;
        assert_eq!(out.len(), count * ss, "output must hold every sector");
        let mut metas = Vec::with_capacity(count * me);
        for (chunk, sector_out) in buf.chunks_exact(stride).zip(out.chunks_exact_mut(ss)) {
            sector_out.copy_from_slice(&chunk[..ss]);
            metas.extend_from_slice(&chunk[ss..]);
        }
        metas
    }

    /// Physical bytes occupied by a full object under a layout
    /// (the paper: unaligned and object-end objects grow slightly
    /// beyond 4 MB).
    #[must_use]
    pub fn object_footprint(&self, layout: Option<MetaLayout>) -> u64 {
        let data = self.sectors_per_object * self.sector_size;
        match layout {
            None => data,
            Some(MetaLayout::Unaligned) | Some(MetaLayout::ObjectEnd) => {
                data + self.sectors_per_object * self.meta_entry
            }
            // OMAP metadata lives in the KV store, not the object.
            Some(MetaLayout::Omap) => data,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB4: u64 = 4 << 20;

    fn geo() -> Geometry {
        Geometry::new(MB4, 4096, 16)
    }

    #[test]
    fn sectors_per_object_default() {
        assert_eq!(geo().sectors_per_object, 1024);
        assert_eq!(Geometry::new(MB4, 512, 16).sectors_per_object, 8192);
    }

    #[test]
    fn baseline_data_extent_is_identity() {
        let g = geo();
        assert_eq!(g.data_extent(None, 0, 1), (0, 4096));
        assert_eq!(g.data_extent(None, 10, 4), (40960, 16384));
        assert_eq!(g.meta_extent(None, 0, 1), None);
    }

    #[test]
    fn unaligned_stride_is_ss_plus_me() {
        let g = geo();
        // The paper's example: each IV stored at the end of its block.
        assert_eq!(g.data_extent(Some(MetaLayout::Unaligned), 0, 1), (0, 4112));
        assert_eq!(
            g.data_extent(Some(MetaLayout::Unaligned), 3, 2),
            (3 * 4112, 2 * 4112)
        );
        // Sector 1's start (4112) is NOT 4 KB aligned — the RMW source.
        assert_ne!(4112 % 4096, 0);
    }

    #[test]
    fn object_end_batches_meta_at_tail() {
        let g = geo();
        assert_eq!(
            g.data_extent(Some(MetaLayout::ObjectEnd), 5, 3),
            (5 * 4096, 3 * 4096)
        );
        assert_eq!(
            g.meta_extent(Some(MetaLayout::ObjectEnd), 5, 3),
            Some((MB4 + 5 * 16, 48))
        );
    }

    #[test]
    fn omap_keys_order_like_sectors() {
        let k5 = Geometry::omap_key(5);
        let k100 = Geometry::omap_key(100);
        assert!(k5 < k100, "BE keys must sort numerically");
        assert_eq!(Geometry::sector_from_omap_key(&k5), Some(5));
        assert_eq!(Geometry::sector_from_omap_key(b"short"), None);
    }

    #[test]
    fn interleave_run_round_trip() {
        let g = geo();
        let sectors: Vec<u8> = (0..3u8).flat_map(|i| vec![i; 4096]).collect();
        let metas: Vec<u8> = (0..3u8).flat_map(|i| vec![0xA0 + i; 16]).collect();
        let buf = g.interleave_unaligned_run(&sectors, &metas);
        assert_eq!(buf.len(), 3 * 4112);
        // Sector k's metadata sits immediately after its data.
        assert_eq!(buf[4096], 0xA0);
        assert_eq!(buf[4112 + 4096], 0xA1);
        let mut out = vec![0u8; sectors.len()];
        let parsed_metas = g.deinterleave_unaligned_run(&buf, &mut out);
        assert_eq!(out, sectors);
        assert_eq!(parsed_metas, metas);
    }

    #[test]
    fn footprints_match_paper_description() {
        let g = geo();
        assert_eq!(g.object_footprint(None), MB4);
        assert_eq!(
            g.object_footprint(Some(MetaLayout::ObjectEnd)),
            MB4 + 1024 * 16
        );
        assert_eq!(
            g.object_footprint(Some(MetaLayout::Unaligned)),
            MB4 + 1024 * 16
        );
        assert_eq!(g.object_footprint(Some(MetaLayout::Omap)), MB4);
    }

    #[test]
    fn whole_object_unaligned_write_is_block_aligned() {
        // §3.3 subtlety: a full-object unaligned write starts at offset
        // 0 and its length (1024 × 4112) is a multiple of 4096, so the
        // *large-IO* unaligned overhead shrinks — matching the paper's
        // converging curves.
        let g = geo();
        let (off, len) = g.data_extent(Some(MetaLayout::Unaligned), 0, 1024);
        assert_eq!(off, 0);
        assert_eq!(len % 4096, 0);
    }

    #[test]
    #[should_panic(expected = "beyond object")]
    fn data_extent_bounds_checked() {
        let _ = geo().data_extent(None, 1020, 10);
    }
}
