//! The per-sector codec: tweak construction, encryption, metadata
//! entry packing, and verified decryption.

use crate::config::{Cipher, EncryptionConfig, KEY_EPOCH_TAG_LEN};
use crate::luks::DerivedKeys;
use crate::{CryptError, Result};
use vdisk_crypto::cbc::CbcEssiv;
use vdisk_crypto::eme2::Eme2;
use vdisk_crypto::gcm::AesGcm;
use vdisk_crypto::hmac::HmacSha256;
use vdisk_crypto::mem::{ct_eq, zeroize};
use vdisk_crypto::rng::IvSource;
use vdisk_crypto::xts::XtsCipher;

/// Whether a sector had ever been written (decided from its metadata;
/// only meaningful for layouts that store metadata).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SectorState {
    /// The sector carries real data.
    Written,
    /// Never written: the buffer has been zero-filled.
    Unwritten,
}

#[derive(Debug)]
enum CipherInstance {
    Xts(XtsCipher),
    Gcm(AesGcm),
    Eme2(Eme2),
    Cbc(CbcEssiv),
}

/// Encrypts/decrypts one sector and packs/unpacks its metadata entry,
/// under the subkeys of **one key epoch** (see [`crate::luks`]): the
/// epoch is stamped into every entry it writes and asserted on every
/// entry it reads. Epoch routing lives in `KeyChain`.
pub(crate) struct SectorCodec {
    config: EncryptionConfig,
    instance: CipherInstance,
    mac_key: Vec<u8>,
    /// The key epoch these subkeys belong to.
    epoch: u32,
}

impl std::fmt::Debug for SectorCodec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SectorCodec")
            .field("cipher", &self.config.cipher)
            .field("epoch", &self.epoch)
            .field("mac_key", &"(32 bytes)")
            .finish()
    }
}

impl Drop for SectorCodec {
    fn drop(&mut self) {
        // The raw MAC subkey is the one field here that is not already
        // a self-zeroizing type; wipe it so a dropped codec (epoch
        // uninstall, rekey rollback) leaves no key bytes behind.
        zeroize(&mut self.mac_key);
    }
}

impl SectorCodec {
    pub(crate) fn new(config: &EncryptionConfig, keys: &DerivedKeys, epoch: u32) -> Result<Self> {
        config.validate()?;
        let instance = match config.cipher {
            Cipher::Aes128Xts | Cipher::Aes256Xts => {
                CipherInstance::Xts(XtsCipher::new(keys.xts.expose())?)
            }
            Cipher::Aes256Gcm => CipherInstance::Gcm(AesGcm::new(keys.gcm.expose())?),
            Cipher::Eme2Aes256 => CipherInstance::Eme2(Eme2::new(keys.eme2.expose())?),
            Cipher::CbcEssiv256 => CipherInstance::Cbc(CbcEssiv::new(keys.cbc.expose())?),
        };
        Ok(SectorCodec {
            config: config.clone(),
            instance,
            mac_key: keys.mac.expose().to_vec(),
            epoch,
        })
    }

    pub(crate) fn meta_entry_len(&self) -> usize {
        self.config.meta_entry_len() as usize
    }

    /// Sector size in bytes.
    pub(crate) fn sector_size(&self) -> usize {
        self.config.sector_size as usize
    }

    /// Builds the XTS/EME2 tweak: random IV (if any) XOR LBA binding
    /// XOR snapshot binding. The LBA lives in bytes 0..8, the write
    /// sequence in bytes 8..16, so a (ciphertext, IV) pair replayed at
    /// another LBA or claimed for another epoch decrypts to noise.
    fn tweak(&self, lba: u64, iv: Option<&[u8; 16]>, seq: u64) -> [u8; 16] {
        let mut tweak = match iv {
            Some(iv) => *iv,
            None => [0u8; 16],
        };
        for (t, b) in tweak.iter_mut().zip(lba.to_le_bytes()) {
            *t ^= b;
        }
        if self.config.snapshot_binding {
            for (t, b) in tweak[8..].iter_mut().zip(seq.to_le_bytes()) {
                *t ^= b;
            }
        }
        tweak
    }

    /// Encrypts `data` (one full sector) in place; returns the
    /// metadata entry to persist (empty for the baseline).
    ///
    /// `write_seq` is the cluster snapshot sequence at write time.
    #[cfg(test)]
    pub(crate) fn encrypt(
        &self,
        lba: u64,
        write_seq: u64,
        data: &mut [u8],
        iv_source: &mut dyn IvSource,
    ) -> Result<Vec<u8>> {
        let mut entry = Vec::with_capacity(self.meta_entry_len());
        self.encrypt_into(lba, write_seq, data, &mut entry, iv_source)?;
        Ok(entry)
    }

    /// Encrypts `data` (one full sector) in place, appending the
    /// metadata entry to persist (nothing for the baseline) onto
    /// `entry` — the allocation-free core of the codec.
    ///
    /// `write_seq` is the cluster snapshot sequence at write time.
    pub(crate) fn encrypt_into(
        &self,
        lba: u64,
        write_seq: u64,
        data: &mut [u8],
        entry: &mut Vec<u8>,
        iv_source: &mut dyn IvSource,
    ) -> Result<()> {
        debug_assert_eq!(data.len() as u32, self.config.sector_size);
        let entry_start = entry.len();
        match &self.instance {
            CipherInstance::Xts(xts) => {
                let iv = self.random_iv(iv_source);
                let tweak = self.tweak(lba, iv.as_ref(), write_seq);
                xts.encrypt_sector(&tweak, data)?;
                if let Some(iv) = iv {
                    entry.extend_from_slice(&iv);
                }
                if self.config.mac {
                    entry.extend_from_slice(&self.mac(lba, write_seq, iv.as_ref(), data));
                }
            }
            CipherInstance::Eme2(eme) => {
                let iv = self.random_iv(iv_source);
                let tweak = self.tweak(lba, iv.as_ref(), write_seq);
                eme.encrypt_sector(&tweak, data)?;
                if let Some(iv) = iv {
                    entry.extend_from_slice(&iv);
                }
                if self.config.mac {
                    entry.extend_from_slice(&self.mac(lba, write_seq, iv.as_ref(), data));
                }
            }
            CipherInstance::Cbc(cbc) => {
                cbc.encrypt_sector(lba, data)?;
                if self.config.mac {
                    entry.extend_from_slice(&self.mac(lba, write_seq, None, data));
                }
            }
            CipherInstance::Gcm(gcm) => {
                let mut nonce = [0u8; 12];
                iv_source.fill(&mut nonce);
                let aad = self.gcm_aad(lba, write_seq);
                let tag = gcm.encrypt(&nonce, &aad, data);
                entry.extend_from_slice(&nonce);
                entry.extend_from_slice(&[0u8; 4]); // pad nonce to 16
                entry.extend_from_slice(&tag);
            }
        }
        if self.config.snapshot_binding {
            entry.extend_from_slice(&write_seq.to_le_bytes());
        }
        if self.config.layout.is_some() {
            // The key-epoch tag closes every stored entry, so reads
            // route the sector to the right master key during (and
            // after) an online rekey.
            entry.extend_from_slice(&self.epoch.to_le_bytes());
        }
        debug_assert_eq!(entry.len() - entry_start, self.meta_entry_len());
        Ok(())
    }

    /// Decrypts `data` in place using the persisted metadata entry.
    ///
    /// `read_seq_limit` is `Some(snap)` when reading from a snapshot:
    /// with snapshot binding enabled, entries claiming a later write
    /// sequence are replays.
    ///
    /// # Errors
    ///
    /// [`CryptError::IntegrityViolation`] on MAC/tag mismatch,
    /// [`CryptError::ReplayDetected`] on snapshot-binding violations,
    /// [`CryptError::HeaderCorrupt`] on malformed entries.
    pub(crate) fn decrypt(
        &self,
        lba: u64,
        read_seq_limit: Option<u64>,
        data: &mut [u8],
        meta: &[u8],
    ) -> Result<SectorState> {
        debug_assert_eq!(data.len() as u32, self.config.sector_size);
        let expected = self.meta_entry_len();
        if expected == 0 {
            // Baseline: nothing stored; decrypt deterministically.
            return self
                .decrypt_baseline(lba, data)
                .map(|()| SectorState::Written);
        }
        if meta.len() != expected {
            return Err(CryptError::HeaderCorrupt(format!(
                "metadata entry is {} bytes, expected {expected}",
                meta.len()
            )));
        }
        // All-zero entry ⇔ never written (a real random IV is zero
        // with probability 2^-128).
        if meta.iter().all(|&b| b == 0) {
            data.fill(0);
            return Ok(SectorState::Unwritten);
        }

        // Strip the key-epoch tag; `KeyChain` already routed this
        // entry to the codec of its epoch.
        let (meta, tag) = meta.split_at(meta.len() - KEY_EPOCH_TAG_LEN as usize);
        debug_assert_eq!(
            u32::from_le_bytes(tag.try_into().expect("4-byte epoch tag")),
            self.epoch,
            "entry routed to the wrong epoch's codec"
        );

        let (entry, seq) = if self.config.snapshot_binding {
            let (body, seq_bytes) = meta.split_at(meta.len() - 8);
            let mut b = [0u8; 8];
            b.copy_from_slice(seq_bytes);
            (body, u64::from_le_bytes(b))
        } else {
            (meta, 0u64)
        };
        if self.config.snapshot_binding {
            if let Some(limit) = read_seq_limit {
                if seq > limit {
                    return Err(CryptError::ReplayDetected { lba });
                }
            }
        }

        match &self.instance {
            CipherInstance::Xts(xts) => {
                let (iv, rest) = self.split_iv(entry);
                if self.config.mac {
                    self.verify_mac(lba, seq, iv.as_ref(), data, rest)?;
                }
                let tweak = self.tweak(lba, iv.as_ref(), seq);
                xts.decrypt_sector(&tweak, data)?;
            }
            CipherInstance::Eme2(eme) => {
                let (iv, rest) = self.split_iv(entry);
                if self.config.mac {
                    self.verify_mac(lba, seq, iv.as_ref(), data, rest)?;
                }
                let tweak = self.tweak(lba, iv.as_ref(), seq);
                eme.decrypt_sector(&tweak, data)?;
            }
            CipherInstance::Cbc(cbc) => {
                if self.config.mac {
                    self.verify_mac(lba, seq, None, data, entry)?;
                }
                cbc.decrypt_sector(lba, data)?;
            }
            CipherInstance::Gcm(gcm) => {
                let nonce = &entry[..12];
                let tag = &entry[16..32];
                let aad = self.gcm_aad(lba, seq);
                gcm.decrypt(nonce, &aad, data, tag)
                    .map_err(|_| CryptError::IntegrityViolation { lba })?;
            }
        }
        Ok(SectorState::Written)
    }

    fn decrypt_baseline(&self, lba: u64, data: &mut [u8]) -> Result<()> {
        match &self.instance {
            CipherInstance::Xts(xts) => {
                let tweak = self.tweak(lba, None, 0);
                xts.decrypt_sector(&tweak, data)?;
            }
            CipherInstance::Eme2(eme) => {
                let tweak = self.tweak(lba, None, 0);
                eme.decrypt_sector(&tweak, data)?;
            }
            CipherInstance::Cbc(cbc) => {
                cbc.decrypt_sector(lba, data)?;
            }
            CipherInstance::Gcm(_) => {
                unreachable!("validation forbids GCM without metadata")
            }
        }
        Ok(())
    }

    fn random_iv(&self, iv_source: &mut dyn IvSource) -> Option<[u8; 16]> {
        if self.config.random_iv {
            Some(iv_source.next_iv16())
        } else {
            None
        }
    }

    /// How many IV-source bytes [`SectorCodec::encrypt_into`] draws per
    /// sector — exactly one `fill` of this length (or none when zero).
    /// Parallel encryption pre-draws `sectors × iv_draw_len()` bytes
    /// serially and replays disjoint slices per lane, reproducing the
    /// serial IV stream bit for bit.
    pub(crate) fn iv_draw_len(&self) -> usize {
        match &self.instance {
            CipherInstance::Gcm(_) => 12,
            CipherInstance::Xts(_) | CipherInstance::Eme2(_) => {
                if self.config.random_iv {
                    16
                } else {
                    0
                }
            }
            CipherInstance::Cbc(_) => 0,
        }
    }

    fn split_iv<'a>(&self, entry: &'a [u8]) -> (Option<[u8; 16]>, &'a [u8]) {
        if self.config.random_iv {
            let mut iv = [0u8; 16];
            iv.copy_from_slice(&entry[..16]);
            (Some(iv), &entry[16..])
        } else {
            (None, entry)
        }
    }

    fn mac(&self, lba: u64, seq: u64, iv: Option<&[u8; 16]>, ciphertext: &[u8]) -> [u8; 16] {
        let mut mac = HmacSha256::new(&self.mac_key);
        mac.update(ciphertext);
        mac.update(&lba.to_le_bytes());
        if self.config.snapshot_binding {
            mac.update(&seq.to_le_bytes());
        }
        if let Some(iv) = iv {
            mac.update(iv);
        }
        let full = mac.finalize();
        let mut out = [0u8; 16];
        out.copy_from_slice(&full[..16]);
        out
    }

    fn verify_mac(
        &self,
        lba: u64,
        seq: u64,
        iv: Option<&[u8; 16]>,
        ciphertext: &[u8],
        stored: &[u8],
    ) -> Result<()> {
        let expected = self.mac(lba, seq, iv, ciphertext);
        if !ct_eq(&expected, stored) {
            return Err(CryptError::IntegrityViolation { lba });
        }
        Ok(())
    }

    fn gcm_aad(&self, lba: u64, seq: u64) -> Vec<u8> {
        let mut aad = lba.to_le_bytes().to_vec();
        if self.config.snapshot_binding {
            aad.extend_from_slice(&seq.to_le_bytes());
        }
        aad
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MetaLayout;
    use vdisk_crypto::mem::SecretBytes;
    use vdisk_crypto::rng::SeededIvSource;

    fn codec(config: EncryptionConfig) -> SectorCodec {
        let master = SecretBytes::from(vec![0x5A; 64]);
        let keys = DerivedKeys::derive(&master, config.cipher);
        SectorCodec::new(&config, &keys, 0).unwrap()
    }

    fn sector(fill: u8) -> Vec<u8> {
        vec![fill; 4096]
    }

    #[test]
    fn baseline_round_trip_no_meta() {
        let c = codec(EncryptionConfig::luks2_baseline());
        let mut rng = SeededIvSource::new(1);
        let mut data = sector(7);
        let entry = c.encrypt(42, 0, &mut data, &mut rng).unwrap();
        assert!(entry.is_empty());
        assert_ne!(data, sector(7));
        assert_eq!(
            c.decrypt(42, None, &mut data, &[]).unwrap(),
            SectorState::Written
        );
        assert_eq!(data, sector(7));
    }

    #[test]
    fn baseline_is_deterministic_random_iv_is_not() {
        let base = codec(EncryptionConfig::luks2_baseline());
        let mut rng = SeededIvSource::new(2);
        let mut a = sector(9);
        let mut b = sector(9);
        base.encrypt(5, 0, &mut a, &mut rng).unwrap();
        base.encrypt(5, 0, &mut b, &mut rng).unwrap();
        assert_eq!(a, b, "LUKS2 baseline: same LBA+data ⇒ same ciphertext");

        let rand = codec(EncryptionConfig::random_iv(MetaLayout::ObjectEnd));
        let mut a = sector(9);
        let mut b = sector(9);
        rand.encrypt(5, 0, &mut a, &mut rng).unwrap();
        rand.encrypt(5, 0, &mut b, &mut rng).unwrap();
        assert_ne!(a, b, "random IV: overwrite leak is gone");
    }

    #[test]
    fn random_iv_round_trip() {
        let c = codec(EncryptionConfig::random_iv(MetaLayout::Omap));
        let mut rng = SeededIvSource::new(3);
        let mut data = sector(0xAB);
        let entry = c.encrypt(100, 0, &mut data, &mut rng).unwrap();
        assert_eq!(entry.len(), 16 + KEY_EPOCH_TAG_LEN as usize);
        assert_eq!(
            c.decrypt(100, None, &mut data, &entry).unwrap(),
            SectorState::Written
        );
        assert_eq!(data, sector(0xAB));
    }

    #[test]
    fn lba_binding_blocks_cross_lba_replay() {
        let c = codec(EncryptionConfig::random_iv(MetaLayout::ObjectEnd));
        let mut rng = SeededIvSource::new(4);
        let mut data = sector(0x11);
        let entry = c.encrypt(7, 0, &mut data, &mut rng).unwrap();
        // Replay ciphertext+IV at another LBA: decrypts to garbage,
        // not the original plaintext.
        let mut replayed = data.clone();
        c.decrypt(8, None, &mut replayed, &entry).unwrap();
        assert_ne!(replayed, sector(0x11));
        // Honest read still works.
        c.decrypt(7, None, &mut data, &entry).unwrap();
        assert_eq!(data, sector(0x11));
    }

    #[test]
    fn all_zero_meta_means_unwritten() {
        let c = codec(EncryptionConfig::random_iv(MetaLayout::ObjectEnd));
        let mut data = sector(0xFF); // garbage from disk
        let state = c.decrypt(0, None, &mut data, &[0u8; 20]).unwrap();
        assert_eq!(state, SectorState::Unwritten);
        assert_eq!(data, sector(0), "buffer zeroed for unwritten sector");
    }

    #[test]
    fn mac_detects_tampering() {
        let c = codec(EncryptionConfig::random_iv(MetaLayout::ObjectEnd).with_mac());
        let mut rng = SeededIvSource::new(5);
        let mut data = sector(0x22);
        let entry = c.encrypt(3, 0, &mut data, &mut rng).unwrap();
        assert_eq!(entry.len(), 32 + KEY_EPOCH_TAG_LEN as usize);
        data[100] ^= 1;
        assert!(matches!(
            c.decrypt(3, None, &mut data, &entry),
            Err(CryptError::IntegrityViolation { lba: 3 })
        ));
    }

    #[test]
    fn mac_detects_meta_tampering() {
        let c = codec(EncryptionConfig::random_iv(MetaLayout::Omap).with_mac());
        let mut rng = SeededIvSource::new(6);
        let mut data = sector(0x33);
        let mut entry = c.encrypt(3, 0, &mut data, &mut rng).unwrap();
        entry[0] ^= 0x80; // corrupt the IV
        assert!(c.decrypt(3, None, &mut data, &entry).is_err());
    }

    #[test]
    fn gcm_round_trip_and_tamper() {
        let cfg = EncryptionConfig::random_iv(MetaLayout::ObjectEnd).with_cipher(Cipher::Aes256Gcm);
        let c = codec(cfg);
        let mut rng = SeededIvSource::new(7);
        let mut data = sector(0x44);
        let entry = c.encrypt(9, 0, &mut data, &mut rng).unwrap();
        assert_eq!(entry.len(), 32 + KEY_EPOCH_TAG_LEN as usize);
        let mut ok = data.clone();
        assert_eq!(
            c.decrypt(9, None, &mut ok, &entry).unwrap(),
            SectorState::Written
        );
        assert_eq!(ok, sector(0x44));
        // Tamper: tag failure.
        data[0] ^= 1;
        assert!(matches!(
            c.decrypt(9, None, &mut data, &entry),
            Err(CryptError::IntegrityViolation { lba: 9 })
        ));
    }

    #[test]
    fn gcm_lba_binding_via_aad() {
        let cfg = EncryptionConfig::random_iv(MetaLayout::Omap).with_cipher(Cipher::Aes256Gcm);
        let c = codec(cfg);
        let mut rng = SeededIvSource::new(8);
        let mut data = sector(0x55);
        let entry = c.encrypt(1, 0, &mut data, &mut rng).unwrap();
        assert!(c.decrypt(2, None, &mut data, &entry).is_err(), "wrong LBA");
    }

    #[test]
    fn snapshot_binding_rejects_future_writes() {
        let cfg = EncryptionConfig::random_iv(MetaLayout::ObjectEnd).with_snapshot_binding();
        let c = codec(cfg);
        let mut rng = SeededIvSource::new(9);
        let mut data = sector(0x66);
        // Written at snapshot epoch 5.
        let entry = c.encrypt(4, 5, &mut data, &mut rng).unwrap();
        assert_eq!(entry.len(), 24 + KEY_EPOCH_TAG_LEN as usize);
        // Reading snapshot 3 must reject data written at epoch 5.
        assert!(matches!(
            c.decrypt(4, Some(3), &mut data.clone(), &entry),
            Err(CryptError::ReplayDetected { lba: 4 })
        ));
        // Reading snapshot 5 or the head accepts it.
        let mut ok = data.clone();
        c.decrypt(4, Some(5), &mut ok, &entry).unwrap();
        assert_eq!(ok, sector(0x66));
        let mut ok = data;
        c.decrypt(4, None, &mut ok, &entry).unwrap();
        assert_eq!(ok, sector(0x66));
    }

    #[test]
    fn eme2_wide_block_round_trip() {
        let cfg =
            EncryptionConfig::random_iv(MetaLayout::ObjectEnd).with_cipher(Cipher::Eme2Aes256);
        let c = codec(cfg);
        let mut rng = SeededIvSource::new(10);
        let mut data = sector(0x77);
        let entry = c.encrypt(11, 0, &mut data, &mut rng).unwrap();
        c.decrypt(11, None, &mut data, &entry).unwrap();
        assert_eq!(data, sector(0x77));
    }

    #[test]
    fn cbc_legacy_round_trip() {
        let cfg = EncryptionConfig::luks2_baseline().with_cipher(Cipher::CbcEssiv256);
        let c = codec(cfg);
        let mut rng = SeededIvSource::new(11);
        let mut data = sector(0x88);
        c.encrypt(2, 0, &mut data, &mut rng).unwrap();
        c.decrypt(2, None, &mut data, &[]).unwrap();
        assert_eq!(data, sector(0x88));
    }

    #[test]
    fn wrong_meta_length_rejected() {
        let c = codec(EncryptionConfig::random_iv(MetaLayout::ObjectEnd));
        let mut data = sector(1);
        assert!(matches!(
            c.decrypt(0, None, &mut data, &[0u8; 15]),
            Err(CryptError::HeaderCorrupt(_))
        ));
    }
}
