//! The adversary's toolkit: raw ciphertext observation and the
//! comparisons the paper's attacks are built on (§1, §2.1).
//!
//! These helpers exist so tests and examples can *demonstrate* the
//! leaks — "an adversary can detect exactly which of the sub-blocks has
//! changed" — and verify that the random-IV design eliminates them.

/// What an adversary inspecting the backing store sees for one sector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectorObservation {
    /// The logical sector observed.
    pub lba: u64,
    /// Raw ciphertext bytes.
    pub ciphertext: Vec<u8>,
    /// Raw metadata entry, when the layout stores one.
    pub meta: Option<Vec<u8>>,
}

impl SectorObservation {
    /// True when two observations carry byte-identical ciphertext —
    /// the deterministic-encryption equality leak.
    #[must_use]
    pub fn ciphertext_equals(&self, other: &SectorObservation) -> bool {
        self.ciphertext == other.ciphertext
    }
}

/// Indices of the `granularity`-byte sub-blocks that differ between
/// two equal-length byte strings.
///
/// With AES-XTS (`granularity = 16`) this is exactly the §2.1 attack:
/// an adversary comparing two ciphertexts of the same sector learns
/// which 16-byte sub-blocks of the plaintext changed.
///
/// # Panics
///
/// Panics if lengths differ or `granularity` is zero.
#[must_use]
pub fn differing_subblocks(a: &[u8], b: &[u8], granularity: usize) -> Vec<usize> {
    assert_eq!(a.len(), b.len(), "ciphertexts must have equal length");
    assert!(granularity > 0, "granularity must be positive");
    a.chunks(granularity)
        .zip(b.chunks(granularity))
        .enumerate()
        .filter_map(|(i, (ca, cb))| (ca != cb).then_some(i))
        .collect()
}

/// Fraction of sub-blocks that differ (0.0 = identical, 1.0 = every
/// sub-block changed). Wide-block and random-IV schemes push this to
/// ~1.0 for any plaintext change; narrow-block XTS leaves it at
/// exactly the touched sub-blocks.
///
/// # Panics
///
/// Panics if lengths differ or `granularity` is zero.
#[must_use]
pub fn diff_ratio(a: &[u8], b: &[u8], granularity: usize) -> f64 {
    let total = a.len().div_ceil(granularity);
    if total == 0 {
        return 0.0;
    }
    differing_subblocks(a, b, granularity).len() as f64 / total as f64
}

/// The §2.1 mix-and-match splice: takes the first `cut` bytes from `a`
/// and the rest from `b` — a ciphertext an adversary can fabricate from
/// two observed versions of the same sector.
///
/// # Panics
///
/// Panics if lengths differ or `cut` is out of range.
#[must_use]
pub fn splice(a: &[u8], b: &[u8], cut: usize) -> Vec<u8> {
    assert_eq!(a.len(), b.len(), "versions must have equal length");
    assert!(cut <= a.len(), "cut out of range");
    let mut out = Vec::with_capacity(a.len());
    out.extend_from_slice(&a[..cut]);
    out.extend_from_slice(&b[cut..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subblock_diff_finds_exact_blocks() {
        let a = vec![0u8; 64];
        let mut b = a.clone();
        b[17] = 1; // inside sub-block 1
        b[48] = 1; // inside sub-block 3
        assert_eq!(differing_subblocks(&a, &b, 16), vec![1, 3]);
        assert_eq!(differing_subblocks(&a, &a, 16), Vec::<usize>::new());
    }

    #[test]
    fn diff_ratio_ranges() {
        let a = vec![0u8; 64];
        let mut b = a.clone();
        assert_eq!(diff_ratio(&a, &b, 16), 0.0);
        b[0] = 1;
        assert_eq!(diff_ratio(&a, &b, 16), 0.25);
        let c = vec![1u8; 64];
        assert_eq!(diff_ratio(&a, &c, 16), 1.0);
    }

    #[test]
    fn splice_mixes_versions() {
        let a = vec![0xAAu8; 32];
        let b = vec![0xBBu8; 32];
        let s = splice(&a, &b, 16);
        assert_eq!(&s[..16], &a[..16]);
        assert_eq!(&s[16..], &b[16..]);
    }

    #[test]
    fn observation_equality() {
        let x = SectorObservation {
            lba: 1,
            ciphertext: vec![1, 2, 3],
            meta: None,
        };
        let mut y = x.clone();
        assert!(x.ciphertext_equals(&y));
        y.ciphertext[0] = 9;
        assert!(!x.ciphertext_equals(&y));
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        let _ = differing_subblocks(&[0; 16], &[0; 32], 16);
    }
}
