//! The key chain: per-epoch sector codecs and the epoch-routing rules
//! of the key-lifecycle subsystem.
//!
//! An image's master key is versioned by **key epochs** (see
//! [`crate::luks`]): epoch 0 is the format-time key, every online
//! rekey installs the next. While a rekey migrates the image — and
//! forever after, for snapshots frozen under old keys — sectors
//! encrypted under different epochs coexist, so every decrypt must
//! first answer "which key?":
//!
//! - **Layouts with per-sector metadata** stamp the epoch into the
//!   stored entry (the trailing
//!   [`crate::config::KEY_EPOCH_TAG_LEN`]-byte tag) — exactly the
//!   paper's point that virtual-disk encryption can piggyback extra
//!   per-sector state on the mapping layer. The entry routes itself.
//! - **The baseline layout** stores nothing, so it cannot tag sectors.
//!   Instead the rekey driver migrates the image strictly in LBA order
//!   and publishes a **watermark**: sectors below it are on the new
//!   epoch, sectors at or above still carry the old one. An
//!   [`EpochMap`] snapshots that rule at submit time, which — combined
//!   with the store's per-shard FIFO ordering — pins the right key to
//!   the right bytes even with IO and rekey in flight concurrently.

use crate::config::KEY_EPOCH_TAG_LEN;
use crate::sector::SectorCodec;
#[cfg(test)]
use crate::sector::SectorState;
use crate::{CryptError, Result};
use std::collections::BTreeMap;
use vdisk_crypto::rng::IvSource;

/// Which key epoch governs each sector — captured at **submit** time,
/// so a queued IO decrypts (or encrypted) with the epochs that were
/// true when the store pinned its data version (per-shard FIFO makes
/// submission order the apply order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct EpochMap {
    /// The epoch newly-written (and already-migrated) sectors use.
    pub(crate) current: u32,
    /// An in-flight rekey, if any: `(previous epoch, watermark)` —
    /// sectors at or above the watermark (in sectors) still carry the
    /// previous epoch. Only consulted for the baseline layout; tagged
    /// layouts route by entry.
    pub(crate) pending: Option<(u32, u64)>,
}

impl EpochMap {
    /// A map with every sector on one epoch (no rekey in flight).
    #[cfg(test)]
    pub(crate) fn uniform(epoch: u32) -> EpochMap {
        EpochMap {
            current: epoch,
            pending: None,
        }
    }

    /// The epoch governing logical sector `lba` under this map.
    pub(crate) fn epoch_at(&self, lba: u64) -> u32 {
        match self.pending {
            Some((from, watermark)) if lba >= watermark => from,
            _ => self.current,
        }
    }
}

/// Every key epoch's [`SectorCodec`], plus the current write epoch:
/// the decrypt side routes each sector to the epoch that encrypted it,
/// the encrypt side stamps the epoch chosen by the caller's
/// [`EpochMap`].
pub(crate) struct KeyChain {
    codecs: BTreeMap<u32, SectorCodec>,
    current: u32,
}

impl std::fmt::Debug for KeyChain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The installed epochs and the write epoch are the routing
        // state worth printing; the codecs hold live subkeys.
        f.debug_struct("KeyChain")
            .field("epochs", &self.codecs.keys().collect::<Vec<_>>())
            .field("current", &self.current)
            .finish()
    }
}

impl KeyChain {
    /// A chain holding one epoch's codec, as the write epoch.
    pub(crate) fn new(epoch: u32, codec: SectorCodec) -> KeyChain {
        let mut codecs = BTreeMap::new();
        codecs.insert(epoch, codec);
        KeyChain {
            codecs,
            current: epoch,
        }
    }

    /// Installs (or replaces) an epoch's codec.
    pub(crate) fn install(&mut self, epoch: u32, codec: SectorCodec) {
        self.codecs.insert(epoch, codec);
    }

    /// Removes an epoch's codec (rollback of a failed install; must
    /// not be the current write epoch).
    pub(crate) fn uninstall(&mut self, epoch: u32) {
        assert_ne!(epoch, self.current, "cannot uninstall the write epoch");
        self.codecs.remove(&epoch);
    }

    /// The current write epoch.
    pub(crate) fn current(&self) -> u32 {
        self.current
    }

    /// Switches the write epoch (the codec must be installed).
    pub(crate) fn set_current(&mut self, epoch: u32) {
        assert!(self.codecs.contains_key(&epoch), "unknown write epoch");
        self.current = epoch;
    }

    fn codec(&self, epoch: u32, lba: u64) -> Result<&SectorCodec> {
        self.codecs
            .get(&epoch)
            .ok_or(CryptError::UnknownKeyEpoch { lba, epoch })
    }

    /// Metadata entry length in bytes (uniform across epochs).
    pub(crate) fn meta_entry_len(&self) -> usize {
        self.codecs
            .values()
            .next()
            .expect("chain is never empty")
            .meta_entry_len()
    }

    /// IV-source bytes drawn per encrypted sector (uniform across
    /// epochs) — see `SectorCodec::iv_draw_len`. The quantity parallel
    /// encryption pre-draws serially so the IV stream stays identical
    /// to a serial encode.
    pub(crate) fn iv_draw_len(&self) -> usize {
        self.codecs
            .values()
            .next()
            .expect("chain is never empty")
            .iv_draw_len()
    }

    /// Sector size in bytes (uniform across epochs).
    pub(crate) fn sector_size(&self) -> usize {
        sector_size(self)
    }

    /// Encrypts a contiguous run of sectors in place, appending each
    /// sector's metadata entry (epoch-tagged) to `metas`. `epochs`
    /// picks the key per sector: tagged layouts always encrypt under
    /// `epochs.current`; the baseline splits at the rekey watermark so
    /// sectors the driver has not reached yet stay readable under the
    /// watermark rule.
    // One parameter per routing input; bundling them would only
    // obscure the epoch rule.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn encrypt_sectors(
        &self,
        base_lba: u64,
        write_seq: u64,
        data: &mut [u8],
        metas: &mut Vec<u8>,
        iv_source: &mut dyn IvSource,
        epochs: EpochMap,
        tagged_layout: bool,
    ) -> Result<()> {
        let ss = sector_size(self);
        debug_assert_eq!(data.len() % ss, 0, "whole sectors only");
        metas.reserve(data.len() / ss * self.meta_entry_len());
        for (i, sector) in data.chunks_exact_mut(ss).enumerate() {
            let lba = base_lba + i as u64;
            let epoch = if tagged_layout {
                epochs.current
            } else {
                epochs.epoch_at(lba)
            };
            self.codec(epoch, lba)?
                .encrypt_into(lba, write_seq, sector, metas, iv_source)?;
        }
        Ok(())
    }

    /// Decrypts a contiguous run of sectors in place. Tagged layouts
    /// route each sector by the epoch tag closing its stored entry;
    /// the baseline (empty `metas`) routes by `epochs` — the map
    /// captured when the read was submitted.
    ///
    /// # Errors
    ///
    /// [`CryptError::UnknownKeyEpoch`] if an entry names an epoch this
    /// chain holds no key for (a corrupt tag, or an image opened
    /// without its retired-key chain), plus everything
    /// `SectorCodec::decrypt` reports.
    pub(crate) fn decrypt_sectors(
        &self,
        base_lba: u64,
        read_seq_limit: Option<u64>,
        data: &mut [u8],
        metas: &[u8],
        epochs: EpochMap,
    ) -> Result<()> {
        let ss = sector_size(self);
        let me = self.meta_entry_len();
        debug_assert_eq!(data.len() % ss, 0, "whole sectors only");
        let count = data.len() / ss;
        if me > 0 && metas.len() != count * me {
            return Err(CryptError::HeaderCorrupt(format!(
                "metadata run is {} bytes, expected {}",
                metas.len(),
                count * me
            )));
        }
        for (i, sector) in data.chunks_exact_mut(ss).enumerate() {
            let lba = base_lba + i as u64;
            let meta = &metas[i * me..(i + 1) * me];
            let epoch = if me > 0 {
                entry_epoch(meta).unwrap_or(self.current)
            } else {
                epochs.epoch_at(lba)
            };
            self.codec(epoch, lba)?
                .decrypt(lba, read_seq_limit, sector, meta)?;
        }
        Ok(())
    }

    /// Decrypts one sector (the single-sector convenience used by
    /// tests); see [`KeyChain::decrypt_sectors`].
    #[cfg(test)]
    pub(crate) fn decrypt_one(
        &self,
        lba: u64,
        read_seq_limit: Option<u64>,
        data: &mut [u8],
        meta: &[u8],
        epochs: EpochMap,
    ) -> Result<SectorState> {
        let epoch = if meta.is_empty() {
            epochs.epoch_at(lba)
        } else {
            entry_epoch(meta).unwrap_or(self.current)
        };
        self.codec(epoch, lba)?
            .decrypt(lba, read_seq_limit, data, meta)
    }
}

fn sector_size(chain: &KeyChain) -> usize {
    chain
        .codecs
        .values()
        .next()
        .expect("chain is never empty")
        .sector_size()
}

/// The epoch tag closing a stored entry, or `None` for the all-zero
/// "never written" entry (which carries no meaningful tag — the codec
/// zero-fills regardless of epoch, so any loaded codec may serve it).
pub(crate) fn entry_epoch(entry: &[u8]) -> Option<u32> {
    if entry.iter().all(|&b| b == 0) {
        return None;
    }
    let tag_at = entry.len() - KEY_EPOCH_TAG_LEN as usize;
    let mut tag = [0u8; 4];
    tag.copy_from_slice(&entry[tag_at..]);
    Some(u32::from_le_bytes(tag))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{EncryptionConfig, MetaLayout};
    use crate::luks::DerivedKeys;
    use vdisk_crypto::mem::SecretBytes;
    use vdisk_crypto::rng::SeededIvSource;

    fn chain_with(config: &EncryptionConfig, epochs: &[u32]) -> KeyChain {
        let mut chain: Option<KeyChain> = None;
        for &epoch in epochs {
            let master = SecretBytes::from(vec![0x10 + epoch as u8; 64]);
            let keys = DerivedKeys::derive(&master, config.cipher);
            let codec = SectorCodec::new(config, &keys, epoch).unwrap();
            match chain.as_mut() {
                None => chain = Some(KeyChain::new(epoch, codec)),
                Some(chain) => chain.install(epoch, codec),
            }
        }
        chain.unwrap()
    }

    #[test]
    fn epoch_map_splits_at_the_watermark() {
        let map = EpochMap {
            current: 3,
            pending: Some((2, 100)),
        };
        assert_eq!(map.epoch_at(0), 3);
        assert_eq!(map.epoch_at(99), 3);
        assert_eq!(map.epoch_at(100), 2);
        assert_eq!(map.epoch_at(u64::MAX), 2);
        assert_eq!(EpochMap::uniform(7).epoch_at(50), 7);
    }

    #[test]
    fn tagged_entries_route_to_their_epoch() {
        let config = EncryptionConfig::random_iv(MetaLayout::ObjectEnd);
        let mut chain = chain_with(&config, &[0, 1]);
        let mut rng = SeededIvSource::new(3);
        let ss = config.sector_size as usize;

        // Encrypt one sector under epoch 0, another under epoch 1.
        let mut old = vec![0xAA; ss];
        let mut metas = Vec::new();
        chain
            .encrypt_sectors(
                7,
                0,
                &mut old,
                &mut metas,
                &mut rng,
                EpochMap::uniform(0),
                true,
            )
            .unwrap();
        chain.set_current(1);
        let mut new = vec![0xBB; ss];
        chain
            .encrypt_sectors(
                8,
                0,
                &mut new,
                &mut metas,
                &mut rng,
                EpochMap::uniform(1),
                true,
            )
            .unwrap();
        assert_eq!(entry_epoch(&metas[..chain.meta_entry_len()]), Some(0));
        assert_eq!(entry_epoch(&metas[chain.meta_entry_len()..]), Some(1));

        // One mixed-epoch run decrypts sector-by-sector to the right key.
        let mut run = [old, new].concat();
        chain
            .decrypt_sectors(7, None, &mut run, &metas, EpochMap::uniform(1))
            .unwrap();
        assert_eq!(&run[..ss], &vec![0xAA; ss][..]);
        assert_eq!(&run[ss..], &vec![0xBB; ss][..]);
    }

    #[test]
    fn missing_epoch_is_a_clear_error() {
        let config = EncryptionConfig::random_iv(MetaLayout::Omap);
        let full = chain_with(&config, &[0, 1]);
        let short = chain_with(&config, &[1]);
        let mut rng = SeededIvSource::new(4);
        let ss = config.sector_size as usize;
        let mut data = vec![0x55; ss];
        let mut metas = Vec::new();
        full.encrypt_sectors(
            3,
            0,
            &mut data,
            &mut metas,
            &mut rng,
            EpochMap::uniform(0),
            true,
        )
        .unwrap();
        assert!(matches!(
            short.decrypt_sectors(3, None, &mut data, &metas, EpochMap::uniform(1)),
            Err(CryptError::UnknownKeyEpoch { lba: 3, epoch: 0 })
        ));
    }

    #[test]
    fn baseline_routes_by_the_captured_map() {
        let config = EncryptionConfig::luks2_baseline();
        let mut chain = chain_with(&config, &[0, 1]);
        let mut rng = SeededIvSource::new(5);
        let ss = config.sector_size as usize;
        // Sector 4 encrypted under epoch 1 (below watermark 5), sector
        // 5 under epoch 0 — the mid-rekey split.
        let map = EpochMap {
            current: 1,
            pending: Some((0, 5)),
        };
        chain.set_current(1);
        let mut run = vec![0x77; 2 * ss];
        let mut metas = Vec::new();
        chain
            .encrypt_sectors(4, 0, &mut run, &mut metas, &mut rng, map, false)
            .unwrap();
        assert!(metas.is_empty(), "baseline stores no metadata");
        chain.decrypt_sectors(4, None, &mut run, &[], map).unwrap();
        assert_eq!(run, vec![0x77; 2 * ss]);

        // Decrypting with the wrong map (uniform new epoch) garbles the
        // not-yet-migrated sector but not the migrated one.
        let mut reencrypted = vec![0x77; 2 * ss];
        let mut metas = Vec::new();
        chain
            .encrypt_sectors(4, 0, &mut reencrypted, &mut metas, &mut rng, map, false)
            .unwrap();
        chain
            .decrypt_sectors(4, None, &mut reencrypted, &[], EpochMap::uniform(1))
            .unwrap();
        assert_eq!(&reencrypted[..ss], &vec![0x77; ss][..]);
        assert_ne!(&reencrypted[ss..], &vec![0x77; ss][..]);
    }

    #[test]
    fn all_zero_entries_decrypt_as_unwritten_without_a_key() {
        // An unwritten sector's all-zero entry has no meaningful epoch
        // tag; it must zero-fill even if its "tag" (0) were unknown.
        let config = EncryptionConfig::random_iv(MetaLayout::ObjectEnd);
        let chain = chain_with(&config, &[2]);
        let me = chain.meta_entry_len();
        let ss = config.sector_size as usize;
        let mut data = vec![0xFF; ss];
        assert_eq!(
            chain
                .decrypt_one(0, None, &mut data, &vec![0u8; me], EpochMap::uniform(2))
                .unwrap(),
            SectorState::Unwritten
        );
        assert_eq!(data, vec![0u8; ss]);
    }
}
