//! Property-based tests over the crypto primitives: round-trip
//! identities, diffusion/locality contracts, and tamper detection.

use proptest::prelude::*;
use vdisk_crypto::aes::Aes;
use vdisk_crypto::cbc::CbcEssiv;
use vdisk_crypto::eme2::Eme2;
use vdisk_crypto::gcm::AesGcm;
use vdisk_crypto::hmac::hmac_sha256;
use vdisk_crypto::mem::{from_hex, to_hex};
use vdisk_crypto::sha256::{sha256, Sha256};
use vdisk_crypto::xts::XtsCipher;

fn arb_key16() -> impl Strategy<Value = [u8; 16]> {
    any::<[u8; 16]>()
}

fn arb_key32() -> impl Strategy<Value = [u8; 32]> {
    any::<[u8; 32]>()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn aes_round_trip(key in arb_key32(), block in any::<[u8; 16]>()) {
        let aes = Aes::new(&key).unwrap();
        let mut b = block;
        aes.encrypt_block(&mut b);
        aes.decrypt_block(&mut b);
        prop_assert_eq!(b, block);
    }

    #[test]
    fn aes_is_a_permutation(key in arb_key16(), a in any::<[u8; 16]>(), b in any::<[u8; 16]>()) {
        prop_assume!(a != b);
        let aes = Aes::new(&key).unwrap();
        prop_assert_ne!(aes.encrypt_block_copy(&a), aes.encrypt_block_copy(&b));
    }

    #[test]
    fn xts_round_trip_arbitrary_lengths(
        key in arb_key32(),
        tweak in any::<[u8; 16]>(),
        data in proptest::collection::vec(any::<u8>(), 16..600),
    ) {
        let xts = XtsCipher::new(&key).unwrap();
        let mut buf = data.clone();
        xts.encrypt_sector(&tweak, &mut buf).unwrap();
        prop_assert_ne!(&buf, &data);
        xts.decrypt_sector(&tweak, &mut buf).unwrap();
        prop_assert_eq!(buf, data);
    }

    /// XTS narrow-block contract: a change inside one aligned 16-byte
    /// sub-block never propagates to other sub-blocks (for full-block
    /// sector sizes). This is the leak the paper builds on.
    #[test]
    fn xts_subblock_locality(
        key in arb_key32(),
        tweak in any::<[u8; 16]>(),
        block_idx in 0usize..8,
        bit in 0usize..128,
        base in any::<[u8; 16]>(),
    ) {
        let xts = XtsCipher::new(&key).unwrap();
        let mut a = vec![0u8; 8 * 16];
        for chunk in a.chunks_mut(16) {
            chunk.copy_from_slice(&base);
        }
        let mut b = a.clone();
        b[block_idx * 16 + bit / 8] ^= 1 << (bit % 8);
        xts.encrypt_sector(&tweak, &mut a).unwrap();
        xts.encrypt_sector(&tweak, &mut b).unwrap();
        for j in 0..8 {
            if j == block_idx {
                prop_assert_ne!(&a[j*16..j*16+16], &b[j*16..j*16+16]);
            } else {
                prop_assert_eq!(&a[j*16..j*16+16], &b[j*16..j*16+16]);
            }
        }
    }

    /// EME2 wide-block contract: any single-bit change diffuses into
    /// every ciphertext sub-block.
    #[test]
    fn eme2_wide_block_diffusion(
        key in arb_key32(),
        tweak in any::<[u8; 16]>(),
        byte_idx in 0usize..256,
        blocks in 2usize..16,
    ) {
        let eme = Eme2::new(&key).unwrap();
        let len = blocks * 16;
        let byte_idx = byte_idx % len;
        let mut a = vec![0xA5u8; len];
        let mut b = a.clone();
        b[byte_idx] ^= 0x10;
        eme.encrypt_sector(&tweak, &mut a).unwrap();
        eme.encrypt_sector(&tweak, &mut b).unwrap();
        for j in 0..blocks {
            prop_assert_ne!(&a[j*16..j*16+16], &b[j*16..j*16+16]);
        }
    }

    #[test]
    fn eme2_round_trip(
        key in arb_key16(),
        tweak in any::<[u8; 16]>(),
        blocks in 2usize..32,
        seed in any::<u8>(),
    ) {
        let eme = Eme2::new(&key).unwrap();
        let data: Vec<u8> = (0..blocks * 16).map(|i| (i as u8).wrapping_mul(seed)).collect();
        let mut buf = data.clone();
        eme.encrypt_sector(&tweak, &mut buf).unwrap();
        eme.decrypt_sector(&tweak, &mut buf).unwrap();
        prop_assert_eq!(buf, data);
    }

    #[test]
    fn gcm_round_trip_and_tamper(
        key in arb_key32(),
        nonce in any::<[u8; 12]>(),
        aad in proptest::collection::vec(any::<u8>(), 0..64),
        data in proptest::collection::vec(any::<u8>(), 0..300),
        flip in any::<(u16, u8)>(),
    ) {
        let gcm = AesGcm::new(&key).unwrap();
        let mut buf = data.clone();
        let tag = gcm.encrypt(&nonce, &aad, &mut buf);
        // Honest decryption succeeds.
        let mut ok = buf.clone();
        gcm.decrypt(&nonce, &aad, &mut ok, &tag).unwrap();
        prop_assert_eq!(&ok, &data);
        // Any single-bit tamper is caught.
        if !buf.is_empty() {
            let idx = (flip.0 as usize) % buf.len();
            let bit = 1u8 << (flip.1 % 8);
            let mut bad = buf.clone();
            bad[idx] ^= bit;
            prop_assert!(gcm.decrypt(&nonce, &aad, &mut bad, &tag).is_err());
        }
    }

    #[test]
    fn cbc_round_trip(
        key in arb_key32(),
        sector in any::<u64>(),
        blocks in 1usize..32,
    ) {
        let cbc = CbcEssiv::new(&key).unwrap();
        let data: Vec<u8> = (0..blocks * 16).map(|i| i as u8).collect();
        let mut buf = data.clone();
        cbc.encrypt_sector(sector, &mut buf).unwrap();
        cbc.decrypt_sector(sector, &mut buf).unwrap();
        prop_assert_eq!(buf, data);
    }

    #[test]
    fn sha256_incremental_any_split(
        data in proptest::collection::vec(any::<u8>(), 0..500),
        split_seed in any::<u16>(),
    ) {
        let split = if data.is_empty() { 0 } else { (split_seed as usize) % data.len() };
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    #[test]
    fn hmac_distinct_keys_distinct_tags(
        k1 in proptest::collection::vec(any::<u8>(), 1..64),
        k2 in proptest::collection::vec(any::<u8>(), 1..64),
        msg in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        prop_assume!(k1 != k2);
        prop_assert_ne!(hmac_sha256(&k1, &msg), hmac_sha256(&k2, &msg));
    }

    #[test]
    fn hex_round_trip(data in proptest::collection::vec(any::<u8>(), 0..100)) {
        prop_assert_eq!(from_hex(&to_hex(&data)).unwrap(), data);
    }

    /// Cross-mode sanity: XTS and EME2 under the same AES key never
    /// produce the same ciphertext for the same sector (they are
    /// different permutations).
    #[test]
    fn modes_are_distinct(key in arb_key32(), tweak in any::<[u8; 16]>()) {
        let mut xts_key = [0u8; 64];
        xts_key[..32].copy_from_slice(&key);
        xts_key[32..].copy_from_slice(&key);
        let xts = XtsCipher::new(&xts_key).unwrap();
        let eme = Eme2::new(&key).unwrap();
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        xts.encrypt_sector(&tweak, &mut a).unwrap();
        eme.encrypt_sector(&tweak, &mut b).unwrap();
        prop_assert_ne!(a, b);
    }
}
