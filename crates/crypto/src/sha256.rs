//! SHA-256 (FIPS 180-4).
//!
//! The round constants and initial hash values are derived at first use
//! from the fractional parts of the cube/square roots of the first
//! primes — exactly how the standard defines them — which removes any
//! chance of a transcription typo. The implementation is validated
//! against the FIPS known-answer vectors below.

use std::sync::OnceLock;

/// Digest size in bytes.
pub const DIGEST_LEN: usize = 32;
/// Internal block size in bytes (relevant for HMAC).
pub const BLOCK_LEN: usize = 64;

fn primes(n: usize) -> Vec<u64> {
    let mut out = Vec::with_capacity(n);
    let mut candidate = 2u64;
    while out.len() < n {
        if out.iter().all(|p| !candidate.is_multiple_of(*p)) {
            out.push(candidate);
        }
        candidate += 1;
    }
    out
}

fn frac_root_bits(x: f64) -> u32 {
    let frac = x - x.floor();
    (frac * 4294967296.0).floor() as u32
}

fn k_constants() -> &'static [u32; 64] {
    static K: OnceLock<[u32; 64]> = OnceLock::new();
    K.get_or_init(|| {
        let ps = primes(64);
        let mut k = [0u32; 64];
        for (i, p) in ps.iter().enumerate() {
            k[i] = frac_root_bits((*p as f64).cbrt());
        }
        k
    })
}

fn h_initial() -> &'static [u32; 8] {
    static H: OnceLock<[u32; 8]> = OnceLock::new();
    H.get_or_init(|| {
        let ps = primes(8);
        let mut h = [0u32; 8];
        for (i, p) in ps.iter().enumerate() {
            h[i] = frac_root_bits((*p as f64).sqrt());
        }
        h
    })
}

/// Incremental SHA-256 hasher.
///
/// # Example
///
/// ```
/// use vdisk_crypto::sha256::Sha256;
/// let mut h = Sha256::new();
/// h.update(b"ab");
/// h.update(b"c");
/// assert_eq!(
///     vdisk_crypto::mem::to_hex(&h.finalize()),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
/// );
/// ```
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; BLOCK_LEN],
    buffer_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    #[must_use]
    pub fn new() -> Self {
        Sha256 {
            state: *h_initial(),
            buffer: [0; BLOCK_LEN],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut data = data;
        if self.buffer_len > 0 {
            let take = (BLOCK_LEN - self.buffer_len).min(data.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&data[..take]);
            self.buffer_len += take;
            data = &data[take..];
            if self.buffer_len == BLOCK_LEN {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }
        while data.len() >= BLOCK_LEN {
            let mut block = [0u8; BLOCK_LEN];
            block.copy_from_slice(&data[..BLOCK_LEN]);
            self.compress(&block);
            data = &data[BLOCK_LEN..];
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffer_len = data.len();
        }
    }

    /// Finishes and returns the 32-byte digest.
    #[must_use]
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, 64-bit big-endian length.
        self.update(&[0x80]);
        self.total_len = self.total_len.wrapping_sub(1); // update() double counts padding
        while self.buffer_len != 56 {
            self.update(&[0x00]);
            self.total_len = self.total_len.wrapping_sub(1);
        }
        let mut block = self.buffer;
        block[56..64].copy_from_slice(&bit_len.to_be_bytes());
        self.compress(&block);

        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; BLOCK_LEN]) {
        let k = k_constants();
        let mut w = [0u32; 64];
        for i in 0..16 {
            w[i] = u32::from_be_bytes([
                block[4 * i],
                block[4 * i + 1],
                block[4 * i + 2],
                block[4 * i + 3],
            ]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let temp1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(k[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256.
///
/// # Example
///
/// ```
/// let d = vdisk_crypto::sha256::sha256(b"");
/// assert_eq!(
///     vdisk_crypto::mem::to_hex(&d),
///     "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
/// );
/// ```
#[must_use]
pub fn sha256(data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::to_hex;

    #[test]
    fn fips_vector_abc() {
        assert_eq!(
            to_hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn fips_vector_empty() {
        assert_eq!(
            to_hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn fips_vector_448_bits() {
        assert_eq!(
            to_hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            to_hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        for split in [0usize, 1, 63, 64, 65, 127, 500, 999, 1000] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), sha256(&data), "split at {split}");
        }
    }

    #[test]
    fn derived_constants_match_standard() {
        // Spot-check the first and last published round constants.
        let k = k_constants();
        assert_eq!(k[0], 0x428a2f98);
        assert_eq!(k[1], 0x71374491);
        assert_eq!(k[63], 0xc67178f2);
        let h = h_initial();
        assert_eq!(h[0], 0x6a09e667);
        assert_eq!(h[7], 0x5be0cd19);
    }

    #[test]
    fn padding_boundaries() {
        // Hash inputs of every length around the block boundary; all
        // must be distinct and deterministic.
        let mut digests = std::collections::HashSet::new();
        for len in 0..=130 {
            let data = vec![0xAB; len];
            let d = sha256(&data);
            assert_eq!(d, sha256(&data));
            assert!(digests.insert(d), "collision at length {len}");
        }
    }
}
