//! Memory hygiene utilities: constant-time comparison, zeroizing key
//! containers, and hex encoding for headers and test vectors.

use std::fmt;
use std::ops::Deref;

/// Compares two byte slices in constant time (with respect to content).
///
/// Returns `false` immediately when lengths differ — length is treated
/// as public information (it always is for MAC tags and keys of a fixed
/// scheme).
///
/// # Example
///
/// ```
/// use vdisk_crypto::mem::ct_eq;
/// assert!(ct_eq(b"tag-bytes", b"tag-bytes"));
/// assert!(!ct_eq(b"tag-bytes", b"tag-bytez"));
/// ```
#[must_use]
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        acc |= x ^ y;
    }
    // Map 0 -> true without a data-dependent branch on the bytes.
    acc == 0
}

/// An owned byte buffer that overwrites its contents with zeros on drop.
///
/// Used for master keys, derived subkeys and passphrases so that freed
/// heap memory does not retain key material. The zeroization is
/// best-effort (no `unsafe`, so the compiler could in principle elide
/// it; `std::hint::black_box` is used to discourage that).
///
/// # Example
///
/// ```
/// use vdisk_crypto::mem::SecretBytes;
/// let key = SecretBytes::from(vec![1u8, 2, 3]);
/// assert_eq!(&*key, &[1, 2, 3]);
/// // Debug never prints the contents:
/// assert_eq!(format!("{:?}", key), "SecretBytes(3 bytes)");
/// ```
// vdisk-lint: allow(secret-derive) reason="cloning a SecretBytes yields another SecretBytes; the copy zeroizes on drop like the original"
#[derive(Clone, PartialEq, Eq)]
pub struct SecretBytes(Vec<u8>);

impl SecretBytes {
    /// Wraps an existing buffer.
    #[must_use]
    pub fn new(bytes: Vec<u8>) -> Self {
        SecretBytes(bytes)
    }

    /// Creates a zero-filled secret of the given length.
    #[must_use]
    pub fn zeroed(len: usize) -> Self {
        SecretBytes(vec![0; len])
    }

    /// Exposes the secret bytes.
    #[must_use]
    pub fn expose(&self) -> &[u8] {
        &self.0
    }

    /// Exposes the secret bytes mutably (e.g. to fill from an RNG).
    pub fn expose_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the secret is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl From<Vec<u8>> for SecretBytes {
    fn from(v: Vec<u8>) -> Self {
        SecretBytes(v)
    }
}

impl From<&[u8]> for SecretBytes {
    fn from(v: &[u8]) -> Self {
        SecretBytes(v.to_vec())
    }
}

impl Deref for SecretBytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl Drop for SecretBytes {
    fn drop(&mut self) {
        zeroize(&mut self.0);
    }
}

impl fmt::Debug for SecretBytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SecretBytes({} bytes)", self.0.len())
    }
}

/// Encodes bytes as lowercase hex.
///
/// # Example
///
/// ```
/// assert_eq!(vdisk_crypto::mem::to_hex(&[0xde, 0xad]), "dead");
/// ```
#[must_use]
pub fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Decodes a hex string (case-insensitive, no separators).
///
/// Returns `None` on odd length or non-hex characters.
///
/// # Example
///
/// ```
/// assert_eq!(vdisk_crypto::mem::from_hex("DEad"), Some(vec![0xde, 0xad]));
/// assert_eq!(vdisk_crypto::mem::from_hex("xyz"), None);
/// ```
#[must_use]
pub fn from_hex(s: &str) -> Option<Vec<u8>> {
    let s = s.trim();
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    let bytes = s.as_bytes();
    for pair in bytes.chunks(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out.push(((hi << 4) | lo) as u8);
    }
    Some(out)
}

/// Overwrites a byte slice with zeros, discouraging the optimizer from
/// eliding the wipe — the crypto-shred primitive behind keyslot
/// destruction (`vdisk-core`'s `secure_erase`). Best-effort like
/// [`SecretBytes`]'s drop wipe: no `unsafe`, `std::hint::black_box` to
/// keep the stores observable.
///
/// # Example
///
/// ```
/// let mut key = vec![0xAAu8; 32];
/// vdisk_crypto::mem::zeroize(&mut key);
/// assert!(key.iter().all(|&b| b == 0));
/// ```
pub fn zeroize(buf: &mut [u8]) {
    for b in buf.iter_mut() {
        *b = 0;
    }
    std::hint::black_box(&*buf);
}

/// XORs `src` into `dst` in place. Panics if lengths differ.
pub fn xor_in_place(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "xor_in_place length mismatch");
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d ^= s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ct_eq_basics() {
        assert!(ct_eq(b"", b""));
        assert!(ct_eq(b"abc", b"abc"));
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"ab"));
        assert!(!ct_eq(b"\x00", b"\x01"));
    }

    #[test]
    fn hex_round_trip() {
        let data: Vec<u8> = (0..=255).collect();
        let hex = to_hex(&data);
        assert_eq!(from_hex(&hex).unwrap(), data);
        assert_eq!(from_hex(&hex.to_uppercase()).unwrap(), data);
    }

    #[test]
    fn hex_rejects_bad_input() {
        assert_eq!(from_hex("abc"), None);
        assert_eq!(from_hex("zz"), None);
    }

    #[test]
    fn secret_bytes_never_prints_contents() {
        let s = SecretBytes::from(vec![0xff; 32]);
        let dbg = format!("{s:?}");
        assert!(!dbg.contains("ff"));
        assert!(dbg.contains("32 bytes"));
    }

    #[test]
    fn secret_bytes_accessors() {
        let mut s = SecretBytes::zeroed(4);
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        s.expose_mut()[0] = 9;
        assert_eq!(s.expose(), &[9, 0, 0, 0]);
    }

    #[test]
    fn xor_works() {
        let mut a = [0b1010u8, 0xff];
        xor_in_place(&mut a, &[0b0110, 0x0f]);
        assert_eq!(a, [0b1100, 0xf0]);
    }
}
