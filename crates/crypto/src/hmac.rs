//! HMAC-SHA256 (RFC 2104 / FIPS 198-1).
//!
//! Used by the integrity extension of the encryption layer (per-sector
//! MAC trailers, §2.2 of the paper) and by the key-derivation functions
//! in [`crate::kdf`].

use crate::mem::ct_eq;
use crate::sha256::{Sha256, BLOCK_LEN, DIGEST_LEN};

/// Incremental HMAC-SHA256.
///
/// # Example
///
/// ```
/// use vdisk_crypto::hmac::HmacSha256;
/// let mut mac = HmacSha256::new(b"key");
/// mac.update(b"message");
/// let tag = mac.finalize();
/// assert!(vdisk_crypto::hmac::verify(b"key", b"message", &tag));
/// ```
#[derive(Debug, Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    outer_key: [u8; BLOCK_LEN],
}

impl HmacSha256 {
    /// Creates a MAC instance keyed with `key` (any length).
    #[must_use]
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let digest = crate::sha256::sha256(key);
            key_block[..DIGEST_LEN].copy_from_slice(&digest);
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = key_block[i] ^ 0x36;
            opad[i] = key_block[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        HmacSha256 {
            inner,
            outer_key: opad,
        }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finishes and returns the 32-byte tag.
    #[must_use]
    pub fn finalize(self) -> [u8; DIGEST_LEN] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.outer_key);
        outer.update(&inner_digest);
        outer.finalize()
    }
}

/// One-shot HMAC-SHA256.
#[must_use]
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; DIGEST_LEN] {
    let mut mac = HmacSha256::new(key);
    mac.update(message);
    mac.finalize()
}

/// Verifies a full-length tag in constant time.
#[must_use]
pub fn verify(key: &[u8], message: &[u8], tag: &[u8]) -> bool {
    let expected = hmac_sha256(key, message);
    ct_eq(&expected, tag)
}

/// Verifies a truncated tag (e.g. a 16-byte per-sector MAC) in
/// constant time. `tag` must be between 8 and 32 bytes; shorter
/// truncations are rejected outright as unsafe.
#[must_use]
pub fn verify_truncated(key: &[u8], message: &[u8], tag: &[u8]) -> bool {
    if tag.len() < 8 || tag.len() > DIGEST_LEN {
        return false;
    }
    let expected = hmac_sha256(key, message);
    ct_eq(&expected[..tag.len()], tag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::{from_hex, to_hex};

    /// RFC 4231 test case 1.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0b; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            to_hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    /// RFC 4231 test case 2 ("Jefe").
    #[test]
    fn rfc4231_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            to_hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    /// RFC 4231 test case 3 (0xaa key, 0xdd data).
    #[test]
    fn rfc4231_case_3() {
        let key = [0xaa; 20];
        let data = [0xdd; 50];
        let tag = hmac_sha256(&key, &data);
        assert_eq!(
            to_hex(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    /// RFC 4231 test case 6: key longer than the block size.
    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaa; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            to_hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let tag = hmac_sha256(b"k", b"m");
        assert!(verify(b"k", b"m", &tag));
        let mut bad = tag;
        bad[31] ^= 1;
        assert!(!verify(b"k", b"m", &bad));
        assert!(!verify(b"k2", b"m", &tag));
        assert!(!verify(b"k", b"m2", &tag));
    }

    #[test]
    fn truncated_verification() {
        let tag = hmac_sha256(b"key", b"sector-contents");
        assert!(verify_truncated(b"key", b"sector-contents", &tag[..16]));
        assert!(verify_truncated(b"key", b"sector-contents", &tag[..8]));
        // Tag too short to be safe:
        assert!(!verify_truncated(b"key", b"sector-contents", &tag[..4]));
        // Wrong bytes:
        let mut bad = tag;
        bad[0] ^= 0x80;
        assert!(!verify_truncated(b"key", b"sector-contents", &bad[..16]));
    }

    #[test]
    fn incremental_matches_one_shot() {
        let mut mac = HmacSha256::new(b"split-key");
        mac.update(b"part one|");
        mac.update(b"part two");
        assert_eq!(
            mac.finalize(),
            hmac_sha256(b"split-key", b"part one|part two")
        );
    }

    #[test]
    fn from_hex_helper_sanity() {
        // Keep `from_hex` in the dev loop of this module too.
        assert_eq!(from_hex("b034").unwrap(), vec![0xb0, 0x34]);
    }
}
