//! AES-CTR keystream generation (NIST SP 800-38A), the confidentiality
//! half of GCM.

use crate::aes::Aes;

/// Applies the CTR keystream generated from `initial_counter` to `data`
/// in place (encryption and decryption are the same operation).
///
/// The counter is the full 16-byte block; only the final 32 bits are
/// incremented (big-endian, wrapping), exactly as GCM requires.
pub fn ctr_xor(aes: &Aes, initial_counter: &[u8; 16], data: &mut [u8]) {
    let mut counter = *initial_counter;
    for chunk in data.chunks_mut(16) {
        let keystream = aes.encrypt_block_copy(&counter);
        for (d, k) in chunk.iter_mut().zip(keystream.iter()) {
            *d ^= k;
        }
        increment_counter(&mut counter);
    }
}

/// Increments the final 32 bits of the counter block (big-endian).
pub fn increment_counter(counter: &mut [u8; 16]) {
    let mut word = u32::from_be_bytes([counter[12], counter[13], counter[14], counter[15]]);
    word = word.wrapping_add(1);
    counter[12..16].copy_from_slice(&word.to_be_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::from_hex;

    #[test]
    fn ctr_round_trips() {
        let aes = Aes::new(&[9u8; 32]).unwrap();
        let counter = [1u8; 16];
        let mut data: Vec<u8> = (0..100).collect();
        let orig = data.clone();
        ctr_xor(&aes, &counter, &mut data);
        assert_ne!(data, orig);
        ctr_xor(&aes, &counter, &mut data);
        assert_eq!(data, orig);
    }

    /// NIST SP 800-38A F.5.1 (AES-128-CTR).
    #[test]
    fn sp800_38a_f51() {
        let key = from_hex("2b7e151628aed2a6abf7158809cf4f3c").unwrap();
        let aes = Aes::new(&key).unwrap();
        let mut counter = [0u8; 16];
        counter.copy_from_slice(&from_hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff").unwrap());
        let mut data = from_hex("6bc1bee22e409f96e93d7e117393172a").unwrap();
        ctr_xor(&aes, &counter, &mut data);
        assert_eq!(data, from_hex("874d6191b620e3261bef6864990db6ce").unwrap());
    }

    #[test]
    fn counter_wraps_only_low_32_bits() {
        let mut c = [0xffu8; 16];
        increment_counter(&mut c);
        // Low 32 bits wrap to zero; the rest must be untouched.
        assert_eq!(&c[..12], &[0xff; 12]);
        assert_eq!(&c[12..], &[0, 0, 0, 0]);
    }

    #[test]
    fn keystream_differs_per_block() {
        let aes = Aes::new(&[3u8; 16]).unwrap();
        let mut data = vec![0u8; 48];
        ctr_xor(&aes, &[0u8; 16], &mut data);
        assert_ne!(&data[0..16], &data[16..32]);
        assert_ne!(&data[16..32], &data[32..48]);
    }
}
