//! The AES block cipher (FIPS 197), key sizes 128 and 256 bits.
//!
//! Portable byte-oriented implementation: the state is kept in the
//! FIPS column-major layout (`state[4*c + r]` = row r, column c, which
//! coincides with the natural byte order of the 16-byte block), and the
//! round transforms operate on bytes. The inverse S-box is derived from
//! the forward S-box at first use, so only one table is hand-written
//! (and it is validated by the FIPS-197 known-answer tests below).

use crate::{CryptoError, Result};
use std::sync::OnceLock;

/// The AES S-box (FIPS 197 figure 7).
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

fn inv_sbox() -> &'static [u8; 256] {
    static INV: OnceLock<[u8; 256]> = OnceLock::new();
    INV.get_or_init(|| {
        let mut inv = [0u8; 256];
        for (i, &s) in SBOX.iter().enumerate() {
            inv[s as usize] = i as u8;
        }
        inv
    })
}

#[inline]
fn xtime(b: u8) -> u8 {
    (b << 1) ^ (((b >> 7) & 1) * 0x1b)
}

/// Multiplication in AES's GF(2^8).
#[inline]
fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    p
}

/// Supported AES key sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KeySize {
    /// 128-bit key, 10 rounds.
    Aes128,
    /// 256-bit key, 14 rounds.
    Aes256,
}

impl KeySize {
    /// Key length in bytes.
    #[must_use]
    pub fn key_len(self) -> usize {
        match self {
            KeySize::Aes128 => 16,
            KeySize::Aes256 => 32,
        }
    }

    /// Number of rounds (Nr).
    #[must_use]
    pub fn rounds(self) -> usize {
        match self {
            KeySize::Aes128 => 10,
            KeySize::Aes256 => 14,
        }
    }
}

/// An AES key schedule ready to encrypt and decrypt 16-byte blocks.
///
/// # Example
///
/// ```
/// use vdisk_crypto::aes::Aes;
///
/// # fn main() -> Result<(), vdisk_crypto::CryptoError> {
/// let aes = Aes::new(&[0u8; 16])?;
/// let mut block = *b"0123456789abcdef";
/// let original = block;
/// aes.encrypt_block(&mut block);
/// aes.decrypt_block(&mut block);
/// assert_eq!(block, original);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Aes {
    round_keys: Vec<[u8; 16]>,
    size: KeySize,
}

impl std::fmt::Debug for Aes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        write!(f, "Aes({:?})", self.size)
    }
}

impl Aes {
    /// Builds a key schedule from a 16- or 32-byte key.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidKeyLength`] for any other length
    /// (including 24 bytes: AES-192 is deliberately unsupported, as no
    /// disk-encryption stack uses it).
    pub fn new(key: &[u8]) -> Result<Self> {
        let size = match key.len() {
            16 => KeySize::Aes128,
            32 => KeySize::Aes256,
            got => return Err(CryptoError::InvalidKeyLength { got }),
        };
        let nk = key.len() / 4; // words in key
        let nr = size.rounds();
        let total_words = 4 * (nr + 1);

        let mut w = vec![[0u8; 4]; total_words];
        for (i, chunk) in key.chunks(4).enumerate() {
            w[i].copy_from_slice(chunk);
        }
        let mut rcon: u8 = 1;
        for i in nk..total_words {
            let mut temp = w[i - 1];
            if i % nk == 0 {
                // RotWord + SubWord + Rcon
                temp = [
                    SBOX[temp[1] as usize] ^ rcon,
                    SBOX[temp[2] as usize],
                    SBOX[temp[3] as usize],
                    SBOX[temp[0] as usize],
                ];
                rcon = xtime(rcon);
            } else if nk > 6 && i % nk == 4 {
                // AES-256 extra SubWord
                for b in temp.iter_mut() {
                    *b = SBOX[*b as usize];
                }
            }
            for j in 0..4 {
                w[i][j] = w[i - nk][j] ^ temp[j];
            }
        }

        let mut round_keys = Vec::with_capacity(nr + 1);
        for r in 0..=nr {
            let mut rk = [0u8; 16];
            for c in 0..4 {
                rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
            round_keys.push(rk);
        }
        Ok(Aes { round_keys, size })
    }

    /// The key size this schedule was built for.
    #[must_use]
    pub fn key_size(&self) -> KeySize {
        self.size
    }

    /// Encrypts one 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        let nr = self.size.rounds();
        add_round_key(block, &self.round_keys[0]);
        for r in 1..nr {
            sub_bytes(block);
            shift_rows(block);
            mix_columns(block);
            add_round_key(block, &self.round_keys[r]);
        }
        sub_bytes(block);
        shift_rows(block);
        add_round_key(block, &self.round_keys[nr]);
    }

    /// Decrypts one 16-byte block in place.
    pub fn decrypt_block(&self, block: &mut [u8; 16]) {
        let nr = self.size.rounds();
        add_round_key(block, &self.round_keys[nr]);
        for r in (1..nr).rev() {
            inv_shift_rows(block);
            inv_sub_bytes(block);
            add_round_key(block, &self.round_keys[r]);
            inv_mix_columns(block);
        }
        inv_shift_rows(block);
        inv_sub_bytes(block);
        add_round_key(block, &self.round_keys[0]);
    }

    /// Convenience: encrypts a copy of `block` and returns it.
    #[must_use]
    pub fn encrypt_block_copy(&self, block: &[u8; 16]) -> [u8; 16] {
        let mut out = *block;
        self.encrypt_block(&mut out);
        out
    }

    /// Convenience: decrypts a copy of `block` and returns it.
    #[must_use]
    pub fn decrypt_block_copy(&self, block: &[u8; 16]) -> [u8; 16] {
        let mut out = *block;
        self.decrypt_block(&mut out);
        out
    }
}

#[inline]
fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for i in 0..16 {
        state[i] ^= rk[i];
    }
}

#[inline]
fn sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

#[inline]
fn inv_sub_bytes(state: &mut [u8; 16]) {
    let inv = inv_sbox();
    for b in state.iter_mut() {
        *b = inv[*b as usize];
    }
}

// State layout: state[4*c + r] is row r, column c. Row r consists of
// indices r, r+4, r+8, r+12. ShiftRows rotates row r left by r.
#[inline]
fn shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[4 * c + r] = s[4 * ((c + r) % 4) + r];
        }
    }
}

#[inline]
fn inv_shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[4 * ((c + r) % 4) + r] = s[4 * c + r];
        }
    }
}

#[inline]
fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = &mut state[4 * c..4 * c + 4];
        let (s0, s1, s2, s3) = (col[0], col[1], col[2], col[3]);
        let t = s0 ^ s1 ^ s2 ^ s3;
        col[0] = s0 ^ t ^ xtime(s0 ^ s1);
        col[1] = s1 ^ t ^ xtime(s1 ^ s2);
        col[2] = s2 ^ t ^ xtime(s2 ^ s3);
        col[3] = s3 ^ t ^ xtime(s3 ^ s0);
    }
}

#[inline]
fn inv_mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = &mut state[4 * c..4 * c + 4];
        let (s0, s1, s2, s3) = (col[0], col[1], col[2], col[3]);
        col[0] = gmul(s0, 14) ^ gmul(s1, 11) ^ gmul(s2, 13) ^ gmul(s3, 9);
        col[1] = gmul(s0, 9) ^ gmul(s1, 14) ^ gmul(s2, 11) ^ gmul(s3, 13);
        col[2] = gmul(s0, 13) ^ gmul(s1, 9) ^ gmul(s2, 14) ^ gmul(s3, 11);
        col[3] = gmul(s0, 11) ^ gmul(s1, 13) ^ gmul(s2, 9) ^ gmul(s3, 14);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::from_hex;

    fn block(hex: &str) -> [u8; 16] {
        let v = from_hex(hex).unwrap();
        let mut b = [0u8; 16];
        b.copy_from_slice(&v);
        b
    }

    /// FIPS-197 Appendix C.1: AES-128 known-answer test.
    #[test]
    fn fips197_aes128_kat() {
        let key = from_hex("000102030405060708090a0b0c0d0e0f").unwrap();
        let aes = Aes::new(&key).unwrap();
        let mut b = block("00112233445566778899aabbccddeeff");
        aes.encrypt_block(&mut b);
        assert_eq!(b, block("69c4e0d86a7b0430d8cdb78070b4c55a"));
        aes.decrypt_block(&mut b);
        assert_eq!(b, block("00112233445566778899aabbccddeeff"));
    }

    /// FIPS-197 Appendix C.3: AES-256 known-answer test.
    #[test]
    fn fips197_aes256_kat() {
        let key =
            from_hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f").unwrap();
        let aes = Aes::new(&key).unwrap();
        let mut b = block("00112233445566778899aabbccddeeff");
        aes.encrypt_block(&mut b);
        assert_eq!(b, block("8ea2b7ca516745bfeafc49904b496089"));
        aes.decrypt_block(&mut b);
        assert_eq!(b, block("00112233445566778899aabbccddeeff"));
    }

    /// NIST SP 800-38A F.1.1 first block (AES-128-ECB).
    #[test]
    fn sp800_38a_ecb_first_block() {
        let key = from_hex("2b7e151628aed2a6abf7158809cf4f3c").unwrap();
        let aes = Aes::new(&key).unwrap();
        let mut b = block("6bc1bee22e409f96e93d7e117393172a");
        aes.encrypt_block(&mut b);
        assert_eq!(b, block("3ad77bb40d7a3660a89ecaf32466ef97"));
    }

    #[test]
    fn rejects_bad_key_lengths() {
        for len in [0usize, 8, 15, 17, 24, 31, 33, 64] {
            let key = vec![0u8; len];
            assert_eq!(
                Aes::new(&key).unwrap_err(),
                CryptoError::InvalidKeyLength { got: len },
                "length {len} should be rejected"
            );
        }
    }

    #[test]
    fn round_trip_many_blocks() {
        let aes = Aes::new(&[7u8; 32]).unwrap();
        for i in 0..64u8 {
            let mut b = [i; 16];
            b[0] = i.wrapping_mul(37);
            let orig = b;
            aes.encrypt_block(&mut b);
            assert_ne!(b, orig, "encryption must change the block");
            aes.decrypt_block(&mut b);
            assert_eq!(b, orig);
        }
    }

    #[test]
    fn shift_rows_inverts() {
        let mut s: [u8; 16] = core::array::from_fn(|i| i as u8);
        let orig = s;
        shift_rows(&mut s);
        assert_ne!(s, orig);
        inv_shift_rows(&mut s);
        assert_eq!(s, orig);
    }

    #[test]
    fn mix_columns_inverts() {
        let mut s: [u8; 16] = core::array::from_fn(|i| (i * 13 + 1) as u8);
        let orig = s;
        mix_columns(&mut s);
        assert_ne!(s, orig);
        inv_mix_columns(&mut s);
        assert_eq!(s, orig);
    }

    #[test]
    fn sbox_is_a_permutation() {
        let mut seen = [false; 256];
        for &b in SBOX.iter() {
            assert!(!seen[b as usize], "duplicate S-box entry {b:#x}");
            seen[b as usize] = true;
        }
    }

    #[test]
    fn gmul_matches_known_products() {
        // {53} * {CA} = {01} in GF(2^8) (they are inverses).
        assert_eq!(gmul(0x53, 0xca), 0x01);
        assert_eq!(gmul(0x02, 0x80), 0x1b);
        assert_eq!(gmul(1, 0xab), 0xab);
    }

    #[test]
    fn debug_hides_keys() {
        let aes = Aes::new(&[0xEE; 16]).unwrap();
        assert_eq!(format!("{aes:?}"), "Aes(Aes128)");
    }
}
