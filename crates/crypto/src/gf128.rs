//! Arithmetic in GF(2^128), in the three bit/byte conventions used by
//! the modes in this crate.
//!
//! Three different standards, three different conventions:
//!
//! - **XTS** (IEEE 1619): the 16-byte tweak is a little-endian 128-bit
//!   value; multiplying by the primitive element α is a left shift with
//!   the reduction polynomial x^128 + x^7 + x^2 + x + 1 feeding back
//!   into the *lowest* byte ([`xts_mul_alpha`]).
//! - **GCM** (NIST SP 800-38D): bits within bytes are *reflected*;
//!   multiplication is defined MSB-first with the reduction constant
//!   `0xE1` at the *top* byte ([`ghash_mul`]).
//! - **EME / EME2** (IEEE 1619.2 family): blocks are big-endian 128-bit
//!   values; "multiply by 2" shifts left with `0x87` feeding back into
//!   the *lowest* byte when the top bit overflows ([`be_double`]).

/// A 16-byte GF(2^128) element in raw byte form.
pub type Block = [u8; 16];

/// Multiplies an XTS tweak by the primitive element α (x), in place.
///
/// This is the per-block tweak update of IEEE 1619: interpret the
/// 16 bytes as a little-endian 128-bit integer, shift left by one, and
/// on carry XOR `0x87` into byte 0.
///
/// # Example
///
/// ```
/// use vdisk_crypto::gf128::xts_mul_alpha;
/// let mut t = [0u8; 16];
/// t[0] = 0x80;
/// xts_mul_alpha(&mut t);
/// assert_eq!(t[1], 0x01); // the bit carried into the next byte
/// ```
pub fn xts_mul_alpha(tweak: &mut Block) {
    let mut carry = 0u8;
    for byte in tweak.iter_mut() {
        let next_carry = *byte >> 7;
        *byte = (*byte << 1) | carry;
        carry = next_carry;
    }
    if carry != 0 {
        tweak[0] ^= 0x87;
    }
}

/// Multiplies an XTS tweak by α^n (n sequential doublings).
///
/// Used to jump to the tweak of the j-th 16-byte sub-block of a sector
/// without recomputing the whole chain.
#[must_use]
pub fn xts_mul_alpha_pow(tweak: &Block, n: usize) -> Block {
    let mut t = *tweak;
    for _ in 0..n {
        xts_mul_alpha(&mut t);
    }
    t
}

/// GHASH multiplication `x * y` in GCM's reflected-bit convention.
///
/// Bit i of the specification maps to bit `7 - (i % 8)` of byte `i / 8`.
/// This is the straightforward (slow, constant-time-ish) bitwise
/// algorithm from SP 800-38D §6.3; GCM performance is not the point of
/// this reproduction.
#[must_use]
pub fn ghash_mul(x: &Block, y: &Block) -> Block {
    let mut z = [0u8; 16];
    let mut v = *y;
    for i in 0..128 {
        let xi = (x[i / 8] >> (7 - (i % 8))) & 1;
        if xi == 1 {
            for (zb, vb) in z.iter_mut().zip(v.iter()) {
                *zb ^= vb;
            }
        }
        // v = v >> 1 (in reflected convention), reduce with R = 0xE1...
        let lsb = v[15] & 1;
        for j in (1..16).rev() {
            v[j] = (v[j] >> 1) | ((v[j - 1] & 1) << 7);
        }
        v[0] >>= 1;
        if lsb == 1 {
            v[0] ^= 0xe1;
        }
    }
    z
}

/// Doubles a big-endian GF(2^128) element (EME convention), in place.
///
/// Interpret the 16 bytes as a big-endian 128-bit integer, shift left by
/// one, and on carry XOR `0x87` into the lowest (last) byte.
pub fn be_double(block: &mut Block) {
    let carry = block[0] >> 7;
    for i in 0..15 {
        block[i] = (block[i] << 1) | (block[i + 1] >> 7);
    }
    block[15] <<= 1;
    if carry != 0 {
        block[15] ^= 0x87;
    }
}

/// XORs two blocks, returning the result.
#[must_use]
pub fn xor_block(a: &Block, b: &Block) -> Block {
    let mut out = [0u8; 16];
    for i in 0..16 {
        out[i] = a[i] ^ b[i];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xts_alpha_shifts_left_le() {
        let mut t = [0u8; 16];
        t[0] = 1;
        xts_mul_alpha(&mut t);
        assert_eq!(t[0], 2);
        // 64 doublings move the bit to byte 8.
        let t2 = xts_mul_alpha_pow(&t, 63);
        assert_eq!(t2[8], 1);
        assert!(t2.iter().enumerate().all(|(i, &b)| b == 0 || i == 8));
    }

    #[test]
    fn xts_alpha_reduces_on_overflow() {
        let mut t = [0u8; 16];
        t[15] = 0x80; // top bit of the 128-bit LE value
        xts_mul_alpha(&mut t);
        // Shift overflows; result is the reduction polynomial.
        let mut expected = [0u8; 16];
        expected[0] = 0x87;
        assert_eq!(t, expected);
    }

    #[test]
    fn xts_alpha_pow_matches_iteration() {
        let mut t = [0xA5u8; 16];
        let jumped = xts_mul_alpha_pow(&t, 37);
        for _ in 0..37 {
            xts_mul_alpha(&mut t);
        }
        assert_eq!(t, jumped);
    }

    #[test]
    fn ghash_identity_element() {
        // In GCM's reflected convention the multiplicative identity is
        // the block with only the first (reflected) bit set: 0x80 00...
        let mut one = [0u8; 16];
        one[0] = 0x80;
        let x = [0x3Bu8; 16];
        assert_eq!(ghash_mul(&x, &one), x);
        assert_eq!(ghash_mul(&one, &x), x);
    }

    #[test]
    fn ghash_zero_annihilates() {
        let zero = [0u8; 16];
        let x = [0x77u8; 16];
        assert_eq!(ghash_mul(&x, &zero), zero);
        assert_eq!(ghash_mul(&zero, &x), zero);
    }

    #[test]
    fn ghash_commutes() {
        let a = {
            let mut t = [0u8; 16];
            t[3] = 0x12;
            t[9] = 0xF0;
            t
        };
        let b = {
            let mut t = [0u8; 16];
            t[0] = 0x01;
            t[15] = 0x80;
            t
        };
        assert_eq!(ghash_mul(&a, &b), ghash_mul(&b, &a));
    }

    #[test]
    fn ghash_distributes_over_xor() {
        let a = [0x13u8; 16];
        let b = {
            let mut t = [0u8; 16];
            t[5] = 0x44;
            t
        };
        let c = {
            let mut t = [0u8; 16];
            t[11] = 0x0F;
            t
        };
        let left = ghash_mul(&xor_block(&a, &b), &c);
        let right = xor_block(&ghash_mul(&a, &c), &ghash_mul(&b, &c));
        assert_eq!(left, right);
    }

    #[test]
    fn be_double_shifts_and_reduces() {
        let mut b = [0u8; 16];
        b[15] = 0x01;
        be_double(&mut b);
        assert_eq!(b[15], 0x02);

        let mut b = [0u8; 16];
        b[0] = 0x80;
        be_double(&mut b);
        let mut expected = [0u8; 16];
        expected[15] = 0x87;
        assert_eq!(b, expected);
    }

    #[test]
    fn be_double_is_linear() {
        let a = [0x5Au8; 16];
        let b = [0xC3u8; 16];
        let mut da = a;
        be_double(&mut da);
        let mut db = b;
        be_double(&mut db);
        let mut dab = xor_block(&a, &b);
        be_double(&mut dab);
        assert_eq!(dab, xor_block(&da, &db));
    }
}
