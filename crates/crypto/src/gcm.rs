//! AES-GCM authenticated encryption (NIST SP 800-38D).
//!
//! The paper (§3.1) notes that once per-sector metadata exists, an
//! *authenticated* cipher such as AES-GCM becomes usable for disk
//! encryption — but **only** with a true nonce, because GCM fails
//! catastrophically under nonce reuse (§2.1). The random persisted IV
//! this repository implements is exactly such a nonce.

use crate::aes::Aes;
use crate::ctr::{ctr_xor, increment_counter};
use crate::gf128::ghash_mul;
use crate::mem::ct_eq;
use crate::{CryptoError, Result};

/// GCM tag length in bytes (full 128-bit tags only).
pub const TAG_LEN: usize = 16;
/// The recommended nonce length (96 bits).
pub const NONCE_LEN: usize = 12;

/// An AES-GCM instance.
///
/// # Example
///
/// ```
/// use vdisk_crypto::gcm::AesGcm;
/// # fn main() -> Result<(), vdisk_crypto::CryptoError> {
/// let gcm = AesGcm::new(&[0u8; 32])?;
/// let nonce = [1u8; 12];
/// let mut sector = vec![9u8; 4096];
/// let tag = gcm.encrypt(&nonce, b"lba=77", &mut sector);
/// gcm.decrypt(&nonce, b"lba=77", &mut sector, &tag)?;
/// assert_eq!(sector, vec![9u8; 4096]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AesGcm {
    aes: Aes,
    h: [u8; 16],
}

impl AesGcm {
    /// Creates a GCM instance from a 16- or 32-byte AES key.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidKeyLength`] for other lengths.
    pub fn new(key: &[u8]) -> Result<Self> {
        let aes = Aes::new(key)?;
        let h = aes.encrypt_block_copy(&[0u8; 16]);
        Ok(AesGcm { aes, h })
    }

    /// Encrypts `data` in place and returns the 16-byte tag.
    ///
    /// `aad` is authenticated but not encrypted; the disk encryptor puts
    /// the LBA (and snapshot generation) there to prevent replay.
    ///
    /// # Panics
    ///
    /// Panics if `nonce` is empty (all other lengths are accepted; 12
    /// bytes takes the fast path, others are hashed per the spec).
    #[must_use]
    pub fn encrypt(&self, nonce: &[u8], aad: &[u8], data: &mut [u8]) -> [u8; TAG_LEN] {
        assert!(!nonce.is_empty(), "GCM nonce must not be empty");
        let j0 = self.derive_j0(nonce);
        let mut counter = j0;
        increment_counter(&mut counter);
        ctr_xor(&self.aes, &counter, data);
        self.compute_tag(&j0, aad, data)
    }

    /// Verifies the tag and decrypts `data` in place.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::AuthenticationFailed`] if the tag does not
    /// verify; in that case `data` is left **unmodified** (ciphertext).
    pub fn decrypt(&self, nonce: &[u8], aad: &[u8], data: &mut [u8], tag: &[u8]) -> Result<()> {
        assert!(!nonce.is_empty(), "GCM nonce must not be empty");
        let j0 = self.derive_j0(nonce);
        let expected = self.compute_tag(&j0, aad, data);
        if !ct_eq(&expected, tag) {
            return Err(CryptoError::AuthenticationFailed);
        }
        let mut counter = j0;
        increment_counter(&mut counter);
        ctr_xor(&self.aes, &counter, data);
        Ok(())
    }

    fn derive_j0(&self, nonce: &[u8]) -> [u8; 16] {
        if nonce.len() == NONCE_LEN {
            let mut j0 = [0u8; 16];
            j0[..12].copy_from_slice(nonce);
            j0[15] = 1;
            j0
        } else {
            // J0 = GHASH(IV || pad || [0]^64 || len(IV) in bits)
            let mut ghash = Ghash::new(&self.h);
            ghash.update_padded(nonce);
            let mut len_block = [0u8; 16];
            len_block[8..].copy_from_slice(&((nonce.len() as u64) * 8).to_be_bytes());
            ghash.update_block(&len_block);
            ghash.finalize()
        }
    }

    fn compute_tag(&self, j0: &[u8; 16], aad: &[u8], ciphertext: &[u8]) -> [u8; TAG_LEN] {
        let mut ghash = Ghash::new(&self.h);
        ghash.update_padded(aad);
        ghash.update_padded(ciphertext);
        let mut len_block = [0u8; 16];
        len_block[..8].copy_from_slice(&((aad.len() as u64) * 8).to_be_bytes());
        len_block[8..].copy_from_slice(&((ciphertext.len() as u64) * 8).to_be_bytes());
        ghash.update_block(&len_block);
        let s = ghash.finalize();
        let e_j0 = self.aes.encrypt_block_copy(j0);
        let mut tag = [0u8; TAG_LEN];
        for i in 0..TAG_LEN {
            tag[i] = s[i] ^ e_j0[i];
        }
        tag
    }
}

/// Incremental GHASH state.
struct Ghash {
    h: [u8; 16],
    y: [u8; 16],
}

impl Ghash {
    fn new(h: &[u8; 16]) -> Self {
        Ghash {
            h: *h,
            y: [0u8; 16],
        }
    }

    fn update_block(&mut self, block: &[u8; 16]) {
        for (y, b) in self.y.iter_mut().zip(block) {
            *y ^= b;
        }
        self.y = ghash_mul(&self.y, &self.h);
    }

    /// Absorbs `data`, zero-padding the final partial block.
    fn update_padded(&mut self, data: &[u8]) {
        for chunk in data.chunks(16) {
            let mut block = [0u8; 16];
            block[..chunk.len()].copy_from_slice(chunk);
            self.update_block(&block);
        }
    }

    fn finalize(self) -> [u8; 16] {
        self.y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::to_hex;

    /// NIST GCM test case 1: zero key, zero nonce, empty everything.
    #[test]
    fn nist_test_case_1_empty() {
        let gcm = AesGcm::new(&[0u8; 16]).unwrap();
        let mut data = [];
        let tag = gcm.encrypt(&[0u8; 12], &[], &mut data);
        assert_eq!(to_hex(&tag), "58e2fccefa7e3061367f1d57a4e7455a");
    }

    /// NIST GCM test case 2: tag over a single zero block.
    #[test]
    fn nist_test_case_2_tag() {
        let gcm = AesGcm::new(&[0u8; 16]).unwrap();
        let mut data = [0u8; 16];
        let tag = gcm.encrypt(&[0u8; 12], &[], &mut data);
        assert_eq!(to_hex(&tag), "ab6e47d42cec13bdf53a67b21257bddf");
        // Round-trip through decrypt must succeed and restore zeros.
        gcm.decrypt(&[0u8; 12], &[], &mut data, &tag).unwrap();
        assert_eq!(data, [0u8; 16]);
    }

    #[test]
    fn tamper_detection_ciphertext() {
        let gcm = AesGcm::new(&[4u8; 32]).unwrap();
        let nonce = [9u8; 12];
        let mut data = vec![0x5Au8; 100];
        let tag = gcm.encrypt(&nonce, b"aad", &mut data);
        data[50] ^= 1;
        let snapshot = data.clone();
        let err = gcm.decrypt(&nonce, b"aad", &mut data, &tag).unwrap_err();
        assert_eq!(err, CryptoError::AuthenticationFailed);
        // Failed decryption must not touch the buffer.
        assert_eq!(data, snapshot);
    }

    #[test]
    fn tamper_detection_aad_and_tag() {
        let gcm = AesGcm::new(&[4u8; 16]).unwrap();
        let nonce = [1u8; 12];
        let mut data = vec![1u8; 32];
        let tag = gcm.encrypt(&nonce, b"lba=5", &mut data);
        assert!(gcm.decrypt(&nonce, b"lba=6", &mut data, &tag).is_err());
        let mut bad_tag = tag;
        bad_tag[0] ^= 0x80;
        assert!(gcm.decrypt(&nonce, b"lba=5", &mut data, &bad_tag).is_err());
        assert!(gcm.decrypt(&nonce, b"lba=5", &mut data, &tag).is_ok());
    }

    #[test]
    fn replay_to_other_lba_fails_via_aad() {
        // The disk layer binds the LBA in the AAD; moving a sector's
        // (ciphertext, nonce, tag) to another LBA must fail closed.
        let gcm = AesGcm::new(&[7u8; 32]).unwrap();
        let nonce = [3u8; 12];
        let mut sector = vec![0xEEu8; 4096];
        let tag = gcm.encrypt(&nonce, &77u64.to_le_bytes(), &mut sector);
        assert!(gcm
            .decrypt(&nonce, &78u64.to_le_bytes(), &mut sector, &tag)
            .is_err());
    }

    #[test]
    fn non_96_bit_nonces_accepted() {
        let gcm = AesGcm::new(&[2u8; 16]).unwrap();
        for nonce_len in [1usize, 8, 13, 16, 32] {
            let nonce = vec![0xCD; nonce_len];
            let mut data = vec![0x11u8; 40];
            let tag = gcm.encrypt(&nonce, &[], &mut data);
            gcm.decrypt(&nonce, &[], &mut data, &tag).unwrap();
            assert_eq!(data, vec![0x11u8; 40], "nonce_len {nonce_len}");
        }
    }

    #[test]
    fn distinct_nonces_give_distinct_ciphertexts() {
        let gcm = AesGcm::new(&[8u8; 32]).unwrap();
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        let _ = gcm.encrypt(&[1u8; 12], &[], &mut a);
        let _ = gcm.encrypt(&[2u8; 12], &[], &mut b);
        assert_ne!(a, b);
    }

    /// The §2.1 warning: nonce reuse in GCM leaks the XOR of the
    /// plaintexts. This test *demonstrates* the leak to justify why the
    /// random-IV scheme must never reuse a persisted nonce.
    #[test]
    fn nonce_reuse_leaks_plaintext_xor() {
        let gcm = AesGcm::new(&[6u8; 16]).unwrap();
        let nonce = [0xAB; 12];
        let p1 = vec![0x0Fu8; 48];
        let p2: Vec<u8> = (0..48u8).collect();
        let mut c1 = p1.clone();
        let mut c2 = p2.clone();
        let _ = gcm.encrypt(&nonce, &[], &mut c1);
        let _ = gcm.encrypt(&nonce, &[], &mut c2);
        for i in 0..48 {
            assert_eq!(c1[i] ^ c2[i], p1[i] ^ p2[i]);
        }
    }
}
