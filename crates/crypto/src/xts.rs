//! AES-XTS (IEEE 1619 / NIST SP 800-38E): the narrow-block tweakable
//! mode that virtually all disk encryption uses today, including
//! ciphertext stealing for sector sizes that are not multiples of 16.
//!
//! XTS is exactly the mode whose security compromise motivates the
//! paper: it is deterministic given (key, tweak), and it is
//! *narrow-block* — a change confined to one 16-byte sub-block of the
//! plaintext changes only the corresponding sub-block of the
//! ciphertext (see [`XtsCipher::encrypt_sector`] and the sub-block
//! locality tests below, which demonstrate the leak of §2.1).

use crate::aes::Aes;
use crate::gf128::xts_mul_alpha;
use crate::{CryptoError, Result};

/// An XTS cipher instance: two independent AES keys (K1 for data,
/// K2 for the tweak).
///
/// # Example
///
/// ```
/// use vdisk_crypto::xts::XtsCipher;
/// # fn main() -> Result<(), vdisk_crypto::CryptoError> {
/// // AES-128-XTS (32-byte key) or AES-256-XTS (64-byte key).
/// let xts = XtsCipher::new(&[0u8; 32])?;
/// let mut sector = vec![7u8; 512];
/// xts.encrypt_sector(&XtsCipher::tweak_from_sector_number(42), &mut sector)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct XtsCipher {
    data_cipher: Aes,
    tweak_cipher: Aes,
}

impl XtsCipher {
    /// Creates an XTS instance from a combined key: 32 bytes for
    /// AES-128-XTS or 64 bytes for AES-256-XTS (K1 || K2).
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidKeyLength`] for other lengths.
    pub fn new(key: &[u8]) -> Result<Self> {
        if key.len() != 32 && key.len() != 64 {
            return Err(CryptoError::InvalidKeyLength { got: key.len() });
        }
        let half = key.len() / 2;
        Ok(XtsCipher {
            data_cipher: Aes::new(&key[..half])?,
            tweak_cipher: Aes::new(&key[half..])?,
        })
    }

    /// Builds the canonical LBA-derived tweak: the 64-bit sector number
    /// in little-endian, zero-padded to 16 bytes (the LUKS2 / dm-crypt
    /// "plain64" convention).
    #[must_use]
    pub fn tweak_from_sector_number(sector: u64) -> [u8; 16] {
        let mut tweak = [0u8; 16];
        tweak[..8].copy_from_slice(&sector.to_le_bytes());
        tweak
    }

    /// Encrypts one sector in place under the given 16-byte tweak.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidDataLength`] if the sector is
    /// shorter than one cipher block (16 bytes). Lengths that are not a
    /// multiple of 16 are handled with ciphertext stealing.
    pub fn encrypt_sector(&self, tweak: &[u8; 16], data: &mut [u8]) -> Result<()> {
        self.process_sector(tweak, data, Direction::Encrypt)
    }

    /// Decrypts one sector in place under the given 16-byte tweak.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidDataLength`] if the sector is
    /// shorter than one cipher block.
    pub fn decrypt_sector(&self, tweak: &[u8; 16], data: &mut [u8]) -> Result<()> {
        self.process_sector(tweak, data, Direction::Decrypt)
    }

    fn process_sector(&self, tweak: &[u8; 16], data: &mut [u8], dir: Direction) -> Result<()> {
        if data.len() < 16 {
            return Err(CryptoError::InvalidDataLength { got: data.len() });
        }
        // T_0 = AES_enc(K2, tweak); T_{j+1} = T_j * alpha.
        let mut t = self.tweak_cipher.encrypt_block_copy(tweak);

        let full_blocks = data.len() / 16;
        let tail = data.len() % 16;

        if tail == 0 {
            for j in 0..full_blocks {
                self.xts_block(&t, &mut data[16 * j..16 * j + 16], dir);
                xts_mul_alpha(&mut t);
            }
            return Ok(());
        }

        // Ciphertext stealing: process all but the last full block
        // normally, then swap-and-steal across the final partial block.
        for j in 0..full_blocks - 1 {
            self.xts_block(&t, &mut data[16 * j..16 * j + 16], dir);
            xts_mul_alpha(&mut t);
        }
        let t_second_last = t;
        let mut t_last = t;
        xts_mul_alpha(&mut t_last);

        let last_full_start = 16 * (full_blocks - 1);
        let partial_start = 16 * full_blocks;

        match dir {
            Direction::Encrypt => {
                // CC = Enc(T_{m-1}, P_{m-1})
                let mut cc = [0u8; 16];
                cc.copy_from_slice(&data[last_full_start..last_full_start + 16]);
                self.xts_block_owned(&t_second_last, &mut cc, dir);
                // C_m (partial) = first `tail` bytes of CC;
                // final full block = Enc(T_m, P_m || tail of CC).
                let mut last = [0u8; 16];
                last[..tail].copy_from_slice(&data[partial_start..]);
                last[tail..].copy_from_slice(&cc[tail..]);
                self.xts_block_owned(&t_last, &mut last, dir);
                data[last_full_start..last_full_start + 16].copy_from_slice(&last);
                data[partial_start..].copy_from_slice(&cc[..tail]);
            }
            Direction::Decrypt => {
                // PP = Dec(T_m, C_{m-1})
                let mut pp = [0u8; 16];
                pp.copy_from_slice(&data[last_full_start..last_full_start + 16]);
                self.xts_block_owned(&t_last, &mut pp, dir);
                // P_m (partial) = first `tail` bytes of PP;
                // final full block = Dec(T_{m-1}, C_m || tail of PP).
                let mut last = [0u8; 16];
                last[..tail].copy_from_slice(&data[partial_start..]);
                last[tail..].copy_from_slice(&pp[tail..]);
                self.xts_block_owned(&t_second_last, &mut last, dir);
                data[last_full_start..last_full_start + 16].copy_from_slice(&last);
                data[partial_start..].copy_from_slice(&pp[..tail]);
            }
        }
        Ok(())
    }

    #[inline]
    fn xts_block(&self, t: &[u8; 16], block: &mut [u8], dir: Direction) {
        let mut b = [0u8; 16];
        b.copy_from_slice(block);
        self.xts_block_owned(t, &mut b, dir);
        block.copy_from_slice(&b);
    }

    #[inline]
    fn xts_block_owned(&self, t: &[u8; 16], block: &mut [u8; 16], dir: Direction) {
        for i in 0..16 {
            block[i] ^= t[i];
        }
        match dir {
            Direction::Encrypt => self.data_cipher.encrypt_block(block),
            Direction::Decrypt => self.data_cipher.decrypt_block(block),
        }
        for i in 0..16 {
            block[i] ^= t[i];
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Direction {
    Encrypt,
    Decrypt,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::{from_hex, to_hex};

    /// IEEE 1619 Vector 1: all-zero keys, zero tweak, 32 zero bytes.
    #[test]
    fn ieee1619_vector_1() {
        let xts = XtsCipher::new(&[0u8; 32]).unwrap();
        let tweak = [0u8; 16];
        let mut data = vec![0u8; 32];
        xts.encrypt_sector(&tweak, &mut data).unwrap();
        assert_eq!(
            to_hex(&data),
            "917cf69ebd68b2ec9b9fe9a3eadda692cd43d2f59598ed858c02c2652fbf922e"
        );
        xts.decrypt_sector(&tweak, &mut data).unwrap();
        assert_eq!(data, vec![0u8; 32]);
    }

    /// IEEE 1619 Vector 2: repeated 0x11/0x22 keys, tweak 0x33...,
    /// 32 bytes of 0x44.
    #[test]
    fn ieee1619_vector_2() {
        let mut key = Vec::new();
        key.extend_from_slice(&[0x11u8; 16]);
        key.extend_from_slice(&[0x22u8; 16]);
        let xts = XtsCipher::new(&key).unwrap();
        let mut tweak = [0u8; 16];
        tweak[..8].copy_from_slice(&0x3333333333u64.to_le_bytes());
        let mut data = vec![0x44u8; 32];
        xts.encrypt_sector(&tweak, &mut data).unwrap();
        assert_eq!(
            to_hex(&data),
            "c454185e6a16936e39334038acef838bfb186fff7480adc4289382ecd6d394f0"
        );
        xts.decrypt_sector(&tweak, &mut data).unwrap();
        assert_eq!(data, vec![0x44u8; 32]);
    }

    #[test]
    fn rejects_invalid_keys_and_lengths() {
        assert!(XtsCipher::new(&[0u8; 16]).is_err());
        assert!(XtsCipher::new(&[0u8; 48]).is_err());
        let xts = XtsCipher::new(&[0u8; 64]).unwrap();
        let mut short = [0u8; 15];
        assert_eq!(
            xts.encrypt_sector(&[0u8; 16], &mut short).unwrap_err(),
            CryptoError::InvalidDataLength { got: 15 }
        );
    }

    #[test]
    fn round_trip_all_tail_lengths() {
        let xts = XtsCipher::new(&[5u8; 64]).unwrap();
        let tweak = XtsCipher::tweak_from_sector_number(99);
        for len in 16..=80 {
            let mut data: Vec<u8> = (0..len as u8).collect();
            let orig = data.clone();
            xts.encrypt_sector(&tweak, &mut data).unwrap();
            assert_ne!(data, orig, "len {len} unchanged by encryption");
            xts.decrypt_sector(&tweak, &mut data).unwrap();
            assert_eq!(data, orig, "len {len} failed round trip");
        }
    }

    /// Demonstrates the paper's §2.1 point: XTS is *narrow-block*.
    /// Changing one sub-block of plaintext changes exactly that
    /// sub-block of ciphertext, so an adversary can locate overwrites
    /// at 16-byte granularity.
    #[test]
    fn narrow_block_locality_leak() {
        let xts = XtsCipher::new(&[1u8; 64]).unwrap();
        let tweak = XtsCipher::tweak_from_sector_number(7);
        let mut a = vec![0xAAu8; 4096];
        let mut b = a.clone();
        // Flip one bit inside sub-block 100.
        b[100 * 16 + 3] ^= 0x01;
        xts.encrypt_sector(&tweak, &mut a).unwrap();
        xts.encrypt_sector(&tweak, &mut b).unwrap();
        for block in 0..256 {
            let ca = &a[block * 16..block * 16 + 16];
            let cb = &b[block * 16..block * 16 + 16];
            if block == 100 {
                assert_ne!(ca, cb, "modified sub-block must differ");
            } else {
                assert_eq!(ca, cb, "untouched sub-block {block} leaked a change");
            }
        }
    }

    /// Mix-and-match attack from §2.1: sub-blocks from two ciphertexts
    /// written under the same tweak can be spliced into a ciphertext
    /// that decrypts cleanly to a plaintext that was never written.
    #[test]
    fn mix_and_match_splice_decrypts_cleanly() {
        let xts = XtsCipher::new(&[9u8; 64]).unwrap();
        let tweak = XtsCipher::tweak_from_sector_number(1234);
        let mut v1 = vec![0x11u8; 4096];
        let mut v2 = vec![0x22u8; 4096];
        xts.encrypt_sector(&tweak, &mut v1).unwrap();
        xts.encrypt_sector(&tweak, &mut v2).unwrap();
        // Adversary splices: first half from v1, second half from v2.
        let mut franken: Vec<u8> = Vec::new();
        franken.extend_from_slice(&v1[..2048]);
        franken.extend_from_slice(&v2[2048..]);
        xts.decrypt_sector(&tweak, &mut franken).unwrap();
        // The spliced ciphertext decrypts to a valid-looking plaintext
        // combining both versions — undetectable without a MAC.
        assert_eq!(&franken[..2048], &vec![0x11u8; 2048][..]);
        assert_eq!(&franken[2048..], &vec![0x22u8; 2048][..]);
    }

    /// Different tweaks produce unrelated ciphertexts for equal data.
    #[test]
    fn tweak_separates_sectors() {
        let xts = XtsCipher::new(&[2u8; 32]).unwrap();
        let mut a = vec![0u8; 512];
        let mut b = vec![0u8; 512];
        xts.encrypt_sector(&XtsCipher::tweak_from_sector_number(0), &mut a)
            .unwrap();
        xts.encrypt_sector(&XtsCipher::tweak_from_sector_number(1), &mut b)
            .unwrap();
        assert_ne!(a, b);
    }

    /// Determinism: same key, tweak and plaintext — identical
    /// ciphertext. This is the overwrite leak that random IVs remove.
    #[test]
    fn deterministic_under_fixed_tweak() {
        let xts = XtsCipher::new(&[3u8; 64]).unwrap();
        let tweak = XtsCipher::tweak_from_sector_number(55);
        let mut a = vec![0x77u8; 4096];
        let mut b = vec![0x77u8; 4096];
        xts.encrypt_sector(&tweak, &mut a).unwrap();
        xts.encrypt_sector(&tweak, &mut b).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn tweak_helper_is_little_endian() {
        let t = XtsCipher::tweak_from_sector_number(0x0102030405060708);
        assert_eq!(&t[..8], &[8, 7, 6, 5, 4, 3, 2, 1]);
        assert_eq!(&t[8..], &[0; 8]);
        let _ = from_hex("00"); // keep helper linked in this module
    }
}
