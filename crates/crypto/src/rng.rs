//! IV sources.
//!
//! The core of the paper is "use a fresh **random** IV per sector
//! write". The source of that randomness is abstracted so that
//! production code uses the OS CSPRNG while tests and the reproducible
//! benchmark harness use a seeded generator.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// A source of initialization vectors.
///
/// Implementations must produce bytes that are unpredictable (for
/// production sources) or at minimum non-repeating with overwhelming
/// probability across the lifetime of a disk.
pub trait IvSource: Send {
    /// Fills `buf` with fresh IV bytes.
    fn fill(&mut self, buf: &mut [u8]);

    /// Convenience: returns a fresh 16-byte IV.
    fn next_iv16(&mut self) -> [u8; 16] {
        let mut iv = [0u8; 16];
        self.fill(&mut iv);
        iv
    }

    /// Convenience: returns a fresh 12-byte GCM nonce.
    fn next_nonce12(&mut self) -> [u8; 12] {
        let mut nonce = [0u8; 12];
        self.fill(&mut nonce);
        nonce
    }
}

/// IVs from the operating system CSPRNG.
#[derive(Debug, Default, Clone, Copy)]
pub struct OsIvSource;

impl IvSource for OsIvSource {
    fn fill(&mut self, buf: &mut [u8]) {
        rand::rngs::OsRng.fill_bytes(buf);
    }
}

/// Deterministic IVs from a seeded PRNG — for tests and reproducible
/// benchmark runs only. Statistically random, never secure.
#[derive(Debug, Clone)]
pub struct SeededIvSource {
    rng: StdRng,
}

impl SeededIvSource {
    /// Creates a source from a 64-bit seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SeededIvSource {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl IvSource for SeededIvSource {
    fn fill(&mut self, buf: &mut [u8]) {
        self.rng.fill_bytes(buf);
    }
}

/// An IV source that counts how many IVs were drawn — used by tests to
/// assert that exactly one fresh IV is consumed per sector write.
#[derive(Debug)]
pub struct CountingIvSource<S> {
    inner: S,
    count: u64,
}

impl<S: IvSource> CountingIvSource<S> {
    /// Wraps another source.
    #[must_use]
    pub fn new(inner: S) -> Self {
        CountingIvSource { inner, count: 0 }
    }

    /// Number of `fill` calls so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }
}

impl<S: IvSource> IvSource for CountingIvSource<S> {
    fn fill(&mut self, buf: &mut [u8]) {
        self.count += 1;
        self.inner.fill(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn seeded_source_is_reproducible() {
        let mut a = SeededIvSource::new(42);
        let mut b = SeededIvSource::new(42);
        for _ in 0..10 {
            assert_eq!(a.next_iv16(), b.next_iv16());
        }
        let mut c = SeededIvSource::new(43);
        assert_ne!(SeededIvSource::new(42).next_iv16(), c.next_iv16());
    }

    #[test]
    fn ivs_do_not_visibly_repeat() {
        let mut src = SeededIvSource::new(7);
        let mut seen = HashSet::new();
        for _ in 0..10_000 {
            assert!(seen.insert(src.next_iv16()), "128-bit IV repeated");
        }
    }

    #[test]
    fn os_source_produces_nonzero_output() {
        let mut src = OsIvSource;
        let a = src.next_iv16();
        let b = src.next_iv16();
        assert_ne!(a, b);
        assert_ne!(a, [0u8; 16]);
    }

    #[test]
    fn counting_wrapper_counts() {
        let mut src = CountingIvSource::new(SeededIvSource::new(1));
        let _ = src.next_iv16();
        let _ = src.next_nonce12();
        assert_eq!(src.count(), 2);
    }

    #[test]
    fn nonce12_is_12_bytes_of_entropy() {
        let mut src = SeededIvSource::new(9);
        let n = src.next_nonce12();
        assert_eq!(n.len(), 12);
        assert_ne!(n, [0u8; 12]);
    }
}
