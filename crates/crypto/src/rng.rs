//! IV sources.
//!
//! The core of the paper is "use a fresh **random** IV per sector
//! write". The source of that randomness is abstracted so that
//! production code uses the OS CSPRNG while tests and the reproducible
//! benchmark harness use a seeded generator.

use std::io::Read;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A small deterministic PRNG (xoshiro256++) used wherever the stack
/// needs *reproducible* randomness: seeded IV sources, workload
/// generators, test data. Statistically strong, never secure.
#[derive(Debug, Clone)]
pub struct SeededRng {
    s: [u64; 4],
}

impl SeededRng {
    /// Creates a generator from a 64-bit seed (expanded via
    /// splitmix64, the reference seeding procedure).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        SeededRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Creates a generator from a full 256-bit state (must not be all
    /// zero; a zero state is nudged onto a fixed odd constant).
    #[must_use]
    pub fn from_state(mut state: [u64; 4]) -> Self {
        if state == [0u64; 4] {
            state[0] = 0x9E37_79B9_7F4A_7C15;
        }
        SeededRng { s: state }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let r = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        r
    }

    /// Uniform value in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn gen_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "gen_below(0)");
        self.next_u64() % n
    }

    /// Fills `buf` with random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let r = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&r[..chunk.len()]);
        }
    }
}

/// A source of initialization vectors.
///
/// Implementations must produce bytes that are unpredictable (for
/// production sources) or at minimum non-repeating with overwhelming
/// probability across the lifetime of a disk.
pub trait IvSource: Send {
    /// Fills `buf` with fresh IV bytes.
    fn fill(&mut self, buf: &mut [u8]);

    /// Convenience: returns a fresh 16-byte IV.
    fn next_iv16(&mut self) -> [u8; 16] {
        let mut iv = [0u8; 16];
        self.fill(&mut iv);
        iv
    }

    /// Convenience: returns a fresh 12-byte GCM nonce.
    fn next_nonce12(&mut self) -> [u8; 12] {
        let mut nonce = [0u8; 12];
        self.fill(&mut nonce);
        nonce
    }
}

/// IVs from the operating system entropy pool (`/dev/urandom`).
///
/// The device is opened once and entropy is read in buffered blocks,
/// so the per-sector cost on the write hot path is a slice copy, not
/// a syscall. On platforms without `/dev/urandom` a degraded
/// process-local generator takes over — see [`OsIvSource::fill`].
#[derive(Debug)]
pub struct OsIvSource {
    urandom: Option<std::fs::File>,
    pool: [u8; 1024],
    // Unconsumed entropy lives at pool[cursor..]; cursor == len means
    // empty.
    cursor: usize,
}

impl Default for OsIvSource {
    fn default() -> Self {
        Self::new()
    }
}

impl OsIvSource {
    /// Creates a source; the entropy device is opened lazily on first
    /// use.
    #[must_use]
    pub fn new() -> Self {
        OsIvSource {
            urandom: None,
            pool: [0u8; 1024],
            cursor: 1024,
        }
    }

    /// Refills the pool from `/dev/urandom`; false if unavailable.
    fn refill(&mut self) -> bool {
        if self.urandom.is_none() {
            self.urandom = std::fs::File::open("/dev/urandom").ok();
        }
        let Some(file) = self.urandom.as_mut() else {
            return false;
        };
        match file.read_exact(&mut self.pool) {
            Ok(()) => {
                self.cursor = 0;
                true
            }
            Err(_) => {
                self.urandom = None;
                false
            }
        }
    }

    /// Fallback for platforms without `/dev/urandom`: a process-local
    /// generator whose 256-bit state hashes the clock, a monotonic
    /// counter, and ASLR address entropy. Unpredictability is
    /// **degraded** relative to a real OS CSPRNG; uniqueness of the
    /// IV stream (the property whose loss actually breaks XTS/GCM) is
    /// preserved by the counter even across clock steps.
    fn fallback_fill(buf: &mut [u8]) {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| {
                u64::try_from(d.as_nanos() & u128::from(u64::MAX)).unwrap_or(0)
            });
        let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
        let stack_addr = std::ptr::from_ref(&nanos) as usize as u64;
        let heap_probe = Box::new(0u8);
        let heap_addr = std::ptr::from_ref::<u8>(&heap_probe) as usize as u64;
        let mut seed_material = Vec::with_capacity(32);
        seed_material.extend_from_slice(&nanos.to_le_bytes());
        seed_material.extend_from_slice(&unique.to_le_bytes());
        seed_material.extend_from_slice(&stack_addr.to_le_bytes());
        seed_material.extend_from_slice(&heap_addr.to_le_bytes());
        let digest = crate::sha256::sha256(&seed_material);
        let mut state = [0u64; 4];
        for (word, chunk) in state.iter_mut().zip(digest.chunks_exact(8)) {
            let mut b = [0u8; 8];
            b.copy_from_slice(chunk);
            *word = u64::from_le_bytes(b);
        }
        SeededRng::from_state(state).fill_bytes(buf);
    }
}

impl IvSource for OsIvSource {
    fn fill(&mut self, buf: &mut [u8]) {
        let mut out = buf;
        while !out.is_empty() {
            if self.cursor == self.pool.len() && !self.refill() {
                Self::fallback_fill(out);
                return;
            }
            let take = out.len().min(self.pool.len() - self.cursor);
            let (head, rest) = out.split_at_mut(take);
            head.copy_from_slice(&self.pool[self.cursor..self.cursor + take]);
            // Entropy is never reused: wipe what was handed out.
            self.pool[self.cursor..self.cursor + take].fill(0);
            self.cursor += take;
            out = rest;
        }
    }
}

/// Deterministic IVs from a seeded PRNG — for tests and reproducible
/// benchmark runs only. Statistically random, never secure.
#[derive(Debug, Clone)]
pub struct SeededIvSource {
    rng: SeededRng,
}

impl SeededIvSource {
    /// Creates a source from a 64-bit seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SeededIvSource {
            rng: SeededRng::new(seed),
        }
    }
}

impl IvSource for SeededIvSource {
    fn fill(&mut self, buf: &mut [u8]) {
        self.rng.fill_bytes(buf);
    }
}

/// An IV source that counts how many IVs were drawn — used by tests to
/// assert that exactly one fresh IV is consumed per sector write.
#[derive(Debug)]
pub struct CountingIvSource<S> {
    inner: S,
    count: u64,
}

impl<S: IvSource> CountingIvSource<S> {
    /// Wraps another source.
    #[must_use]
    pub fn new(inner: S) -> Self {
        CountingIvSource { inner, count: 0 }
    }

    /// Number of `fill` calls so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }
}

impl<S: IvSource> IvSource for CountingIvSource<S> {
    fn fill(&mut self, buf: &mut [u8]) {
        self.count += 1;
        self.inner.fill(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn seeded_source_is_reproducible() {
        let mut a = SeededIvSource::new(42);
        let mut b = SeededIvSource::new(42);
        for _ in 0..10 {
            assert_eq!(a.next_iv16(), b.next_iv16());
        }
        let mut c = SeededIvSource::new(43);
        assert_ne!(SeededIvSource::new(42).next_iv16(), c.next_iv16());
    }

    #[test]
    fn ivs_do_not_visibly_repeat() {
        let mut src = SeededIvSource::new(7);
        let mut seen = HashSet::new();
        for _ in 0..10_000 {
            assert!(seen.insert(src.next_iv16()), "128-bit IV repeated");
        }
    }

    #[test]
    fn os_source_produces_nonzero_output() {
        let mut src = OsIvSource::new();
        let a = src.next_iv16();
        let b = src.next_iv16();
        assert_ne!(a, b);
        assert_ne!(a, [0u8; 16]);
    }

    #[test]
    fn os_source_spans_pool_refills() {
        // Draws larger and smaller than the internal pool must both
        // produce fresh bytes (no reuse across the refill boundary).
        let mut src = OsIvSource::new();
        let mut big = vec![0u8; 3000];
        src.fill(&mut big);
        assert!(big.iter().any(|&b| b != 0));
        let mut seen = HashSet::new();
        for _ in 0..1000 {
            assert!(seen.insert(src.next_iv16()), "IV repeated across refills");
        }
    }

    #[test]
    fn fallback_fill_is_unique_per_call() {
        let mut a = [0u8; 16];
        let mut b = [0u8; 16];
        OsIvSource::fallback_fill(&mut a);
        OsIvSource::fallback_fill(&mut b);
        assert_ne!(a, b, "monotonic counter must separate the streams");
        assert_ne!(a, [0u8; 16]);
    }

    #[test]
    fn from_state_rejects_the_all_zero_state() {
        let mut rng = SeededRng::from_state([0; 4]);
        assert_ne!(rng.next_u64(), 0);
    }

    #[test]
    fn counting_wrapper_counts() {
        let mut src = CountingIvSource::new(SeededIvSource::new(1));
        let _ = src.next_iv16();
        let _ = src.next_nonce12();
        assert_eq!(src.count(), 2);
    }

    #[test]
    fn nonce12_is_12_bytes_of_entropy() {
        let mut src = SeededIvSource::new(9);
        let n = src.next_nonce12();
        assert_eq!(n.len(), 12);
        assert_ne!(n, [0u8; 12]);
    }
}
