//! From-scratch cryptographic primitives for block-storage encryption.
//!
//! This crate implements every primitive the paper *"Rethinking Block
//! Storage Encryption with Virtual Disks"* (HotStorage '22) depends on,
//! with no external crypto dependencies:
//!
//! - [`aes`]: the AES-128 / AES-256 block cipher (FIPS 197),
//! - [`xts`]: the XTS tweakable mode used by LUKS2 / dm-crypt / BitLocker
//!   (IEEE 1619, NIST SP 800-38E), including ciphertext stealing,
//! - [`gcm`]: AES-GCM authenticated encryption (NIST SP 800-38D) for the
//!   paper's "alternative cipher" discussion (§3.1),
//! - [`cbc`]: AES-CBC with ESSIV, the historical dm-crypt mode the paper
//!   mentions was replaced by XTS (§1, footnote 1),
//! - [`eme2`]: an EME\*-style **wide-block** cipher, the mitigation the
//!   paper discusses in §2.2 (IEEE 1619.2 family),
//! - [`sha256`] / [`hmac`] / [`kdf`]: hashing, MACs and key derivation
//!   (PBKDF2 for LUKS-style passphrase slots, HKDF for subkeys),
//! - [`gf128`]: arithmetic in GF(2^128) shared by XTS, GCM and EME2,
//! - [`rng`]: IV sources (OS randomness or seeded, for reproducibility),
//! - [`mem`]: constant-time comparison, zeroizing key containers, hex.
//!
//! # Example
//!
//! Encrypt one 4 KB sector the way a virtual-disk encryptor would:
//!
//! ```
//! use vdisk_crypto::xts::XtsCipher;
//!
//! # fn main() -> Result<(), vdisk_crypto::CryptoError> {
//! let key = [0x42u8; 64]; // AES-256-XTS: two 256-bit keys
//! let xts = XtsCipher::new(&key)?;
//! let tweak = [7u8; 16]; // per-sector tweak (LBA-derived or random)
//! let mut sector = vec![0u8; 4096];
//! xts.encrypt_sector(&tweak, &mut sector)?;
//! xts.decrypt_sector(&tweak, &mut sector)?;
//! assert_eq!(sector, vec![0u8; 4096]);
//! # Ok(())
//! # }
//! ```
//!
//! # Security note
//!
//! The AES implementation is table-free but **not** hardened against
//! cache-timing side channels (it is a portable byte-oriented reference
//! implementation). That is acceptable for this research reproduction;
//! a production deployment would use AES-NI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod cbc;
pub mod ctr;
pub mod eme2;
pub mod gcm;
pub mod gf128;
pub mod hmac;
pub mod kdf;
pub mod mem;
pub mod rng;
pub mod sha256;
pub mod xts;

use std::error::Error as StdError;
use std::fmt;

/// Errors returned by the primitives in this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum CryptoError {
    /// A key had a length not supported by the algorithm.
    InvalidKeyLength {
        /// The length that was supplied, in bytes.
        got: usize,
    },
    /// A data buffer had a length the mode cannot process
    /// (e.g. an XTS sector shorter than one cipher block).
    InvalidDataLength {
        /// The length that was supplied, in bytes.
        got: usize,
    },
    /// An IV/nonce had an unsupported length.
    InvalidIvLength {
        /// The length that was supplied, in bytes.
        got: usize,
    },
    /// Authenticated decryption failed: the tag did not verify.
    ///
    /// The plaintext output buffer must be discarded.
    AuthenticationFailed,
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::InvalidKeyLength { got } => {
                write!(f, "invalid key length: {got} bytes")
            }
            CryptoError::InvalidDataLength { got } => {
                write!(f, "invalid data length: {got} bytes")
            }
            CryptoError::InvalidIvLength { got } => {
                write!(f, "invalid IV length: {got} bytes")
            }
            CryptoError::AuthenticationFailed => {
                write!(f, "authentication failed: ciphertext or tag corrupted")
            }
        }
    }
}

impl StdError for CryptoError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CryptoError>;
