//! AES-CBC with ESSIV (the historical dm-crypt disk-encryption mode).
//!
//! The paper's footnote 1 recalls that AES-CBC was the widely used disk
//! cipher before XTS, retired after practical attacks (watermarking,
//! malleability). We implement it as a comparison baseline: CBC with an
//! ESSIV sector IV — `IV = AES_{SHA256(K)}(sector_number)` — which hides
//! sector numbers but remains deterministic across overwrites.

use crate::aes::Aes;
use crate::sha256::sha256;
use crate::{CryptoError, Result};

/// AES-CBC-ESSIV sector cipher.
///
/// # Example
///
/// ```
/// use vdisk_crypto::cbc::CbcEssiv;
/// # fn main() -> Result<(), vdisk_crypto::CryptoError> {
/// let cbc = CbcEssiv::new(&[1u8; 32])?;
/// let mut sector = vec![0u8; 512];
/// cbc.encrypt_sector(3, &mut sector)?;
/// cbc.decrypt_sector(3, &mut sector)?;
/// assert_eq!(sector, vec![0u8; 512]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CbcEssiv {
    data_cipher: Aes,
    essiv_cipher: Aes,
}

impl CbcEssiv {
    /// Creates the cipher from a 16- or 32-byte data key. The ESSIV key
    /// is `SHA256(key)` as in dm-crypt's `essiv:sha256`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidKeyLength`] for other lengths.
    pub fn new(key: &[u8]) -> Result<Self> {
        let data_cipher = Aes::new(key)?;
        let essiv_key = sha256(key);
        let essiv_cipher = Aes::new(&essiv_key)?;
        Ok(CbcEssiv {
            data_cipher,
            essiv_cipher,
        })
    }

    /// Computes the ESSIV IV for a sector number.
    #[must_use]
    pub fn essiv(&self, sector: u64) -> [u8; 16] {
        let mut block = [0u8; 16];
        block[..8].copy_from_slice(&sector.to_le_bytes());
        self.essiv_cipher.encrypt_block_copy(&block)
    }

    /// Encrypts a sector in place (length must be a multiple of 16).
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidDataLength`] if the length is zero
    /// or not a multiple of the block size.
    pub fn encrypt_sector(&self, sector: u64, data: &mut [u8]) -> Result<()> {
        if data.is_empty() || !data.len().is_multiple_of(16) {
            return Err(CryptoError::InvalidDataLength { got: data.len() });
        }
        let mut prev = self.essiv(sector);
        for chunk in data.chunks_mut(16) {
            for (c, p) in chunk.iter_mut().zip(prev.iter()) {
                *c ^= p;
            }
            let mut block = [0u8; 16];
            block.copy_from_slice(chunk);
            self.data_cipher.encrypt_block(&mut block);
            chunk.copy_from_slice(&block);
            prev = block;
        }
        Ok(())
    }

    /// Decrypts a sector in place (length must be a multiple of 16).
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidDataLength`] if the length is zero
    /// or not a multiple of the block size.
    pub fn decrypt_sector(&self, sector: u64, data: &mut [u8]) -> Result<()> {
        if data.is_empty() || !data.len().is_multiple_of(16) {
            return Err(CryptoError::InvalidDataLength { got: data.len() });
        }
        let mut prev = self.essiv(sector);
        for chunk in data.chunks_mut(16) {
            let mut block = [0u8; 16];
            block.copy_from_slice(chunk);
            let cipher_block = block;
            self.data_cipher.decrypt_block(&mut block);
            for (b, p) in block.iter_mut().zip(prev.iter()) {
                *b ^= p;
            }
            chunk.copy_from_slice(&block);
            prev = cipher_block;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let cbc = CbcEssiv::new(&[7u8; 16]).unwrap();
        let mut data: Vec<u8> = (0..128u8).collect();
        let orig = data.clone();
        cbc.encrypt_sector(42, &mut data).unwrap();
        assert_ne!(data, orig);
        cbc.decrypt_sector(42, &mut data).unwrap();
        assert_eq!(data, orig);
    }

    #[test]
    fn wrong_sector_number_garbles() {
        let cbc = CbcEssiv::new(&[7u8; 32]).unwrap();
        let mut data = vec![0u8; 64];
        cbc.encrypt_sector(1, &mut data).unwrap();
        cbc.decrypt_sector(2, &mut data).unwrap();
        assert_ne!(data, vec![0u8; 64]);
    }

    #[test]
    fn essiv_varies_by_sector_and_hides_lba() {
        let cbc = CbcEssiv::new(&[1u8; 32]).unwrap();
        let iv0 = cbc.essiv(0);
        let iv1 = cbc.essiv(1);
        assert_ne!(iv0, iv1);
        // ESSIV must not be the raw sector number.
        let mut raw = [0u8; 16];
        raw[..8].copy_from_slice(&1u64.to_le_bytes());
        assert_ne!(iv1, raw);
    }

    #[test]
    fn rejects_unaligned_lengths() {
        let cbc = CbcEssiv::new(&[0u8; 16]).unwrap();
        for len in [0usize, 1, 15, 17, 100] {
            let mut data = vec![0u8; len];
            assert!(cbc.encrypt_sector(0, &mut data).is_err(), "len {len}");
            let mut data = vec![0u8; len];
            assert!(cbc.decrypt_sector(0, &mut data).is_err(), "len {len}");
        }
    }

    /// The classic CBC leak the paper mentions: a prefix-equal plaintext
    /// produces a prefix-equal ciphertext up to the first difference —
    /// an adversary can locate the first changed block.
    #[test]
    fn cbc_prefix_equality_leak() {
        let cbc = CbcEssiv::new(&[9u8; 32]).unwrap();
        let mut a = vec![0x33u8; 128];
        let mut b = vec![0x33u8; 128];
        b[64] ^= 1; // first difference in block 4
        cbc.encrypt_sector(10, &mut a).unwrap();
        cbc.encrypt_sector(10, &mut b).unwrap();
        assert_eq!(&a[..64], &b[..64], "prefix blocks must match (the leak)");
        assert_ne!(&a[64..80], &b[64..80]);
    }

    #[test]
    fn deterministic_across_overwrites() {
        let cbc = CbcEssiv::new(&[9u8; 16]).unwrap();
        let mut a = vec![0xCCu8; 64];
        let mut b = vec![0xCCu8; 64];
        cbc.encrypt_sector(5, &mut a).unwrap();
        cbc.encrypt_sector(5, &mut b).unwrap();
        assert_eq!(a, b);
    }
}
