//! EME\*-style **wide-block** tweakable encryption.
//!
//! §2.2 of the paper discusses wide-block ciphers (IEEE 1619.2:
//! XCB-AES, EME2-AES) as a partial mitigation: every plaintext bit
//! influences every ciphertext bit of the sector, so the sub-block
//! granularity attacks of XTS disappear — but the cipher remains
//! deterministic, so exact-overwrite detection is still possible.
//!
//! This module implements the ECB-Mix-ECB construction of Halevi's
//! EME\* (INDOCRYPT '04), the basis of IEEE 1619.2 EME2-AES:
//!
//! 1. whiten each block with `2^j · L` and encrypt (ECB pass 1),
//! 2. mix everything through a masked middle block (`MP → MC`),
//! 3. re-whiten with `2^j · M` masks, encrypt again (ECB pass 2).
//!
//! **Validation caveat** (recorded in DESIGN.md / EXPERIMENTS.md): the
//! IEEE 1619.2 test vectors are not freely available, so this
//! implementation is validated by structural properties — exact
//! invertibility for all sizes, full-sector avalanche in both
//! directions, tweak separation — rather than interoperability vectors.
//! All properties the paper relies on hold.

use crate::aes::Aes;
use crate::gf128::{be_double, xor_block, Block};
use crate::{CryptoError, Result};

/// A wide-block cipher over whole sectors (multiples of 16 bytes,
/// between 32 bytes and 64 KiB).
///
/// # Example
///
/// ```
/// use vdisk_crypto::eme2::Eme2;
/// # fn main() -> Result<(), vdisk_crypto::CryptoError> {
/// let eme = Eme2::new(&[3u8; 32])?;
/// let mut sector = vec![0u8; 4096];
/// let tweak = [5u8; 16];
/// eme.encrypt_sector(&tweak, &mut sector)?;
/// eme.decrypt_sector(&tweak, &mut sector)?;
/// assert_eq!(sector, vec![0u8; 4096]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Eme2 {
    aes: Aes,
    /// L = 2 · AES_K(0^128): the ECB whitening mask seed.
    l: Block,
}

/// Maximum sector size accepted (64 KiB = 4096 blocks).
pub const MAX_SECTOR: usize = 65536;

impl Eme2 {
    /// Creates a wide-block cipher from a 16- or 32-byte AES key.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidKeyLength`] for other lengths.
    pub fn new(key: &[u8]) -> Result<Self> {
        let aes = Aes::new(key)?;
        let mut l = aes.encrypt_block_copy(&[0u8; 16]);
        be_double(&mut l);
        Ok(Eme2 { aes, l })
    }

    /// Encrypts a sector in place under a 16-byte tweak.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidDataLength`] unless
    /// `32 <= data.len() <= 65536` and `data.len() % 16 == 0`.
    pub fn encrypt_sector(&self, tweak: &[u8; 16], data: &mut [u8]) -> Result<()> {
        self.check_len(data.len())?;
        let t_star = self.hash_tweak(tweak);
        let m = data.len() / 16;

        // Pass 1: PPP_j = E(P_j xor 2^j L)
        let mut mask = self.l;
        let mut ppp: Vec<Block> = Vec::with_capacity(m);
        for j in 0..m {
            let mut block = [0u8; 16];
            block.copy_from_slice(&data[16 * j..16 * j + 16]);
            let whitened = xor_block(&block, &mask);
            ppp.push(self.aes.encrypt_block_copy(&whitened));
            be_double(&mut mask);
        }

        // Mixing: MP = PPP_1 xor SP xor T*, MC = E(MP), M = MP xor MC.
        let mut sp = [0u8; 16];
        for block in ppp.iter().skip(1) {
            sp = xor_block(&sp, block);
        }
        let mp = xor_block(&xor_block(&ppp[0], &sp), &t_star);
        let mc = self.aes.encrypt_block_copy(&mp);
        let m_mask_seed = xor_block(&mp, &mc);

        // CCC_j = PPP_j xor 2^{j-1} M (j >= 2, so the first applied
        // mask is 2M; starting at M itself would make the j=2 delta
        // cancel against the mixing block for 2-block messages).
        let mut ccc: Vec<Block> = vec![[0u8; 16]; m];
        let mut mmask = m_mask_seed;
        be_double(&mut mmask);
        for j in 1..m {
            ccc[j] = xor_block(&ppp[j], &mmask);
            be_double(&mut mmask);
        }
        let mut sc = [0u8; 16];
        for block in ccc.iter().skip(1) {
            sc = xor_block(&sc, block);
        }
        ccc[0] = xor_block(&xor_block(&mc, &sc), &t_star);

        // Pass 2: C_j = E(CCC_j) xor 2^j L
        let mut mask = self.l;
        for (j, block) in ccc.iter().enumerate() {
            let enc = self.aes.encrypt_block_copy(block);
            let out = xor_block(&enc, &mask);
            data[16 * j..16 * j + 16].copy_from_slice(&out);
            be_double(&mut mask);
        }
        Ok(())
    }

    /// Decrypts a sector in place under a 16-byte tweak.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidDataLength`] for unsupported sizes.
    pub fn decrypt_sector(&self, tweak: &[u8; 16], data: &mut [u8]) -> Result<()> {
        self.check_len(data.len())?;
        let t_star = self.hash_tweak(tweak);
        let m = data.len() / 16;

        // Invert pass 2: CCC_j = D(C_j xor 2^j L)
        let mut mask = self.l;
        let mut ccc: Vec<Block> = Vec::with_capacity(m);
        for j in 0..m {
            let mut block = [0u8; 16];
            block.copy_from_slice(&data[16 * j..16 * j + 16]);
            let whitened = xor_block(&block, &mask);
            ccc.push(self.aes.decrypt_block_copy(&whitened));
            be_double(&mut mask);
        }

        // Invert mixing.
        let mut sc = [0u8; 16];
        for block in ccc.iter().skip(1) {
            sc = xor_block(&sc, block);
        }
        let mc = xor_block(&xor_block(&ccc[0], &sc), &t_star);
        let mp = self.aes.decrypt_block_copy(&mc);
        let m_mask_seed = xor_block(&mp, &mc);

        let mut ppp: Vec<Block> = vec![[0u8; 16]; m];
        let mut mmask = m_mask_seed;
        be_double(&mut mmask);
        for j in 1..m {
            ppp[j] = xor_block(&ccc[j], &mmask);
            be_double(&mut mmask);
        }
        let mut sp = [0u8; 16];
        for block in ppp.iter().skip(1) {
            sp = xor_block(&sp, block);
        }
        ppp[0] = xor_block(&xor_block(&mp, &sp), &t_star);

        // Invert pass 1: P_j = D(PPP_j) xor 2^j L
        let mut mask = self.l;
        for (j, block) in ppp.iter().enumerate() {
            let dec = self.aes.decrypt_block_copy(block);
            let out = xor_block(&dec, &mask);
            data[16 * j..16 * j + 16].copy_from_slice(&out);
            be_double(&mut mask);
        }
        Ok(())
    }

    fn hash_tweak(&self, tweak: &[u8; 16]) -> Block {
        // T* = E_K(T) — a PRF of the tweak, independent of the masks.
        self.aes.encrypt_block_copy(tweak)
    }

    fn check_len(&self, len: usize) -> Result<()> {
        if !(32..=MAX_SECTOR).contains(&len) || !len.is_multiple_of(16) {
            return Err(CryptoError::InvalidDataLength { got: len });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_various_sizes() {
        let eme = Eme2::new(&[8u8; 32]).unwrap();
        let tweak = [1u8; 16];
        for len in [32usize, 48, 512, 4096] {
            let mut data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let orig = data.clone();
            eme.encrypt_sector(&tweak, &mut data).unwrap();
            assert_ne!(data, orig);
            eme.decrypt_sector(&tweak, &mut data).unwrap();
            assert_eq!(data, orig, "len {len}");
        }
    }

    #[test]
    fn rejects_bad_lengths() {
        let eme = Eme2::new(&[0u8; 16]).unwrap();
        for len in [0usize, 16, 17, 33, MAX_SECTOR + 16] {
            let mut data = vec![0u8; len];
            assert!(
                eme.encrypt_sector(&[0u8; 16], &mut data).is_err(),
                "len {len}"
            );
        }
    }

    /// The property that distinguishes wide-block from XTS: flipping
    /// ONE plaintext bit changes EVERY 16-byte block of the ciphertext.
    #[test]
    fn full_sector_avalanche_encrypt() {
        let eme = Eme2::new(&[5u8; 32]).unwrap();
        let tweak = [9u8; 16];
        let mut a = vec![0x61u8; 4096];
        let mut b = a.clone();
        b[1234] ^= 0x40;
        eme.encrypt_sector(&tweak, &mut a).unwrap();
        eme.encrypt_sector(&tweak, &mut b).unwrap();
        for block in 0..256 {
            assert_ne!(
                &a[block * 16..block * 16 + 16],
                &b[block * 16..block * 16 + 16],
                "ciphertext block {block} unchanged — not wide-block"
            );
        }
    }

    /// Dual avalanche: flipping one ciphertext bit garbles every
    /// plaintext block (so splicing attacks produce garbage, unlike XTS).
    #[test]
    fn full_sector_avalanche_decrypt() {
        let eme = Eme2::new(&[5u8; 32]).unwrap();
        let tweak = [2u8; 16];
        let mut data = vec![0x13u8; 512];
        eme.encrypt_sector(&tweak, &mut data).unwrap();
        let mut tampered = data.clone();
        tampered[100] ^= 0x01;
        eme.decrypt_sector(&tweak, &mut data).unwrap();
        eme.decrypt_sector(&tweak, &mut tampered).unwrap();
        for block in 0..32 {
            assert_ne!(
                &data[block * 16..block * 16 + 16],
                &tampered[block * 16..block * 16 + 16],
                "plaintext block {block} survived ciphertext tampering"
            );
        }
    }

    #[test]
    fn tweak_separation() {
        let eme = Eme2::new(&[1u8; 16]).unwrap();
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        eme.encrypt_sector(&[0u8; 16], &mut a).unwrap();
        eme.encrypt_sector(&[1u8; 16], &mut b).unwrap();
        assert_ne!(a, b);
    }

    /// Wide-block is still deterministic: exact overwrite of identical
    /// data is detectable (the residual leak the paper notes in §2.2).
    #[test]
    fn still_deterministic() {
        let eme = Eme2::new(&[1u8; 32]).unwrap();
        let mut a = vec![0x42u8; 128];
        let mut b = vec![0x42u8; 128];
        eme.encrypt_sector(&[7u8; 16], &mut a).unwrap();
        eme.encrypt_sector(&[7u8; 16], &mut b).unwrap();
        assert_eq!(a, b);
    }
}
