//! Key derivation: PBKDF2-HMAC-SHA256 (RFC 8018) and HKDF-SHA256
//! (RFC 5869).
//!
//! PBKDF2 backs the LUKS2-style passphrase keyslots of the encryption
//! header (`vdisk-core::luks`); HKDF derives independent subkeys (data
//! key, MAC key, ESSIV key, EME2 masks) from one master key.

use crate::hmac::{hmac_sha256, HmacSha256};
use crate::mem::SecretBytes;
use crate::sha256::DIGEST_LEN;

/// Derives `out_len` bytes from a passphrase and salt with
/// PBKDF2-HMAC-SHA256.
///
/// `iterations` must be at least 1. Real LUKS2 uses a memory-hard KDF
/// (argon2id) by default but still supports PBKDF2; we implement PBKDF2
/// because it is fully specified by primitives we already have.
///
/// # Panics
///
/// Panics if `iterations == 0` or `out_len == 0`.
#[must_use]
pub fn pbkdf2_hmac_sha256(
    passphrase: &[u8],
    salt: &[u8],
    iterations: u32,
    out_len: usize,
) -> SecretBytes {
    assert!(iterations >= 1, "pbkdf2 requires at least one iteration");
    assert!(out_len >= 1, "pbkdf2 output length must be positive");
    let mut out = Vec::with_capacity(out_len);
    let mut block_index = 1u32;
    while out.len() < out_len {
        // U1 = PRF(P, S || INT(i))
        let mut mac = HmacSha256::new(passphrase);
        mac.update(salt);
        mac.update(&block_index.to_be_bytes());
        let mut u = mac.finalize();
        let mut t = u;
        for _ in 1..iterations {
            u = hmac_sha256(passphrase, &u);
            for (tb, ub) in t.iter_mut().zip(u.iter()) {
                *tb ^= ub;
            }
        }
        let take = (out_len - out.len()).min(DIGEST_LEN);
        out.extend_from_slice(&t[..take]);
        block_index += 1;
    }
    SecretBytes::new(out)
}

/// HKDF-SHA256 extract step: `PRK = HMAC(salt, ikm)`.
#[must_use]
pub fn hkdf_extract(salt: &[u8], ikm: &[u8]) -> [u8; DIGEST_LEN] {
    hmac_sha256(salt, ikm)
}

/// HKDF-SHA256 expand step.
///
/// # Panics
///
/// Panics if `out_len > 255 * 32` (the RFC 5869 limit) or `out_len == 0`.
#[must_use]
pub fn hkdf_expand(prk: &[u8], info: &[u8], out_len: usize) -> SecretBytes {
    assert!(out_len >= 1, "hkdf output length must be positive");
    assert!(out_len <= 255 * DIGEST_LEN, "hkdf output too long");
    let mut out = Vec::with_capacity(out_len);
    let mut previous: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    while out.len() < out_len {
        let mut mac = HmacSha256::new(prk);
        mac.update(&previous);
        mac.update(info);
        mac.update(&[counter]);
        let block = mac.finalize();
        let take = (out_len - out.len()).min(DIGEST_LEN);
        out.extend_from_slice(&block[..take]);
        previous = block.to_vec();
        counter = counter.saturating_add(1);
    }
    SecretBytes::new(out)
}

/// Convenience: extract-then-expand in one call.
#[must_use]
pub fn hkdf(salt: &[u8], ikm: &[u8], info: &[u8], out_len: usize) -> SecretBytes {
    let prk = hkdf_extract(salt, ikm);
    hkdf_expand(&prk, info, out_len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::{from_hex, to_hex};

    /// RFC 7914 §11 / well-known PBKDF2-HMAC-SHA256 vector.
    #[test]
    fn pbkdf2_one_iteration() {
        let dk = pbkdf2_hmac_sha256(b"password", b"salt", 1, 32);
        assert_eq!(
            to_hex(&dk),
            "120fb6cffcf8b32c43e7225256c4f837a86548c92ccc35480805987cb70be17b"
        );
    }

    #[test]
    fn pbkdf2_4096_iterations() {
        let dk = pbkdf2_hmac_sha256(b"password", b"salt", 4096, 32);
        assert_eq!(
            to_hex(&dk),
            "c5e478d59288c841aa530db6845c4c8d962893a001ce4e11a4963873aa98134a"
        );
    }

    #[test]
    fn pbkdf2_multi_block_output() {
        // 40 bytes forces two PRF blocks.
        let dk = pbkdf2_hmac_sha256(
            b"passwordPASSWORDpassword",
            b"saltSALTsaltSALTsaltSALTsaltSALTsalt",
            4096,
            40,
        );
        assert_eq!(
            to_hex(&dk),
            "348c89dbcbd32b2f32d814b8116e84cf2b17347ebc1800181c4e2a1fb8dd53e1c635518c7dac47e9"
        );
    }

    /// RFC 5869 test case 1.
    #[test]
    fn hkdf_rfc5869_case_1() {
        let ikm = [0x0b; 22];
        let salt = from_hex("000102030405060708090a0b0c").unwrap();
        let info = from_hex("f0f1f2f3f4f5f6f7f8f9").unwrap();
        let prk = hkdf_extract(&salt, &ikm);
        assert_eq!(
            to_hex(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let okm = hkdf_expand(&prk, &info, 42);
        assert_eq!(
            to_hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    /// RFC 5869 test case 3 (empty salt and info).
    #[test]
    fn hkdf_rfc5869_case_3() {
        let ikm = [0x0b; 22];
        let okm = hkdf(&[], &ikm, &[], 42);
        assert_eq!(
            to_hex(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn hkdf_subkeys_are_independent() {
        let master = [7u8; 32];
        let a = hkdf(b"vdisk", &master, b"data-key", 32);
        let b = hkdf(b"vdisk", &master, b"mac-key", 32);
        assert_ne!(a.expose(), b.expose());
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn pbkdf2_zero_iterations_panics() {
        let _ = pbkdf2_hmac_sha256(b"p", b"s", 0, 16);
    }

    #[test]
    #[should_panic(expected = "output too long")]
    fn hkdf_too_long_panics() {
        let _ = hkdf_expand(&[0; 32], b"", 255 * 32 + 1);
    }
}
