//! The in-memory backend: the original simulator state, unchanged —
//! per-OSD hash maps with no durability and no host IO.

use super::ObjectStore;
use crate::object::Object;
use crate::placement::OsdId;
use crate::transaction::SnapContext;
use crate::Result;
use std::collections::HashMap;

/// One shard's objects kept per OSD in plain hash maps, exactly as the
/// engine kept them before the backend seam existed. Commit and flush
/// are free: memory *is* the acknowledged state.
#[derive(Debug)]
pub(crate) struct MemStore {
    /// `osds[i]` holds this shard's objects stored on OSD `i`.
    osds: Vec<HashMap<String, Object>>,
}

impl MemStore {
    pub(crate) fn new(osd_count: usize) -> Self {
        MemStore {
            osds: (0..osd_count).map(|_| HashMap::new()).collect(),
        }
    }
}

impl ObjectStore for MemStore {
    fn get(&self, osd: usize, name: &str) -> Option<&Object> {
        self.osds[osd].get(name)
    }

    fn get_mut(&mut self, osd: usize, name: &str) -> Option<&mut Object> {
        self.osds[osd].get_mut(name)
    }

    fn entry(
        &mut self,
        osd: usize,
        name: &str,
        store_payload: bool,
        snapc: SnapContext,
    ) -> &mut Object {
        self.osds[osd]
            .entry(name.to_string())
            .or_insert_with(|| Object::new(store_payload, snapc))
    }

    fn insert(&mut self, osd: usize, name: &str, object: Object) {
        self.osds[osd].insert(name.to_string(), object);
    }

    fn remove(&mut self, osd: usize, name: &str) {
        self.osds[osd].remove(name);
    }

    fn contains(&self, osd: usize, name: &str) -> bool {
        self.osds[osd].contains_key(name)
    }

    fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.osds.iter().flat_map(|m| m.keys().cloned()).collect();
        names.sort_unstable();
        names.dedup();
        names
    }

    fn commit(&mut self, _name: &str, _acting: &[OsdId]) -> Result<()> {
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        Ok(())
    }
}
