//! The durable host-filesystem backend.
//!
//! Layout, rooted at the directory passed to
//! [`crate::backend::BackendKind::File`]:
//!
//! ```text
//! <root>/cluster.meta            geometry + snapshot seq (key=value)
//! <root>/shard-<s>/osd-<o>/      one dir per (shard, OSD)
//!     <escaped-name>.obj         one codec blob per object
//! ```
//!
//! Durability protocol: every object write goes to a temp file in the
//! same directory, is `fsync`ed, renamed over the final name, and the
//! directory is `fsync`ed — so a crash anywhere leaves either the old
//! or the new complete version, never a torn file. Deletes unlink and
//! `fsync` the directory. [`ClusterMeta`] updates use the same
//! write-sync-rename dance.
//!
//! The store is **write-through**: reads are served from an in-memory
//! [`MemStore`] mirror (keeping read behavior and cost bit-identical
//! to the simulator backend); the files only matter at commit time and
//! when a cluster reopens the directory.

use super::{MemStore, ObjectStore};
use crate::cluster::PayloadMode;
use crate::fault::{FaultKind, FaultPlane};
use crate::object::Object;
use crate::placement::OsdId;
use crate::transaction::SnapContext;
use crate::{RadosError, Result};
use std::collections::HashMap;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Suffix of every object file.
const OBJ_SUFFIX: &str = ".obj";

/// One shard's durable object store: an in-memory mirror for reads
/// plus one file per (OSD, object) for durability.
#[derive(Debug)]
pub(crate) struct FileStore {
    /// This shard's directory (holds one `osd-<o>` subdir per OSD).
    dir: PathBuf,
    osd_count: usize,
    mem: MemStore,
    /// This shard's index in the cluster (reported in injected errors).
    shard: usize,
    /// The cluster's fault plane, when one is installed: commits crash
    /// at the configured point, and everything fails fast afterwards.
    faults: Option<Arc<FaultPlane>>,
}

impl FileStore {
    /// Opens (or creates) the store for one shard at `dir`, loading
    /// every object file already present into the in-memory mirror.
    /// When a [`FaultPlane`] is installed, durable commits consult it
    /// for the injected crash point.
    pub(crate) fn open_faulted(
        dir: PathBuf,
        osd_count: usize,
        shard: usize,
        faults: Option<Arc<FaultPlane>>,
    ) -> io::Result<Self> {
        let mut mem = MemStore::new(osd_count);
        for osd in 0..osd_count {
            let osd_dir = dir.join(format!("osd-{osd}"));
            fs::create_dir_all(&osd_dir)?;
            for entry in fs::read_dir(&osd_dir)? {
                let path = entry?.path();
                let Some(name) = object_name_of(&path) else {
                    continue;
                };
                let bytes = fs::read(&path)?;
                let object = Object::decode(&bytes).ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("corrupt object file {}", path.display()),
                    )
                })?;
                mem.insert(osd, &name, object);
            }
        }
        Ok(FileStore {
            dir,
            osd_count,
            mem,
            shard,
            faults,
        })
    }

    fn object_path(&self, osd: usize, name: &str) -> PathBuf {
        self.dir
            .join(format!("osd-{osd}"))
            .join(format!("{}{OBJ_SUFFIX}", escape_name(name)))
    }

    fn crash_error(&self) -> RadosError {
        RadosError::Injected {
            kind: FaultKind::Crash,
            shard: self.shard,
        }
    }

    /// One replica's durable write, with the fault plane's crash point
    /// threaded through: the temp file is written and synced, then the
    /// plane decides whether this commit is the one that dies — if so
    /// the rename never happens and the torn `.tmp` stays on disk,
    /// exactly what a host crash between those two syscalls leaves.
    fn commit_write(&self, path: &Path, bytes: &[u8]) -> Result<()> {
        let Some(plane) = &self.faults else {
            return write_durable(path, bytes)
                .map_err(|e| RadosError::Io(format!("commit write: {e}")));
        };
        let dir = path.parent().expect("object paths have a parent");
        let tmp = path.with_extension("tmp");
        (|| -> io::Result<()> {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()
        })()
        .map_err(|e| RadosError::Io(format!("commit write: {e}")))?;
        if plane.commit_crashes() {
            return Err(self.crash_error());
        }
        (|| -> io::Result<()> {
            fs::rename(&tmp, path)?;
            sync_dir(dir)
        })()
        .map_err(|e| RadosError::Io(format!("commit write: {e}")))
    }
}

impl ObjectStore for FileStore {
    fn get(&self, osd: usize, name: &str) -> Option<&Object> {
        self.mem.get(osd, name)
    }

    fn get_mut(&mut self, osd: usize, name: &str) -> Option<&mut Object> {
        self.mem.get_mut(osd, name)
    }

    fn entry(
        &mut self,
        osd: usize,
        name: &str,
        store_payload: bool,
        snapc: SnapContext,
    ) -> &mut Object {
        self.mem.entry(osd, name, store_payload, snapc)
    }

    fn insert(&mut self, osd: usize, name: &str, object: Object) {
        self.mem.insert(osd, name, object);
    }

    fn remove(&mut self, osd: usize, name: &str) {
        self.mem.remove(osd, name);
    }

    fn contains(&self, osd: usize, name: &str) -> bool {
        self.mem.contains(osd, name)
    }

    fn names(&self) -> Vec<String> {
        self.mem.names()
    }

    fn commit(&mut self, name: &str, acting: &[OsdId]) -> Result<()> {
        // A crashed cluster writes nothing more — the process is dead;
        // fail fast before touching any file.
        if self.faults.as_ref().is_some_and(|p| p.crashed()) {
            return Err(self.crash_error());
        }
        for osd in acting {
            let path = self.object_path(osd.0, name);
            match self.mem.get(osd.0, name) {
                Some(object) => self.commit_write(&path, &object.encode())?,
                None => remove_durable(&path)
                    .map_err(|e| RadosError::Io(format!("commit of {name}: {e}")))?,
            }
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        // A crashed cluster has nothing left to promise; flushing it is
        // a no-op so teardown paths never panic on an injected crash.
        if self.faults.as_ref().is_some_and(|p| p.crashed()) {
            return Ok(());
        }
        // Commits already fsync file data and directory entries; the
        // flush barrier re-syncs the directory tree so even metadata
        // of empty/untouched OSD dirs is on disk.
        for osd in 0..self.osd_count {
            sync_dir(&self.dir.join(format!("osd-{osd}")))
                .map_err(|e| RadosError::Io(format!("flush: {e}")))?;
        }
        Ok(())
    }
}

/// The object name an on-disk path encodes, or `None` for non-object
/// files (temp files, strays).
fn object_name_of(path: &Path) -> Option<String> {
    let file = path.file_name()?.to_str()?;
    let escaped = file.strip_suffix(OBJ_SUFFIX)?;
    unescape_name(escaped)
}

/// Escapes an object name into a safe file name: ASCII alphanumerics
/// plus `._-` pass through, everything else becomes `%XX`.
fn escape_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for &b in name.as_bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'.' | b'_' | b'-' => out.push(b as char),
            _ => {
                out.push('%');
                out.push_str(&format!("{b:02X}"));
            }
        }
    }
    out
}

/// Inverse of [`escape_name`]; `None` for malformed escapes.
fn unescape_name(escaped: &str) -> Option<String> {
    let bytes = escaped.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = escaped.get(i + 1..i + 3)?;
            out.push(u8::from_str_radix(hex, 16).ok()?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

/// Writes `bytes` to `path` atomically and durably: temp file in the
/// same directory, `fsync`, rename over the target, `fsync` the
/// directory.
pub(crate) fn write_durable(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = path
        .parent()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path without a parent dir"))?;
    let tmp = path.with_extension("tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    sync_dir(dir)
}

/// Unlinks `path` durably (`fsync` of the directory); absent files are
/// fine — the deletion is already durable then.
fn remove_durable(path: &Path) -> io::Result<()> {
    match fs::remove_file(path) {
        Ok(()) => sync_dir(path.parent().expect("object paths have a parent")),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(e),
    }
}

fn sync_dir(dir: &Path) -> io::Result<()> {
    fs::File::open(dir)?.sync_all()
}

/// The durable cluster-wide facts of a file-backed store: the geometry
/// the directory was formatted with (a reopen must match it — placement
/// is a pure function of the geometry, so a mismatch would scatter
/// objects) and the snapshot sequence (clone visibility is defined by
/// seqs, so it must survive restarts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ClusterMeta {
    pub(crate) osd_count: usize,
    pub(crate) replicas: usize,
    pub(crate) pg_count: u64,
    pub(crate) shard_count: usize,
    pub(crate) payload: PayloadMode,
    pub(crate) snap_seq: u64,
}

const META_MAGIC: &str = "vdisk-cluster v1";

impl ClusterMeta {
    fn path(root: &Path) -> PathBuf {
        root.join("cluster.meta")
    }

    /// Loads the meta file under `root`; `Ok(None)` when the directory
    /// holds no formatted cluster yet.
    pub(crate) fn load(root: &Path) -> io::Result<Option<ClusterMeta>> {
        let text = match fs::read_to_string(Self::path(root)) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        Self::parse(&text)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed cluster.meta"))
            .map(Some)
    }

    /// Durably writes the meta file under `root`.
    pub(crate) fn store(&self, root: &Path) -> io::Result<()> {
        write_durable(Self::path(root).as_path(), self.render().as_bytes())
    }

    fn render(&self) -> String {
        let payload = match self.payload {
            PayloadMode::Stored => "stored",
            PayloadMode::Discarded => "discarded",
        };
        format!(
            "{META_MAGIC}\nosd_count={}\nreplicas={}\npg_count={}\nshard_count={}\n\
             payload={payload}\nsnap_seq={}\n",
            self.osd_count, self.replicas, self.pg_count, self.shard_count, self.snap_seq
        )
    }

    fn parse(text: &str) -> Option<ClusterMeta> {
        let mut lines = text.lines();
        if lines.next()? != META_MAGIC {
            return None;
        }
        let mut fields: HashMap<&str, &str> = HashMap::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let (key, value) = line.split_once('=')?;
            fields.insert(key, value);
        }
        Some(ClusterMeta {
            osd_count: fields.get("osd_count")?.parse().ok()?,
            replicas: fields.get("replicas")?.parse().ok()?,
            pg_count: fields.get("pg_count")?.parse().ok()?,
            shard_count: fields.get("shard_count")?.parse().ok()?,
            payload: match *fields.get("payload")? {
                "stored" => PayloadMode::Stored,
                "discarded" => PayloadMode::Discarded,
                _ => return None,
            },
            snap_seq: fields.get("snap_seq")?.parse().ok()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SnapId;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A unique scratch dir inside the workspace `target/` directory
    /// (tests must not write outside the repository).
    fn scratch(label: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/backend-scratch")
            .join(format!(
                "{label}-{}-{}",
                std::process::id(),
                COUNTER.fetch_add(1, Ordering::Relaxed)
            ));
        fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    fn snapc(seq: u64) -> SnapContext {
        SnapContext { seq: SnapId(seq) }
    }

    #[test]
    fn name_escaping_roundtrips() {
        for name in [
            "rbd_data.img.0000000000000003",
            "weird/name with spaces",
            "per%cent",
            "uni\u{00e9}code",
            ".obj",
        ] {
            let escaped = escape_name(name);
            assert!(
                escaped
                    .bytes()
                    .all(|b| b.is_ascii_alphanumeric() || b"._-%".contains(&b)),
                "{escaped} has unsafe bytes"
            );
            assert_eq!(unescape_name(&escaped).as_deref(), Some(name));
        }
        assert_eq!(unescape_name("bad%zz"), None);
        assert_eq!(unescape_name("trunc%2"), None);
    }

    #[test]
    fn commit_then_reopen_restores_objects() {
        let dir = scratch("reopen");
        let acting = [OsdId(0), OsdId(1)];
        {
            let mut store = FileStore::open_faulted(dir.clone(), 2, 0, None).unwrap();
            for osd in &acting {
                let obj = store.entry(osd.0, "a/b c", true, snapc(0));
                obj.head.write(0, b"payload");
                obj.head.omap.put(b"iv".to_vec(), vec![9; 16]);
                obj.head.xattrs.insert("gen".into(), vec![1]);
            }
            store.commit("a/b c", &acting).unwrap();
            store.flush().unwrap();
        }
        let store = FileStore::open_faulted(dir.clone(), 2, 0, None).unwrap();
        for osd in &acting {
            let obj = store.get(osd.0, "a/b c").expect("object survives reopen");
            assert_eq!(obj.head.read(0, 7), b"payload");
            assert_eq!(obj.head.omap.get(b"iv").0, Some(vec![9; 16]));
            assert_eq!(obj.head.xattrs.get("gen"), Some(&vec![1u8]));
        }
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn committed_delete_survives_reopen() {
        let dir = scratch("delete");
        let acting = [OsdId(0)];
        {
            let mut store = FileStore::open_faulted(dir.clone(), 1, 0, None).unwrap();
            store.entry(0, "gone", true, snapc(0)).head.write(0, b"x");
            store.commit("gone", &acting).unwrap();
            store.remove(0, "gone");
            store.commit("gone", &acting).unwrap();
        }
        let store = FileStore::open_faulted(dir.clone(), 1, 0, None).unwrap();
        assert!(!store.contains(0, "gone"));
        assert!(store.names().is_empty());
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn corrupt_object_file_fails_open() {
        let dir = scratch("corrupt");
        fs::create_dir_all(dir.join("osd-0")).unwrap();
        fs::write(dir.join("osd-0/bad.obj"), b"not a codec blob").unwrap();
        let err = FileStore::open_faulted(dir.clone(), 1, 0, None).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn stray_temp_files_are_ignored_on_open() {
        let dir = scratch("stray");
        fs::create_dir_all(dir.join("osd-0")).unwrap();
        // A crash between temp-write and rename leaves a .tmp behind.
        fs::write(dir.join("osd-0/torn.tmp"), b"half a write").unwrap();
        let store = FileStore::open_faulted(dir.clone(), 1, 0, None).unwrap();
        assert!(store.names().is_empty());
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn cluster_meta_roundtrips_and_rejects_garbage() {
        let dir = scratch("meta");
        assert_eq!(ClusterMeta::load(&dir).unwrap(), None);
        let meta = ClusterMeta {
            osd_count: 3,
            replicas: 3,
            pg_count: 128,
            shard_count: 8,
            payload: PayloadMode::Discarded,
            snap_seq: 42,
        };
        meta.store(&dir).unwrap();
        assert_eq!(ClusterMeta::load(&dir).unwrap(), Some(meta));
        fs::write(dir.join("cluster.meta"), "something else\n").unwrap();
        assert!(ClusterMeta::load(&dir).is_err());
        fs::remove_dir_all(dir).unwrap();
    }
}
