//! Storage backends: the seam between the transaction/read engine and
//! wherever objects actually live.
//!
//! The paper's architecture puts virtual-disk encryption *above* the
//! object store, so nothing in the client stack may depend on how the
//! store keeps its bytes. This module enforces that: the shard engine
//! ([`crate::cluster::Cluster`]'s transaction applier, read path,
//! snapshot machinery, scrub/repair) talks only to the
//! [`ObjectStore`] trait, and two backends implement it:
//!
//! - [`MemStore`] — the original in-memory simulator state
//!   (per-OSD hash maps). Zero IO; the default, and what every figure
//!   harness pins for paper fidelity.
//! - [`FileStore`] — a durable host-filesystem store: one directory
//!   per shard/OSD, one file per object (data + xattrs + OMAP in a
//!   single codec blob — see `Object::encode`), every transaction
//!   commit made durable with `fsync` before it is acknowledged, and
//!   the whole cluster reopenable from its directory across process
//!   restarts.
//!
//! The **cost model is backend-independent**: plans are built from
//! extent profiles and KV receipts, never from host-IO timing, so a
//! workload replayed against both backends produces identical
//! simulated costs — the property the backend-equivalence suite
//! asserts.

mod file;
mod mem;

pub(crate) use file::{ClusterMeta, FileStore};
pub(crate) use mem::MemStore;

use crate::object::Object;
use crate::placement::OsdId;
use crate::transaction::SnapContext;
use crate::Result;
use std::path::PathBuf;

/// Which storage backend a cluster keeps its objects in. Selected via
/// [`crate::ClusterBuilder::backend`]; defaults to [`BackendKind::Memory`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum BackendKind {
    /// The in-memory simulator store: per-OSD hash maps, no host IO,
    /// state dies with the process. The default, and what the figure
    /// harnesses pin so paper-fidelity runs never depend on host disks.
    #[default]
    Memory,
    /// A durable store on the host filesystem rooted at `dir`: one
    /// subdirectory per shard and OSD, one file per object, `fsync` at
    /// every transaction commit. Building a cluster over an existing
    /// directory reopens its contents (geometry must match what the
    /// directory was formatted with).
    File {
        /// Root directory of the store. Created (with parents) if
        /// absent; reopened if it already holds a formatted cluster.
        dir: PathBuf,
    },
}

/// One shard's object storage: everything the engine needs from a
/// backend. `osd` indices are cluster-wide OSD numbers; a shard's
/// store only ever sees the objects whose placement lands in that
/// shard (the engine guarantees it, the store need not check).
///
/// Mutating accessors ([`ObjectStore::entry`], [`ObjectStore::get_mut`],
/// [`ObjectStore::insert`], [`ObjectStore::remove`]) update the
/// backend's working state only; [`ObjectStore::commit`] is the
/// durability point a transaction must hit before acknowledging.
pub(crate) trait ObjectStore: Send {
    /// The object `name` on OSD `osd`, if present.
    fn get(&self, osd: usize, name: &str) -> Option<&Object>;

    /// Mutable access to `name` on OSD `osd` (callers commit after).
    fn get_mut(&mut self, osd: usize, name: &str) -> Option<&mut Object>;

    /// Get-or-create: the object `name` on OSD `osd`, created with the
    /// given payload mode and snapshot context if absent.
    fn entry(
        &mut self,
        osd: usize,
        name: &str,
        store_payload: bool,
        snapc: SnapContext,
    ) -> &mut Object;

    /// Inserts (or replaces) `name` on OSD `osd`.
    fn insert(&mut self, osd: usize, name: &str, object: Object);

    /// Drops `name` from OSD `osd` (no-op if absent).
    fn remove(&mut self, osd: usize, name: &str);

    /// Whether OSD `osd` holds `name`.
    fn contains(&self, osd: usize, name: &str) -> bool;

    /// Every object name this store holds, sorted and deduplicated
    /// across OSDs.
    fn names(&self) -> Vec<String>;

    /// Persists the current state of `name` on the given OSDs — the
    /// per-transaction durability point. An OSD that no longer holds
    /// the object persists the deletion. In-memory backends
    /// acknowledge immediately; durable backends `fsync` before
    /// returning.
    ///
    /// # Errors
    ///
    /// [`crate::RadosError::Io`] when the host filesystem fails; the
    /// in-memory state is already updated then (crash semantics: the
    /// acknowledged prefix is durable, this transaction is not).
    fn commit(&mut self, name: &str, acting: &[OsdId]) -> Result<()>;

    /// A whole-store durability point (see [`crate::Cluster::flush`]).
    /// Backends whose commits are already synchronous only re-sync
    /// their directory metadata here.
    ///
    /// # Errors
    ///
    /// [`crate::RadosError::Io`] when the host filesystem fails.
    fn flush(&mut self) -> Result<()>;
}
