//! Objects: sparse byte data over 4 KB physical blocks, OMAP metadata,
//! xattrs, and snapshot clones.

use crate::transaction::SnapContext;
use crate::SnapId;
use std::collections::BTreeMap;
use vdisk_kv::{LsmConfig, LsmStore};

/// The physical block size of the simulated NVMe backend. Writes that
/// are not aligned to this granularity trigger read-modify-write, the
/// effect that penalizes the paper's *unaligned* IV layout (§3.3).
pub const PHYS_BLOCK: u64 = 4096;

/// `stat()` output for an object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObjectStat {
    /// Logical size in bytes (highest written offset + 1).
    pub size: u64,
    /// Number of snapshot clones held.
    pub clones: usize,
}

/// Disk work implied by one extent access, in physical terms: which
/// blocks must be read first (RMW) and which are written.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExtentProfile {
    /// Bytes that must be read before the write can be applied
    /// (partial first/last blocks of an overwrite).
    pub rmw_read_bytes: u64,
    /// Read ops issued for the RMW portion (0, 1 or 2).
    pub rmw_read_ops: u64,
    /// Bytes physically written (extent rounded out to block bounds).
    pub write_bytes: u64,
}

/// One version of an object's content: data, OMAP and xattrs.
#[derive(Debug, Clone)]
pub(crate) struct ObjectContent {
    /// Payload bytes; empty and ignored when `store_payload` is false.
    data: Vec<u8>,
    /// Logical size (tracked even when the payload is discarded).
    size: u64,
    /// Per-object key-value metadata (Ceph's OMAP, RocksDB-backed).
    pub(crate) omap: LsmStore,
    /// Extended attributes.
    pub(crate) xattrs: BTreeMap<String, Vec<u8>>,
    store_payload: bool,
}

impl ObjectContent {
    pub(crate) fn new(store_payload: bool) -> Self {
        ObjectContent {
            data: Vec::new(),
            size: 0,
            omap: LsmStore::new(LsmConfig::default()),
            xattrs: BTreeMap::new(),
            store_payload,
        }
    }

    pub(crate) fn size(&self) -> u64 {
        self.size
    }

    /// Applies a write and returns the physical-disk profile it incurs.
    pub(crate) fn write(&mut self, offset: u64, data: &[u8]) -> ExtentProfile {
        let profile = self.write_profile(offset, data.len() as u64);
        let end = offset + data.len() as u64;
        if self.store_payload {
            if self.data.len() < end as usize {
                self.data.resize(end as usize, 0);
            }
            self.data[offset as usize..end as usize].copy_from_slice(data);
        }
        self.size = self.size.max(end);
        profile
    }

    /// The disk work a write of `len` bytes at `offset` would cause,
    /// given the object's current size (partial blocks past EOF need no
    /// read).
    pub(crate) fn write_profile(&self, offset: u64, len: u64) -> ExtentProfile {
        if len == 0 {
            return ExtentProfile::default();
        }
        let start_block = offset / PHYS_BLOCK;
        let end_block = (offset + len).div_ceil(PHYS_BLOCK);
        let write_bytes = (end_block - start_block) * PHYS_BLOCK;

        let mut rmw_read_ops = 0u64;
        let mut rmw_read_bytes = 0u64;
        let head_partial = !offset.is_multiple_of(PHYS_BLOCK);
        let tail_partial = !(offset + len).is_multiple_of(PHYS_BLOCK);
        let head_exists = head_partial && start_block * PHYS_BLOCK < self.size;
        // The tail block only needs a read if it exists and is not the
        // same block as an already-read head.
        let tail_exists = tail_partial
            && (end_block - 1) * PHYS_BLOCK < self.size
            && (end_block - 1) != start_block;
        if head_exists {
            rmw_read_ops += 1;
            rmw_read_bytes += PHYS_BLOCK;
        }
        if tail_exists {
            rmw_read_ops += 1;
            rmw_read_bytes += PHYS_BLOCK;
        } else if tail_partial && !head_exists && (end_block - 1) == start_block {
            // Single partial block that already exists.
            if start_block * PHYS_BLOCK < self.size && !head_partial {
                rmw_read_ops += 1;
                rmw_read_bytes += PHYS_BLOCK;
            }
        }
        ExtentProfile {
            rmw_read_bytes,
            rmw_read_ops,
            write_bytes,
        }
    }

    /// Reads `len` bytes at `offset`, zero-filling unwritten space.
    pub(crate) fn read(&self, offset: u64, len: u64) -> Vec<u8> {
        let mut out = vec![0u8; len as usize];
        if self.store_payload && offset < self.data.len() as u64 {
            let available = (self.data.len() as u64 - offset).min(len) as usize;
            out[..available]
                .copy_from_slice(&self.data[offset as usize..offset as usize + available]);
        }
        out
    }

    pub(crate) fn truncate(&mut self, size: u64) {
        if self.store_payload {
            self.data.resize(size as usize, 0);
        }
        self.size = size;
    }

    /// Fingerprint for scrubbing (replicas must agree).
    pub(crate) fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.size.hash(&mut h);
        self.data.hash(&mut h);
        for (k, v) in &self.xattrs {
            k.hash(&mut h);
            v.hash(&mut h);
        }
        let (entries, _) = self.omap.range(&[], &[0xFF; 16]);
        entries.hash(&mut h);
        h.finish()
    }

    /// Fault-injection hook: silently corrupts one byte (no-op when
    /// the payload is discarded or out of range).
    pub(crate) fn poke(&mut self, offset: usize, byte: u8) {
        if self.store_payload && offset < self.data.len() {
            self.data[offset] = byte;
        }
    }

    /// Serializes this content version for a durable backend: payload,
    /// logical size, xattrs, and the OMAP's live entries (the LSM's
    /// internal layering is an in-memory cost-model artifact, not
    /// durable state).
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(self.store_payload));
        out.extend_from_slice(&self.size.to_le_bytes());
        put_bytes(out, &self.data);
        out.extend_from_slice(&(self.xattrs.len() as u32).to_le_bytes());
        for (k, v) in &self.xattrs {
            put_bytes(out, k.as_bytes());
            put_bytes(out, v);
        }
        let omap = self.omap.entries();
        out.extend_from_slice(&(omap.len() as u32).to_le_bytes());
        for (k, v) in omap {
            put_bytes(out, &k);
            put_bytes(out, &v);
        }
    }

    /// Rebuilds a content version from [`ObjectContent::encode`] bytes.
    /// The OMAP is replayed as one batch into a fresh LSM, so reads see
    /// identical entries (internal run layout may differ — deliberately
    /// not durable state).
    fn decode(r: &mut Cursor<'_>) -> Option<Self> {
        let store_payload = r.u8()? != 0;
        let size = r.u64()?;
        let data = r.bytes()?;
        let mut content = ObjectContent::new(store_payload);
        content.size = size;
        content.data = data;
        for _ in 0..r.u32()? {
            let k = String::from_utf8(r.bytes()?).ok()?;
            let v = r.bytes()?;
            content.xattrs.insert(k, v);
        }
        let omap_entries = r.u32()?;
        let mut batch = Vec::with_capacity(omap_entries as usize);
        for _ in 0..omap_entries {
            let k = r.bytes()?;
            let v = r.bytes()?;
            batch.push((k, Some(v)));
        }
        if !batch.is_empty() {
            content.omap.write_batch(batch);
        }
        Some(content)
    }
}

/// Magic + version framing the durable object codec
/// ([`Object::encode`] / [`Object::decode`]).
const OBJECT_MAGIC: &[u8; 4] = b"VDOB";
const OBJECT_VERSION: u32 = 1;

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
    out.extend_from_slice(bytes);
}

/// A bounds-checked little-endian reader over codec bytes; every
/// accessor returns `None` on truncation instead of panicking, so a
/// corrupt or torn file surfaces as a decode error.
struct Cursor<'a> {
    buf: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.buf.len() < n {
            return None;
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Some(head)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn bytes(&mut self) -> Option<Vec<u8>> {
        let len = usize::try_from(self.u64()?).ok()?;
        Some(self.take(len)?.to_vec())
    }
}

/// An object with its head version and snapshot clones.
#[derive(Debug, Clone)]
pub(crate) struct Object {
    pub(crate) head: ObjectContent,
    /// The snapshot seq this object has last been cloned for.
    snap_seq: u64,
    /// `(upper_snap_seq, content)` pairs, ascending by seq. A clone
    /// serves reads for any snapshot id in
    /// `(previous_upper, upper_snap_seq]`.
    clones: Vec<(u64, ObjectContent)>,
    /// Snapshot seq at creation: reads at snaps older than this see
    /// "no object".
    born_at: u64,
}

impl Object {
    pub(crate) fn new(store_payload: bool, snapc: SnapContext) -> Self {
        Object {
            head: ObjectContent::new(store_payload),
            snap_seq: snapc.seq.0,
            clones: Vec::new(),
            born_at: snapc.seq.0,
        }
    }

    /// Copy-on-write: called before any mutation. If snapshots were
    /// taken since the last clone, preserve the current head.
    /// Returns the bytes cloned (0 if no clone was needed).
    pub(crate) fn prepare_write(&mut self, snapc: SnapContext) -> u64 {
        if snapc.seq.0 > self.snap_seq {
            let cloned_bytes = self.head.size();
            self.clones.push((snapc.seq.0, self.head.clone()));
            self.snap_seq = snapc.seq.0;
            cloned_bytes
        } else {
            0
        }
    }

    /// Resolves the content visible at a snapshot (or the head).
    ///
    /// Returns `None` when the object did not exist at that snapshot.
    pub(crate) fn content_at(&self, snap: Option<SnapId>) -> Option<&ObjectContent> {
        match snap {
            None => Some(&self.head),
            Some(snap) => {
                // Snapshots taken at or before creation time predate
                // this object.
                if snap.0 <= self.born_at {
                    return None;
                }
                // First clone whose upper bound covers this snap.
                for (upper, content) in &self.clones {
                    if *upper >= snap.0 {
                        return Some(content);
                    }
                }
                // No clone: head has not been written since the snap.
                Some(&self.head)
            }
        }
    }

    pub(crate) fn stat(&self) -> ObjectStat {
        ObjectStat {
            size: self.head.size(),
            clones: self.clones.len(),
        }
    }

    /// Serializes the whole object — head, snapshot clones, and
    /// lineage seqs — with magic/version framing, for durable backends.
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.head.size() as usize);
        out.extend_from_slice(OBJECT_MAGIC);
        out.extend_from_slice(&OBJECT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.snap_seq.to_le_bytes());
        out.extend_from_slice(&self.born_at.to_le_bytes());
        self.head.encode(&mut out);
        out.extend_from_slice(&(self.clones.len() as u32).to_le_bytes());
        for (upper, content) in &self.clones {
            out.extend_from_slice(&upper.to_le_bytes());
            content.encode(&mut out);
        }
        out
    }

    /// Rebuilds an object from [`Object::encode`] bytes. `None` on any
    /// framing mismatch or truncation (a torn or foreign file).
    pub(crate) fn decode(bytes: &[u8]) -> Option<Self> {
        let mut r = Cursor { buf: bytes };
        if r.take(OBJECT_MAGIC.len())? != OBJECT_MAGIC || r.u32()? != OBJECT_VERSION {
            return None;
        }
        let snap_seq = r.u64()?;
        let born_at = r.u64()?;
        let head = ObjectContent::decode(&mut r)?;
        let clone_count = r.u32()?;
        let mut clones = Vec::with_capacity(clone_count as usize);
        for _ in 0..clone_count {
            let upper = r.u64()?;
            clones.push((upper, ObjectContent::decode(&mut r)?));
        }
        Some(Object {
            head,
            snap_seq,
            clones,
            born_at,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapc(seq: u64) -> SnapContext {
        SnapContext { seq: SnapId(seq) }
    }

    #[test]
    fn read_zero_fills_sparse_objects() {
        let mut c = ObjectContent::new(true);
        c.write(10, b"abc");
        assert_eq!(c.read(0, 14), b"\0\0\0\0\0\0\0\0\0\0abc\0");
        assert_eq!(c.size(), 13);
    }

    #[test]
    fn discarded_payload_tracks_size_only() {
        let mut c = ObjectContent::new(false);
        c.write(0, b"hello");
        assert_eq!(c.size(), 5);
        assert_eq!(c.read(0, 5), vec![0; 5], "payload discarded");
    }

    #[test]
    fn aligned_write_needs_no_rmw() {
        let mut c = ObjectContent::new(true);
        let p = c.write(0, &[7u8; 8192]);
        assert_eq!(p.rmw_read_ops, 0);
        assert_eq!(p.write_bytes, 8192);
    }

    #[test]
    fn unaligned_overwrite_needs_rmw() {
        let mut c = ObjectContent::new(true);
        c.write(0, &vec![1u8; 16384]); // pre-existing data
                                       // Overwrite 4112 bytes at offset 4112: partial head and tail.
                                       // [4112, 8224) spans physical blocks 1 and 2, both partially.
        let p = c.write_profile(4112, 4112);
        assert_eq!(p.rmw_read_ops, 2, "head and tail blocks both partial");
        assert_eq!(p.rmw_read_bytes, 2 * PHYS_BLOCK);
        assert_eq!(p.write_bytes, 2 * PHYS_BLOCK);
    }

    #[test]
    fn unaligned_append_past_eof_needs_no_read() {
        let c = ObjectContent::new(true);
        let p = c.write_profile(100, 50);
        assert_eq!(p.rmw_read_ops, 0, "nothing on disk to preserve");
        assert_eq!(p.write_bytes, PHYS_BLOCK);
    }

    #[test]
    fn small_overwrite_inside_existing_block() {
        let mut c = ObjectContent::new(true);
        c.write(0, &[9u8; 4096]);
        let p = c.write_profile(128, 16);
        assert_eq!(p.rmw_read_ops, 1, "one partial block to read back");
        assert_eq!(p.write_bytes, PHYS_BLOCK);
    }

    #[test]
    fn snapshots_cow_and_resolve() {
        let mut obj = Object::new(true, snapc(0));
        obj.head.write(0, b"version-1");
        // Snapshot 1 taken; next write must clone.
        let cloned = obj.prepare_write(snapc(1));
        assert_eq!(cloned, 9);
        obj.head.write(0, b"version-2");
        // Snapshot 2; another write clones again.
        obj.prepare_write(snapc(2));
        obj.head.write(0, b"version-3");

        assert_eq!(obj.content_at(None).unwrap().read(0, 9), b"version-3");
        assert_eq!(
            obj.content_at(Some(SnapId(1))).unwrap().read(0, 9),
            b"version-1"
        );
        assert_eq!(
            obj.content_at(Some(SnapId(2))).unwrap().read(0, 9),
            b"version-2"
        );
    }

    #[test]
    fn multiple_snaps_between_writes_share_one_clone() {
        let mut obj = Object::new(true, snapc(0));
        obj.head.write(0, b"v1");
        // Snaps 1, 2, 3 all taken before the next write.
        obj.prepare_write(snapc(3));
        obj.head.write(0, b"v2");
        for s in 1..=3 {
            assert_eq!(
                obj.content_at(Some(SnapId(s))).unwrap().read(0, 2),
                b"v1",
                "snap {s}"
            );
        }
        assert_eq!(obj.stat().clones, 1);
    }

    #[test]
    fn snapshot_after_last_write_reads_head() {
        let mut obj = Object::new(true, snapc(0));
        obj.head.write(0, b"data");
        // Snap 5 taken, but no write after it: head is the snapshot.
        assert_eq!(obj.content_at(Some(SnapId(5))).unwrap().read(0, 4), b"data");
    }

    #[test]
    fn object_born_after_snapshot_is_absent_there() {
        let obj = Object::new(true, snapc(3));
        assert!(obj.content_at(Some(SnapId(2))).is_none());
        assert!(
            obj.content_at(Some(SnapId(3))).is_none(),
            "snap 3 predates creation"
        );
        assert!(obj.content_at(Some(SnapId(4))).is_some());
    }

    #[test]
    fn no_cow_without_new_snapshot() {
        let mut obj = Object::new(true, snapc(0));
        obj.head.write(0, b"a");
        assert_eq!(obj.prepare_write(snapc(0)), 0);
        obj.head.write(0, b"b");
        assert_eq!(obj.stat().clones, 0);
    }

    #[test]
    fn fingerprint_reflects_every_facet() {
        let mut a = ObjectContent::new(true);
        let mut b = ObjectContent::new(true);
        assert_eq!(a.fingerprint(), b.fingerprint());
        a.write(0, b"x");
        assert_ne!(a.fingerprint(), b.fingerprint());
        b.write(0, b"x");
        assert_eq!(a.fingerprint(), b.fingerprint());
        a.omap.put(b"k".to_vec(), b"v".to_vec());
        assert_ne!(a.fingerprint(), b.fingerprint());
        b.omap.put(b"k".to_vec(), b"v".to_vec());
        assert_eq!(a.fingerprint(), b.fingerprint());
        a.xattrs.insert("attr".into(), vec![1]);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn codec_roundtrips_every_facet() {
        let mut obj = Object::new(true, snapc(2));
        obj.head.write(0, b"version-1");
        obj.head.omap.put(b"iv:0".to_vec(), vec![7; 16]);
        obj.head.omap.put(vec![0xFF; 24], b"edge".to_vec());
        obj.head.xattrs.insert("fmt".into(), vec![1, 2, 3]);
        obj.prepare_write(snapc(5));
        obj.head.write(4, b"ion-2-xx");
        obj.head.truncate(12);

        let back = Object::decode(&obj.encode()).expect("roundtrip");
        assert_eq!(back.snap_seq, obj.snap_seq);
        assert_eq!(back.born_at, obj.born_at);
        assert_eq!(back.stat(), obj.stat());
        assert_eq!(back.head.read(0, 12), obj.head.read(0, 12));
        assert_eq!(back.head.xattrs, obj.head.xattrs);
        assert_eq!(back.head.omap.entries(), obj.head.omap.entries());
        assert_eq!(
            back.content_at(Some(SnapId(3))).unwrap().read(0, 9),
            b"version-1",
            "clone content survives the roundtrip"
        );
        assert_eq!(back.head.fingerprint(), obj.head.fingerprint());
    }

    #[test]
    fn codec_roundtrips_discarded_payload() {
        let mut obj = Object::new(false, snapc(0));
        obj.head.write(0, &[1u8; 4096]);
        let back = Object::decode(&obj.encode()).expect("roundtrip");
        assert_eq!(back.head.size(), 4096);
        assert_eq!(back.head.read(0, 8), vec![0; 8], "payload stays discarded");
    }

    #[test]
    fn codec_rejects_garbage_and_truncation() {
        assert!(Object::decode(b"").is_none());
        assert!(Object::decode(b"not an object file").is_none());
        let good = Object::new(true, snapc(0)).encode();
        assert!(Object::decode(&good[..good.len() - 1]).is_none());
        let mut wrong_version = good;
        wrong_version[4] = 0xEE;
        assert!(Object::decode(&wrong_version).is_none());
    }

    #[test]
    fn truncate_shrinks() {
        let mut c = ObjectContent::new(true);
        c.write(0, &[1u8; 100]);
        c.truncate(10);
        assert_eq!(c.size(), 10);
        assert_eq!(c.read(0, 20), {
            let mut v = vec![1u8; 10];
            v.extend_from_slice(&[0u8; 10]);
            v
        });
    }
}
