//! Objects: sparse byte data over 4 KB physical blocks, OMAP metadata,
//! xattrs, and snapshot clones.

use crate::transaction::SnapContext;
use crate::SnapId;
use std::collections::BTreeMap;
use vdisk_kv::{LsmConfig, LsmStore};

/// The physical block size of the simulated NVMe backend. Writes that
/// are not aligned to this granularity trigger read-modify-write, the
/// effect that penalizes the paper's *unaligned* IV layout (§3.3).
pub const PHYS_BLOCK: u64 = 4096;

/// `stat()` output for an object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObjectStat {
    /// Logical size in bytes (highest written offset + 1).
    pub size: u64,
    /// Number of snapshot clones held.
    pub clones: usize,
}

/// Disk work implied by one extent access, in physical terms: which
/// blocks must be read first (RMW) and which are written.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExtentProfile {
    /// Bytes that must be read before the write can be applied
    /// (partial first/last blocks of an overwrite).
    pub rmw_read_bytes: u64,
    /// Read ops issued for the RMW portion (0, 1 or 2).
    pub rmw_read_ops: u64,
    /// Bytes physically written (extent rounded out to block bounds).
    pub write_bytes: u64,
}

/// One version of an object's content: data, OMAP and xattrs.
#[derive(Debug, Clone)]
pub(crate) struct ObjectContent {
    /// Payload bytes; empty and ignored when `store_payload` is false.
    data: Vec<u8>,
    /// Logical size (tracked even when the payload is discarded).
    size: u64,
    /// Per-object key-value metadata (Ceph's OMAP, RocksDB-backed).
    pub(crate) omap: LsmStore,
    /// Extended attributes.
    pub(crate) xattrs: BTreeMap<String, Vec<u8>>,
    store_payload: bool,
}

impl ObjectContent {
    pub(crate) fn new(store_payload: bool) -> Self {
        ObjectContent {
            data: Vec::new(),
            size: 0,
            omap: LsmStore::new(LsmConfig::default()),
            xattrs: BTreeMap::new(),
            store_payload,
        }
    }

    pub(crate) fn size(&self) -> u64 {
        self.size
    }

    /// Applies a write and returns the physical-disk profile it incurs.
    pub(crate) fn write(&mut self, offset: u64, data: &[u8]) -> ExtentProfile {
        let profile = self.write_profile(offset, data.len() as u64);
        let end = offset + data.len() as u64;
        if self.store_payload {
            if self.data.len() < end as usize {
                self.data.resize(end as usize, 0);
            }
            self.data[offset as usize..end as usize].copy_from_slice(data);
        }
        self.size = self.size.max(end);
        profile
    }

    /// The disk work a write of `len` bytes at `offset` would cause,
    /// given the object's current size (partial blocks past EOF need no
    /// read).
    pub(crate) fn write_profile(&self, offset: u64, len: u64) -> ExtentProfile {
        if len == 0 {
            return ExtentProfile::default();
        }
        let start_block = offset / PHYS_BLOCK;
        let end_block = (offset + len).div_ceil(PHYS_BLOCK);
        let write_bytes = (end_block - start_block) * PHYS_BLOCK;

        let mut rmw_read_ops = 0u64;
        let mut rmw_read_bytes = 0u64;
        let head_partial = !offset.is_multiple_of(PHYS_BLOCK);
        let tail_partial = !(offset + len).is_multiple_of(PHYS_BLOCK);
        let head_exists = head_partial && start_block * PHYS_BLOCK < self.size;
        // The tail block only needs a read if it exists and is not the
        // same block as an already-read head.
        let tail_exists = tail_partial
            && (end_block - 1) * PHYS_BLOCK < self.size
            && (end_block - 1) != start_block;
        if head_exists {
            rmw_read_ops += 1;
            rmw_read_bytes += PHYS_BLOCK;
        }
        if tail_exists {
            rmw_read_ops += 1;
            rmw_read_bytes += PHYS_BLOCK;
        } else if tail_partial && !head_exists && (end_block - 1) == start_block {
            // Single partial block that already exists.
            if start_block * PHYS_BLOCK < self.size && !head_partial {
                rmw_read_ops += 1;
                rmw_read_bytes += PHYS_BLOCK;
            }
        }
        ExtentProfile {
            rmw_read_bytes,
            rmw_read_ops,
            write_bytes,
        }
    }

    /// Reads `len` bytes at `offset`, zero-filling unwritten space.
    pub(crate) fn read(&self, offset: u64, len: u64) -> Vec<u8> {
        let mut out = vec![0u8; len as usize];
        if self.store_payload && offset < self.data.len() as u64 {
            let available = (self.data.len() as u64 - offset).min(len) as usize;
            out[..available]
                .copy_from_slice(&self.data[offset as usize..offset as usize + available]);
        }
        out
    }

    pub(crate) fn truncate(&mut self, size: u64) {
        if self.store_payload {
            self.data.resize(size as usize, 0);
        }
        self.size = size;
    }

    /// Fingerprint for scrubbing (replicas must agree).
    pub(crate) fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.size.hash(&mut h);
        self.data.hash(&mut h);
        for (k, v) in &self.xattrs {
            k.hash(&mut h);
            v.hash(&mut h);
        }
        let (entries, _) = self.omap.range(&[], &[0xFF; 16]);
        entries.hash(&mut h);
        h.finish()
    }

    /// Fault-injection hook: silently corrupts one byte (no-op when
    /// the payload is discarded or out of range).
    pub(crate) fn poke(&mut self, offset: usize, byte: u8) {
        if self.store_payload && offset < self.data.len() {
            self.data[offset] = byte;
        }
    }
}

/// An object with its head version and snapshot clones.
#[derive(Debug, Clone)]
pub(crate) struct Object {
    pub(crate) head: ObjectContent,
    /// The snapshot seq this object has last been cloned for.
    snap_seq: u64,
    /// `(upper_snap_seq, content)` pairs, ascending by seq. A clone
    /// serves reads for any snapshot id in
    /// `(previous_upper, upper_snap_seq]`.
    clones: Vec<(u64, ObjectContent)>,
    /// Snapshot seq at creation: reads at snaps older than this see
    /// "no object".
    born_at: u64,
}

impl Object {
    pub(crate) fn new(store_payload: bool, snapc: SnapContext) -> Self {
        Object {
            head: ObjectContent::new(store_payload),
            snap_seq: snapc.seq.0,
            clones: Vec::new(),
            born_at: snapc.seq.0,
        }
    }

    /// Copy-on-write: called before any mutation. If snapshots were
    /// taken since the last clone, preserve the current head.
    /// Returns the bytes cloned (0 if no clone was needed).
    pub(crate) fn prepare_write(&mut self, snapc: SnapContext) -> u64 {
        if snapc.seq.0 > self.snap_seq {
            let cloned_bytes = self.head.size();
            self.clones.push((snapc.seq.0, self.head.clone()));
            self.snap_seq = snapc.seq.0;
            cloned_bytes
        } else {
            0
        }
    }

    /// Resolves the content visible at a snapshot (or the head).
    ///
    /// Returns `None` when the object did not exist at that snapshot.
    pub(crate) fn content_at(&self, snap: Option<SnapId>) -> Option<&ObjectContent> {
        match snap {
            None => Some(&self.head),
            Some(snap) => {
                // Snapshots taken at or before creation time predate
                // this object.
                if snap.0 <= self.born_at {
                    return None;
                }
                // First clone whose upper bound covers this snap.
                for (upper, content) in &self.clones {
                    if *upper >= snap.0 {
                        return Some(content);
                    }
                }
                // No clone: head has not been written since the snap.
                Some(&self.head)
            }
        }
    }

    pub(crate) fn stat(&self) -> ObjectStat {
        ObjectStat {
            size: self.head.size(),
            clones: self.clones.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapc(seq: u64) -> SnapContext {
        SnapContext { seq: SnapId(seq) }
    }

    #[test]
    fn read_zero_fills_sparse_objects() {
        let mut c = ObjectContent::new(true);
        c.write(10, b"abc");
        assert_eq!(c.read(0, 14), b"\0\0\0\0\0\0\0\0\0\0abc\0");
        assert_eq!(c.size(), 13);
    }

    #[test]
    fn discarded_payload_tracks_size_only() {
        let mut c = ObjectContent::new(false);
        c.write(0, b"hello");
        assert_eq!(c.size(), 5);
        assert_eq!(c.read(0, 5), vec![0; 5], "payload discarded");
    }

    #[test]
    fn aligned_write_needs_no_rmw() {
        let mut c = ObjectContent::new(true);
        let p = c.write(0, &[7u8; 8192]);
        assert_eq!(p.rmw_read_ops, 0);
        assert_eq!(p.write_bytes, 8192);
    }

    #[test]
    fn unaligned_overwrite_needs_rmw() {
        let mut c = ObjectContent::new(true);
        c.write(0, &vec![1u8; 16384]); // pre-existing data
                                       // Overwrite 4112 bytes at offset 4112: partial head and tail.
                                       // [4112, 8224) spans physical blocks 1 and 2, both partially.
        let p = c.write_profile(4112, 4112);
        assert_eq!(p.rmw_read_ops, 2, "head and tail blocks both partial");
        assert_eq!(p.rmw_read_bytes, 2 * PHYS_BLOCK);
        assert_eq!(p.write_bytes, 2 * PHYS_BLOCK);
    }

    #[test]
    fn unaligned_append_past_eof_needs_no_read() {
        let c = ObjectContent::new(true);
        let p = c.write_profile(100, 50);
        assert_eq!(p.rmw_read_ops, 0, "nothing on disk to preserve");
        assert_eq!(p.write_bytes, PHYS_BLOCK);
    }

    #[test]
    fn small_overwrite_inside_existing_block() {
        let mut c = ObjectContent::new(true);
        c.write(0, &[9u8; 4096]);
        let p = c.write_profile(128, 16);
        assert_eq!(p.rmw_read_ops, 1, "one partial block to read back");
        assert_eq!(p.write_bytes, PHYS_BLOCK);
    }

    #[test]
    fn snapshots_cow_and_resolve() {
        let mut obj = Object::new(true, snapc(0));
        obj.head.write(0, b"version-1");
        // Snapshot 1 taken; next write must clone.
        let cloned = obj.prepare_write(snapc(1));
        assert_eq!(cloned, 9);
        obj.head.write(0, b"version-2");
        // Snapshot 2; another write clones again.
        obj.prepare_write(snapc(2));
        obj.head.write(0, b"version-3");

        assert_eq!(obj.content_at(None).unwrap().read(0, 9), b"version-3");
        assert_eq!(
            obj.content_at(Some(SnapId(1))).unwrap().read(0, 9),
            b"version-1"
        );
        assert_eq!(
            obj.content_at(Some(SnapId(2))).unwrap().read(0, 9),
            b"version-2"
        );
    }

    #[test]
    fn multiple_snaps_between_writes_share_one_clone() {
        let mut obj = Object::new(true, snapc(0));
        obj.head.write(0, b"v1");
        // Snaps 1, 2, 3 all taken before the next write.
        obj.prepare_write(snapc(3));
        obj.head.write(0, b"v2");
        for s in 1..=3 {
            assert_eq!(
                obj.content_at(Some(SnapId(s))).unwrap().read(0, 2),
                b"v1",
                "snap {s}"
            );
        }
        assert_eq!(obj.stat().clones, 1);
    }

    #[test]
    fn snapshot_after_last_write_reads_head() {
        let mut obj = Object::new(true, snapc(0));
        obj.head.write(0, b"data");
        // Snap 5 taken, but no write after it: head is the snapshot.
        assert_eq!(obj.content_at(Some(SnapId(5))).unwrap().read(0, 4), b"data");
    }

    #[test]
    fn object_born_after_snapshot_is_absent_there() {
        let obj = Object::new(true, snapc(3));
        assert!(obj.content_at(Some(SnapId(2))).is_none());
        assert!(
            obj.content_at(Some(SnapId(3))).is_none(),
            "snap 3 predates creation"
        );
        assert!(obj.content_at(Some(SnapId(4))).is_some());
    }

    #[test]
    fn no_cow_without_new_snapshot() {
        let mut obj = Object::new(true, snapc(0));
        obj.head.write(0, b"a");
        assert_eq!(obj.prepare_write(snapc(0)), 0);
        obj.head.write(0, b"b");
        assert_eq!(obj.stat().clones, 0);
    }

    #[test]
    fn fingerprint_reflects_every_facet() {
        let mut a = ObjectContent::new(true);
        let mut b = ObjectContent::new(true);
        assert_eq!(a.fingerprint(), b.fingerprint());
        a.write(0, b"x");
        assert_ne!(a.fingerprint(), b.fingerprint());
        b.write(0, b"x");
        assert_eq!(a.fingerprint(), b.fingerprint());
        a.omap.put(b"k".to_vec(), b"v".to_vec());
        assert_ne!(a.fingerprint(), b.fingerprint());
        b.omap.put(b"k".to_vec(), b"v".to_vec());
        assert_eq!(a.fingerprint(), b.fingerprint());
        a.xattrs.insert("attr".into(), vec![1]);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn truncate_shrinks() {
        let mut c = ObjectContent::new(true);
        c.write(0, &[1u8; 100]);
        c.truncate(10);
        assert_eq!(c.size(), 10);
        assert_eq!(c.read(0, 20), {
            let mut v = vec![1u8; 10];
            v.extend_from_slice(&[0u8; 10]);
            v
        });
    }
}
