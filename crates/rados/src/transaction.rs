//! Write transactions and read operations.
//!
//! A [`Transaction`] bundles mutations to **one object** and is applied
//! atomically on every replica — the RADOS property the paper relies on
//! to keep a sector and its IV consistent ("the Ceph RADOS protocol
//! \[supports\] atomically writing multiple IOs", §3.1).

use crate::SnapId;

/// The snapshot context sent with every write: the most recent
/// snapshot id the client knows about. An object whose last
/// copy-on-write is older than `seq` clones itself before mutating.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SnapContext {
    /// Highest snapshot id visible to the writer.
    pub seq: SnapId,
}

/// One mutation within a transaction.
#[derive(Debug, Clone, PartialEq)]
pub enum TxOp {
    /// Write `data` at byte `offset` of the object.
    Write {
        /// Byte offset within the object.
        offset: u64,
        /// Bytes to write.
        data: Vec<u8>,
    },
    /// Truncate the object to `size` bytes.
    Truncate(u64),
    /// Insert/overwrite OMAP entries.
    OmapSet(Vec<(Vec<u8>, Vec<u8>)>),
    /// Remove OMAP keys.
    OmapRemove(Vec<Vec<u8>>),
    /// Set an xattr.
    SetXattr(String, Vec<u8>),
    /// Remove the whole object.
    Delete,
}

/// An atomic multi-op write to a single object.
///
/// # Example
///
/// ```
/// use vdisk_rados::Transaction;
/// let mut tx = Transaction::new("rbd_data.disk0.000000000000002a");
/// tx.write(0, vec![0xAB; 4096]);            // the encrypted sector
/// tx.omap_set(vec![(b"iv.0".to_vec(), vec![0x11; 16])]); // its IV
/// assert_eq!(tx.ops.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Transaction {
    /// Target object name.
    pub object: String,
    /// Snapshot context (filled in by the cluster when left default).
    pub snapc: Option<SnapContext>,
    /// Mutations, applied in order, atomically.
    pub ops: Vec<TxOp>,
}

impl Transaction {
    /// Starts an empty transaction against `object`.
    #[must_use]
    pub fn new(object: impl Into<String>) -> Self {
        Transaction {
            object: object.into(),
            snapc: None,
            ops: Vec::new(),
        }
    }

    /// Adds a data write.
    pub fn write(&mut self, offset: u64, data: Vec<u8>) -> &mut Self {
        self.ops.push(TxOp::Write { offset, data });
        self
    }

    /// Adds a truncate.
    pub fn truncate(&mut self, size: u64) -> &mut Self {
        self.ops.push(TxOp::Truncate(size));
        self
    }

    /// Adds OMAP insertions.
    pub fn omap_set(&mut self, entries: Vec<(Vec<u8>, Vec<u8>)>) -> &mut Self {
        self.ops.push(TxOp::OmapSet(entries));
        self
    }

    /// Adds OMAP removals.
    pub fn omap_remove(&mut self, keys: Vec<Vec<u8>>) -> &mut Self {
        self.ops.push(TxOp::OmapRemove(keys));
        self
    }

    /// Adds an xattr write.
    pub fn set_xattr(&mut self, name: impl Into<String>, value: Vec<u8>) -> &mut Self {
        self.ops.push(TxOp::SetXattr(name.into(), value));
        self
    }

    /// Adds object deletion.
    pub fn delete(&mut self) -> &mut Self {
        self.ops.push(TxOp::Delete);
        self
    }

    /// Overrides the snapshot context (the cluster fills in its
    /// current sequence when this is `None`).
    pub fn with_snapc(&mut self, snapc: SnapContext) -> &mut Self {
        self.snapc = Some(snapc);
        self
    }

    /// Total payload bytes carried by this transaction (data + omap),
    /// used for network cost accounting.
    #[must_use]
    pub fn payload_bytes(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| match op {
                TxOp::Write { data, .. } => data.len() as u64,
                TxOp::OmapSet(entries) => entries
                    .iter()
                    .map(|(k, v)| (k.len() + v.len()) as u64)
                    .sum(),
                TxOp::OmapRemove(keys) => keys.iter().map(|k| k.len() as u64).sum(),
                TxOp::SetXattr(name, value) => (name.len() + value.len()) as u64,
                TxOp::Truncate(_) | TxOp::Delete => 0,
            })
            .sum()
    }
}

/// One object's worth of read operations inside a vectored read (see
/// `Cluster::read_batch`): the read-side analog of a [`Transaction`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectReads {
    /// Target object name.
    pub object: String,
    /// Operations to execute against it, in order.
    pub ops: Vec<ReadOp>,
}

impl ObjectReads {
    /// Builds a read request against `object`.
    #[must_use]
    pub fn new(object: impl Into<String>, ops: Vec<ReadOp>) -> Self {
        ObjectReads {
            object: object.into(),
            ops,
        }
    }
}

/// One read operation against an object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadOp {
    /// Read `len` bytes at `offset` (zero-filled past EOF).
    Read {
        /// Byte offset within the object.
        offset: u64,
        /// Bytes to read.
        len: u64,
    },
    /// Fetch OMAP entries with keys in `[start, end)`.
    OmapGetRange {
        /// Inclusive lower key bound.
        start: Vec<u8>,
        /// Exclusive upper key bound.
        end: Vec<u8>,
    },
    /// Fetch specific OMAP keys (absent keys are omitted).
    OmapGetKeys(Vec<Vec<u8>>),
    /// Fetch one xattr.
    GetXattr(String),
    /// Object metadata.
    Stat,
}

/// The result of one [`ReadOp`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadResult {
    /// Data bytes from a [`ReadOp::Read`].
    Data(Vec<u8>),
    /// OMAP entries, sorted by key.
    OmapEntries(Vec<(Vec<u8>, Vec<u8>)>),
    /// Xattr value, if present.
    Xattr(Option<Vec<u8>>),
    /// Stat result.
    Stat {
        /// Logical object size.
        size: u64,
    },
}

impl ReadResult {
    /// Unwraps a data result.
    ///
    /// # Panics
    ///
    /// Panics if the result is not `Data`.
    #[must_use]
    pub fn as_data(&self) -> &[u8] {
        match self {
            ReadResult::Data(d) => d,
            other => panic!("expected Data result, got {other:?}"),
        }
    }

    /// Unwraps an OMAP result.
    ///
    /// # Panics
    ///
    /// Panics if the result is not `OmapEntries`.
    #[must_use]
    pub fn as_omap(&self) -> &[(Vec<u8>, Vec<u8>)] {
        match self {
            ReadResult::OmapEntries(e) => e,
            other => panic!("expected OmapEntries result, got {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let mut tx = Transaction::new("obj");
        tx.write(0, vec![1, 2, 3])
            .omap_set(vec![(b"k".to_vec(), b"v".to_vec())])
            .set_xattr("a", vec![9])
            .truncate(100);
        assert_eq!(tx.ops.len(), 4);
        assert_eq!(tx.object, "obj");
    }

    #[test]
    fn payload_bytes_counts_data_and_metadata() {
        let mut tx = Transaction::new("obj");
        tx.write(0, vec![0; 100]);
        tx.omap_set(vec![(vec![0; 8], vec![0; 16])]);
        tx.set_xattr("ab", vec![0; 10]);
        assert_eq!(tx.payload_bytes(), 100 + 24 + 12);
    }

    #[test]
    fn read_result_accessors() {
        assert_eq!(ReadResult::Data(vec![1]).as_data(), &[1]);
        let omap = ReadResult::OmapEntries(vec![(vec![1], vec![2])]);
        assert_eq!(omap.as_omap(), &[(vec![1], vec![2])]);
    }

    #[test]
    #[should_panic(expected = "expected Data")]
    fn wrong_accessor_panics() {
        let _ = ReadResult::Stat { size: 0 }.as_data();
    }
}
