//! Write transactions and read operations.
//!
//! A [`Transaction`] bundles mutations to **one object** and is applied
//! atomically on every replica — the RADOS property the paper relies on
//! to keep a sector and its IV consistent ("the Ceph RADOS protocol
//! \[supports\] atomically writing multiple IOs", §3.1).

use crate::SnapId;
use std::ops::Range;
use std::sync::Arc;

/// A cheaply-cloneable view into a shared owned byte buffer.
///
/// The zero-copy currency of the write path: a client encrypts (or
/// assembles) a whole request in **one** `Vec<u8>`, wraps it once, and
/// hands each object's transaction a *slice view* of the same
/// allocation — no per-extent copies, no full-request clone. A plain
/// `Vec<u8>` converts with `into()` (wrapping the allocation, not
/// copying it), so single-buffer callers keep their old call shape.
///
/// # Example
///
/// ```
/// use vdisk_rados::SharedBuf;
/// let buf: SharedBuf = vec![1u8, 2, 3, 4].into();
/// let tail = buf.slice(2..4);
/// assert_eq!(&*tail, &[3, 4]);
/// // Both views share one allocation.
/// assert_eq!(buf.as_slice()[2..].as_ptr(), tail.as_slice().as_ptr());
/// ```
#[derive(Clone)]
pub struct SharedBuf {
    buf: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl SharedBuf {
    /// Wraps a whole owned buffer (no copy: the allocation is shared).
    #[must_use]
    pub fn from_vec(buf: Vec<u8>) -> Self {
        let end = buf.len();
        SharedBuf {
            buf: Arc::new(buf),
            start: 0,
            end,
        }
    }

    /// A sub-view of this view (indices are relative to this view).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds this view.
    #[must_use]
    pub fn slice(&self, range: Range<usize>) -> SharedBuf {
        assert!(
            range.start <= range.end && self.start + range.end <= self.end,
            "slice {range:?} exceeds view of {} bytes",
            self.len()
        );
        SharedBuf {
            buf: Arc::clone(&self.buf),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// The viewed bytes.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.buf[self.start..self.end]
    }

    /// Length of the view in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the view is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

impl std::ops::Deref for SharedBuf {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for SharedBuf {
    fn from(buf: Vec<u8>) -> Self {
        SharedBuf::from_vec(buf)
    }
}

impl std::fmt::Debug for SharedBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SharedBuf({} bytes)", self.len())
    }
}

impl PartialEq for SharedBuf {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for SharedBuf {}

/// The snapshot context sent with every write: the most recent
/// snapshot id the client knows about. An object whose last
/// copy-on-write is older than `seq` clones itself before mutating.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SnapContext {
    /// Highest snapshot id visible to the writer.
    pub seq: SnapId,
}

/// One mutation within a transaction.
#[derive(Debug, Clone, PartialEq)]
pub enum TxOp {
    /// Write `data` at byte `offset` of the object.
    Write {
        /// Byte offset within the object.
        offset: u64,
        /// Bytes to write — a view into a (possibly shared) owned
        /// buffer, so striped writes hand each object a slice of one
        /// request allocation instead of a copy.
        data: SharedBuf,
    },
    /// Truncate the object to `size` bytes.
    Truncate(u64),
    /// Insert/overwrite OMAP entries.
    OmapSet(Vec<(Vec<u8>, Vec<u8>)>),
    /// Remove OMAP keys.
    OmapRemove(Vec<Vec<u8>>),
    /// Set an xattr.
    SetXattr(String, Vec<u8>),
    /// Precondition: fail the whole transaction (before any of its ops
    /// applies) unless the object's xattr `name` currently equals
    /// `expected` (`None` = the xattr — or the whole object — must be
    /// absent). The compare-and-swap primitive for single-object
    /// control metadata: a client that read version N updates with
    /// `CompareXattr(version == N) + Write + SetXattr(version = N+1)`,
    /// and a concurrent update loses cleanly with
    /// [`crate::RadosError::CompareFailed`] instead of silently
    /// clobbering — how `vdisk-core` keeps encryption-header updates
    /// atomic across handles.
    CompareXattr {
        /// Xattr name to check.
        name: String,
        /// Required current value (`None` = must be absent).
        expected: Option<Vec<u8>>,
    },
    /// Remove the whole object.
    Delete,
}

/// An atomic multi-op write to a single object.
///
/// # Example
///
/// ```
/// use vdisk_rados::Transaction;
/// let mut tx = Transaction::new("rbd_data.disk0.000000000000002a");
/// tx.write(0, vec![0xAB; 4096]);            // the encrypted sector
/// tx.omap_set(vec![(b"iv.0".to_vec(), vec![0x11; 16])]); // its IV
/// assert_eq!(tx.ops.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Transaction {
    /// Target object name.
    pub object: String,
    /// Snapshot context (filled in by the cluster when left default).
    pub snapc: Option<SnapContext>,
    /// Mutations, applied in order, atomically.
    pub ops: Vec<TxOp>,
}

impl Transaction {
    /// Starts an empty transaction against `object`.
    #[must_use]
    pub fn new(object: impl Into<String>) -> Self {
        Transaction {
            object: object.into(),
            snapc: None,
            ops: Vec::new(),
        }
    }

    /// Adds a data write. Accepts an owned `Vec<u8>` (wrapped without
    /// copying) or a [`SharedBuf`] slice of a shared request buffer.
    pub fn write(&mut self, offset: u64, data: impl Into<SharedBuf>) -> &mut Self {
        self.ops.push(TxOp::Write {
            offset,
            data: data.into(),
        });
        self
    }

    /// Adds a truncate.
    pub fn truncate(&mut self, size: u64) -> &mut Self {
        self.ops.push(TxOp::Truncate(size));
        self
    }

    /// Adds OMAP insertions.
    pub fn omap_set(&mut self, entries: Vec<(Vec<u8>, Vec<u8>)>) -> &mut Self {
        self.ops.push(TxOp::OmapSet(entries));
        self
    }

    /// Adds OMAP removals.
    pub fn omap_remove(&mut self, keys: Vec<Vec<u8>>) -> &mut Self {
        self.ops.push(TxOp::OmapRemove(keys));
        self
    }

    /// Adds an xattr write.
    pub fn set_xattr(&mut self, name: impl Into<String>, value: Vec<u8>) -> &mut Self {
        self.ops.push(TxOp::SetXattr(name.into(), value));
        self
    }

    /// Adds an xattr compare precondition (see [`TxOp::CompareXattr`]):
    /// the transaction applies only if the xattr currently holds
    /// `expected` (`None` = must be absent).
    pub fn compare_xattr(
        &mut self,
        name: impl Into<String>,
        expected: Option<Vec<u8>>,
    ) -> &mut Self {
        self.ops.push(TxOp::CompareXattr {
            name: name.into(),
            expected,
        });
        self
    }

    /// Adds object deletion.
    pub fn delete(&mut self) -> &mut Self {
        self.ops.push(TxOp::Delete);
        self
    }

    /// Overrides the snapshot context (the cluster fills in its
    /// current sequence when this is `None`).
    pub fn with_snapc(&mut self, snapc: SnapContext) -> &mut Self {
        self.snapc = Some(snapc);
        self
    }

    /// Total payload bytes carried by this transaction (data + omap),
    /// used for network cost accounting.
    #[must_use]
    pub fn payload_bytes(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| match op {
                TxOp::Write { data, .. } => data.len() as u64,
                TxOp::OmapSet(entries) => entries
                    .iter()
                    .map(|(k, v)| (k.len() + v.len()) as u64)
                    .sum(),
                TxOp::OmapRemove(keys) => keys.iter().map(|k| k.len() as u64).sum(),
                TxOp::SetXattr(name, value) => (name.len() + value.len()) as u64,
                TxOp::CompareXattr { name, expected } => {
                    (name.len() + expected.as_ref().map_or(0, Vec::len)) as u64
                }
                TxOp::Truncate(_) | TxOp::Delete => 0,
            })
            .sum()
    }
}

/// One object's worth of read operations inside a vectored read (see
/// `Cluster::read_batch`): the read-side analog of a [`Transaction`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectReads {
    /// Target object name.
    pub object: String,
    /// Operations to execute against it, in order.
    pub ops: Vec<ReadOp>,
}

impl ObjectReads {
    /// Builds a read request against `object`.
    #[must_use]
    pub fn new(object: impl Into<String>, ops: Vec<ReadOp>) -> Self {
        ObjectReads {
            object: object.into(),
            ops,
        }
    }
}

/// One read operation against an object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadOp {
    /// Read `len` bytes at `offset` (zero-filled past EOF).
    Read {
        /// Byte offset within the object.
        offset: u64,
        /// Bytes to read.
        len: u64,
    },
    /// Fetch OMAP entries with keys in `[start, end)`.
    OmapGetRange {
        /// Inclusive lower key bound.
        start: Vec<u8>,
        /// Exclusive upper key bound.
        end: Vec<u8>,
    },
    /// Fetch specific OMAP keys (absent keys are omitted).
    OmapGetKeys(Vec<Vec<u8>>),
    /// Fetch one xattr.
    GetXattr(String),
    /// Object metadata.
    Stat,
}

/// The result of one [`ReadOp`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadResult {
    /// Data bytes from a [`ReadOp::Read`].
    Data(Vec<u8>),
    /// OMAP entries, sorted by key.
    OmapEntries(Vec<(Vec<u8>, Vec<u8>)>),
    /// Xattr value, if present.
    Xattr(Option<Vec<u8>>),
    /// Stat result.
    Stat {
        /// Logical object size.
        size: u64,
    },
}

impl ReadResult {
    /// Unwraps a data result.
    ///
    /// # Panics
    ///
    /// Panics if the result is not `Data`.
    #[must_use]
    pub fn as_data(&self) -> &[u8] {
        match self {
            ReadResult::Data(d) => d,
            other => panic!("expected Data result, got {other:?}"),
        }
    }

    /// Unwraps an OMAP result.
    ///
    /// # Panics
    ///
    /// Panics if the result is not `OmapEntries`.
    #[must_use]
    pub fn as_omap(&self) -> &[(Vec<u8>, Vec<u8>)] {
        match self {
            ReadResult::OmapEntries(e) => e,
            other => panic!("expected OmapEntries result, got {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let mut tx = Transaction::new("obj");
        tx.write(0, vec![1, 2, 3])
            .omap_set(vec![(b"k".to_vec(), b"v".to_vec())])
            .set_xattr("a", vec![9])
            .truncate(100);
        assert_eq!(tx.ops.len(), 4);
        assert_eq!(tx.object, "obj");
    }

    #[test]
    fn payload_bytes_counts_data_and_metadata() {
        let mut tx = Transaction::new("obj");
        tx.write(0, vec![0; 100]);
        tx.omap_set(vec![(vec![0; 8], vec![0; 16])]);
        tx.set_xattr("ab", vec![0; 10]);
        assert_eq!(tx.payload_bytes(), 100 + 24 + 12);
    }

    #[test]
    fn shared_buf_views_are_zero_copy() {
        let v = vec![9u8; 8192];
        let ptr = v.as_ptr();
        let buf = SharedBuf::from_vec(v);
        assert_eq!(buf.as_slice().as_ptr(), ptr, "wrapping must not copy");
        let tail = buf.slice(4096..8192);
        assert_eq!(
            tail.as_slice().as_ptr(),
            buf.as_slice()[4096..].as_ptr(),
            "a slice view shares the parent allocation"
        );
        assert_eq!(tail.len(), 4096);

        // A Vec handed to Transaction::write keeps its allocation too.
        let v = vec![1u8, 2, 3];
        let ptr = v.as_ptr();
        let mut tx = Transaction::new("obj");
        tx.write(0, v);
        match &tx.ops[0] {
            TxOp::Write { data, .. } => assert_eq!(data.as_slice().as_ptr(), ptr),
            other => panic!("expected write, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "exceeds view")]
    fn shared_buf_slice_bounds_checked() {
        let buf = SharedBuf::from_vec(vec![0u8; 4]);
        let _ = buf.slice(2..8);
    }

    #[test]
    fn read_result_accessors() {
        assert_eq!(ReadResult::Data(vec![1]).as_data(), &[1]);
        let omap = ReadResult::OmapEntries(vec![(vec![1], vec![2])]);
        assert_eq!(omap.as_omap(), &[(vec![1], vec![2])]);
    }

    #[test]
    #[should_panic(expected = "expected Data")]
    fn wrong_accessor_panics() {
        let _ = ReadResult::Stat { size: 0 }.as_data();
    }
}
