//! The cluster control plane: configuration that is fixed at build
//! time and shared by every shard, plus the lock-free counters.
//!
//! The split matters for scale: [`ControlPlane`] is read-only after
//! construction (placement, cost profiles, resource handles), so shard
//! workers use it without any lock. The only mutable control-plane
//! state — the snapshot sequence and the operation counters — is
//! atomic. Everything that *does* need mutual exclusion (the objects
//! themselves) lives in the per-placement [`crate::shard::Shard`]s.

use crate::cluster::{ExecStats, PayloadMode};
use crate::cost::{ResourceHandles, TestbedProfile};
use crate::placement::PlacementMap;
use std::sync::atomic::{AtomicU64, Ordering};
use vdisk_kv::CostProfile;

/// Immutable cluster configuration plus the atomic counters. One
/// instance per cluster, shared (via `Arc`) by every handle and every
/// shard worker.
pub(crate) struct ControlPlane {
    pub(crate) placement: PlacementMap,
    pub(crate) handles: ResourceHandles,
    pub(crate) testbed: TestbedProfile,
    pub(crate) kv_cost: CostProfile,
    pub(crate) payload: PayloadMode,
    pub(crate) shard_count: usize,
    /// Whether per-shard worker threads serve submissions (resolved at
    /// build time — see [`crate::ClusterBuilder::concurrent_apply`]).
    /// When false, submissions apply inline in the submitting thread.
    pub(crate) workers: bool,
    /// Cluster-wide self-managed snapshot sequence.
    snap_seq: AtomicU64,
    pub(crate) stats: StatCounters,
}

impl ControlPlane {
    pub(crate) fn new(
        placement: PlacementMap,
        handles: ResourceHandles,
        testbed: TestbedProfile,
        kv_cost: CostProfile,
        payload: PayloadMode,
        shard_count: usize,
        workers: bool,
    ) -> Self {
        ControlPlane {
            placement,
            handles,
            testbed,
            kv_cost,
            payload,
            shard_count,
            workers,
            snap_seq: AtomicU64::new(0),
            stats: StatCounters::default(),
        }
    }

    /// The shard an object's placement group maps to.
    pub(crate) fn shard_of(&self, object: &str) -> usize {
        self.placement.shard_of(object, self.shard_count)
    }

    /// The current snapshot sequence.
    pub(crate) fn snap_seq(&self) -> u64 {
        self.snap_seq.load(Ordering::Acquire)
    }

    /// Advances the snapshot sequence, returning the new value.
    pub(crate) fn advance_snap_seq(&self) -> u64 {
        self.snap_seq.fetch_add(1, Ordering::AcqRel) + 1
    }
}

/// Atomic operation counters behind [`ExecStats`]. Incremented without
/// any lock so concurrently-applying shard groups never serialize on
/// bookkeeping.
#[derive(Default)]
pub(crate) struct StatCounters {
    transactions: AtomicU64,
    batches: AtomicU64,
    read_ops: AtomicU64,
    shard_fanout_max: AtomicU64,
    shard_concurrency_peak: AtomicU64,
    in_flight_shards: AtomicU64,
    queue_depth_peak: AtomicU64,
    open_submissions: AtomicU64,
}

impl StatCounters {
    pub(crate) fn record_transactions(&self, n: u64) {
        self.transactions.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn record_batch(&self) {
        self.batches.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_read_ops(&self, n: u64) {
        self.read_ops.fetch_add(n, Ordering::Relaxed);
    }

    /// Records how many distinct shards one batch touched.
    pub(crate) fn record_shard_fanout(&self, shards: u64) {
        self.shard_fanout_max.fetch_max(shards, Ordering::Relaxed);
    }

    /// Marks one shard going from idle to holding in-flight work and
    /// updates the concurrency high-water mark.
    pub(crate) fn enter_shard_apply(&self) {
        let now = self.in_flight_shards.fetch_add(1, Ordering::SeqCst) + 1;
        self.shard_concurrency_peak.fetch_max(now, Ordering::SeqCst);
    }

    /// Marks one shard going back to idle.
    pub(crate) fn exit_shard_apply(&self) {
        self.in_flight_shards.fetch_sub(1, Ordering::SeqCst);
    }

    /// Marks one submission issued (not yet reaped) and updates the
    /// queue-depth high-water mark.
    pub(crate) fn enter_submission(&self) {
        let now = self.open_submissions.fetch_add(1, Ordering::SeqCst) + 1;
        self.queue_depth_peak.fetch_max(now, Ordering::SeqCst);
    }

    /// Marks one submission reaped (or abandoned).
    pub(crate) fn exit_submission(&self) {
        self.open_submissions.fetch_sub(1, Ordering::SeqCst);
    }

    pub(crate) fn snapshot(&self) -> ExecStats {
        ExecStats {
            transactions: self.transactions.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            read_ops: self.read_ops.load(Ordering::Relaxed),
            shard_fanout_max: self.shard_fanout_max.load(Ordering::Relaxed),
            shard_concurrency_peak: self.shard_concurrency_peak.load(Ordering::SeqCst),
            queue_depth_peak: self.queue_depth_peak.load(Ordering::SeqCst),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let s = StatCounters::default();
        s.record_batch();
        s.record_transactions(4);
        s.record_read_ops(2);
        s.record_shard_fanout(3);
        s.record_shard_fanout(2); // lower fanout must not regress the max
        let snap = s.snapshot();
        assert_eq!(snap.batches, 1);
        assert_eq!(snap.transactions, 4);
        assert_eq!(snap.read_ops, 2);
        assert_eq!(snap.shard_fanout_max, 3);
    }

    #[test]
    fn concurrency_peak_tracks_high_water() {
        let s = StatCounters::default();
        s.enter_shard_apply();
        s.enter_shard_apply();
        s.exit_shard_apply();
        s.enter_shard_apply();
        s.exit_shard_apply();
        s.exit_shard_apply();
        assert_eq!(s.snapshot().shard_concurrency_peak, 2);
    }
}
