//! The cluster control plane: configuration that is fixed at build
//! time and shared by every shard, plus the lock-free counters.
//!
//! The split matters for scale: [`ControlPlane`] is read-only after
//! construction (placement, cost profiles, resource handles), so shard
//! workers use it without any lock. The only mutable control-plane
//! state — the snapshot sequence and the operation counters — is
//! atomic. Everything that *does* need mutual exclusion (the objects
//! themselves) lives in the per-placement [`crate::shard::Shard`]s.

use crate::cluster::{ExecStats, PayloadMode};
use crate::cost::{ResourceHandles, TestbedProfile};
use crate::fault::{FaultKind, FaultPlane, RetryPolicy};
use crate::placement::PlacementMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use vdisk_kv::CostProfile;

/// Immutable cluster configuration plus the atomic counters. One
/// instance per cluster, shared (via `Arc`) by every handle and every
/// shard worker.
pub(crate) struct ControlPlane {
    pub(crate) placement: PlacementMap,
    pub(crate) handles: ResourceHandles,
    pub(crate) testbed: TestbedProfile,
    pub(crate) kv_cost: CostProfile,
    pub(crate) payload: PayloadMode,
    pub(crate) shard_count: usize,
    /// Whether per-shard worker threads serve submissions (resolved at
    /// build time — see [`crate::ClusterBuilder::concurrent_apply`]).
    /// When false, submissions apply inline in the submitting thread.
    pub(crate) workers: bool,
    /// Suggested client-side metadata cache size in bytes (see
    /// [`crate::ClusterBuilder::meta_cache_bytes`]); advisory for upper
    /// layers, unused inside the store.
    pub(crate) meta_cache_bytes: u64,
    /// Client-side crypto parallelism (see
    /// [`crate::ClusterBuilder::crypto_lanes`]): resolved at build
    /// time, always ≥ 1, and equal to the simulated client-crypto
    /// resource's server count. Advisory for upper layers.
    pub(crate) crypto_lanes: usize,
    /// Cluster-wide self-managed snapshot sequence.
    snap_seq: AtomicU64,
    /// Per-shard write-submission epochs: `write_seqs[s]` advances
    /// every time a write submission touching shard `s` is accepted
    /// (before any of its jobs can apply) and on every snapshot. A
    /// client that captures a shard's epoch before submitting a read
    /// and sees it unchanged after reaping knows **no overwrite or
    /// snapshot was even submitted** to that shard in between — the
    /// validity window client-side metadata caches need, keyed by
    /// submission order rather than wall clock (per-shard FIFO makes
    /// submission order the apply order).
    write_seqs: Vec<AtomicU64>,
    /// The installed fault plane, if any (see
    /// [`crate::ClusterBuilder::fault_plane`]): consulted by every
    /// shard worker before each apply/read attempt.
    pub(crate) faults: Option<Arc<FaultPlane>>,
    /// How shard workers replay attempts that drew a retryable
    /// injected fault (see [`crate::ClusterBuilder::retry_policy`]).
    pub(crate) retry: RetryPolicy,
    pub(crate) stats: StatCounters,
}

impl ControlPlane {
    // One parameter per builder field; a config struct would only
    // mirror `ClusterBuilder` without the defaults.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        placement: PlacementMap,
        handles: ResourceHandles,
        testbed: TestbedProfile,
        kv_cost: CostProfile,
        payload: PayloadMode,
        shard_count: usize,
        workers: bool,
        meta_cache_bytes: u64,
        crypto_lanes: usize,
        initial_snap_seq: u64,
        faults: Option<Arc<FaultPlane>>,
        retry: RetryPolicy,
    ) -> Self {
        ControlPlane {
            placement,
            handles,
            testbed,
            kv_cost,
            payload,
            shard_count,
            workers,
            meta_cache_bytes,
            crypto_lanes,
            // Non-zero when a durable backend reopens a directory that
            // already took snapshots: clone visibility is defined by
            // seqs, so the sequence must continue, not restart.
            snap_seq: AtomicU64::new(initial_snap_seq),
            write_seqs: (0..shard_count).map(|_| AtomicU64::new(0)).collect(),
            faults,
            retry,
            stats: StatCounters::default(),
        }
    }

    /// The fault (if any) governing one apply/read attempt on `shard`
    /// against `object`; `None` on clusters without a fault plane.
    pub(crate) fn fault_for(&self, shard: usize, object: &str) -> Option<FaultKind> {
        self.faults.as_ref()?.fault_for(shard, object)
    }

    /// The shard an object's placement group maps to.
    pub(crate) fn shard_of(&self, object: &str) -> usize {
        self.placement.shard_of(object, self.shard_count)
    }

    /// The current snapshot sequence.
    pub(crate) fn snap_seq(&self) -> u64 {
        self.snap_seq.load(Ordering::Acquire)
    }

    /// Advances the snapshot sequence, returning the new value.
    pub(crate) fn advance_snap_seq(&self) -> u64 {
        self.snap_seq.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// The write-submission epoch of one shard.
    pub(crate) fn shard_write_seq(&self, shard: usize) -> u64 {
        self.write_seqs[shard].load(Ordering::Acquire)
    }

    /// Advances one shard's write-submission epoch. Called while the
    /// submission is being accepted, strictly before any of its jobs
    /// is enqueued, so a reader that still observes the old epoch
    /// afterwards is ordered (per-shard FIFO) before the write.
    pub(crate) fn bump_shard_write_seq(&self, shard: usize) {
        self.write_seqs[shard].fetch_add(1, Ordering::AcqRel);
    }

    /// Advances every shard's epoch — the snapshot case: a snapshot
    /// changes what every subsequent write means (copy-on-write
    /// context), so in-flight cache fills anywhere must be abandoned.
    pub(crate) fn bump_all_write_seqs(&self) {
        for seq in &self.write_seqs {
            seq.fetch_add(1, Ordering::AcqRel);
        }
    }
}

/// Atomic operation counters behind [`ExecStats`]. Incremented without
/// any lock so concurrently-applying shard groups never serialize on
/// bookkeeping.
#[derive(Default)]
pub(crate) struct StatCounters {
    transactions: AtomicU64,
    batches: AtomicU64,
    read_ops: AtomicU64,
    shard_fanout_max: AtomicU64,
    shard_concurrency_peak: AtomicU64,
    in_flight_shards: AtomicU64,
    queue_depth_peak: AtomicU64,
    /// Queue-depth high water since the last
    /// [`StatCounters::take_queue_depth_window_peak`] — a resettable
    /// twin of `queue_depth_peak` so background services (the rekey
    /// driver) can observe *recent* client pressure, not the
    /// cluster-lifetime maximum.
    queue_depth_window_peak: AtomicU64,
    open_submissions: AtomicU64,
    meta_cache_hits: AtomicU64,
    meta_cache_misses: AtomicU64,
    meta_cache_invalidations: AtomicU64,
    meta_cache_write_fills: AtomicU64,
    /// Attempts replayed in the shard workers after a retryable
    /// injected fault (see [`crate::fault::RetryPolicy`]).
    retries: AtomicU64,
}

impl StatCounters {
    pub(crate) fn record_transactions(&self, n: u64) {
        self.transactions.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn record_batch(&self) {
        self.batches.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_read_ops(&self, n: u64) {
        self.read_ops.fetch_add(n, Ordering::Relaxed);
    }

    /// Records how many distinct shards one batch touched.
    pub(crate) fn record_shard_fanout(&self, shards: u64) {
        self.shard_fanout_max.fetch_max(shards, Ordering::Relaxed);
    }

    /// Marks one shard going from idle to holding in-flight work and
    /// updates the concurrency high-water mark.
    pub(crate) fn enter_shard_apply(&self) {
        let now = self.in_flight_shards.fetch_add(1, Ordering::SeqCst) + 1;
        self.shard_concurrency_peak.fetch_max(now, Ordering::SeqCst);
    }

    /// Marks one shard going back to idle.
    pub(crate) fn exit_shard_apply(&self) {
        self.in_flight_shards.fetch_sub(1, Ordering::SeqCst);
    }

    /// Marks one submission issued (not yet reaped) and updates the
    /// queue-depth high-water marks (lifetime and current window).
    pub(crate) fn enter_submission(&self) {
        let now = self.open_submissions.fetch_add(1, Ordering::SeqCst) + 1;
        self.queue_depth_peak.fetch_max(now, Ordering::SeqCst);
        self.queue_depth_window_peak
            .fetch_max(now, Ordering::SeqCst);
    }

    /// Marks one submission reaped (or abandoned).
    pub(crate) fn exit_submission(&self) {
        self.open_submissions.fetch_sub(1, Ordering::SeqCst);
    }

    /// Submissions currently issued and not yet reaped.
    pub(crate) fn open_submissions(&self) -> u64 {
        self.open_submissions.load(Ordering::SeqCst)
    }

    /// Returns the queue-depth high water observed since the previous
    /// call and restarts the window at the *current* depth (open
    /// submissions are still open, so the new window must not start
    /// below them).
    pub(crate) fn take_queue_depth_window_peak(&self) -> u64 {
        let now = self.open_submissions.load(Ordering::SeqCst);
        let peak = self.queue_depth_window_peak.swap(now, Ordering::SeqCst);
        peak.max(now)
    }

    /// Accumulates client-side metadata-cache observations (see
    /// [`crate::Cluster::record_meta_cache`]).
    pub(crate) fn record_meta_cache(&self, hits: u64, misses: u64, invalidations: u64) {
        if hits > 0 {
            self.meta_cache_hits.fetch_add(hits, Ordering::Relaxed);
        }
        if misses > 0 {
            self.meta_cache_misses.fetch_add(misses, Ordering::Relaxed);
        }
        if invalidations > 0 {
            self.meta_cache_invalidations
                .fetch_add(invalidations, Ordering::Relaxed);
        }
    }

    /// Accumulates attempts replayed after a retryable injected fault.
    pub(crate) fn record_retries(&self, n: u64) {
        if n > 0 {
            self.retries.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Accumulates write-through cache fills (see
    /// [`crate::Cluster::record_meta_cache_write_fills`]).
    pub(crate) fn record_meta_cache_write_fills(&self, fills: u64) {
        if fills > 0 {
            self.meta_cache_write_fills
                .fetch_add(fills, Ordering::Relaxed);
        }
    }

    pub(crate) fn snapshot(&self) -> ExecStats {
        ExecStats {
            transactions: self.transactions.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            read_ops: self.read_ops.load(Ordering::Relaxed),
            shard_fanout_max: self.shard_fanout_max.load(Ordering::Relaxed),
            shard_concurrency_peak: self.shard_concurrency_peak.load(Ordering::SeqCst),
            queue_depth_peak: self.queue_depth_peak.load(Ordering::SeqCst),
            meta_cache_hits: self.meta_cache_hits.load(Ordering::Relaxed),
            meta_cache_misses: self.meta_cache_misses.load(Ordering::Relaxed),
            meta_cache_invalidations: self.meta_cache_invalidations.load(Ordering::Relaxed),
            meta_cache_write_fills: self.meta_cache_write_fills.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let s = StatCounters::default();
        s.record_batch();
        s.record_transactions(4);
        s.record_read_ops(2);
        s.record_shard_fanout(3);
        s.record_shard_fanout(2); // lower fanout must not regress the max
        let snap = s.snapshot();
        assert_eq!(snap.batches, 1);
        assert_eq!(snap.transactions, 4);
        assert_eq!(snap.read_ops, 2);
        assert_eq!(snap.shard_fanout_max, 3);
    }

    #[test]
    fn concurrency_peak_tracks_high_water() {
        let s = StatCounters::default();
        s.enter_shard_apply();
        s.enter_shard_apply();
        s.exit_shard_apply();
        s.enter_shard_apply();
        s.exit_shard_apply();
        s.exit_shard_apply();
        assert_eq!(s.snapshot().shard_concurrency_peak, 2);
    }
}
