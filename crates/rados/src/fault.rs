//! Deterministic fault injection and the retry policy that answers it.
//!
//! A [`FaultPlane`] is configured on [`crate::ClusterBuilder`] from a
//! [`FaultConfig`] and threaded to every shard worker and (on the
//! durable backend) into the commit path. All decisions are pure
//! functions of the seed and per-shard decision counters, so a given
//! configuration injects the same faults at the same points on every
//! run — the property the CI fault matrix relies on to make failures
//! reproducible from a seed.
//!
//! Three fault classes exist:
//!
//! - **Transient** errors ([`FaultKind::Transient`]): injected before a
//!   job's transaction applies or read serves, so replaying the attempt
//!   is idempotent. The shard workers retry these in place under the
//!   cluster's [`RetryPolicy`]; only exhaustion surfaces to the client.
//! - **Persistent** errors ([`FaultKind::Persistent`]): never retried,
//!   surfaced immediately — the "this disk is gone" class.
//! - **Crashes** ([`FaultKind::Crash`]): the Nth durable commit stops
//!   the world *between the temp-file write and the rename*, leaving a
//!   genuinely torn transaction on disk (some replicas renamed, some
//!   still `.tmp`). Every subsequent operation on the crashed cluster
//!   fails fast, modelling a dead process; recovery is reopening the
//!   directory with a fresh cluster.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// The class of an injected fault (see the [module docs](self)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Goes away on retry; the shard workers replay the attempt.
    Transient,
    /// Never goes away; surfaces immediately as a typed error.
    Persistent,
    /// The cluster has crashed (possibly mid-commit); everything fails.
    Crash,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::Transient => write!(f, "transient"),
            FaultKind::Persistent => write!(f, "persistent"),
            FaultKind::Crash => write!(f, "crash"),
        }
    }
}

/// Configures a [`FaultPlane`] (see
/// [`crate::ClusterBuilder::fault_plane`]). The default injects
/// nothing; switch individual faults on with the builder methods.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    seed: u64,
    transient_rate: f64,
    max_consecutive: u32,
    delay_rate: f64,
    delay: Duration,
    crash_at_commit: Option<u64>,
    fail_objects: Option<(String, FaultKind)>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::new(0)
    }
}

impl FaultConfig {
    /// A plane that injects nothing yet, seeded for determinism.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FaultConfig {
            seed,
            transient_rate: 0.0,
            max_consecutive: 2,
            delay_rate: 0.0,
            delay: Duration::from_micros(200),
            crash_at_commit: None,
            fail_objects: None,
        }
    }

    /// Probability (0..=1) that any single apply/read **attempt**
    /// draws a transient error. Retried attempts draw again, so a
    /// retry can fail again — up to [`FaultConfig::max_consecutive`]
    /// times in a row per shard.
    #[must_use]
    pub fn transient_rate(mut self, rate: f64) -> Self {
        self.transient_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Cap on consecutive transient injections per shard (default 2).
    /// Keeping this below the retry budget guarantees rate-injected
    /// transients never surface to clients — they exist to exercise
    /// the replay path, not to fail runs probabilistically.
    #[must_use]
    pub fn max_consecutive(mut self, n: u32) -> Self {
        self.max_consecutive = n;
        self
    }

    /// Probability (0..=1) that a shard worker sleeps for `delay`
    /// before serving a job — a delayed completion. Per-shard FIFO is
    /// preserved (the whole queue behind the job waits), so delays
    /// reorder nothing; they exercise the reactor's parking paths.
    #[must_use]
    pub fn delay(mut self, rate: f64, delay: Duration) -> Self {
        self.delay_rate = rate.clamp(0.0, 1.0);
        self.delay = delay;
        self
    }

    /// Crash the cluster at the `n`th durable replica commit (0-based,
    /// cluster-wide): that commit writes and syncs its temp file but
    /// never renames it, and every later operation fails fast with
    /// [`FaultKind::Crash`]. Only meaningful on the file backend — the
    /// in-memory store has no commit point to tear.
    #[must_use]
    pub fn crash_at_commit(mut self, n: u64) -> Self {
        self.crash_at_commit = Some(n);
        self
    }

    /// Dooms every apply/read whose object name contains `substring`
    /// to draw `kind` on each attempt. With [`FaultKind::Transient`]
    /// this exhausts the retry budget deterministically (the
    /// exhaustion-surfacing path); with [`FaultKind::Persistent`] it
    /// fails immediately.
    #[must_use]
    pub fn fail_objects(mut self, substring: impl Into<String>, kind: FaultKind) -> Self {
        self.fail_objects = Some((substring.into(), kind));
        self
    }
}

/// How submissions that drew a retryable fault are replayed (see
/// [`crate::ClusterBuilder::retry_policy`]). Retries happen **in the
/// shard worker, before the transaction applies**, so a replayed
/// attempt is idempotent by construction: nothing of the failed
/// attempt ever touched an object, and per-shard FIFO order is
/// untouched because the job never leaves the worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    max_retries: u32,
    backoff: Duration,
    backoff_cap: Duration,
}

impl Default for RetryPolicy {
    /// Four replays with 50 µs exponential backoff, capped at 2 ms.
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            backoff: Duration::from_micros(50),
            backoff_cap: Duration::from_millis(2),
        }
    }
}

impl RetryPolicy {
    /// No replays: every injected fault surfaces to the client.
    #[must_use]
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            backoff: Duration::ZERO,
            backoff_cap: Duration::ZERO,
        }
    }

    /// Maximum replays per attempt (default 4).
    #[must_use]
    pub fn max_retries(mut self, n: u32) -> Self {
        self.max_retries = n;
        self
    }

    /// First-retry backoff (default 50 µs), doubled per retry up to
    /// `cap` (default 2 ms).
    #[must_use]
    pub fn backoff(mut self, initial: Duration, cap: Duration) -> Self {
        self.backoff = initial;
        self.backoff_cap = cap;
        self
    }

    /// The replay budget.
    #[must_use]
    pub fn budget(&self) -> u32 {
        self.max_retries
    }

    /// The sleep before retry number `attempt` (1-based): exponential
    /// doubling from the initial backoff, capped.
    #[must_use]
    pub fn backoff_for(&self, attempt: u32) -> Duration {
        let factor = 1u32 << attempt.saturating_sub(1).min(16);
        (self.backoff * factor).min(self.backoff_cap)
    }
}

/// The installed fault plane: the seeded decision engine plus its
/// observability counters. One per cluster, shared by every shard
/// worker and (file backend) every shard store.
#[derive(Debug)]
pub struct FaultPlane {
    config: FaultConfig,
    /// Per-shard decision counters: each apply/read attempt and each
    /// job-delay decision consumes one draw, so a shard's fault
    /// sequence is a deterministic function of (seed, shard, attempt
    /// ordinal) regardless of cross-shard scheduling.
    draws: Vec<AtomicU64>,
    /// Per-shard consecutive-transient counters backing
    /// [`FaultConfig::max_consecutive`].
    streak: Vec<AtomicU64>,
    /// Cluster-wide durable-commit ordinal (file backend only).
    commits: AtomicU64,
    crashed: AtomicBool,
    transients: AtomicU64,
    delays: AtomicU64,
}

impl FaultPlane {
    pub(crate) fn new(config: FaultConfig, shard_count: usize) -> Self {
        FaultPlane {
            config,
            draws: (0..shard_count).map(|_| AtomicU64::new(0)).collect(),
            streak: (0..shard_count).map(|_| AtomicU64::new(0)).collect(),
            commits: AtomicU64::new(0),
            crashed: AtomicBool::new(false),
            transients: AtomicU64::new(0),
            delays: AtomicU64::new(0),
        }
    }

    /// True once an injected crash has latched: the cluster is "dead"
    /// and every subsequent operation fails fast.
    #[must_use]
    pub fn crashed(&self) -> bool {
        self.crashed.load(Ordering::Acquire)
    }

    /// Transient faults injected so far (each forces one replay or, on
    /// budget exhaustion, one surfaced error).
    #[must_use]
    pub fn injected_transients(&self) -> u64 {
        self.transients.load(Ordering::Relaxed)
    }

    /// Delayed completions injected so far.
    #[must_use]
    pub fn injected_delays(&self) -> u64 {
        self.delays.load(Ordering::Relaxed)
    }

    /// One seeded pseudo-random draw for `shard`.
    fn draw(&self, shard: usize) -> u64 {
        let n = self.draws[shard].fetch_add(1, Ordering::Relaxed);
        splitmix64(
            self.config
                .seed
                .wrapping_add((shard as u64).wrapping_mul(0xA076_1D64_78BD_642F))
                .wrapping_add(n.wrapping_mul(0xE703_7ED1_A0B4_28DB)),
        )
    }

    fn draw_hits(&self, shard: usize, rate: f64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        // Map the draw onto [0, 1): bit-exact and branch-free, so the
        // decision stream is identical across hosts.
        let unit = (self.draw(shard) >> 11) as f64 / (1u64 << 53) as f64;
        unit < rate
    }

    /// The fault (if any) governing one apply/read attempt on `shard`
    /// against `object`. Called **before** the attempt touches any
    /// state, so an injected failure is replayable.
    pub(crate) fn fault_for(&self, shard: usize, object: &str) -> Option<FaultKind> {
        if self.crashed() {
            return Some(FaultKind::Crash);
        }
        if let Some((substring, kind)) = &self.config.fail_objects {
            if object.contains(substring.as_str()) {
                if *kind == FaultKind::Transient {
                    self.transients.fetch_add(1, Ordering::Relaxed);
                }
                return Some(*kind);
            }
        }
        if self.draw_hits(shard, self.config.transient_rate) {
            // Cap the streak so rate-injected transients never outlast
            // the retry budget (see FaultConfig::max_consecutive).
            let streak = self.streak[shard].fetch_add(1, Ordering::Relaxed);
            if streak < u64::from(self.config.max_consecutive) {
                self.transients.fetch_add(1, Ordering::Relaxed);
                return Some(FaultKind::Transient);
            }
        }
        self.streak[shard].store(0, Ordering::Relaxed);
        None
    }

    /// The sleep (if any) a shard worker serves before its next job —
    /// an injected delayed completion.
    pub(crate) fn job_delay(&self, shard: usize) -> Option<Duration> {
        if self.crashed() {
            return None;
        }
        if self.draw_hits(shard, self.config.delay_rate) {
            self.delays.fetch_add(1, Ordering::Relaxed);
            return Some(self.config.delay);
        }
        None
    }

    /// Called by the durable backend once per replica commit, **after**
    /// the temp file is written and synced but **before** the rename.
    /// Returns `true` when this commit is the configured crash point:
    /// the caller must skip the rename (leaving the torn `.tmp` on
    /// disk) and fail; the crash latches for every later operation.
    pub(crate) fn commit_crashes(&self) -> bool {
        let Some(at) = self.config.crash_at_commit else {
            return false;
        };
        if self.crashed() {
            return true;
        }
        let n = self.commits.fetch_add(1, Ordering::AcqRel);
        if n == at {
            self.crashed.store(true, Ordering::Release);
            return true;
        }
        false
    }
}

/// `splitmix64`: the classic 64-bit finalizer — tiny, stateless, and
/// well-distributed, which is all a deterministic decision stream
/// needs.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_stream_is_deterministic() {
        let a = FaultPlane::new(FaultConfig::new(42).transient_rate(0.3), 4);
        let b = FaultPlane::new(FaultConfig::new(42).transient_rate(0.3), 4);
        for shard in 0..4 {
            for _ in 0..64 {
                assert_eq!(a.fault_for(shard, "obj"), b.fault_for(shard, "obj"));
            }
        }
        assert_eq!(a.injected_transients(), b.injected_transients());
        assert!(
            a.injected_transients() > 0,
            "a 30% rate must fire in 256 draws"
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlane::new(FaultConfig::new(1).transient_rate(0.5), 1);
        let b = FaultPlane::new(FaultConfig::new(2).transient_rate(0.5), 1);
        let stream_a: Vec<_> = (0..64).map(|_| a.fault_for(0, "o")).collect();
        let stream_b: Vec<_> = (0..64).map(|_| b.fault_for(0, "o")).collect();
        assert_ne!(stream_a, stream_b);
    }

    #[test]
    fn streak_is_capped() {
        let plane = FaultPlane::new(
            FaultConfig::new(7).transient_rate(1.0).max_consecutive(2),
            1,
        );
        let stream: Vec<bool> = (0..12).map(|_| plane.fault_for(0, "o").is_some()).collect();
        // Rate 1.0 would fail forever; the cap forces a pass after
        // every `max_consecutive` injections.
        assert_eq!(
            stream,
            vec![true, true, false, true, true, false, true, true, false, true, true, false]
        );
    }

    #[test]
    fn doomed_objects_always_fail_and_others_never() {
        let plane = FaultPlane::new(
            FaultConfig::new(0).fail_objects("victim", FaultKind::Persistent),
            2,
        );
        for _ in 0..32 {
            assert_eq!(
                plane.fault_for(0, "rbd_data.victim.0000"),
                Some(FaultKind::Persistent)
            );
            assert_eq!(plane.fault_for(1, "rbd_data.other.0000"), None);
        }
    }

    #[test]
    fn crash_latches_at_the_configured_commit() {
        let plane = FaultPlane::new(FaultConfig::new(0).crash_at_commit(2), 1);
        assert!(!plane.commit_crashes());
        assert!(!plane.commit_crashes());
        assert!(plane.commit_crashes(), "commit #2 (0-based) crashes");
        assert!(plane.crashed());
        assert!(plane.commit_crashes(), "latched: everything after fails");
        assert_eq!(
            plane.fault_for(0, "any"),
            Some(FaultKind::Crash),
            "applies fail fast once crashed"
        );
    }

    #[test]
    fn retry_backoff_doubles_and_caps() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_for(1), Duration::from_micros(50));
        assert_eq!(p.backoff_for(2), Duration::from_micros(100));
        assert_eq!(p.backoff_for(3), Duration::from_micros(200));
        assert_eq!(p.backoff_for(16), Duration::from_millis(2), "capped");
        assert_eq!(RetryPolicy::none().budget(), 0);
    }
}
