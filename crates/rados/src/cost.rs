//! The testbed cost model: resources calibrated to the paper's cluster
//! (§3.2) and the plan builders that compile RADOS operations into
//! [`vdisk_sim::Plan`]s.
//!
//! Calibration sources, from the paper:
//! - 3 OSD nodes, Xeon E5-2650 v4, 9 × 1.8 TB NVMe each;
//! - 100 Gb/s links but ~13 Gb/s measured per iperf stream (§3.2), so a
//!   per-OSD stream moves ≈ 1.6 GB/s and a multi-stream client NIC
//!   sustains ≈ 2.8 GB/s;
//! - 3-way replication (client → primary → 2 replicas);
//! - fio QD 32, one client.
//!
//! Absolute bandwidths need only land in the right regime; the
//! *relative* overheads of the IV layouts — the paper's actual result —
//! emerge from sector counts, read-modify-writes and KV work, not from
//! these constants.

use crate::placement::OsdId;
use vdisk_sim::{Plan, ResourceId, ResourceSpec, SimDuration, Simulator};

/// Hardware constants of the simulated testbed.
#[derive(Debug, Clone)]
pub struct TestbedProfile {
    /// Client NIC transmit rate (bytes/s), aggregate over streams.
    pub client_nic_tx: f64,
    /// Client NIC receive rate (bytes/s).
    pub client_nic_rx: f64,
    /// Per-message NIC cost.
    pub nic_per_op: SimDuration,
    /// One network stream to/from an OSD (bytes/s) — the ~13 Gb/s
    /// iperf figure.
    pub link_rate: f64,
    /// Per-message link cost (propagation + framing).
    pub link_per_op: SimDuration,
    /// OSD request-processing cost per op.
    pub osd_cpu_per_op: SimDuration,
    /// OSD worker threads.
    pub osd_cpu_servers: usize,
    /// Per-NVMe-channel read throughput (bytes/s).
    pub disk_read_rate: f64,
    /// Per-NVMe-channel write throughput (bytes/s).
    pub disk_write_rate: f64,
    /// Per-read-op disk latency.
    pub disk_read_per_op: SimDuration,
    /// Per-write-op disk latency (includes transaction commit).
    pub disk_write_per_op: SimDuration,
    /// Per-op latency of the deferred (WAL-backed) small-write path
    /// BlueStore uses for sub-block writes.
    pub disk_deferred_per_op: SimDuration,
    /// Writes at or below this size take the deferred path and skip
    /// read-modify-write (the journal absorbs them).
    pub deferred_write_threshold: u64,
    /// Per-batch latency of an OMAP WAL commit (RocksDB group commit).
    pub kv_wal_per_op: SimDuration,
    /// OMAP WAL append bandwidth (bytes/s).
    pub kv_wal_rate: f64,
    /// NVMe channels per OSD (the paper's nodes have 9 disks).
    pub disk_servers: usize,
    /// Concurrent OMAP (RocksDB) engine threads per OSD.
    pub kv_servers: usize,
    /// Client-side encryption throughput (bytes/s per thread).
    pub crypto_rate: f64,
    /// Client crypto worker threads.
    pub crypto_servers: usize,
    /// Per-IO crypto setup cost.
    pub crypto_per_op: SimDuration,
    /// Acknowledgement round-trip tail.
    pub ack_delay: SimDuration,
    /// Fixed protocol header bytes added to each message.
    pub msg_header_bytes: u64,
}

impl Default for TestbedProfile {
    fn default() -> Self {
        TestbedProfile {
            client_nic_tx: 2.70e9,
            client_nic_rx: 2.85e9,
            nic_per_op: SimDuration::from_micros(6),
            link_rate: 1.55e9,
            link_per_op: SimDuration::from_micros(12),
            osd_cpu_per_op: SimDuration::from_micros(130),
            osd_cpu_servers: 8,
            disk_read_rate: 1.10e9,
            disk_write_rate: 0.30e9,
            disk_read_per_op: SimDuration::from_micros(50),
            disk_write_per_op: SimDuration::from_micros(270),
            disk_deferred_per_op: SimDuration::from_micros(60),
            deferred_write_threshold: 2048,
            kv_wal_per_op: SimDuration::from_micros(20),
            kv_wal_rate: 0.40e9,
            disk_servers: 9,
            kv_servers: 1,
            crypto_rate: 1.70e9,
            crypto_servers: 4,
            crypto_per_op: SimDuration::from_micros(5),
            ack_delay: SimDuration::from_micros(25),
            msg_header_bytes: 512,
        }
    }
}

/// Resource ids of an installed testbed.
#[derive(Debug, Clone)]
pub struct ResourceHandles {
    /// Client NIC, transmit direction.
    pub client_nic_tx: ResourceId,
    /// Client NIC, receive direction.
    pub client_nic_rx: ResourceId,
    /// Client-side encryption workers.
    pub client_crypto: ResourceId,
    /// Per-OSD network stream.
    pub osd_link: Vec<ResourceId>,
    /// Per-OSD request CPUs.
    pub osd_cpu: Vec<ResourceId>,
    /// Per-OSD NVMe array (reads and writes contend on the same
    /// device channels).
    pub osd_disk: Vec<ResourceId>,
    /// Per-OSD OMAP (KV) engine.
    pub osd_kv: Vec<ResourceId>,
}

impl TestbedProfile {
    /// Registers the testbed's resources with a simulator.
    #[must_use]
    pub fn install(&self, sim: &mut Simulator, osd_count: usize) -> ResourceHandles {
        let client_nic_tx = sim.add_resource(ResourceSpec::pipe(
            "client-nic-tx",
            self.client_nic_tx,
            self.nic_per_op,
        ));
        let client_nic_rx = sim.add_resource(ResourceSpec::pipe(
            "client-nic-rx",
            self.client_nic_rx,
            self.nic_per_op,
        ));
        let client_crypto = sim.add_resource(ResourceSpec::servers(
            "client-crypto",
            self.crypto_servers,
            self.crypto_rate,
            self.crypto_per_op,
        ));
        let mut osd_link = Vec::new();
        let mut osd_cpu = Vec::new();
        let mut osd_disk = Vec::new();
        let mut osd_kv = Vec::new();
        for i in 0..osd_count {
            osd_link.push(sim.add_resource(ResourceSpec::pipe(
                &format!("osd{i}-link"),
                self.link_rate,
                self.link_per_op,
            )));
            osd_cpu.push(sim.add_resource(ResourceSpec::latency_only(
                &format!("osd{i}-cpu"),
                self.osd_cpu_servers,
                self.osd_cpu_per_op,
            )));
            // A single per-OSD NVMe array; service times are computed
            // per op type (read/write/deferred) and charged as `Busy`.
            osd_disk.push(sim.add_resource(ResourceSpec::latency_only(
                &format!("osd{i}-disk"),
                self.disk_servers,
                SimDuration::ZERO,
            )));
            osd_kv.push(sim.add_resource(ResourceSpec::latency_only(
                &format!("osd{i}-kv"),
                self.kv_servers,
                SimDuration::ZERO,
            )));
        }
        ResourceHandles {
            client_nic_tx,
            client_nic_rx,
            client_crypto,
            osd_link,
            osd_cpu,
            osd_disk,
            osd_kv,
        }
    }

    /// Disk service time of a full-path read of `bytes`.
    #[must_use]
    pub fn disk_read_time(&self, bytes: u64) -> SimDuration {
        self.disk_read_per_op + SimDuration::from_secs_f64(bytes as f64 / self.disk_read_rate)
    }

    /// Disk service time of a full-path write of `bytes`.
    #[must_use]
    pub fn disk_write_time(&self, bytes: u64) -> SimDuration {
        self.disk_write_per_op + SimDuration::from_secs_f64(bytes as f64 / self.disk_write_rate)
    }

    /// Disk service time of a deferred (journaled) small write.
    #[must_use]
    pub fn disk_deferred_time(&self, bytes: u64) -> SimDuration {
        self.disk_deferred_per_op + SimDuration::from_secs_f64(bytes as f64 / self.disk_write_rate)
    }

    /// Disk service time of an OMAP WAL commit of `bytes`.
    #[must_use]
    pub fn kv_wal_time(&self, bytes: u64) -> SimDuration {
        self.kv_wal_per_op + SimDuration::from_secs_f64(bytes as f64 / self.kv_wal_rate)
    }
}

/// Physical work one OSD performs for a transaction or read.
#[derive(Debug, Clone, Default)]
pub struct OsdWork {
    /// Read ops forced by read-modify-write, as (ops, total bytes).
    pub rmw_reads: (u64, u64),
    /// Bytes of each full-path disk write op.
    pub disk_writes: Vec<u64>,
    /// Bytes of each deferred (journaled) small write op.
    pub deferred_writes: Vec<u64>,
    /// Bytes of each disk read op (read path).
    pub disk_reads: Vec<u64>,
    /// Time the OMAP engine is busy for this op.
    pub kv_time: SimDuration,
    /// OMAP WAL bytes committed (charged to the disk).
    pub kv_wal_bytes: u64,
}

impl OsdWork {
    fn disk_plan(&self, handles: &ResourceHandles, profile: &TestbedProfile, osd: OsdId) -> Plan {
        let disk = handles.osd_disk[osd.0];
        let kv_res = handles.osd_kv[osd.0];

        let mut rmw = Vec::new();
        let (rmw_ops, rmw_bytes) = self.rmw_reads;
        if let Some(per) = rmw_bytes.checked_div(rmw_ops) {
            for _ in 0..rmw_ops {
                rmw.push(Plan::busy(disk, profile.disk_read_time(per)));
            }
        }
        let reads = Plan::par(
            self.disk_reads
                .iter()
                .map(|&bytes| Plan::busy(disk, profile.disk_read_time(bytes))),
        );
        let writes = Plan::seq(
            self.disk_writes
                .iter()
                .map(|&bytes| Plan::busy(disk, profile.disk_write_time(bytes)))
                .chain(
                    self.deferred_writes
                        .iter()
                        .map(|&bytes| Plan::busy(disk, profile.disk_deferred_time(bytes))),
                ),
        );
        let kv = if self.kv_time == SimDuration::ZERO && self.kv_wal_bytes == 0 {
            Plan::Noop
        } else {
            // The KV engine works while its WAL commit rides the disk.
            Plan::par([
                Plan::busy(kv_res, self.kv_time),
                Plan::busy(disk, profile.kv_wal_time(self.kv_wal_bytes)),
            ])
        };
        // RMW reads gate the writes; the KV engine and plain reads run
        // beside the data path.
        Plan::par([Plan::seq([Plan::par(rmw), writes]), reads, kv])
    }
}

/// Builds the cost plan of a replicated write.
///
/// Shape: client NIC → primary link → primary CPU → in parallel
/// {primary disk work; for each replica: link → CPU → disk work} →
/// ack.
#[must_use]
pub fn write_plan(
    handles: &ResourceHandles,
    profile: &TestbedProfile,
    payload_bytes: u64,
    acting: &[OsdId],
    work: &[OsdWork],
) -> Plan {
    assert_eq!(acting.len(), work.len(), "one work item per acting OSD");
    let msg = payload_bytes + profile.msg_header_bytes;
    let primary = acting[0];

    let mut fanout: Vec<Plan> = Vec::with_capacity(acting.len());
    fanout.push(work[0].disk_plan(handles, profile, primary));
    for (osd, w) in acting.iter().zip(work.iter()).skip(1) {
        fanout.push(Plan::seq([
            Plan::op(handles.osd_link[osd.0], msg),
            Plan::op(handles.osd_cpu[osd.0], 0),
            w.disk_plan(handles, profile, *osd),
        ]));
    }

    Plan::seq([
        Plan::op(handles.client_nic_tx, msg),
        Plan::op(handles.osd_link[primary.0], msg),
        Plan::op(handles.osd_cpu[primary.0], 0),
        Plan::par(fanout),
        Plan::delay(profile.ack_delay),
    ])
}

/// Builds the cost plan of a read served by the primary.
#[must_use]
pub fn read_plan(
    handles: &ResourceHandles,
    profile: &TestbedProfile,
    primary: OsdId,
    response_bytes: u64,
    work: &OsdWork,
) -> Plan {
    let req = profile.msg_header_bytes;
    let resp = response_bytes + profile.msg_header_bytes;
    Plan::seq([
        Plan::op(handles.client_nic_tx, req),
        Plan::op(handles.osd_link[primary.0], req),
        Plan::op(handles.osd_cpu[primary.0], 0),
        work.disk_plan(handles, profile, primary),
        Plan::op(handles.osd_link[primary.0], resp),
        Plan::op(handles.client_nic_rx, resp),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Simulator, ResourceHandles, TestbedProfile) {
        let profile = TestbedProfile::default();
        let mut sim = Simulator::new();
        let handles = profile.install(&mut sim, 3);
        (sim, handles, profile)
    }

    #[test]
    fn install_registers_all_resources() {
        let (sim, handles, _) = setup();
        assert_eq!(handles.osd_link.len(), 3);
        assert_eq!(handles.osd_kv.len(), 3);
        assert_eq!(sim.spec(handles.client_crypto).servers, 4);
        assert_eq!(sim.spec(handles.osd_disk[0]).servers, 9);
    }

    #[test]
    fn write_plan_touches_every_replica() {
        let (mut sim, handles, profile) = setup();
        let acting = vec![OsdId(0), OsdId(1), OsdId(2)];
        let work: Vec<OsdWork> = (0..3)
            .map(|_| OsdWork {
                disk_writes: vec![4096],
                ..OsdWork::default()
            })
            .collect();
        let plan = write_plan(&handles, &profile, 4096, &acting, &work);
        for osd in 0..3 {
            assert_eq!(
                plan.op_count_on(handles.osd_disk[osd]),
                1,
                "osd {osd} must take one disk write"
            );
        }
        // Replicas get the payload over their links; the primary's link
        // carries it once from the client.
        assert!(plan.bytes_on(handles.osd_link[1]) >= 4096);
        let done = sim.execute(&plan, vdisk_sim::SimTime::ZERO);
        assert!(done.as_nanos() > 0);
    }

    #[test]
    fn replication_makes_writes_slower_than_single_copy() {
        let (mut sim, handles, profile) = setup();
        let single = write_plan(
            &handles,
            &profile,
            1 << 20,
            &[OsdId(0)],
            &[OsdWork {
                disk_writes: vec![1 << 20],
                ..OsdWork::default()
            }],
        );
        let t1 = sim.execute(&single, vdisk_sim::SimTime::ZERO);
        sim.reset();
        let triple_work: Vec<OsdWork> = (0..3)
            .map(|_| OsdWork {
                disk_writes: vec![1 << 20],
                ..OsdWork::default()
            })
            .collect();
        let triple = write_plan(
            &handles,
            &profile,
            1 << 20,
            &[OsdId(0), OsdId(1), OsdId(2)],
            &triple_work,
        );
        let t3 = sim.execute(&triple, vdisk_sim::SimTime::ZERO);
        assert!(t3 > t1, "replication must add latency: {t1:?} vs {t3:?}");
    }

    #[test]
    fn rmw_reads_gate_disk_writes() {
        let (mut sim, handles, profile) = setup();
        let no_rmw = write_plan(
            &handles,
            &profile,
            4096,
            &[OsdId(0)],
            &[OsdWork {
                disk_writes: vec![4096],
                ..OsdWork::default()
            }],
        );
        let t_plain = sim.execute(&no_rmw, vdisk_sim::SimTime::ZERO);
        sim.reset();
        let with_rmw = write_plan(
            &handles,
            &profile,
            4096,
            &[OsdId(0)],
            &[OsdWork {
                rmw_reads: (2, 8192),
                disk_writes: vec![12288],
                ..OsdWork::default()
            }],
        );
        let t_rmw = sim.execute(&with_rmw, vdisk_sim::SimTime::ZERO);
        assert!(
            t_rmw.as_nanos() > t_plain.as_nanos() + 50_000,
            "RMW must add at least a disk read: {t_plain:?} vs {t_rmw:?}"
        );
    }

    #[test]
    fn read_plan_returns_payload_over_rx_nic() {
        let (mut sim, handles, profile) = setup();
        let plan = read_plan(
            &handles,
            &profile,
            OsdId(1),
            65536,
            &OsdWork {
                disk_reads: vec![65536],
                ..OsdWork::default()
            },
        );
        assert!(plan.bytes_on(handles.client_nic_rx) >= 65536);
        assert_eq!(plan.op_count_on(handles.osd_disk[1]), 1);
        assert_eq!(plan.op_count_on(handles.osd_disk[0]), 0);
        let done = sim.execute(&plan, vdisk_sim::SimTime::ZERO);
        assert!(done.as_nanos() > 0);
    }

    #[test]
    fn kv_busy_time_charged_on_kv_resource() {
        let (_, handles, profile) = setup();
        let plan = write_plan(
            &handles,
            &profile,
            64,
            &[OsdId(2)],
            &[OsdWork {
                kv_time: SimDuration::from_micros(100),
                ..OsdWork::default()
            }],
        );
        assert_eq!(plan.op_count_on(handles.osd_kv[2]), 1);
    }
}
