//! CRUSH-like deterministic placement: object name → placement group →
//! ordered set of OSDs (primary first).
//!
//! Real Ceph uses CRUSH with straw2 buckets; we reproduce its two
//! essential properties — determinism (any client computes the same
//! mapping with no directory lookup) and uniformity (objects spread
//! evenly over PGs and OSDs).

use std::hash::Hasher;

/// Identifies an OSD (index into the cluster's OSD list).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OsdId(pub usize);

/// The placement function.
#[derive(Debug, Clone)]
pub struct PlacementMap {
    osd_count: usize,
    replicas: usize,
    pg_count: u64,
}

fn stable_hash(parts: &[&[u8]]) -> u64 {
    // FNV-1a: stable across processes and platforms (unlike
    // `DefaultHasher`, whose keys are unspecified).
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for &b in *part {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Separator to avoid ambiguity between part boundaries.
        h ^= 0xff;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl PlacementMap {
    /// Creates a placement map.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is zero or exceeds `osd_count`, or if
    /// `pg_count` is zero.
    #[must_use]
    pub fn new(osd_count: usize, replicas: usize, pg_count: u64) -> Self {
        assert!(replicas >= 1, "need at least one replica");
        assert!(
            replicas <= osd_count,
            "cannot place {replicas} replicas on {osd_count} OSDs"
        );
        assert!(pg_count >= 1, "need at least one placement group");
        PlacementMap {
            osd_count,
            replicas,
            pg_count,
        }
    }

    /// Placement group of an object.
    #[must_use]
    pub fn pg_of(&self, object: &str) -> u64 {
        stable_hash(&[object.as_bytes()]) % self.pg_count
    }

    /// The acting set for an object: `replicas` distinct OSDs, primary
    /// first. Straw2-style: every OSD draws a hash lot per PG; the
    /// highest lots win.
    #[must_use]
    pub fn acting_set(&self, object: &str) -> Vec<OsdId> {
        let pg = self.pg_of(object);
        let mut lots: Vec<(u64, usize)> = (0..self.osd_count)
            .map(|osd| (stable_hash(&[&pg.to_le_bytes(), &osd.to_le_bytes()]), osd))
            .collect();
        lots.sort_unstable_by(|a, b| b.cmp(a));
        lots.truncate(self.replicas);
        lots.into_iter().map(|(_, osd)| OsdId(osd)).collect()
    }

    /// The primary OSD for an object.
    #[must_use]
    pub fn primary(&self, object: &str) -> OsdId {
        self.acting_set(object)[0]
    }

    /// The state shard an object belongs to, for a cluster split into
    /// `shard_count` shards. Derived from the placement group so that
    /// an object's entire acting set (primary and replicas) lands in
    /// one shard and the mapping stays deterministic across clients.
    ///
    /// # Panics
    ///
    /// Panics if `shard_count` is zero.
    #[must_use]
    pub fn shard_of(&self, object: &str, shard_count: usize) -> usize {
        assert!(shard_count >= 1, "need at least one shard");
        (self.pg_of(object) % shard_count as u64) as usize
    }

    /// Number of replicas per object.
    #[must_use]
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Number of OSDs.
    #[must_use]
    pub fn osd_count(&self) -> usize {
        self.osd_count
    }
}

// Silence the unused-import lint while keeping the std Hasher trait in
// scope for future swap-in of other hash functions.
#[allow(unused)]
fn _assert_hasher_available<H: Hasher>(_: H) {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn deterministic() {
        let p = PlacementMap::new(3, 3, 128);
        for name in ["a", "rbd_data.x.0000000000000001", "zzz"] {
            assert_eq!(p.acting_set(name), p.acting_set(name));
        }
    }

    #[test]
    fn acting_set_is_distinct_and_sized() {
        let p = PlacementMap::new(5, 3, 128);
        for i in 0..200 {
            let set = p.acting_set(&format!("obj{i}"));
            assert_eq!(set.len(), 3);
            let mut sorted = set.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "duplicate OSD in acting set");
        }
    }

    #[test]
    fn three_osds_three_replicas_uses_everyone() {
        let p = PlacementMap::new(3, 3, 64);
        let set = p.acting_set("whatever");
        let mut osds: Vec<usize> = set.iter().map(|o| o.0).collect();
        osds.sort_unstable();
        assert_eq!(osds, vec![0, 1, 2]);
    }

    #[test]
    fn primaries_are_balanced() {
        let p = PlacementMap::new(3, 3, 256);
        let mut counts: HashMap<usize, usize> = HashMap::new();
        for i in 0..3000 {
            let primary = p.primary(&format!("rbd_data.img.{i:016x}"));
            *counts.entry(primary.0).or_default() += 1;
        }
        for osd in 0..3 {
            let share = counts[&osd] as f64 / 3000.0;
            assert!(
                (share - 1.0 / 3.0).abs() < 0.08,
                "osd {osd} got {share:.2} of primaries"
            );
        }
    }

    #[test]
    fn pg_distribution_is_wide() {
        let p = PlacementMap::new(3, 3, 128);
        let mut pgs = std::collections::HashSet::new();
        for i in 0..1000 {
            pgs.insert(p.pg_of(&format!("o{i}")));
        }
        assert!(pgs.len() > 100, "only {} PGs used", pgs.len());
    }

    #[test]
    #[should_panic(expected = "cannot place")]
    fn too_many_replicas_rejected() {
        let _ = PlacementMap::new(2, 3, 8);
    }

    #[test]
    fn shards_are_deterministic_and_wide() {
        let p = PlacementMap::new(3, 3, 128);
        let mut shards = std::collections::HashSet::new();
        for i in 0..200 {
            let name = format!("rbd_data.img.{i:016x}");
            let shard = p.shard_of(&name, 8);
            assert_eq!(shard, p.shard_of(&name, 8), "shard mapping must be stable");
            assert!(shard < 8);
            shards.insert(shard);
        }
        assert_eq!(shards.len(), 8, "200 objects must use every shard");
        // One shard degenerates to the unsharded cluster.
        assert_eq!(p.shard_of("anything", 1), 0);
    }

    #[test]
    fn stable_hash_separates_parts() {
        // ("ab", "c") must differ from ("a", "bc").
        assert_ne!(stable_hash(&[b"ab", b"c"]), stable_hash(&[b"a", b"bc"]));
    }
}
