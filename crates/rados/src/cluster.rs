//! The cluster façade: OSD maps (sharded by placement), replicated
//! transaction execution, reads, snapshots, scrub/repair, and the
//! closed-loop benchmark entry point.
//!
//! State is split three ways (the sharding the ROADMAP's async-dispatch
//! item asked for):
//!
//! - an immutable control plane (`ControlPlane`):
//!   placement, cost profiles, resource handles, plus atomic counters —
//!   read by every worker with no lock;
//! - N object `Shard`s keyed by placement group, each
//!   behind its own lock **and its own FIFO work queue** — an object's
//!   whole acting set lives in one shard, so per-object transactions
//!   and reads touch exactly one lock;
//! - the simulator, behind its own lock (only the closed-loop harness
//!   mutates it).
//!
//! IO dispatch is **submission-based**: [`Cluster::submit_batch`] and
//! [`Cluster::submit_read_batch`] validate up front (all-or-nothing),
//! split the submission into per-shard jobs, enqueue them on the shard
//! work queues (served by one worker thread per shard), and return a
//! ticket immediately — so jobs from *different* submissions interleave
//! on the shard workers, and one client overlaps many IOs. The
//! synchronous [`Cluster::execute_batch`] / [`Cluster::read_batch`] /
//! [`Cluster::execute`] / [`Cluster::read`] are thin submit-then-wait
//! wrappers. Per-shard FIFO with a single consumer is the ordering
//! rule: ops touching the same object always apply in submission
//! order.

use crate::backend::{BackendKind, ClusterMeta, FileStore, MemStore, ObjectStore};
use crate::cost::{ResourceHandles, TestbedProfile};
use crate::fault::{FaultConfig, FaultPlane, RetryPolicy};
use crate::placement::PlacementMap;
use crate::queue::{
    self, ApplyShared, ApplyTicket, DepthGuard, Job, Progress, ReadOutcome, ReadShared, ReadTicket,
    ShardHold, WorkerRuntime,
};
use crate::shard::Shard;
use crate::state::ControlPlane;
use crate::transaction::{ObjectReads, ReadOp, ReadResult, Transaction, TxOp};
use crate::{RadosError, Result, SnapId};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use vdisk_kv::CostProfile;
use vdisk_sim::{ClosedLoopStats, Plan, Simulator};

/// Whether object payload bytes are materialized in memory.
///
/// `Discarded` keeps only sizes and OMAP content — identical cost
/// plans at a fraction of the memory — and exists for the benchmark
/// harness, which sweeps up to 4 MB IOs and never re-reads plaintext.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PayloadMode {
    /// Store every byte (functional tests, examples).
    #[default]
    Stored,
    /// Track sizes only; reads return zeros.
    Discarded,
}

/// Scrub outcome: objects whose replicas disagree.
#[derive(Debug, Clone, Default)]
pub struct ScrubReport {
    /// Objects checked.
    pub objects_checked: usize,
    /// Names of divergent objects.
    pub divergent: Vec<String>,
}

impl ScrubReport {
    /// True when every replica of every object agrees.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.divergent.is_empty()
    }
}

/// Counters of client-visible operations the cluster has served.
/// Tests and tooling use them to observe batching and sharding
/// behaviour (e.g. "a striped write issued exactly N transactions in
/// one batch, fanned out over M shards").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Transactions applied, including those inside batches.
    pub transactions: u64,
    /// [`Cluster::execute_batch`] invocations.
    pub batches: u64,
    /// Per-object read requests served (batched reads count each
    /// object they touch).
    pub read_ops: u64,
    /// Largest number of distinct shards one submission (write or
    /// read) fanned out over — deterministic potential parallelism.
    pub shard_fanout_max: u64,
    /// High-water mark of shards holding admitted-but-incomplete work
    /// at the same instant. A multi-shard submission admits all its
    /// shards before any applies, so this is at least the fanout of
    /// any single submission; values above the largest single
    /// submission's fanout prove **cross-submission** overlap on the
    /// shard workers (scheduling-dependent on a single-core host, so
    /// treat the cross-submission component as a lower-bound signal).
    pub shard_concurrency_peak: u64,
    /// High-water mark of submissions simultaneously open (issued via
    /// `submit_*` and not yet reaped) — the realized client queue
    /// depth. Client-bracketed, so it is deterministic for a
    /// single-threaded submission loop. Note that synchronous wrappers
    /// also hold one open submission for the duration of their call:
    /// N threads of sync IO register a depth up to N, so depths above
    /// 1 mean async use *or* multi-threaded sync use.
    pub queue_depth_peak: u64,
    /// Sectors whose IV/metadata round trip was skipped because a
    /// client-side metadata cache held their entry (reported via
    /// [`Cluster::record_meta_cache`] by the encryption layer's cache;
    /// always zero when no cache is layered above).
    pub meta_cache_hits: u64,
    /// Sectors whose IV/metadata had to be fetched from the store
    /// despite a client-side metadata cache being enabled.
    pub meta_cache_misses: u64,
    /// Cached sector entries dropped because a queued overwrite or a
    /// snapshot made them unusable. Every overwritten cached sector is
    /// accounted here exactly once.
    pub meta_cache_invalidations: u64,
    /// Sector entries installed into a client-side metadata cache at
    /// **write**-reap time (write-through fills): the write already
    /// knows the entries it persisted, so the first subsequent read
    /// skips the metadata fetch without ever paying a miss.
    pub meta_cache_write_fills: u64,
    /// Attempts replayed inside the shard workers after a retryable
    /// injected fault (see [`crate::fault::RetryPolicy`]): each retry
    /// is one extra apply/read attempt that never surfaced to the
    /// client. Always zero on clusters without a fault plane.
    pub retries: u64,
}

impl ExecStats {
    /// Folds a per-op `delta` into an accumulator: counters add,
    /// high-water marks take the max. The rollup primitive behind
    /// per-tenant stats in the multi-tenant runtime — each reaped
    /// per-op delta is absorbed into its tenant's running total.
    pub fn absorb(&mut self, delta: &ExecStats) {
        self.transactions += delta.transactions;
        self.batches += delta.batches;
        self.read_ops += delta.read_ops;
        self.shard_fanout_max = self.shard_fanout_max.max(delta.shard_fanout_max);
        self.shard_concurrency_peak = self
            .shard_concurrency_peak
            .max(delta.shard_concurrency_peak);
        self.queue_depth_peak = self.queue_depth_peak.max(delta.queue_depth_peak);
        self.meta_cache_hits += delta.meta_cache_hits;
        self.meta_cache_misses += delta.meta_cache_misses;
        self.meta_cache_invalidations += delta.meta_cache_invalidations;
        self.meta_cache_write_fills += delta.meta_cache_write_fills;
        self.retries += delta.retries;
    }
}

/// Default client-side metadata cache budget: 4 MiB of sector
/// metadata (256 Ki cached IV entries at 16 bytes each — enough for
/// 1 GiB of hot data at a 4 KiB sector size).
pub const DEFAULT_META_CACHE_BYTES: u64 = 4 << 20;

/// Configures and builds a [`Cluster`].
#[derive(Debug, Clone)]
pub struct ClusterBuilder {
    osd_count: usize,
    replicas: usize,
    pg_count: u64,
    shard_count: usize,
    concurrent_apply: Option<bool>,
    payload: PayloadMode,
    testbed: TestbedProfile,
    kv_cost: CostProfile,
    meta_cache_bytes: u64,
    crypto_lanes: Option<usize>,
    backend: BackendKind,
    /// True when the backend came from the `VDISK_BACKEND` environment
    /// override: the store directory is session scratch, removed when
    /// the last [`Cluster`] handle drops.
    scratch: bool,
    faults: Option<FaultConfig>,
    retry: RetryPolicy,
}

impl Default for ClusterBuilder {
    fn default() -> Self {
        let (backend, scratch) = backend_from_env();
        ClusterBuilder {
            osd_count: 3,
            replicas: 3,
            pg_count: 128,
            shard_count: 8,
            concurrent_apply: None,
            payload: PayloadMode::Stored,
            testbed: TestbedProfile::default(),
            kv_cost: CostProfile::default(),
            meta_cache_bytes: DEFAULT_META_CACHE_BYTES,
            crypto_lanes: None,
            backend,
            scratch,
            faults: None,
            retry: RetryPolicy::default(),
        }
    }
}

/// The `VDISK_BACKEND` environment override: `file` (with an optional
/// `VDISK_BACKEND_DIR` base directory) makes every
/// default-constructed builder target a fresh scratch [`FileStore`]
/// directory — how the existing test suites run unmodified against the
/// durable backend. Anything else (or unset) keeps the in-memory
/// default. An explicit [`ClusterBuilder::backend`] call always wins.
fn backend_from_env() -> (BackendKind, bool) {
    match std::env::var("VDISK_BACKEND") {
        Ok(v) if v.eq_ignore_ascii_case("file") => {
            static SCRATCH_SEQ: AtomicU64 = AtomicU64::new(0);
            let base = std::env::var_os("VDISK_BACKEND_DIR")
                .map_or_else(std::env::temp_dir, PathBuf::from);
            let dir = base.join(format!(
                "vdisk-scratch-{}-{}",
                std::process::id(),
                SCRATCH_SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            (BackendKind::File { dir }, true)
        }
        _ => (BackendKind::Memory, false),
    }
}

impl ClusterBuilder {
    /// Number of OSD nodes (default 3, as in the paper).
    #[must_use]
    pub fn osd_count(mut self, n: usize) -> Self {
        self.osd_count = n;
        self
    }

    /// Replication factor (default 3, Ceph's default, as in the paper).
    #[must_use]
    pub fn replicas(mut self, n: usize) -> Self {
        self.replicas = n;
        self
    }

    /// Placement-group count (default 128).
    #[must_use]
    pub fn pg_count(mut self, n: u64) -> Self {
        self.pg_count = n;
        self
    }

    /// Number of state shards batches fan out over (default 8; must be
    /// at least 1 — validated at build). `1` reproduces the old
    /// single-lock behaviour.
    #[must_use]
    pub fn shard_count(mut self, n: usize) -> Self {
        self.shard_count = n;
        self
    }

    /// Whether submissions are served by per-shard worker threads (one
    /// dedicated worker per state shard, draining that shard's FIFO
    /// work queue). Defaults to auto: workers on a multi-core host,
    /// inline on a single core (worker threads cannot overlap in
    /// wall-clock there, so the queue degenerates to synchronous
    /// execution with identical semantics). `true` forces workers —
    /// the hook tests use to exercise the queued path regardless of
    /// host; `false` forces inline application at submit time.
    #[must_use]
    pub fn concurrent_apply(mut self, enabled: bool) -> Self {
        self.concurrent_apply = Some(enabled);
        self
    }

    /// Payload retention mode.
    #[must_use]
    pub fn payload_mode(mut self, mode: PayloadMode) -> Self {
        self.payload = mode;
        self
    }

    /// Overrides the hardware cost profile.
    #[must_use]
    pub fn testbed(mut self, testbed: TestbedProfile) -> Self {
        self.testbed = testbed;
        self
    }

    /// Overrides the OMAP KV cost profile.
    #[must_use]
    pub fn kv_cost(mut self, kv_cost: CostProfile) -> Self {
        self.kv_cost = kv_cost;
        self
    }

    /// Budget (in bytes of sector metadata) for the client-side
    /// IV/metadata cache layered above this cluster — the knob behind
    /// `vdisk-core`'s read cache. `0` disables the cache. Defaults to
    /// [`DEFAULT_META_CACHE_BYTES`] (4 MiB). Advisory: the store
    /// itself never caches; upper layers read it via
    /// [`Cluster::meta_cache_bytes`] when opening an image.
    #[must_use]
    pub fn meta_cache_bytes(mut self, bytes: u64) -> Self {
        self.meta_cache_bytes = bytes;
        self
    }

    /// Number of client-side crypto lanes: how many sector-crypto jobs
    /// the encryption layer above this cluster may run in parallel,
    /// and how many servers the simulated client-crypto resource gets
    /// (the two must agree or simulated time would diverge from the
    /// real work). Clamped to at least 1. Defaults to the host's
    /// available parallelism capped at
    /// [`TestbedProfile::default`]'s crypto worker count (4), so a
    /// multi-core host keeps the calibrated resource while a
    /// single-core host degenerates to serial crypto. Must be at least
    /// 1 (validated at build). Advisory for upper layers, read via
    /// [`Cluster::crypto_lanes`].
    #[must_use]
    pub fn crypto_lanes(mut self, lanes: usize) -> Self {
        self.crypto_lanes = Some(lanes);
        self
    }

    /// Selects the storage backend (default: [`BackendKind::Memory`],
    /// or whatever the `VDISK_BACKEND` environment override picked —
    /// an explicit call here always wins over the environment).
    /// [`BackendKind::File`] makes every transaction commit durable
    /// (`fsync`) under the given directory and reopens a directory
    /// formatted by an earlier cluster, provided the geometry
    /// (`osd_count`, `replicas`, `pg_count`, `shard_count`, payload
    /// mode) matches.
    #[must_use]
    pub fn backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self.scratch = false;
        self
    }

    /// Installs a deterministic fault plane: the cluster injects
    /// per-shard transient/persistent errors, delayed completions, and
    /// (file backend) torn-commit crashes exactly as the seeded
    /// [`FaultConfig`] dictates. Default: no fault plane — nothing is
    /// ever injected and [`ExecStats::retries`] stays zero.
    #[must_use]
    pub fn fault_plane(mut self, config: FaultConfig) -> Self {
        self.faults = Some(config);
        self
    }

    /// How the shard workers replay attempts that drew a retryable
    /// injected fault (see [`RetryPolicy`]; default: 4 replays with
    /// exponential backoff). Only consulted when a fault plane is
    /// installed — without one there is nothing to retry.
    #[must_use]
    pub fn retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Builds the cluster, panicking on invalid configuration — the
    /// ergonomic entry point for tests and examples whose knobs are
    /// literals. Fallible callers use [`ClusterBuilder::try_build`].
    ///
    /// # Panics
    ///
    /// Panics whenever [`ClusterBuilder::try_build`] would return an
    /// error (zero-valued knobs, replicas exceeding OSDs, or a file
    /// backend that cannot be opened).
    #[must_use]
    pub fn build(self) -> Cluster {
        self.try_build()
            // vdisk-lint: allow(hot-path-panic) reason="documented panicking constructor for literal-knob tests; fallible callers use try_build"
            .unwrap_or_else(|e| panic!("invalid cluster configuration: {e}"))
    }

    /// Builds the cluster, validating every knob first.
    ///
    /// # Errors
    ///
    /// - [`RadosError::InvalidConfig`] if `osd_count`, `replicas`,
    ///   `pg_count`, `shard_count` or `crypto_lanes` is zero, if
    ///   `replicas > osd_count`, or if a file backend's directory was
    ///   formatted with a different geometry.
    /// - [`RadosError::Io`] if a file backend's directory cannot be
    ///   created, read, or written.
    pub fn try_build(self) -> Result<Cluster> {
        for (knob, value) in [
            ("osd_count", self.osd_count as u64),
            ("replicas", self.replicas as u64),
            ("pg_count", self.pg_count),
            ("shard_count", self.shard_count as u64),
            ("crypto_lanes", self.crypto_lanes.unwrap_or(1) as u64),
        ] {
            if value == 0 {
                return Err(RadosError::InvalidConfig(format!(
                    "{knob} must be at least 1"
                )));
            }
        }
        if self.replicas > self.osd_count {
            return Err(RadosError::InvalidConfig(format!(
                "replicas ({}) cannot exceed osd_count ({})",
                self.replicas, self.osd_count
            )));
        }

        let mut sim = Simulator::new();
        let crypto_lanes = self.crypto_lanes.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map_or(1, usize::from)
                .min(TestbedProfile::default().crypto_servers)
                .max(1)
        });
        // The simulated client-crypto resource must have exactly as
        // many servers as the encryption layer has lanes, or simulated
        // crypto time would diverge from the real parallel work.
        let mut testbed = self.testbed;
        testbed.crypto_servers = crypto_lanes;
        let handles = testbed.install(&mut sim, self.osd_count);
        let placement = PlacementMap::new(self.osd_count, self.replicas, self.pg_count);

        // A file backend roots itself before the shards open: the meta
        // file decides whether this is a format or a reopen, and a
        // reopen must resume the snapshot sequence.
        let (durable, initial_snap_seq) = match &self.backend {
            BackendKind::Memory => (None, 0),
            BackendKind::File { dir } => {
                let geometry = ClusterMeta {
                    osd_count: self.osd_count,
                    replicas: self.replicas,
                    pg_count: self.pg_count,
                    shard_count: self.shard_count,
                    payload: self.payload,
                    snap_seq: 0,
                };
                std::fs::create_dir_all(dir)
                    .map_err(|e| RadosError::Io(format!("create store root: {e}")))?;
                let snap_seq = match ClusterMeta::load(dir)
                    .map_err(|e| RadosError::Io(format!("read cluster.meta: {e}")))?
                {
                    Some(existing) => {
                        let mut requested = geometry.clone();
                        requested.snap_seq = existing.snap_seq;
                        if existing != requested {
                            return Err(RadosError::InvalidConfig(format!(
                                "store at {} was formatted with a different geometry \
                                 ({existing:?}; this builder requests {requested:?})",
                                dir.display()
                            )));
                        }
                        existing.snap_seq
                    }
                    None => {
                        geometry
                            .store(dir)
                            .map_err(|e| RadosError::Io(format!("write cluster.meta: {e}")))?;
                        0
                    }
                };
                let root = DurableRoot {
                    root: dir.clone(),
                    geometry,
                    scratch: self.scratch,
                };
                (Some(Arc::new(root)), snap_seq)
            }
        };

        let faults = self
            .faults
            .map(|config| Arc::new(FaultPlane::new(config, self.shard_count)));
        let shards: Arc<[Shard]> = (0..self.shard_count)
            .map(|s| -> Result<Shard> {
                let store: Box<dyn ObjectStore> = match &self.backend {
                    BackendKind::Memory => Box::new(MemStore::new(self.osd_count)),
                    BackendKind::File { dir } => Box::new(
                        FileStore::open_faulted(
                            dir.join(format!("shard-{s}")),
                            self.osd_count,
                            s,
                            faults.clone(),
                        )
                        .map_err(|e| RadosError::Io(format!("open shard {s}: {e}")))?,
                    ),
                };
                Ok(Shard::new(store))
            })
            .collect::<Result<Vec<_>>>()?
            .into();
        let workers = self
            .concurrent_apply
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, usize::from) > 1);
        let control = Arc::new(ControlPlane::new(
            placement,
            handles,
            testbed,
            self.kv_cost,
            self.payload,
            self.shard_count,
            workers,
            self.meta_cache_bytes,
            crypto_lanes,
            initial_snap_seq,
            faults,
            self.retry,
        ));
        let runtime = if workers {
            WorkerRuntime::spawn(&control, &shards)
        } else {
            WorkerRuntime::inline()
        };
        Ok(Cluster {
            control,
            shards,
            sim: Arc::new(Mutex::new(sim)),
            runtime: Arc::new(runtime),
            durable,
        })
    }
}

/// The root of a file-backed cluster: where `cluster.meta` lives, the
/// geometry it was opened with, and whether the directory is session
/// scratch (an environment-selected store removed with the last
/// cluster handle).
struct DurableRoot {
    root: PathBuf,
    geometry: ClusterMeta,
    scratch: bool,
}

impl DurableRoot {
    /// Durably rewrites `cluster.meta` with the given snapshot seq.
    fn persist(&self, snap_seq: u64) -> std::io::Result<()> {
        let mut meta = self.geometry.clone();
        meta.snap_seq = snap_seq;
        meta.store(&self.root)
    }
}

impl Drop for DurableRoot {
    fn drop(&mut self) {
        if self.scratch {
            // Best effort: scratch stores are test conveniences, and a
            // shutdown race with an external cleaner must not panic.
            let _ = std::fs::remove_dir_all(&self.root);
        }
    }
}

/// A handle to the simulated Ceph-like cluster. Cheap to clone; all
/// clones share the same state.
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Clone)]
pub struct Cluster {
    control: Arc<ControlPlane>,
    shards: Arc<[Shard]>,
    sim: Arc<Mutex<Simulator>>,
    /// The per-shard worker threads and their queues; dropped (closing
    /// the queues and joining the workers) with the last handle.
    runtime: Arc<WorkerRuntime>,
    /// `Some` for file-backed clusters: the store root and its
    /// `cluster.meta` bookkeeping. Declared after `runtime` so that,
    /// on the last handle's drop, workers join before any scratch
    /// directory is removed.
    durable: Option<Arc<DurableRoot>>,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Cluster({} osds, {} replicas, {} shards)",
            self.control.placement.osd_count(),
            self.control.placement.replicas(),
            self.shards.len()
        )
    }
}

impl Cluster {
    /// Starts building a cluster.
    #[must_use]
    pub fn builder() -> ClusterBuilder {
        ClusterBuilder::default()
    }

    /// The shard holding `object`, and its index.
    fn shard_for(&self, object: &str) -> &Shard {
        // vdisk-lint: allow(hot-path-index) reason="shard_of reduces the object hash modulo shards.len()"
        &self.shards[self.control.shard_of(object)]
    }

    /// Checks a transaction without touching any replica. Shared by
    /// the single and batched execution paths so both reject malformed
    /// input before **any** mutation (all-or-nothing).
    fn validate_tx(tx: &Transaction) -> Result<()> {
        if tx.object.is_empty() {
            return Err(RadosError::InvalidArgument("empty object name".into()));
        }
        for op in &tx.ops {
            match op {
                TxOp::OmapSet(entries) => {
                    if entries.iter().any(|(k, _)| k.is_empty()) {
                        return Err(RadosError::InvalidArgument("empty omap key".into()));
                    }
                }
                TxOp::OmapRemove(keys) => {
                    if keys.iter().any(Vec::is_empty) {
                        return Err(RadosError::InvalidArgument("empty omap key".into()));
                    }
                }
                TxOp::Write { data, .. } => {
                    if data.is_empty() {
                        return Err(RadosError::InvalidArgument("empty write".into()));
                    }
                }
                TxOp::CompareXattr { name, .. } => {
                    if name.is_empty() {
                        return Err(RadosError::InvalidArgument("empty xattr name".into()));
                    }
                }
                TxOp::Truncate(_) | TxOp::SetXattr(..) | TxOp::Delete => {}
            }
        }
        Ok(())
    }

    /// Applies a transaction atomically on every replica and returns
    /// its cost plan. A thin submit-then-wait wrapper over the shard
    /// work queues, so it orders correctly after any asynchronous
    /// submissions already in flight on the same objects.
    ///
    /// # Errors
    ///
    /// Returns [`RadosError::InvalidArgument`] if any op is malformed,
    /// or [`RadosError::CompareFailed`] if a [`TxOp::CompareXattr`]
    /// precondition did not hold at apply time; in either case **no**
    /// op has been applied (all-or-nothing).
    pub fn execute(&self, tx: Transaction) -> Result<Plan> {
        self.submit_txs(vec![tx], false, true)?.wait()
    }

    /// Applies many transactions under one cluster round trip and
    /// returns [`Plan::par`] of their costs (in submission order):
    /// [`Cluster::submit_batch`] followed by [`ApplyTicket::wait`].
    ///
    /// # Errors
    ///
    /// Returns [`RadosError::InvalidArgument`] if any transaction in
    /// the batch is malformed (no transaction has been applied then),
    /// or the first [`RadosError::CompareFailed`] if a dynamic
    /// precondition failed at apply time (only that transaction is
    /// skipped).
    pub fn execute_batch(&self, txs: Vec<Transaction>) -> Result<Plan> {
        self.submit_txs(txs, true, true)?.wait()
    }

    /// Submits a batch of transactions to the shard work queues and
    /// returns immediately with an [`ApplyTicket`]; the per-shard
    /// worker threads apply the jobs while the caller goes on to
    /// submit more IO. The asynchronous half of the aio/submission-
    /// queue API — keeping many submissions in flight is what realizes
    /// the paper's queue-depth bandwidth argument.
    ///
    /// Validation runs over the **whole batch** before anything is
    /// enqueued, extending the single-transaction all-or-nothing
    /// guarantee to the batch — a malformed transaction anywhere
    /// leaves every shard untouched. Ordering: per-shard FIFO with one
    /// consumer per shard, so two submissions touching the same object
    /// (same shard, by construction) apply in submission order, while
    /// disjoint shards interleave freely across submissions.
    ///
    /// # Errors
    ///
    /// Returns [`RadosError::InvalidArgument`] if any transaction in
    /// the batch is malformed; nothing has been enqueued then.
    pub fn submit_batch(&self, txs: Vec<Transaction>) -> Result<ApplyTicket> {
        self.submit_txs(txs, true, false)
    }

    fn submit_txs(
        &self,
        txs: Vec<Transaction>,
        is_batch: bool,
        inline_if_idle: bool,
    ) -> Result<ApplyTicket> {
        for tx in &txs {
            Self::validate_tx(tx)?;
        }
        let cp = &self.control;
        // An empty submission dispatches nothing; keep it invisible to
        // the batch/queue-depth counters like the sync no-op paths.
        let is_empty = txs.is_empty();
        if is_batch && !is_empty {
            cp.stats.record_batch();
        }
        cp.stats.record_transactions(txs.len() as u64);
        let shard_keys: Vec<usize> = txs.iter().map(|tx| cp.shard_of(&tx.object)).collect();
        // Advance every touched shard's write-submission epoch while
        // the submission is accepted — strictly before any job can
        // apply — so client-side caches comparing epochs across a
        // read's submit→reap window never miss an overwrite.
        let mut touched = vec![false; self.shards.len()];
        for &shard in &shard_keys {
            // vdisk-lint: allow(hot-path-index) reason="shard_of reduces modulo shards.len(), which sized `touched`"
            if !touched[shard] {
                // vdisk-lint: allow(hot-path-index) reason="shard_of reduces modulo shards.len(), which sized `touched`"
                touched[shard] = true;
                cp.bump_shard_write_seq(shard);
            }
        }
        let tx_count = txs.len() as u64;
        let shared = Arc::new(ApplyShared {
            default_seq: cp.snap_seq(),
            progress: Progress::new(txs.len()),
            txs,
            retries: AtomicU64::new(0),
        });
        let depth = if is_empty {
            DepthGuard::noop(Arc::clone(cp))
        } else {
            DepthGuard::open(Arc::clone(cp))
        };
        let fanout = self.dispatch(&shard_keys, inline_if_idle, |idxs| Job::Apply {
            shared: Arc::clone(&shared),
            idxs,
        });
        Ok(ApplyTicket {
            shared,
            stats: ExecStats {
                transactions: tx_count,
                batches: u64::from(is_batch),
                shard_fanout_max: fanout,
                ..ExecStats::default()
            },
            depth,
        })
    }

    /// Groups item indices by shard, admits every touched shard (the
    /// concurrency bracket is entered here, *before* any job runs, so
    /// a submission's fanout registers deterministically), then either
    /// enqueues the jobs on the shard work queues or runs them on the
    /// spot. Returns the number of shards touched.
    ///
    /// `inline_if_idle` is the synchronous wrappers' fast path: the
    /// caller is about to block on the ticket anyway, so a shard whose
    /// admission found it **idle** (no enqueued or running job — the
    /// admission counter is the linearization point) is served in the
    /// calling thread, skipping two thread handoffs. This cannot
    /// reorder anything: an idle shard's queue is empty, so there is
    /// nothing to jump ahead of, and any job admitted concurrently is
    /// from an unordered independent submission. Asynchronous
    /// submissions never use it — their point is not to block.
    fn dispatch(
        &self,
        shard_keys: &[usize],
        inline_if_idle: bool,
        mut job_for: impl FnMut(Vec<usize>) -> Job,
    ) -> u64 {
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (i, &shard) in shard_keys.iter().enumerate() {
            // vdisk-lint: allow(hot-path-index) reason="shard keys come from shard_of, which reduces modulo shards.len(); groups was sized to match"
            groups[shard].push(i);
        }
        let touched: Vec<(usize, Vec<usize>)> = groups
            .into_iter()
            .enumerate()
            .filter(|(_, idxs)| !idxs.is_empty())
            .collect();
        if touched.is_empty() {
            return 0;
        }
        let fanout = touched.len() as u64;
        self.control.stats.record_shard_fanout(fanout);
        let was_idle: Vec<bool> = touched
            .iter()
            // vdisk-lint: allow(hot-path-index) reason="shard indices are enumerate() positions over a vec sized shards.len()"
            .map(|(shard, _)| self.shards[*shard].job_admitted(&self.control.stats))
            .collect();
        match self.runtime.queues() {
            Some(queues) => {
                for ((shard, idxs), idle) in touched.into_iter().zip(was_idle) {
                    let job = job_for(idxs);
                    if inline_if_idle && idle {
                        queue::run_job(&self.control, &self.shards, shard, job);
                    } else {
                        // vdisk-lint: allow(hot-path-index) reason="one queue per shard; index is an enumerate() position over a vec sized shards.len()"
                        queues[shard].push(job);
                    }
                }
            }
            None => {
                for (shard, idxs) in touched {
                    queue::run_job(&self.control, &self.shards, shard, job_for(idxs));
                }
            }
        }
        fanout
    }

    /// Operation counters since the cluster was built.
    #[must_use]
    pub fn exec_stats(&self) -> ExecStats {
        self.control.stats.snapshot()
    }

    /// The installed fault plane (observability: crash latch, injected
    /// counts), or `None` when the cluster was built without one.
    #[must_use]
    pub fn fault_plane(&self) -> Option<&FaultPlane> {
        self.control.faults.as_deref()
    }

    /// Submissions currently issued and not yet reaped, cluster-wide —
    /// the *instantaneous* client queue depth (the peak is in
    /// [`ExecStats::queue_depth_peak`]). Advisory: the value is racy
    /// by nature and meaningful as a pressure signal, not a precise
    /// accounting.
    #[must_use]
    pub fn queue_depth(&self) -> u64 {
        self.control.stats.open_submissions()
    }

    /// Returns the queue-depth high water observed since the previous
    /// call and resets the window (to the current depth — open
    /// submissions remain observed). Background services use this to
    /// sample *recent* client pressure: the rekey driver takes the
    /// window before each migration window and shrinks its own
    /// submission depth when foreground tenants were queuing.
    #[must_use]
    pub fn take_queue_depth_window_peak(&self) -> u64 {
        self.control.stats.take_queue_depth_window_peak()
    }

    /// Number of state shards batches fan out over.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The state shard `object` maps to (deterministic, derived from
    /// its placement group). Upper layers use this for shard-aware
    /// naming — spreading one image's consecutive objects over shards
    /// so queued IO fans out evenly.
    #[must_use]
    pub fn placement_shard(&self, object: &str) -> usize {
        self.control.shard_of(object)
    }

    /// Whether submissions are served by per-shard worker threads
    /// (true) or applied inline at submit time (false) — see
    /// [`ClusterBuilder::concurrent_apply`].
    #[must_use]
    pub fn workers_enabled(&self) -> bool {
        self.control.workers
    }

    /// Executes read operations against the primary replica. A thin
    /// submit-then-wait wrapper over the shard work queues, so it sees
    /// every previously submitted write to the same object.
    ///
    /// # Errors
    ///
    /// Returns [`RadosError::NoSuchObject`] if the object does not
    /// exist, or [`RadosError::NoSuchSnapshot`] if it did not exist yet
    /// at the requested snapshot.
    pub fn read(
        &self,
        object: &str,
        snap: Option<SnapId>,
        ops: &[ReadOp],
    ) -> Result<(Vec<ReadResult>, Plan)> {
        let requests = vec![ObjectReads::new(object, ops.to_vec())];
        let mut outcomes = self.submit_reads(snap, requests, true).into_outcomes();
        // vdisk-lint: allow(hot-path-panic) reason="submit_reads returns exactly one outcome per request and we submitted exactly one"
        match outcomes.pop().expect("one request, one outcome") {
            ReadOutcome::Hit(results, plan) => Ok((results, plan)),
            ReadOutcome::Miss(e, _) | ReadOutcome::Fail(e) => Err(e),
        }
    }

    /// Serves many per-object read requests in one round trip:
    /// [`Cluster::submit_read_batch`] followed by [`ReadTicket::wait`].
    /// Returns one result slot per request plus [`Plan::par`] of the
    /// per-request costs (in submission order). Objects absent (now,
    /// or at `snap`) yield `None` so striped callers can zero-fill
    /// sparse extents without failing the whole batch — but still cost
    /// a round trip to the primary, so the plan keeps **one child per
    /// request**.
    ///
    /// # Errors
    ///
    /// Propagates any error other than a missing object/snapshot.
    #[allow(clippy::type_complexity)]
    pub fn read_batch(
        &self,
        snap: Option<SnapId>,
        requests: Vec<ObjectReads>,
    ) -> Result<(Vec<Option<Vec<ReadResult>>>, Plan)> {
        self.submit_reads(snap, requests, true).wait()
    }

    /// Submits a vectored read to the shard work queues and returns
    /// immediately with a [`ReadTicket`] — the read half of the
    /// submission-queue API. Jobs ride the same per-shard FIFO queues
    /// as writes, so a read submitted after a write to the same object
    /// always observes it, even with both still in flight.
    pub fn submit_read_batch(
        &self,
        snap: Option<SnapId>,
        requests: Vec<ObjectReads>,
    ) -> ReadTicket {
        self.submit_reads(snap, requests, false)
    }

    fn submit_reads(
        &self,
        snap: Option<SnapId>,
        requests: Vec<ObjectReads>,
        inline_if_idle: bool,
    ) -> ReadTicket {
        let cp = &self.control;
        cp.stats.record_read_ops(requests.len() as u64);
        let shard_keys: Vec<usize> = requests.iter().map(|r| cp.shard_of(&r.object)).collect();
        let request_count = requests.len() as u64;
        let is_empty = requests.is_empty();
        let shared = Arc::new(ReadShared {
            snap,
            progress: Progress::new(requests.len()),
            requests,
            retries: AtomicU64::new(0),
        });
        let depth = if is_empty {
            DepthGuard::noop(Arc::clone(cp))
        } else {
            DepthGuard::open(Arc::clone(cp))
        };
        let fanout = self.dispatch(&shard_keys, inline_if_idle, |idxs| Job::Read {
            shared: Arc::clone(&shared),
            idxs,
        });
        ReadTicket {
            shared,
            stats: ExecStats {
                read_ops: request_count,
                shard_fanout_max: fanout,
                ..ExecStats::default()
            },
            depth,
        }
    }

    /// Drains the shard work queues: blocks until every job submitted
    /// **before** this call has been applied. The barrier for callers
    /// about to inspect cluster state directly (object listing, image
    /// removal, scrub) while asynchronous submissions may be in
    /// flight; jobs submitted concurrently with the flush are not
    /// covered.
    ///
    /// On a durable backend ([`BackendKind::File`]) this is also the
    /// store-wide durability point: after draining the queues it syncs
    /// every shard's store directory and rewrites `cluster.meta`, so a
    /// process that stops after `flush` returns can reopen the
    /// directory and see everything it wrote. With the in-memory
    /// backend in inline mode this remains a no-op.
    ///
    /// # Panics
    ///
    /// Panics if a durable backend fails to sync its directories — at
    /// that point durability can no longer be promised.
    pub fn flush(&self) {
        if let Some(queues) = self.runtime.queues() {
            let progress = Arc::new(Progress::new(queues.len()));
            for (slot, queue) in queues.iter().enumerate() {
                queue.push(Job::Flush {
                    shared: Arc::clone(&progress),
                    slot,
                });
            }
            progress.wait();
        }
        if self.durable.is_some() {
            for shard in self.shards.iter() {
                // vdisk-lint: allow(hot-path-panic) reason="documented panicking path: a failed directory sync voids the durability promise"
                shard.lock().store.flush().expect("backend flush failed");
            }
            self.persist_snap_seq(self.control.snap_seq());
        }
    }

    /// Takes a cluster-wide self-managed snapshot; subsequent writes
    /// copy-on-write any object they touch. Also advances **every**
    /// shard's write-submission epoch, so metadata-cache fills whose
    /// submit→reap window spans the snapshot are abandoned.
    pub fn create_snap(&self) -> SnapId {
        self.control.bump_all_write_seqs();
        let seq = self.control.advance_snap_seq();
        // Clone visibility is defined by sequence numbers, so a durable
        // backend must never reopen with a stale one: persist it before
        // the snapshot id is handed out.
        self.persist_snap_seq(seq);
        SnapId(seq)
    }

    /// Rewrites `cluster.meta` with the given snapshot sequence on a
    /// durable backend; no-op on the in-memory one.
    fn persist_snap_seq(&self, seq: u64) {
        if let Some(durable) = &self.durable {
            // vdisk-lint: allow(hot-path-panic) reason="reopening with a stale snap seq silently corrupts clone visibility; failing loudly is the contract"
            durable.persist(seq).expect("cluster.meta update failed");
        }
    }

    /// The write-submission epoch of state shard `shard`: a monotone
    /// counter advanced whenever a write submission touching the shard
    /// is accepted (before any of it applies) and on every snapshot.
    /// Client-side metadata caches capture it before submitting a read
    /// and fill only if it is unchanged after reaping: per-shard FIFO
    /// makes submission order the apply order, so an unchanged epoch
    /// proves no overwrite or snapshot landed in the window.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= shard_count()`.
    #[must_use]
    pub fn shard_write_seq(&self, shard: usize) -> u64 {
        self.control.shard_write_seq(shard)
    }

    /// The advisory client-side metadata-cache budget configured via
    /// [`ClusterBuilder::meta_cache_bytes`].
    #[must_use]
    pub fn meta_cache_bytes(&self) -> u64 {
        self.control.meta_cache_bytes
    }

    /// The client-side crypto parallelism resolved at build time (see
    /// [`ClusterBuilder::crypto_lanes`]); always ≥ 1, and equal to the
    /// simulated client-crypto resource's server count.
    #[must_use]
    pub fn crypto_lanes(&self) -> usize {
        self.control.crypto_lanes
    }

    /// Parks the worker of state shard `shard` until the returned
    /// [`ShardHold`] is released (or dropped). Jobs enqueued behind the
    /// hold sit on the shard's FIFO in the meantime — the hook tests
    /// use to delay a completion deliberately and prove that a client
    /// wait parks instead of spinning. In inline mode (no workers)
    /// there is nothing to hold and the returned handle is a
    /// pre-released no-op.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= shard_count()`.
    #[must_use]
    pub fn hold_shard(&self, shard: usize) -> ShardHold {
        assert!(shard < self.shards.len(), "shard index out of range");
        let gate = Arc::new(Progress::new(1));
        match self.runtime.queues() {
            Some(queues) => {
                // vdisk-lint: allow(hot-path-index) reason="asserted in range above, honoring the documented panic contract"
                queues[shard].push(Job::Hold {
                    gate: Arc::clone(&gate),
                });
                ShardHold::new(gate, false)
            }
            None => ShardHold::new(gate, true),
        }
    }

    /// Observability hook for client-side metadata caches layered
    /// above the store (the encryption layer's IV cache): accumulates
    /// the given deltas into [`ExecStats::meta_cache_hits`] /
    /// [`ExecStats::meta_cache_misses`] /
    /// [`ExecStats::meta_cache_invalidations`].
    pub fn record_meta_cache(&self, hits: u64, misses: u64, invalidations: u64) {
        self.control
            .stats
            .record_meta_cache(hits, misses, invalidations);
    }

    /// Observability hook for write-through cache fills (see
    /// [`ExecStats::meta_cache_write_fills`]).
    pub fn record_meta_cache_write_fills(&self, fills: u64) {
        self.control.stats.record_meta_cache_write_fills(fills);
    }

    /// The current snapshot sequence.
    #[must_use]
    pub fn snap_seq(&self) -> SnapId {
        SnapId(self.control.snap_seq())
    }

    /// Whether an object exists (on its primary).
    #[must_use]
    pub fn object_exists(&self, object: &str) -> bool {
        let primary = self.control.placement.primary(object);
        self.shard_for(object)
            .lock()
            .store
            .contains(primary.0, object)
    }

    /// Object metadata from the primary.
    ///
    /// # Errors
    ///
    /// Returns [`RadosError::NoSuchObject`] if the object is absent.
    pub fn stat(&self, object: &str) -> Result<crate::object::ObjectStat> {
        self.shard_for(object).lock().stat(&self.control, object)
    }

    /// All object names (sorted), from every OSD's primary view.
    #[must_use]
    pub fn list_objects(&self) -> Vec<String> {
        let mut names: Vec<String> = Vec::new();
        for shard in self.shards.iter() {
            names.extend(shard.lock().store.names());
        }
        names.sort_unstable();
        names
    }

    /// The installed resource handles (for plan construction by upper
    /// layers, e.g. client-side crypto cost).
    #[must_use]
    pub fn resources(&self) -> ResourceHandles {
        self.control.handles.clone()
    }

    /// The testbed profile in effect.
    #[must_use]
    pub fn testbed_profile(&self) -> TestbedProfile {
        self.control.testbed.clone()
    }

    /// Convenience: a plan occupying the client crypto workers for
    /// `bytes` of encryption/decryption work.
    #[must_use]
    pub fn crypto_plan(&self, bytes: u64) -> Plan {
        Plan::op(self.control.handles.client_crypto, bytes)
    }

    /// A crypto plan whose `bytes` of work are split over `lanes`
    /// near-equal parallel chunks — the cost shape of the encryption
    /// layer running one sector-crypto job per lane. Degenerates to
    /// [`Cluster::crypto_plan`] at one lane (or when the split would
    /// produce empty chunks).
    #[must_use]
    pub fn crypto_plan_parallel(&self, bytes: u64, lanes: usize) -> Plan {
        if lanes <= 1 || bytes < lanes as u64 {
            return self.crypto_plan(bytes);
        }
        let lanes = lanes as u64;
        let chunk = bytes / lanes;
        let remainder = bytes % lanes;
        Plan::par((0..lanes).map(|lane| {
            let extra = u64::from(lane < remainder);
            Plan::op(self.control.handles.client_crypto, chunk + extra)
        }))
    }

    /// Runs pre-built plans in a closed loop (fio-style, fixed queue
    /// depth) against this cluster's simulated hardware.
    #[must_use]
    pub fn run_closed_loop(&self, queue_depth: usize, plans: Vec<(Plan, u64)>) -> ClosedLoopStats {
        let mut sim = self.sim.lock().unwrap_or_else(PoisonError::into_inner);
        let total = plans.len() as u64;
        let mut plans = plans.into_iter();
        sim.run_closed_loop(queue_depth, total, move |_| {
            // vdisk-lint: allow(hot-path-panic) reason="total was computed as plans.len(), so the sim requests exactly that many"
            plans.next().expect("plan count matches total_ops")
        })
    }

    /// Per-resource utilization of the last closed-loop run.
    #[must_use]
    pub fn utilization_report(&self) -> Vec<vdisk_sim::ResourceUsage> {
        self.sim
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .utilization_report()
    }

    /// Verifies that all replicas of all objects agree (like Ceph's
    /// deep scrub).
    #[must_use]
    pub fn scrub(&self) -> ScrubReport {
        let mut report = ScrubReport::default();
        for shard in self.shards.iter() {
            let guard = shard.lock();
            for name in guard.store.names() {
                report.objects_checked += 1;
                let acting = self.control.placement.acting_set(&name);
                let prints: Vec<Option<u64>> = acting
                    .iter()
                    .map(|osd| guard.store.get(osd.0, &name).map(|o| o.head.fingerprint()))
                    .collect();
                let Some(first) = prints.first() else {
                    continue;
                };
                if prints.iter().any(|p| p != first) {
                    report.divergent.push(name);
                }
            }
        }
        report.divergent.sort_unstable();
        report
    }

    /// Fault injection: silently corrupts one byte on a **non-primary**
    /// replica (as a failing disk or torn replication would). Scrub
    /// must detect it; [`Cluster::repair`] must fix it.
    ///
    /// # Errors
    ///
    /// Returns [`RadosError::InvalidArgument`] if `replica_index` is 0
    /// (the primary) or out of range, or [`RadosError::NoSuchObject`]
    /// if that replica holds no such object.
    pub fn damage_replica(&self, object: &str, replica_index: usize, offset: usize) -> Result<()> {
        let acting = self.control.placement.acting_set(object);
        if replica_index == 0 || replica_index >= acting.len() {
            return Err(RadosError::InvalidArgument(format!(
                "replica_index {replica_index} out of range (1..{})",
                acting.len()
            )));
        }
        // vdisk-lint: allow(hot-path-index) reason="replica_index was range-checked against acting.len() just above"
        let osd = acting[replica_index];
        let mut shard = self.shard_for(object).lock();
        let obj = shard
            .store
            .get_mut(osd.0, object)
            .ok_or_else(|| RadosError::NoSuchObject(object.to_string()))?;
        obj.head.poke(offset, 0xFF);
        // Make the corruption durable too, so a reopened cluster still
        // sees (and can scrub) the damaged replica.
        shard.store.commit(object, std::slice::from_ref(&osd))?;
        Ok(())
    }

    /// Repairs an object by re-replicating the primary's copy (Ceph's
    /// `pg repair` policy: the primary is authoritative).
    ///
    /// # Errors
    ///
    /// Returns [`RadosError::NoSuchObject`] if the primary holds no
    /// such object.
    pub fn repair(&self, object: &str) -> Result<()> {
        let acting = self.control.placement.acting_set(object);
        let mut shard = self.shard_for(object).lock();
        let primary_copy = shard
            .store
            // vdisk-lint: allow(hot-path-index) reason="acting_set always places at least the primary; an empty acting set is unconstructible"
            .get(acting[0].0, object)
            .cloned()
            .ok_or_else(|| RadosError::NoSuchObject(object.to_string()))?;
        // vdisk-lint: allow(hot-path-index) reason="acting is non-empty (primary copy was just read), so the [1..] slice is in range"
        for osd in &acting[1..] {
            shard.store.insert(osd.0, object, primary_copy.clone());
        }
        // vdisk-lint: allow(hot-path-index) reason="acting is non-empty (primary copy was just read), so the [1..] slice is in range"
        shard.store.commit(object, &acting[1..])?;
        Ok(())
    }

    /// Test-only: whether a specific OSD holds a copy of `object`.
    #[cfg(test)]
    fn osd_holds(&self, osd: usize, object: &str) -> bool {
        self.shard_for(object).lock().store.contains(osd, object)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> Cluster {
        Cluster::builder().build()
    }

    #[test]
    fn write_then_read_round_trips() {
        let c = cluster();
        let mut tx = Transaction::new("obj");
        tx.write(100, b"hello world".to_vec());
        c.execute(tx).unwrap();
        let (results, plan) = c
            .read(
                "obj",
                None,
                &[ReadOp::Read {
                    offset: 100,
                    len: 11,
                }],
            )
            .unwrap();
        assert_eq!(results[0].as_data(), b"hello world");
        assert!(plan.op_count() > 0);
    }

    #[test]
    fn try_build_rejects_zero_osd_count() {
        let err = Cluster::builder().osd_count(0).try_build().unwrap_err();
        assert_eq!(
            err,
            RadosError::InvalidConfig("osd_count must be at least 1".into())
        );
    }

    #[test]
    fn try_build_rejects_zero_replicas() {
        let err = Cluster::builder().replicas(0).try_build().unwrap_err();
        assert_eq!(
            err,
            RadosError::InvalidConfig("replicas must be at least 1".into())
        );
    }

    #[test]
    fn try_build_rejects_zero_pg_count() {
        let err = Cluster::builder().pg_count(0).try_build().unwrap_err();
        assert_eq!(
            err,
            RadosError::InvalidConfig("pg_count must be at least 1".into())
        );
    }

    #[test]
    fn try_build_rejects_zero_shard_count() {
        let err = Cluster::builder().shard_count(0).try_build().unwrap_err();
        assert_eq!(
            err,
            RadosError::InvalidConfig("shard_count must be at least 1".into())
        );
    }

    #[test]
    fn try_build_rejects_zero_crypto_lanes() {
        let err = Cluster::builder().crypto_lanes(0).try_build().unwrap_err();
        assert_eq!(
            err,
            RadosError::InvalidConfig("crypto_lanes must be at least 1".into())
        );
    }

    #[test]
    fn try_build_rejects_replicas_exceeding_osds() {
        let err = Cluster::builder()
            .osd_count(2)
            .replicas(3)
            .try_build()
            .unwrap_err();
        assert!(
            matches!(&err, RadosError::InvalidConfig(msg) if msg.contains("cannot exceed")),
            "unexpected error: {err}"
        );
    }

    #[test]
    #[should_panic(expected = "invalid cluster configuration")]
    fn build_panics_on_invalid_knobs() {
        let _ = Cluster::builder().shard_count(0).build();
    }

    #[test]
    fn reads_of_missing_objects_fail() {
        let c = cluster();
        assert_eq!(
            c.read("ghost", None, &[ReadOp::Stat]).unwrap_err(),
            RadosError::NoSuchObject("ghost".into())
        );
    }

    #[test]
    fn transaction_is_atomic_on_validation_failure() {
        let c = cluster();
        let mut tx = Transaction::new("obj");
        tx.write(0, b"data".to_vec());
        tx.omap_set(vec![(Vec::new(), b"bad-key".to_vec())]); // invalid
        assert!(matches!(c.execute(tx), Err(RadosError::InvalidArgument(_))));
        assert!(
            !c.object_exists("obj"),
            "no partial state may survive a rejected transaction"
        );
    }

    #[test]
    fn omap_set_and_range() {
        let c = cluster();
        let mut tx = Transaction::new("obj");
        tx.write(0, vec![1]);
        tx.omap_set(vec![
            (b"iv.0001".to_vec(), vec![0x11; 16]),
            (b"iv.0000".to_vec(), vec![0x22; 16]),
        ]);
        c.execute(tx).unwrap();
        let (results, _) = c
            .read(
                "obj",
                None,
                &[ReadOp::OmapGetRange {
                    start: b"iv.".to_vec(),
                    end: b"iv.\xff".to_vec(),
                }],
            )
            .unwrap();
        let entries = results[0].as_omap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].0, b"iv.0000");
    }

    #[test]
    fn snapshots_preserve_history() {
        let c = cluster();
        let mut tx = Transaction::new("obj");
        tx.write(0, b"v1".to_vec());
        c.execute(tx).unwrap();
        let snap1 = c.create_snap();
        let mut tx = Transaction::new("obj");
        tx.write(0, b"v2".to_vec());
        c.execute(tx).unwrap();

        let (head, _) = c
            .read("obj", None, &[ReadOp::Read { offset: 0, len: 2 }])
            .unwrap();
        let (old, _) = c
            .read("obj", Some(snap1), &[ReadOp::Read { offset: 0, len: 2 }])
            .unwrap();
        assert_eq!(head[0].as_data(), b"v2");
        assert_eq!(old[0].as_data(), b"v1");
    }

    #[test]
    fn snapshot_before_birth_is_absent() {
        let c = cluster();
        let snap = c.create_snap();
        let mut tx = Transaction::new("newborn");
        tx.write(0, b"x".to_vec());
        c.execute(tx).unwrap();
        assert!(matches!(
            c.read("newborn", Some(snap), &[ReadOp::Stat]),
            Err(RadosError::NoSuchSnapshot { .. })
        ));
    }

    #[test]
    fn omap_survives_snapshots_with_cow() {
        let c = cluster();
        let mut tx = Transaction::new("obj");
        tx.write(0, vec![1]);
        tx.omap_set(vec![(b"k".to_vec(), b"old".to_vec())]);
        c.execute(tx).unwrap();
        let snap = c.create_snap();
        let mut tx = Transaction::new("obj");
        tx.omap_set(vec![(b"k".to_vec(), b"new".to_vec())]);
        c.execute(tx).unwrap();

        let (head, _) = c
            .read("obj", None, &[ReadOp::OmapGetKeys(vec![b"k".to_vec()])])
            .unwrap();
        let (old, _) = c
            .read(
                "obj",
                Some(snap),
                &[ReadOp::OmapGetKeys(vec![b"k".to_vec()])],
            )
            .unwrap();
        assert_eq!(head[0].as_omap()[0].1, b"new");
        assert_eq!(old[0].as_omap()[0].1, b"old", "OMAP must be COW'd too");
    }

    #[test]
    fn scrub_detects_and_repair_fixes_divergence() {
        let c = cluster();
        let mut tx = Transaction::new("obj");
        tx.write(0, vec![0xAB; 1024]);
        c.execute(tx).unwrap();
        assert!(c.scrub().is_clean());

        c.damage_replica("obj", 1, 10).unwrap();
        let report = c.scrub();
        assert_eq!(report.divergent, vec!["obj".to_string()]);

        c.repair("obj").unwrap();
        assert!(c.scrub().is_clean());
    }

    #[test]
    fn damage_primary_is_rejected() {
        let c = cluster();
        let mut tx = Transaction::new("obj");
        tx.write(0, vec![1]);
        c.execute(tx).unwrap();
        assert!(c.damage_replica("obj", 0, 0).is_err());
        assert!(c.damage_replica("obj", 9, 0).is_err());
    }

    #[test]
    fn delete_removes_everywhere() {
        let c = cluster();
        let mut tx = Transaction::new("obj");
        tx.write(0, vec![1]);
        c.execute(tx).unwrap();
        assert!(c.object_exists("obj"));
        let mut tx = Transaction::new("obj");
        tx.delete();
        c.execute(tx).unwrap();
        assert!(!c.object_exists("obj"));
        assert_eq!(c.list_objects().len(), 0);
    }

    #[test]
    fn xattrs_round_trip() {
        let c = cluster();
        let mut tx = Transaction::new("obj");
        tx.write(0, vec![0]);
        tx.set_xattr("rbd.size", 4096u64.to_le_bytes().to_vec());
        c.execute(tx).unwrap();
        let (results, _) = c
            .read("obj", None, &[ReadOp::GetXattr("rbd.size".into())])
            .unwrap();
        assert_eq!(
            results[0],
            ReadResult::Xattr(Some(4096u64.to_le_bytes().to_vec()))
        );
        let (results, _) = c
            .read("obj", None, &[ReadOp::GetXattr("missing".into())])
            .unwrap();
        assert_eq!(results[0], ReadResult::Xattr(None));
    }

    #[test]
    fn discarded_payload_mode_keeps_sizes() {
        let c = Cluster::builder()
            .payload_mode(PayloadMode::Discarded)
            .build();
        let mut tx = Transaction::new("obj");
        tx.write(4096, vec![7; 4096]);
        c.execute(tx).unwrap();
        assert_eq!(c.stat("obj").unwrap().size, 8192);
        let (results, _) = c
            .read(
                "obj",
                None,
                &[ReadOp::Read {
                    offset: 4096,
                    len: 4096,
                }],
            )
            .unwrap();
        assert_eq!(results[0].as_data(), &vec![0u8; 4096][..], "payload gone");
    }

    #[test]
    fn closed_loop_runs_plans() {
        let c = cluster();
        let mut plans = Vec::new();
        for i in 0..64 {
            let mut tx = Transaction::new(format!("obj{i}"));
            tx.write(0, vec![0u8; 4096]);
            plans.push((c.execute(tx).unwrap(), 4096));
        }
        let stats = c.run_closed_loop(8, plans);
        assert_eq!(stats.ops, 64);
        assert!(stats.bandwidth_mb_s() > 0.0);
        let report = c.utilization_report();
        assert!(report.iter().any(|r| r.ops > 0));
    }

    #[test]
    fn replicas_actually_hold_copies() {
        let c = cluster();
        let mut tx = Transaction::new("obj");
        tx.write(0, b"replicated".to_vec());
        c.execute(tx).unwrap();
        // All three OSDs hold the object (3-way replication on 3 OSDs).
        for osd in 0..3 {
            assert!(c.osd_holds(osd, "obj"), "osd {osd} missing the object");
        }
    }

    #[test]
    fn execute_batch_applies_all_and_fans_out() {
        let c = cluster();
        let txs: Vec<Transaction> = (0..4)
            .map(|i| {
                let mut tx = Transaction::new(format!("obj{i}"));
                tx.write(0, vec![i as u8; 4096]);
                tx
            })
            .collect();
        let plan = c.execute_batch(txs).unwrap();
        match &plan {
            Plan::Par(children) => assert_eq!(children.len(), 4),
            other => panic!("batch dispatch must be parallel, got {other:?}"),
        }
        for i in 0..4 {
            assert!(c.object_exists(&format!("obj{i}")));
        }
        let stats = c.exec_stats();
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.transactions, 4);
        assert!(
            stats.shard_fanout_max >= 1,
            "fanout counter must have recorded the batch"
        );
    }

    #[test]
    fn multi_shard_batch_records_fanout() {
        // Force the threaded path so it is exercised on any host.
        let c = Cluster::builder().concurrent_apply(true).build();
        // Enough distinct objects that, with 8 shards over 128 PGs,
        // at least two shards are touched (deterministic placement).
        let txs: Vec<Transaction> = (0..16)
            .map(|i| {
                let mut tx = Transaction::new(format!("spread{i}"));
                tx.write(0, vec![1u8; 512]);
                tx
            })
            .collect();
        c.execute_batch(txs).unwrap();
        let stats = c.exec_stats();
        assert!(
            stats.shard_fanout_max >= 2,
            "16 distinct objects must fan out over >= 2 shards, got {}",
            stats.shard_fanout_max
        );
        assert!(stats.shard_concurrency_peak >= 1);
        assert!(stats.shard_concurrency_peak <= c.shard_count() as u64);
    }

    #[test]
    fn single_shard_cluster_still_serves_batches() {
        let c = Cluster::builder().shard_count(1).build();
        let txs: Vec<Transaction> = (0..4)
            .map(|i| {
                let mut tx = Transaction::new(format!("obj{i}"));
                tx.write(0, vec![i as u8; 1024]);
                tx
            })
            .collect();
        let plan = c.execute_batch(txs).unwrap();
        assert!(matches!(&plan, Plan::Par(children) if children.len() == 4));
        assert_eq!(c.exec_stats().shard_fanout_max, 1);
        for i in 0..4 {
            assert!(c.object_exists(&format!("obj{i}")));
        }
    }

    #[test]
    fn execute_batch_is_all_or_nothing_across_transactions() {
        let c = cluster();
        let mut good = Transaction::new("good");
        good.write(0, vec![1; 16]);
        let mut bad = Transaction::new("bad");
        bad.write(0, Vec::new()); // invalid: empty write
        assert!(matches!(
            c.execute_batch(vec![good, bad]),
            Err(RadosError::InvalidArgument(_))
        ));
        assert!(
            !c.object_exists("good"),
            "a bad transaction must reject the whole batch before any applies"
        );
        assert_eq!(c.exec_stats().transactions, 0);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let c = cluster();
        assert_eq!(c.execute_batch(Vec::new()).unwrap(), Plan::Noop);
    }

    #[test]
    fn read_batch_zero_fills_missing_objects() {
        let c = cluster();
        let mut tx = Transaction::new("present");
        tx.write(0, b"here".to_vec());
        c.execute(tx).unwrap();
        let (results, plan) = c
            .read_batch(
                None,
                vec![
                    ObjectReads::new("present", vec![ReadOp::Read { offset: 0, len: 4 }]),
                    ObjectReads::new("ghost", vec![ReadOp::Read { offset: 0, len: 4 }]),
                ],
            )
            .unwrap();
        assert_eq!(results[0].as_ref().unwrap()[0].as_data(), b"here");
        assert!(results[1].is_none(), "missing object reads as a hole");
        assert!(plan.op_count() > 0);
        assert_eq!(c.exec_stats().read_ops, 2);
    }

    #[test]
    fn read_batch_charges_a_round_trip_per_miss() {
        let c = cluster();
        let mut tx = Transaction::new("present");
        tx.write(0, vec![1u8; 4096]);
        c.execute(tx).unwrap();
        let (_, plan) = c
            .read_batch(
                None,
                vec![
                    ObjectReads::new(
                        "present",
                        vec![ReadOp::Read {
                            offset: 0,
                            len: 4096,
                        }],
                    ),
                    ObjectReads::new(
                        "ghost-a",
                        vec![ReadOp::Read {
                            offset: 0,
                            len: 4096,
                        }],
                    ),
                    ObjectReads::new("ghost-b", vec![ReadOp::Stat]),
                ],
            )
            .unwrap();
        // One plan child per request, misses included.
        match &plan {
            Plan::Par(children) => {
                assert_eq!(children.len(), 3, "sparse misses must keep their cost slot")
            }
            other => panic!("expected parallel dispatch, got {other:?}"),
        }
        // The miss children still move request/response headers but no
        // disk bytes: total op bytes exceed a lone present read's.
        let (_, lone) = c
            .read_batch(
                None,
                vec![ObjectReads::new(
                    "present",
                    vec![ReadOp::Read {
                        offset: 0,
                        len: 4096,
                    }],
                )],
            )
            .unwrap();
        assert!(plan.total_op_bytes() > lone.total_op_bytes());
        // And a miss costs no disk op on any OSD.
        let handles = c.resources();
        let (_, miss_only) = c
            .read_batch(None, vec![ObjectReads::new("ghost-c", vec![ReadOp::Stat])])
            .unwrap();
        for disk in &handles.osd_disk {
            assert_eq!(
                miss_only.op_count_on(*disk),
                0,
                "a miss must not touch disk"
            );
        }
        assert!(miss_only.op_count() > 0, "a miss still makes a round trip");
    }

    #[test]
    fn zero_length_read_extent_charges_no_disk_block() {
        let c = cluster();
        let mut tx = Transaction::new("obj");
        tx.write(0, vec![7u8; 4096]);
        c.execute(tx).unwrap();
        let handles = c.resources();
        let (results, plan) = c
            .read("obj", None, &[ReadOp::Read { offset: 0, len: 0 }])
            .unwrap();
        assert!(results[0].as_data().is_empty());
        for disk in &handles.osd_disk {
            assert_eq!(
                plan.op_count_on(*disk),
                0,
                "an empty extent must not be charged a whole block"
            );
        }
    }

    #[test]
    fn batched_and_single_execution_leave_identical_state() {
        let build = |batched: bool| {
            let c = cluster();
            let txs: Vec<Transaction> = (0..3)
                .map(|i| {
                    let mut tx = Transaction::new(format!("obj{i}"));
                    tx.write(i * 512, vec![0xC0 + i as u8; 2048]);
                    tx.omap_set(vec![(vec![i as u8 + 1], vec![0xEE; 16])]);
                    tx
                })
                .collect();
            if batched {
                c.execute_batch(txs).unwrap();
            } else {
                for tx in txs {
                    c.execute(tx).unwrap();
                }
            }
            c
        };
        let (single, batched) = (build(false), build(true));
        for i in 0..3 {
            let name = format!("obj{i}");
            let ops = [
                ReadOp::Read {
                    offset: 0,
                    len: 4096,
                },
                ReadOp::OmapGetRange {
                    start: vec![],
                    end: vec![0xFF],
                },
            ];
            let (a, _) = single.read(&name, None, &ops).unwrap();
            let (b, _) = batched.read(&name, None, &ops).unwrap();
            assert_eq!(a, b, "object {name} diverged between paths");
        }
    }

    #[test]
    fn async_submissions_overlap_and_record_queue_depth() {
        let c = Cluster::builder().concurrent_apply(true).build();
        let mut tickets = Vec::new();
        for i in 0..8u8 {
            let mut tx = Transaction::new(format!("qd{i}"));
            tx.write(0, vec![i + 1; 2048]);
            tickets.push(c.submit_batch(vec![tx]).unwrap());
        }
        // All eight submissions are open before any is reaped:
        // deterministic, client-side-bracketed queue depth.
        assert_eq!(c.exec_stats().queue_depth_peak, 8);
        for ticket in tickets {
            let delta = ticket.stats_delta();
            assert_eq!(delta.transactions, 1);
            assert_eq!(delta.batches, 1);
            assert_eq!(delta.shard_fanout_max, 1);
            assert!(ticket.wait().unwrap().op_count() > 0);
        }
        for i in 0..8 {
            assert!(c.object_exists(&format!("qd{i}")));
        }
    }

    #[test]
    fn queued_ops_on_one_object_apply_in_submission_order() {
        let c = Cluster::builder().concurrent_apply(true).build();
        // 32 overlapping writes to one object, all in flight at once.
        let tickets: Vec<_> = (0..32u8)
            .map(|round| {
                let mut tx = Transaction::new("hot");
                tx.write(0, vec![round; 4096]);
                c.submit_batch(vec![tx]).unwrap()
            })
            .collect();
        // A read submitted after them rides the same shard FIFO, so it
        // must observe exactly the last write — while everything is
        // still in flight.
        let read = c.submit_read_batch(
            None,
            vec![ObjectReads::new(
                "hot",
                vec![ReadOp::Read {
                    offset: 0,
                    len: 4096,
                }],
            )],
        );
        let (results, _) = read.wait().unwrap();
        let data = results[0].as_ref().unwrap()[0].as_data();
        assert!(
            data.iter().all(|&b| b == 31),
            "a queued read must see every previously submitted write"
        );
        // Reaping after the read is fine; order of reaping is free.
        for ticket in tickets {
            let _ = ticket.wait();
        }
    }

    #[test]
    fn multi_shard_submission_registers_fanout_as_concurrency() {
        let c = Cluster::builder().concurrent_apply(true).build();
        let txs: Vec<Transaction> = (0..16)
            .map(|i| {
                let mut tx = Transaction::new(format!("spread{i}"));
                tx.write(0, vec![1u8; 512]);
                tx
            })
            .collect();
        let ticket = c.submit_batch(txs).unwrap();
        let fanout = ticket.stats_delta().shard_fanout_max;
        assert!(fanout >= 2, "16 objects must span >= 2 of 8 shards");
        let _ = ticket.wait();
        // Every touched shard is admitted before any job runs, so a
        // single submission's fanout registers as concurrency
        // deterministically — even on a single-core host.
        let stats = c.exec_stats();
        assert!(stats.shard_concurrency_peak >= fanout);
        assert!(stats.shard_concurrency_peak <= c.shard_count() as u64);
    }

    #[test]
    fn inline_mode_serves_submissions_synchronously() {
        let c = Cluster::builder().concurrent_apply(false).build();
        assert!(!c.workers_enabled());
        let mut tx = Transaction::new("inline");
        tx.write(0, vec![7u8; 1024]);
        let ticket = c.submit_batch(vec![tx]).unwrap();
        assert!(ticket.is_complete(), "inline submissions apply at submit");
        assert!(ticket.wait().unwrap().op_count() > 0);
        let read = c.submit_read_batch(
            None,
            vec![ObjectReads::new(
                "inline",
                vec![ReadOp::Read {
                    offset: 0,
                    len: 1024,
                }],
            )],
        );
        assert!(read.is_complete());
        let (results, _) = read.wait().unwrap();
        assert_eq!(results[0].as_ref().unwrap()[0].as_data(), &[7u8; 1024][..]);
    }

    #[test]
    fn abandoned_tickets_still_apply_and_release_depth() {
        let c = Cluster::builder().concurrent_apply(true).build();
        let mut tx = Transaction::new("fire-and-forget");
        tx.write(0, vec![1u8; 512]);
        let ticket = c.submit_batch(vec![tx]).unwrap();
        drop(ticket);
        // The write still lands (drain via a queued read).
        let (results, _) = c
            .read(
                "fire-and-forget",
                None,
                &[ReadOp::Read {
                    offset: 0,
                    len: 512,
                }],
            )
            .unwrap();
        assert_eq!(results[0].as_data(), &[1u8; 512][..]);
    }

    #[test]
    fn flush_drains_abandoned_submissions() {
        let c = Cluster::builder().concurrent_apply(true).build();
        for i in 0..16u8 {
            let mut tx = Transaction::new(format!("flush{i}"));
            tx.write(0, vec![i + 1; 1024]);
            drop(c.submit_batch(vec![tx]).unwrap());
        }
        c.flush();
        // Direct state inspection is safe after the barrier.
        assert_eq!(c.list_objects().len(), 16);
    }

    #[test]
    fn write_submissions_bump_touched_shard_epochs() {
        let c = cluster();
        let before: Vec<u64> = (0..c.shard_count()).map(|s| c.shard_write_seq(s)).collect();
        let mut tx = Transaction::new("epoch-obj");
        tx.write(0, vec![1u8; 512]);
        let shard = c.placement_shard("epoch-obj");
        c.execute(tx).unwrap();
        assert_eq!(
            c.shard_write_seq(shard),
            before[shard] + 1,
            "the touched shard's epoch advances exactly once per submission"
        );
        for (s, &seq) in before.iter().enumerate() {
            if s != shard {
                assert_eq!(c.shard_write_seq(s), seq, "untouched shard {s} moved");
            }
        }
        // Reads leave every epoch alone.
        c.read("epoch-obj", None, &[ReadOp::Stat]).unwrap();
        assert_eq!(c.shard_write_seq(shard), before[shard] + 1);
    }

    #[test]
    fn multi_shard_batch_bumps_each_touched_shard_once() {
        let c = cluster();
        let txs: Vec<Transaction> = (0..16)
            .map(|i| {
                let mut tx = Transaction::new(format!("epoch{i}"));
                tx.write(0, vec![1u8; 64]);
                tx
            })
            .collect();
        let mut expected = vec![0u64; c.shard_count()];
        for tx in &txs {
            expected[c.placement_shard(&tx.object)] = 1;
        }
        c.execute_batch(txs).unwrap();
        for (s, &bump) in expected.iter().enumerate() {
            assert_eq!(
                c.shard_write_seq(s),
                bump,
                "shard {s}: one bump per touched shard, none otherwise"
            );
        }
    }

    #[test]
    fn epoch_bumps_before_a_concurrent_submissions_jobs_apply() {
        // The contract client caches rely on: once a submission's
        // ticket exists, every touched shard's epoch has advanced —
        // even while the jobs are still queued behind workers.
        let c = Cluster::builder().concurrent_apply(true).build();
        let mut tx = Transaction::new("inflight");
        tx.write(0, vec![9u8; 1 << 20]);
        let shard = c.placement_shard("inflight");
        let ticket = c.submit_batch(vec![tx]).unwrap();
        assert_eq!(c.shard_write_seq(shard), 1);
        let _ = ticket.wait();
        assert_eq!(c.shard_write_seq(shard), 1, "apply itself adds nothing");
    }

    #[test]
    fn snapshots_bump_every_shard_epoch() {
        let c = cluster();
        let before: Vec<u64> = (0..c.shard_count()).map(|s| c.shard_write_seq(s)).collect();
        c.create_snap();
        for (s, &seq) in before.iter().enumerate() {
            assert_eq!(c.shard_write_seq(s), seq + 1, "shard {s}");
        }
    }

    #[test]
    fn meta_cache_counters_accumulate_via_the_hook() {
        let c = cluster();
        assert_eq!(c.meta_cache_bytes(), DEFAULT_META_CACHE_BYTES);
        c.record_meta_cache(3, 2, 1);
        c.record_meta_cache(0, 0, 0);
        let stats = c.exec_stats();
        assert_eq!(stats.meta_cache_hits, 3);
        assert_eq!(stats.meta_cache_misses, 2);
        assert_eq!(stats.meta_cache_invalidations, 1);
        let off = Cluster::builder().meta_cache_bytes(0).build();
        assert_eq!(off.meta_cache_bytes(), 0);
    }

    #[test]
    fn compare_xattr_gates_the_whole_transaction() {
        let c = cluster();
        let mut tx = Transaction::new("hdr");
        tx.compare_xattr("gen", None); // object absent: precondition holds
        tx.write(0, b"v1".to_vec());
        tx.set_xattr("gen", 1u64.to_le_bytes().to_vec());
        c.execute(tx).unwrap();

        // Stale writer: read gen 0 (absent), loses to the update above.
        let mut stale = Transaction::new("hdr");
        stale.compare_xattr("gen", None);
        stale.write(0, b"stale".to_vec());
        assert!(matches!(
            c.execute(stale),
            Err(RadosError::CompareFailed { .. })
        ));
        let (results, _) = c
            .read("hdr", None, &[ReadOp::Read { offset: 0, len: 2 }])
            .unwrap();
        assert_eq!(results[0].as_data(), b"v1", "failed CAS must apply nothing");

        // Fresh writer: expects gen 1, wins.
        let mut fresh = Transaction::new("hdr");
        fresh.compare_xattr("gen", Some(1u64.to_le_bytes().to_vec()));
        fresh.write(0, b"v2".to_vec());
        fresh.set_xattr("gen", 2u64.to_le_bytes().to_vec());
        c.execute(fresh).unwrap();
        let (results, _) = c
            .read("hdr", None, &[ReadOp::Read { offset: 0, len: 2 }])
            .unwrap();
        assert_eq!(results[0].as_data(), b"v2");
    }

    #[test]
    fn compare_xattr_failure_skips_only_its_transaction_in_a_batch() {
        let c = cluster();
        let mut guarded = Transaction::new("guarded");
        guarded.compare_xattr("v", Some(b"nope".to_vec()));
        guarded.write(0, vec![1; 16]);
        let mut plain = Transaction::new("plain");
        plain.write(0, vec![2; 16]);
        assert!(matches!(
            c.execute_batch(vec![guarded, plain]),
            Err(RadosError::CompareFailed { .. })
        ));
        assert!(!c.object_exists("guarded"), "guarded tx applied nothing");
        assert!(
            c.object_exists("plain"),
            "dynamic preconditions are per-transaction, not per-batch"
        );
    }

    #[test]
    fn compare_xattr_works_through_the_queued_path() {
        let c = Cluster::builder().concurrent_apply(true).build();
        let mut tx = Transaction::new("hdr");
        tx.compare_xattr("gen", None);
        tx.set_xattr("gen", b"1".to_vec());
        tx.write(0, b"x".to_vec());
        let ticket = c.submit_batch(vec![tx]).unwrap();
        ticket.wait().unwrap();
        let mut stale = Transaction::new("hdr");
        stale.compare_xattr("gen", None);
        stale.write(0, b"y".to_vec());
        let ticket = c.submit_batch(vec![stale]).unwrap();
        assert!(matches!(
            ticket.wait(),
            Err(RadosError::CompareFailed { .. })
        ));
    }

    #[test]
    fn snap_ids_are_monotonic() {
        let c = cluster();
        let a = c.create_snap();
        let b = c.create_snap();
        assert!(b > a);
        assert_eq!(c.snap_seq(), b);
    }
}
